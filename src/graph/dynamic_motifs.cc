#include "graph/dynamic_motifs.h"

#include <algorithm>

#include "common/check.h"

namespace ahntp::graph {

namespace {
uint64_t PairKey(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}
}  // namespace

MotifCounts::MotifCounts(const Digraph& graph, Motif motif) : motif_(motif) {
  const size_t n = graph.num_nodes();
  out_.resize(n);
  in_.resize(n);
  for (size_t u = 0; u < n; ++u) {
    for (int v : graph.OutNeighbors(static_cast<int>(u))) {
      out_[u].insert(v);
      in_[v].insert(static_cast<int>(u));
    }
  }
  tensor::CsrMatrix adj = MotifAdjacency(graph.Adjacency(), motif);
  for (size_t r = 0; r < adj.rows(); ++r) {
    for (int k = adj.row_ptr()[r]; k < adj.row_ptr()[r + 1]; ++k) {
      counts_[PairKey(static_cast<int>(r), adj.col_idx()[k])] =
          static_cast<int64_t>(adj.values()[k]);
    }
  }
}

int MotifCounts::ClassifyWith(int u, int v, int w, bool uv) const {
  return ClassifyTripleEdges(uv, HasEdge(v, u), HasEdge(v, w), HasEdge(w, v),
                             HasEdge(u, w), HasEdge(w, u));
}

void MotifCounts::Bump(int a, int b, int64_t amount) {
  uint64_t key = PairKey(a, b);
  int64_t& slot = counts_[key];
  slot += amount;
  AHNTP_CHECK(slot >= 0);
  if (slot == 0) counts_.erase(key);
}

void MotifCounts::UpdateTriples(int u, int v, bool uv_before) {
  const int want = static_cast<int>(motif_);
  // Candidate third vertices: undirected neighbours of u that are also
  // undirected neighbours of v. Only the (u, v) flag changes, so every
  // other edge indicator is read from the (unchanged) mirror.
  std::unordered_set<int> seen;
  auto consider = [&](int w) {
    if (w == u || w == v || !seen.insert(w).second) return;
    if (!(HasEdge(v, w) || HasEdge(w, v))) return;
    int before = ClassifyWith(u, v, w, uv_before);
    int after = ClassifyWith(u, v, w, !uv_before);
    if (before == after) return;
    const int nodes[3] = {u, v, w};
    int64_t amount = 0;
    if (before == want) amount -= 1;
    if (after == want) amount += 1;
    if (amount == 0) return;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i != j) Bump(nodes[i], nodes[j], amount);
      }
    }
  };
  for (int w : out_[u]) consider(w);
  for (int w : in_[u]) consider(w);
}

void MotifCounts::AddEdge(int u, int v) {
  AHNTP_CHECK(u != v);
  AHNTP_CHECK(!HasEdge(u, v));
  UpdateTriples(u, v, /*uv_before=*/false);
  out_[u].insert(v);
  in_[v].insert(u);
}

void MotifCounts::RemoveEdge(int u, int v) {
  AHNTP_CHECK(HasEdge(u, v));
  UpdateTriples(u, v, /*uv_before=*/true);
  out_[u].erase(v);
  in_[v].erase(u);
}

tensor::CsrMatrix MotifCounts::ToCsr() const {
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    triplets.push_back({static_cast<int>(key >> 32),
                        static_cast<int>(key & 0xffffffffULL),
                        static_cast<float>(count)});
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const tensor::Triplet& a, const tensor::Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  const size_t n = out_.size();
  return tensor::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace ahntp::graph
