#ifndef AHNTP_GRAPH_DIGRAPH_H_
#define AHNTP_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tensor/csr.h"

namespace ahntp::graph {

/// A directed edge (src follows dst in the paper's social-network reading).
struct Edge {
  int src = 0;
  int dst = 0;
};

/// Directed graph over [0, n) with CSR adjacency in both directions.
/// This is the paper's G' = (U, E', R_U): the user-user interaction graph
/// that motif analysis and PageRank run on.
class Digraph {
 public:
  /// Empty graph with n nodes.
  explicit Digraph(size_t num_nodes = 0);

  /// Builds from an edge list; duplicates and self-loops are dropped.
  /// Returns InvalidArgument when an endpoint is out of range.
  static Result<Digraph> FromEdges(size_t num_nodes,
                                   const std::vector<Edge>& edges);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  bool HasEdge(int src, int dst) const;

  /// Successors of u (nodes u points to).
  const std::vector<int>& OutNeighbors(int u) const;
  /// Predecessors of u.
  const std::vector<int>& InNeighbors(int u) const;

  size_t OutDegree(int u) const { return OutNeighbors(u).size(); }
  size_t InDegree(int u) const { return InNeighbors(u).size(); }

  /// Binary adjacency R_U as CSR: R(u, v) = 1 iff edge u->v.
  const tensor::CsrMatrix& Adjacency() const { return adjacency_; }

  /// Nodes reachable from u within `hops` steps following either edge
  /// direction (the social "neighbourhood ball"), excluding u itself.
  /// Returned in BFS order (nearest first).
  std::vector<int> NeighborhoodBall(int u, int hops) const;

  /// Fraction of edges whose reverse edge also exists.
  double Reciprocity() const;

  /// Union of out- and in-neighbours of u (deduplicated).
  std::vector<int> UndirectedNeighbors(int u) const;

 private:
  size_t num_nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  tensor::CsrMatrix adjacency_;
};

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_DIGRAPH_H_
