#include "graph/analytics.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace ahntp::graph {

double LocalClusteringCoefficient(const Digraph& graph, int u) {
  std::vector<int> neighbors = graph.UndirectedNeighbors(u);
  if (neighbors.size() < 2) return 0.0;
  size_t links = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      if (graph.HasEdge(neighbors[i], neighbors[j]) ||
          graph.HasEdge(neighbors[j], neighbors[i])) {
        ++links;
      }
    }
  }
  double possible = static_cast<double>(neighbors.size()) *
                    static_cast<double>(neighbors.size() - 1) / 2.0;
  return static_cast<double>(links) / possible;
}

double AverageClusteringCoefficient(const Digraph& graph) {
  if (graph.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    total += LocalClusteringCoefficient(graph, static_cast<int>(u));
  }
  return total / static_cast<double>(graph.num_nodes());
}

ComponentResult ConnectedComponents(const Digraph& graph) {
  ComponentResult result;
  result.component.assign(graph.num_nodes(), -1);
  std::vector<size_t> sizes;
  for (size_t start = 0; start < graph.num_nodes(); ++start) {
    if (result.component[start] != -1) continue;
    int id = static_cast<int>(result.num_components++);
    size_t size = 0;
    std::queue<int> frontier;
    frontier.push(static_cast<int>(start));
    result.component[start] = id;
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      ++size;
      for (int w : graph.UndirectedNeighbors(v)) {
        if (result.component[static_cast<size_t>(w)] == -1) {
          result.component[static_cast<size_t>(w)] = id;
          frontier.push(w);
        }
      }
    }
    sizes.push_back(size);
  }
  result.largest_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return result;
}

DegreeStats ComputeDegreeStats(const Digraph& graph) {
  DegreeStats stats;
  const size_t n = graph.num_nodes();
  if (n == 0) return stats;
  std::vector<size_t> degrees(n);
  for (size_t u = 0; u < n; ++u) {
    degrees[u] = graph.UndirectedNeighbors(static_cast<int>(u)).size();
  }
  std::sort(degrees.begin(), degrees.end());
  stats.min = degrees.front();
  stats.max = degrees.back();
  double total = static_cast<double>(
      std::accumulate(degrees.begin(), degrees.end(), size_t{0}));
  stats.mean = total / static_cast<double>(n);
  stats.median = n % 2 == 1
                     ? static_cast<double>(degrees[n / 2])
                     : (static_cast<double>(degrees[n / 2 - 1]) +
                        static_cast<double>(degrees[n / 2])) /
                           2.0;
  if (total > 0.0) {
    // Gini via the sorted-rank formula.
    double weighted = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(degrees[i]);
    }
    stats.gini = (2.0 * weighted) / (static_cast<double>(n) * total) -
                 (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return stats;
}

double EdgeDensity(const Digraph& graph) {
  const size_t n = graph.num_nodes();
  if (n < 2) return 0.0;
  return static_cast<double>(graph.num_edges()) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

std::vector<int> CoreNumbers(const Digraph& graph) {
  const size_t n = graph.num_nodes();
  std::vector<int> degree(n);
  std::vector<std::vector<int>> neighbors(n);
  size_t max_degree = 0;
  for (size_t u = 0; u < n; ++u) {
    neighbors[u] = graph.UndirectedNeighbors(static_cast<int>(u));
    degree[u] = static_cast<int>(neighbors[u].size());
    max_degree = std::max(max_degree, neighbors[u].size());
  }
  // Matula-Beck peeling with lazy bucket queues: always remove a vertex of
  // the current minimum degree b; its core number is the running maximum of
  // the degrees at removal time. Stale bucket entries (vertices re-filed
  // after degree drops) are skipped on pop. Since a neighbour's degree only
  // ever drops to >= b, the scan pointer b never moves backwards: O(V + E).
  std::vector<std::vector<int>> buckets(max_degree + 1);
  for (size_t u = 0; u < n; ++u) {
    buckets[static_cast<size_t>(degree[u])].push_back(static_cast<int>(u));
  }
  std::vector<int> core(n, 0);
  std::vector<bool> removed(n, false);
  int running_core = 0;
  size_t processed = 0;
  size_t b = 0;
  while (processed < n && b <= max_degree) {
    if (buckets[b].empty()) {
      ++b;
      continue;
    }
    int u = buckets[b].back();
    buckets[b].pop_back();
    if (removed[static_cast<size_t>(u)] ||
        degree[static_cast<size_t>(u)] != static_cast<int>(b)) {
      continue;  // stale entry
    }
    removed[static_cast<size_t>(u)] = true;
    ++processed;
    running_core = std::max(running_core, static_cast<int>(b));
    core[static_cast<size_t>(u)] = running_core;
    for (int w : neighbors[static_cast<size_t>(u)]) {
      if (removed[static_cast<size_t>(w)]) continue;
      int& dw = degree[static_cast<size_t>(w)];
      if (dw > static_cast<int>(b)) {
        --dw;
        buckets[static_cast<size_t>(dw)].push_back(w);
      }
    }
  }
  return core;
}

}  // namespace ahntp::graph
