#ifndef AHNTP_GRAPH_PAGERANK_H_
#define AHNTP_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/motifs.h"
#include "tensor/csr.h"

namespace ahntp::graph {

/// Options shared by the PageRank variants.
struct PageRankOptions {
  /// Damping factor d of Eqs. (2) and (5).
  double damping = 0.85;
  /// Power-iteration cap.
  int max_iterations = 100;
  /// L1 convergence threshold between successive iterates.
  double tolerance = 1e-9;
};

/// Basic PageRank (Eqs. 1-2): s = d * P s + (1-d)/n * e, with P the
/// column-stochastic transition matrix of the (weighted) adjacency.
/// Dangling nodes (zero out-degree) redistribute uniformly. The result
/// sums to 1.
std::vector<double> PageRank(const tensor::CsrMatrix& adjacency,
                             const PageRankOptions& options = {});

/// Configuration for Motif-based PageRank (MPR, Eqs. 3-5).
struct MotifPageRankOptions {
  /// Balance alpha of Eq. (4) between the pairwise adjacency R_U (alpha)
  /// and the motif-induced adjacency A^{M_k} (1 - alpha). The paper's best
  /// setting is 0.8.
  double alpha = 0.8;
  /// Which triangular motif drives the high-order term. The paper follows
  /// MPR (Zhao et al.) in focusing on triangles; M6 is their running example.
  Motif motif = Motif::kM6;
  PageRankOptions pagerank;
};

/// Result of MPR: per-node scores plus the blended weight matrix W_c,
/// exposed because the hypergroup builder reuses it.
struct MotifPageRankResult {
  std::vector<double> scores;
  tensor::CsrMatrix combined_weights;  // W_c of Eq. (4)
  tensor::CsrMatrix motif_adjacency;   // A^{M_k} of Eq. (3)
};

/// Motif-based PageRank: computes A^{M_k}, blends W_c = alpha * R_U +
/// (1-alpha) * A^{M_k} (Eq. 4), and runs the PageRank iteration of Eq. (5)
/// on the column-normalized W_c.
MotifPageRankResult MotifPageRank(const tensor::CsrMatrix& adjacency,
                                  const MotifPageRankOptions& options = {});

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_PAGERANK_H_
