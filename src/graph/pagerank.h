#ifndef AHNTP_GRAPH_PAGERANK_H_
#define AHNTP_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/motifs.h"
#include "tensor/csr.h"

namespace ahntp::graph {

/// Options shared by the PageRank variants.
struct PageRankOptions {
  /// Damping factor d of Eqs. (2) and (5).
  double damping = 0.85;
  /// Power-iteration cap.
  int max_iterations = 100;
  /// L1 convergence threshold between successive iterates.
  double tolerance = 1e-9;
};

/// Basic PageRank (Eqs. 1-2): s = d * P s + (1-d)/n * e, with P the
/// column-stochastic transition matrix of the (weighted) adjacency.
/// Dangling nodes (zero out-degree) redistribute uniformly. The result
/// sums to 1.
std::vector<double> PageRank(const tensor::CsrMatrix& adjacency,
                             const PageRankOptions& options = {});

/// Iteration telemetry from a PageRank run (the dynamic path uses it for
/// its iterations-saved metric).
struct PageRankStats {
  int iterations = 0;
};

/// PageRank with an optional warm start: when `warm_start` is non-null and
/// sized to the graph, the power iteration begins from it instead of the
/// uniform vector. After a small graph delta the previous score vector is
/// near the new fixed point, so convergence takes a fraction of the cold
/// iteration count. Same fixed point, same per-iteration arithmetic — only
/// the starting point (and so the iterate path) differs; run both at a
/// tight tolerance to keep them interchangeable downstream.
std::vector<double> PageRankWarm(const tensor::CsrMatrix& adjacency,
                                 const PageRankOptions& options,
                                 const std::vector<double>* warm_start,
                                 PageRankStats* stats = nullptr);

/// Configuration for Motif-based PageRank (MPR, Eqs. 3-5).
struct MotifPageRankOptions {
  /// Balance alpha of Eq. (4) between the pairwise adjacency R_U (alpha)
  /// and the motif-induced adjacency A^{M_k} (1 - alpha). The paper's best
  /// setting is 0.8.
  double alpha = 0.8;
  /// Which triangular motif drives the high-order term. The paper follows
  /// MPR (Zhao et al.) in focusing on triangles; M6 is their running example.
  Motif motif = Motif::kM6;
  PageRankOptions pagerank;
};

/// Result of MPR: per-node scores plus the blended weight matrix W_c,
/// exposed because the hypergroup builder reuses it.
struct MotifPageRankResult {
  std::vector<double> scores;
  tensor::CsrMatrix combined_weights;  // W_c of Eq. (4)
  tensor::CsrMatrix motif_adjacency;   // A^{M_k} of Eq. (3)
};

/// Motif-based PageRank: computes A^{M_k}, blends W_c = alpha * R_U +
/// (1-alpha) * A^{M_k} (Eq. 4), and runs the PageRank iteration of Eq. (5)
/// on the column-normalized W_c.
MotifPageRankResult MotifPageRank(const tensor::CsrMatrix& adjacency,
                                  const MotifPageRankOptions& options = {});

/// MotifPageRank with the motif adjacency supplied by the caller (e.g. the
/// incrementally maintained graph::MotifCounts) instead of recomputed from
/// scratch, plus an optional warm start for the PageRank iteration. The
/// W_c blend and iteration are byte-for-byte the MotifPageRank() code, so
/// feeding the exact MotifAdjacency() matrix with a null warm start
/// reproduces MotifPageRank() bitwise.
MotifPageRankResult MotifPageRankFrom(
    const tensor::CsrMatrix& adjacency, tensor::CsrMatrix motif_adjacency,
    const MotifPageRankOptions& options = {},
    const std::vector<double>* warm_start = nullptr,
    PageRankStats* stats = nullptr);

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_PAGERANK_H_
