#ifndef AHNTP_GRAPH_DELTA_H_
#define AHNTP_GRAPH_DELTA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"

namespace ahntp::graph {

/// One rating row arriving with a delta. Mirrors data::Purchase field for
/// field without depending on the data layer, so `graph` stays a leaf
/// library (the dynamic pipeline converts when it appends to its dataset).
struct RatingDelta {
  int user = 0;
  int item = 0;
  float rating = 0.0f;  // 1..5 review scale
};

/// A batched mutation against the trust graph: edges to add, edges to
/// remove, and rating rows to append. Deltas are *requests*, not ground
/// truth — adding an edge that already exists or removing one that does not
/// is ignored (and counted in the receipt), never an error, so replaying a
/// delta is idempotent. Removes are applied before adds, so a delta that
/// both removes and adds the same edge leaves it present.
struct GraphDelta {
  std::vector<Edge> add_edges;
  std::vector<Edge> remove_edges;
  std::vector<RatingDelta> add_ratings;

  bool empty() const {
    return add_edges.empty() && remove_edges.empty() && add_ratings.empty();
  }
};

/// What an Apply() actually did. The applied edge lists (not the requested
/// ones) are what the incremental layers consume: motif maintenance,
/// hypergroup diffing, and plan invalidation all key off real membership
/// changes, so an all-ignored delta costs nothing downstream.
struct DeltaReceipt {
  /// Store generation after this apply (every apply bumps it, even when
  /// every row was ignored — downstream caches key on it).
  int64_t generation = 0;

  /// Edge adds that actually inserted a new edge, in apply order
  /// (deduplicated, self-loops and already-present edges excluded).
  std::vector<Edge> applied_adds;
  /// Edge removes that actually deleted a present edge, in apply order.
  std::vector<Edge> applied_removes;

  size_t edges_added = 0;      // == applied_adds.size()
  size_t edges_removed = 0;    // == applied_removes.size()
  size_t adds_ignored = 0;     // duplicate / self-loop / already present
  size_t removes_ignored = 0;  // not present

  /// Rating rows accepted (all of them, once validated).
  size_t rating_rows = 0;

  /// Sorted, deduplicated endpoints of applied edge changes.
  std::vector<int> touched_vertices;
  /// Sorted, deduplicated users with new rating rows.
  std::vector<int> touched_rating_users;

  bool structural_change() const { return edges_added + edges_removed > 0; }
};

/// A versioned, mutable trust-graph store.
///
/// Layout is base-plus-overlay: a sorted, deduplicated base edge list (the
/// compacted CSR source) plus two sorted overlays (pending adds / pending
/// removes, always disjoint from each other and consistent with the base).
/// Membership tests merge the three in O(log E); once the overlays grow past
/// `Options::compaction_threshold` entries they are folded into the base, so
/// steady-state mutation cost is amortized O(delta) instead of O(E).
///
/// Every successful Apply() bumps the monotonic `generation()` — the value
/// serving layers feed into ScoreBackend::generation() so cached scores from
/// older graph states become unreachable. Apply() is transactional: the
/// fault site "graph.delta.apply" fires between staging and commit, and a
/// fault (or validation error) leaves the store bit-identical to its
/// pre-apply state, same generation included. One level of undo is kept:
/// RevertLast() restores both the edge state and the generation number of
/// the previous version (state is bit-identical to before the apply, so
/// reusing its generation keeps generation-keyed caches sound).
///
/// Thread safety: `generation()` is an atomic load, callable from any
/// thread (serve producers probe it on the Submit fast path). All other
/// methods must be externally serialized with Apply()/RevertLast() — the
/// serving layer guarantees this by applying deltas only on the dispatcher
/// thread, between batches.
/// Tuning knobs for MutableTrustGraph (namespace scope so the default
/// argument below can default-construct it).
struct MutableGraphOptions {
  /// Fold overlays into the base once adds+removes exceed this.
  size_t compaction_threshold = 1024;
  /// When positive, rating rows are range-checked against it.
  size_t num_items = 0;
};

class MutableTrustGraph {
 public:
  using Options = MutableGraphOptions;

  /// `initial_edges` may contain duplicates/self-loops; they are dropped
  /// exactly as Digraph::FromEdges drops them. InvalidArgument on
  /// out-of-range endpoints.
  static Result<MutableTrustGraph> Create(size_t num_nodes,
                                          const std::vector<Edge>& initial_edges,
                                          Options options = Options());

  // Movable (the atomic generation needs a hand-written transfer); not
  // copyable — a store is the single source of truth for its generation.
  MutableTrustGraph(MutableTrustGraph&& other) noexcept;
  MutableTrustGraph& operator=(MutableTrustGraph&& other) noexcept;
  MutableTrustGraph(const MutableTrustGraph&) = delete;
  MutableTrustGraph& operator=(const MutableTrustGraph&) = delete;

  /// Validates, stages, and commits `delta`. See the receipt for what was
  /// actually applied. On any error (validation or injected fault at
  /// "graph.delta.apply") the store is unchanged.
  Result<DeltaReceipt> Apply(const GraphDelta& delta);

  /// Restores the state and generation from before the most recent
  /// successful Apply(). One level deep: FailedPrecondition when there is
  /// nothing to revert (including reverting twice in a row).
  Status RevertLast();

  /// Monotonic version counter; 0 for a freshly created store.
  int64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const;
  /// Pending overlay entries (adds + removes) since the last compaction.
  size_t overlay_size() const {
    return overlay_adds_.size() + overlay_removes_.size();
  }

  bool HasEdge(int src, int dst) const;

  /// The current edge set, sorted by (src, dst) and deduplicated — the
  /// canonical order every derived structure is built from, so rebuilds
  /// depend only on the edge *set*, never on mutation history.
  const std::vector<Edge>& CanonicalEdges() const;

  /// Digraph over CanonicalEdges(), built lazily and cached per generation.
  const Digraph& View() const;

 private:
  MutableTrustGraph(size_t num_nodes, std::vector<Edge> base, Options options);

  struct Snapshot {
    std::vector<Edge> base;
    std::vector<Edge> overlay_adds;
    std::vector<Edge> overlay_removes;
    int64_t generation = 0;
  };

  void MaybeCompact();
  void InvalidateCaches();

  size_t num_nodes_ = 0;
  Options options_;
  std::vector<Edge> base_;             // sorted by (src, dst), unique
  std::vector<Edge> overlay_adds_;     // sorted, disjoint from base_
  std::vector<Edge> overlay_removes_;  // sorted, subset of base_
  std::atomic<int64_t> generation_{0};
  std::optional<Snapshot> undo_;

  // Per-generation caches, materialized on demand.
  mutable std::vector<Edge> canonical_;
  mutable bool canonical_valid_ = false;
  mutable std::unique_ptr<Digraph> view_;
  mutable bool view_valid_ = false;
};

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_DELTA_H_
