#ifndef AHNTP_GRAPH_ANALYTICS_H_
#define AHNTP_GRAPH_ANALYTICS_H_

#include <vector>

#include "graph/digraph.h"

namespace ahntp::graph {

/// Local clustering coefficient of node u over the undirected view: the
/// fraction of neighbour pairs that are themselves connected. 0 for degree
/// < 2 nodes.
double LocalClusteringCoefficient(const Digraph& graph, int u);

/// Mean local clustering coefficient over all nodes (Watts-Strogatz).
double AverageClusteringCoefficient(const Digraph& graph);

/// Weakly connected components: per-node component id (0-based, dense) in
/// discovery order.
struct ComponentResult {
  std::vector<int> component;
  size_t num_components = 0;
  size_t largest_size = 0;
};
ComponentResult ConnectedComponents(const Digraph& graph);

/// Degree distribution summary over the undirected view.
struct DegreeStats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// Gini coefficient of the degree distribution (hub concentration:
  /// 0 = egalitarian, -> 1 = a few hubs hold all edges).
  double gini = 0.0;
};
DegreeStats ComputeDegreeStats(const Digraph& graph);

/// Directed edge density |E| / (n * (n-1)).
double EdgeDensity(const Digraph& graph);

/// K-core decomposition over the undirected view: core[u] is the largest k
/// such that u belongs to a subgraph where every node has degree >= k.
/// High-core users form the densely knit "trust core" of the network.
std::vector<int> CoreNumbers(const Digraph& graph);

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_ANALYTICS_H_
