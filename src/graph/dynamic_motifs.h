#ifndef AHNTP_GRAPH_DYNAMIC_MOTIFS_H_
#define AHNTP_GRAPH_DYNAMIC_MOTIFS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/digraph.h"
#include "graph/motifs.h"
#include "tensor/csr.h"

namespace ahntp::graph {

/// Incrementally maintained motif-adjacency counts for one motif.
///
/// A directed edge change (u, v) can only create or destroy motif instances
/// on triples containing both u and v, i.e. {u, v, w} for w in the
/// undirected common neighbourhood of u and v. AddEdge/RemoveEdge classify
/// each such triple before and after the change with the same
/// ClassifyTripleEdges rule the brute-force enumerator uses and adjust the
/// six ordered pair counts, so after any mutation sequence ToCsr() is
/// bit-identical to MotifAdjacency() on the resulting graph (integer counts
/// are exact in float32; equivalence is enforced by dynamic_test's
/// full-rebuild oracle). Cost per edge change is O(|N(u) ∩ N(v)|) instead
/// of the O(E^1.5)-ish full sparse-algebra rebuild.
///
/// Copyable: the dynamic pipeline snapshots it for fault rollback.
class MotifCounts {
 public:
  /// Full build from a graph (cost of one MotifAdjacency call).
  MotifCounts(const Digraph& graph, Motif motif);

  /// Applies one directed edge insertion. No-ops (by contract of the
  /// mutable store, which only reports *applied* changes) must not be
  /// passed here: the edge must be absent before AddEdge and present
  /// before RemoveEdge, and self-loops never reach this layer.
  void AddEdge(int u, int v);
  void RemoveEdge(int u, int v);

  Motif motif() const { return motif_; }
  size_t num_nodes() const { return out_.size(); }

  /// Materializes the counts as CSR (sorted columns, zero counts dropped)
  /// — bit-identical to MotifAdjacency(adjacency, motif) of the current
  /// graph state.
  tensor::CsrMatrix ToCsr() const;

 private:
  bool HasEdge(int a, int b) const {
    return out_[a].find(b) != out_[a].end();
  }
  /// Classifies {u, v, w} with the directed flag (u, v) forced to `uv`.
  int ClassifyWith(int u, int v, int w, bool uv) const;
  /// Adjusts counts for every triple {u, v, w}: the (u, v) flag flips from
  /// `uv_before` to !uv_before while all other edges stay fixed.
  void UpdateTriples(int u, int v, bool uv_before);
  void Bump(int a, int b, int64_t amount);

  Motif motif_;
  std::vector<std::unordered_set<int>> out_;  // directed adjacency mirror
  std::vector<std::unordered_set<int>> in_;
  /// Pair counts keyed (a << 32) | b over ordered pairs; values > 0.
  std::unordered_map<uint64_t, int64_t> counts_;
};

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_DYNAMIC_MOTIFS_H_
