#include "graph/digraph.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace ahntp::graph {

Digraph::Digraph(size_t num_nodes)
    : num_nodes_(num_nodes),
      out_(num_nodes),
      in_(num_nodes),
      adjacency_(num_nodes, num_nodes) {}

Result<Digraph> Digraph::FromEdges(size_t num_nodes,
                                   const std::vector<Edge>& edges) {
  Digraph g(num_nodes);
  std::set<std::pair<int, int>> seen;
  std::vector<tensor::Triplet> triplets;
  for (const Edge& e : edges) {
    if (e.src < 0 || e.dst < 0 ||
        static_cast<size_t>(e.src) >= num_nodes ||
        static_cast<size_t>(e.dst) >= num_nodes) {
      return Status::InvalidArgument(
          StrFormat("edge (%d,%d) out of range for %zu nodes", e.src, e.dst,
                    num_nodes));
    }
    if (e.src == e.dst) continue;  // self-loops carry no trust signal
    if (!seen.insert({e.src, e.dst}).second) continue;
    g.edges_.push_back(e);
    g.out_[static_cast<size_t>(e.src)].push_back(e.dst);
    g.in_[static_cast<size_t>(e.dst)].push_back(e.src);
    triplets.push_back({e.src, e.dst, 1.0f});
  }
  for (auto& nbrs : g.out_) std::sort(nbrs.begin(), nbrs.end());
  for (auto& nbrs : g.in_) std::sort(nbrs.begin(), nbrs.end());
  g.adjacency_ =
      tensor::CsrMatrix::FromTriplets(num_nodes, num_nodes, std::move(triplets));
  return g;
}

bool Digraph::HasEdge(int src, int dst) const {
  if (src < 0 || static_cast<size_t>(src) >= num_nodes_) return false;
  const auto& nbrs = out_[static_cast<size_t>(src)];
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

const std::vector<int>& Digraph::OutNeighbors(int u) const {
  AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < num_nodes_);
  return out_[static_cast<size_t>(u)];
}

const std::vector<int>& Digraph::InNeighbors(int u) const {
  AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < num_nodes_);
  return in_[static_cast<size_t>(u)];
}

std::vector<int> Digraph::NeighborhoodBall(int u, int hops) const {
  AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < num_nodes_);
  AHNTP_CHECK_GE(hops, 0);
  std::vector<int> distance(num_nodes_, -1);
  std::queue<int> frontier;
  distance[static_cast<size_t>(u)] = 0;
  frontier.push(u);
  std::vector<int> ball;
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    int d = distance[static_cast<size_t>(v)];
    if (d >= hops) continue;
    auto visit = [&](int w) {
      if (distance[static_cast<size_t>(w)] == -1) {
        distance[static_cast<size_t>(w)] = d + 1;
        ball.push_back(w);
        frontier.push(w);
      }
    };
    for (int w : out_[static_cast<size_t>(v)]) visit(w);
    for (int w : in_[static_cast<size_t>(v)]) visit(w);
  }
  return ball;
}

double Digraph::Reciprocity() const {
  if (edges_.empty()) return 0.0;
  size_t reciprocal = 0;
  for (const Edge& e : edges_) {
    if (HasEdge(e.dst, e.src)) ++reciprocal;
  }
  return static_cast<double>(reciprocal) / static_cast<double>(edges_.size());
}

std::vector<int> Digraph::UndirectedNeighbors(int u) const {
  std::vector<int> merged = OutNeighbors(u);
  const auto& in = InNeighbors(u);
  merged.insert(merged.end(), in.begin(), in.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace ahntp::graph
