#include "graph/pagerank.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace ahntp::graph {

using tensor::CsrMatrix;

namespace {

/// One PageRank power iteration loop over a column-stochastic operator
/// expressed as the row-normalized transpose (so we can use row-major SpMV):
/// s_new = d * (P s) + (1-d)/n, with dangling mass redistributed uniformly.
std::vector<double> PowerIterate(const CsrMatrix& row_normalized_transpose,
                                 const std::vector<bool>& dangling,
                                 const PageRankOptions& options,
                                 const std::vector<double>* init = nullptr,
                                 int* iterations_out = nullptr) {
  const size_t n = row_normalized_transpose.rows();
  AHNTP_CHECK_GT(n, 0u);
  const double d = options.damping;
  AHNTP_CHECK(d > 0.0 && d < 1.0);
  std::vector<double> s;
  if (init != nullptr && init->size() == n) {
    s = *init;
  } else {
    s.assign(n, 1.0 / static_cast<double>(n));
  }
  std::vector<float> s_f(n);
  int iterations_used = 0;
  // Fixed reduction grain: chunk boundaries (and therefore double-sum
  // association order) stay identical at every thread count.
  constexpr size_t kGrain = size_t{1} << 14;
  const auto sum_doubles = [](double x, double y) { return x + y; };
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    AHNTP_METRIC_COUNT("graph.pagerank.iterations", 1);
    ++iterations_used;
    ParallelFor(0, n, kGrain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) s_f[i] = static_cast<float>(s[i]);
    });
    // Dangling columns contribute their mass uniformly.
    double dangling_mass = ParallelReduce<double>(
        0, n, kGrain, 0.0,
        [&](size_t lo, size_t hi) {
          double partial = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            if (dangling[i]) partial += s[i];
          }
          return partial;
        },
        sum_doubles);
    std::vector<float> propagated = tensor::SpMV(row_normalized_transpose, s_f);
    double base = (1.0 - d) / static_cast<double>(n) +
                  d * dangling_mass / static_cast<double>(n);
    double delta = ParallelReduce<double>(
        0, n, kGrain, 0.0,
        [&](size_t lo, size_t hi) {
          double partial = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            double next = d * static_cast<double>(propagated[i]) + base;
            partial += std::fabs(next - s[i]);
            s[i] = next;
          }
          return partial;
        },
        sum_doubles);
    if (delta < options.tolerance) break;
  }
  // Normalize away accumulated float round-off.
  double total = 0.0;
  for (double v : s) total += v;
  if (total > 0.0) {
    for (double& v : s) v /= total;
  }
  if (iterations_out != nullptr) *iterations_out = iterations_used;
  return s;
}

/// Builds the row-normalized transpose of `adjacency` (each source node's
/// outgoing weight normalized to 1, laid out by destination for SpMV) and
/// the dangling-node indicator.
struct Transition {
  CsrMatrix operator_matrix;
  std::vector<bool> dangling;
};

Transition BuildTransition(const CsrMatrix& adjacency) {
  AHNTP_CHECK_EQ(adjacency.rows(), adjacency.cols());
  CsrMatrix row_normalized = adjacency.RowNormalized();
  std::vector<float> row_sums = adjacency.RowSums();
  std::vector<bool> dangling(adjacency.rows());
  for (size_t i = 0; i < adjacency.rows(); ++i) {
    dangling[i] = row_sums[i] == 0.0f;
  }
  return {row_normalized.Transposed(), std::move(dangling)};
}

}  // namespace

std::vector<double> PageRank(const CsrMatrix& adjacency,
                             const PageRankOptions& options) {
  trace::TraceSpan span("graph.pagerank");
  AHNTP_METRIC_COUNT("graph.pagerank.calls", 1);
  Transition t = BuildTransition(adjacency);
  return PowerIterate(t.operator_matrix, t.dangling, options);
}

std::vector<double> PageRankWarm(const CsrMatrix& adjacency,
                                 const PageRankOptions& options,
                                 const std::vector<double>* warm_start,
                                 PageRankStats* stats) {
  trace::TraceSpan span("graph.pagerank");
  AHNTP_METRIC_COUNT("graph.pagerank.calls", 1);
  Transition t = BuildTransition(adjacency);
  int iterations = 0;
  std::vector<double> s = PowerIterate(t.operator_matrix, t.dangling, options,
                                       warm_start, &iterations);
  if (stats != nullptr) stats->iterations = iterations;
  return s;
}

MotifPageRankResult MotifPageRank(const CsrMatrix& adjacency,
                                  const MotifPageRankOptions& options) {
  return MotifPageRankFrom(adjacency, MotifAdjacency(adjacency, options.motif),
                           options);
}

MotifPageRankResult MotifPageRankFrom(const CsrMatrix& adjacency,
                                      CsrMatrix motif_adjacency,
                                      const MotifPageRankOptions& options,
                                      const std::vector<double>* warm_start,
                                      PageRankStats* stats) {
  trace::TraceSpan span("graph.motif_pagerank");
  AHNTP_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0);
  MotifPageRankResult result;
  result.motif_adjacency = std::move(motif_adjacency);
  // W_c = alpha * R_U + (1 - alpha) * A^{M_k}   (Eq. 4)
  CsrMatrix weighted_pairwise =
      adjacency.Binarized().Scaled(static_cast<float>(options.alpha));
  CsrMatrix weighted_motif =
      result.motif_adjacency.Scaled(static_cast<float>(1.0 - options.alpha));
  result.combined_weights =
      tensor::SparseAdd(weighted_pairwise, weighted_motif).Pruned();
  result.scores =
      PageRankWarm(result.combined_weights, options.pagerank, warm_start, stats);
  return result;
}

}  // namespace ahntp::graph
