#include "graph/pagerank.h"

#include <cmath>

#include "common/check.h"

namespace ahntp::graph {

using tensor::CsrMatrix;

namespace {

/// One PageRank power iteration loop over a column-stochastic operator
/// expressed as the row-normalized transpose (so we can use row-major SpMV):
/// s_new = d * (P s) + (1-d)/n, with dangling mass redistributed uniformly.
std::vector<double> PowerIterate(const CsrMatrix& row_normalized_transpose,
                                 const std::vector<bool>& dangling,
                                 const PageRankOptions& options) {
  const size_t n = row_normalized_transpose.rows();
  AHNTP_CHECK_GT(n, 0u);
  const double d = options.damping;
  AHNTP_CHECK(d > 0.0 && d < 1.0);
  std::vector<double> s(n, 1.0 / static_cast<double>(n));
  std::vector<float> s_f(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) s_f[i] = static_cast<float>(s[i]);
    // Dangling columns contribute their mass uniformly.
    double dangling_mass = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (dangling[i]) dangling_mass += s[i];
    }
    std::vector<float> propagated = tensor::SpMV(row_normalized_transpose, s_f);
    double base = (1.0 - d) / static_cast<double>(n) +
                  d * dangling_mass / static_cast<double>(n);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double next = d * static_cast<double>(propagated[i]) + base;
      delta += std::fabs(next - s[i]);
      s[i] = next;
    }
    if (delta < options.tolerance) break;
  }
  // Normalize away accumulated float round-off.
  double total = 0.0;
  for (double v : s) total += v;
  if (total > 0.0) {
    for (double& v : s) v /= total;
  }
  return s;
}

/// Builds the row-normalized transpose of `adjacency` (each source node's
/// outgoing weight normalized to 1, laid out by destination for SpMV) and
/// the dangling-node indicator.
struct Transition {
  CsrMatrix operator_matrix;
  std::vector<bool> dangling;
};

Transition BuildTransition(const CsrMatrix& adjacency) {
  AHNTP_CHECK_EQ(adjacency.rows(), adjacency.cols());
  CsrMatrix row_normalized = adjacency.RowNormalized();
  std::vector<float> row_sums = adjacency.RowSums();
  std::vector<bool> dangling(adjacency.rows());
  for (size_t i = 0; i < adjacency.rows(); ++i) {
    dangling[i] = row_sums[i] == 0.0f;
  }
  return {row_normalized.Transposed(), std::move(dangling)};
}

}  // namespace

std::vector<double> PageRank(const CsrMatrix& adjacency,
                             const PageRankOptions& options) {
  Transition t = BuildTransition(adjacency);
  return PowerIterate(t.operator_matrix, t.dangling, options);
}

MotifPageRankResult MotifPageRank(const CsrMatrix& adjacency,
                                  const MotifPageRankOptions& options) {
  AHNTP_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0);
  MotifPageRankResult result;
  result.motif_adjacency = MotifAdjacency(adjacency, options.motif);
  // W_c = alpha * R_U + (1 - alpha) * A^{M_k}   (Eq. 4)
  CsrMatrix weighted_pairwise =
      adjacency.Binarized().Scaled(static_cast<float>(options.alpha));
  CsrMatrix weighted_motif =
      result.motif_adjacency.Scaled(static_cast<float>(1.0 - options.alpha));
  result.combined_weights =
      tensor::SparseAdd(weighted_pairwise, weighted_motif).Pruned();
  result.scores = PageRank(result.combined_weights, options.pagerank);
  return result;
}

}  // namespace ahntp::graph
