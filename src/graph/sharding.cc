#include "graph/sharding.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ahntp::graph {

namespace {

/// splitmix64 finalizer — the same mixing the Rng seeds with; good avalanche
/// so hashed shards are balanced even for adversarial id layouts.
uint64_t HashUser(uint64_t u) {
  uint64_t z = u + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Result<UserSharding> UserSharding::Create(size_t num_users,
                                          const ShardingOptions& options) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument(
        StrFormat("num_shards must be positive, got %d", options.num_shards));
  }
  if (num_users == 0) {
    return Status::InvalidArgument("cannot shard zero users");
  }
  if (static_cast<size_t>(options.num_shards) > num_users) {
    return Status::InvalidArgument(
        StrFormat("num_shards=%d exceeds num_users=%zu (empty shards)",
                  options.num_shards, num_users));
  }
  UserSharding sharding;
  sharding.options_ = options;
  sharding.num_users_ = num_users;
  sharding.shard_of_.resize(num_users);
  sharding.users_.resize(static_cast<size_t>(options.num_shards));
  const size_t k = static_cast<size_t>(options.num_shards);
  if (options.mode == ShardingMode::kContiguous) {
    // Balanced ranges: the first (num_users % k) shards own one extra user.
    const size_t base = num_users / k;
    const size_t extra = num_users % k;
    size_t begin = 0;
    for (size_t s = 0; s < k; ++s) {
      size_t size = base + (s < extra ? 1 : 0);
      for (size_t u = begin; u < begin + size; ++u) {
        sharding.shard_of_[u] = static_cast<int>(s);
        sharding.users_[s].push_back(static_cast<int>(u));
      }
      begin += size;
    }
  } else {
    for (size_t u = 0; u < num_users; ++u) {
      int s = static_cast<int>(HashUser(u) % k);
      sharding.shard_of_[u] = s;
      sharding.users_[static_cast<size_t>(s)].push_back(static_cast<int>(u));
    }
    // Hashing can leave a shard empty at small N; that breaks the "every
    // shard owns someone" invariant the subgraph builders rely on.
    for (size_t s = 0; s < k; ++s) {
      if (sharding.users_[s].empty()) {
        return Status::InvalidArgument(
            StrFormat("hashed sharding left shard %zu empty for "
                      "num_users=%zu, num_shards=%zu — use fewer shards",
                      s, num_users, k));
      }
    }
  }
  return sharding;
}

int UserSharding::ShardOf(int user) const {
  AHNTP_CHECK(user >= 0 && static_cast<size_t>(user) < num_users_);
  return shard_of_[static_cast<size_t>(user)];
}

const std::vector<int>& UserSharding::UsersOf(int shard) const {
  AHNTP_CHECK(shard >= 0 && shard < num_shards());
  return users_[static_cast<size_t>(shard)];
}

int ShardSubgraph::LocalId(int global) const {
  auto it = std::lower_bound(local_to_global.begin(), local_to_global.end(),
                             global);
  if (it == local_to_global.end() || *it != global) return -1;
  return static_cast<int>(it - local_to_global.begin());
}

Result<ShardSubgraph> BuildShardSubgraph(const Digraph& graph,
                                         const UserSharding& sharding,
                                         int shard, int halo_hops) {
  trace::TraceSpan span("graph.shard.build_subgraph");
  if (shard < 0 || shard >= sharding.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding.num_shards()));
  }
  if (graph.num_nodes() != sharding.num_users()) {
    return Status::InvalidArgument(
        StrFormat("graph has %zu nodes but sharding covers %zu users",
                  graph.num_nodes(), sharding.num_users()));
  }
  if (halo_hops < 0) {
    return Status::InvalidArgument("halo_hops must be non-negative");
  }

  ShardSubgraph sub;
  sub.shard = shard;
  const std::vector<int>& owned = sharding.UsersOf(shard);
  sub.num_owned = owned.size();

  // Vertex set: owned plus everything within halo_hops undirected hops.
  std::vector<uint8_t> in_set(graph.num_nodes(), 0);
  std::vector<int> frontier = owned;
  for (int u : owned) in_set[static_cast<size_t>(u)] = 1;
  for (int hop = 0; hop < halo_hops; ++hop) {
    std::vector<int> next;
    for (int u : frontier) {
      auto visit = [&](int v) {
        if (!in_set[static_cast<size_t>(v)]) {
          in_set[static_cast<size_t>(v)] = 1;
          next.push_back(v);
        }
      };
      for (int v : graph.OutNeighbors(u)) visit(v);
      for (int v : graph.InNeighbors(u)) visit(v);
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    if (in_set[u]) sub.local_to_global.push_back(static_cast<int>(u));
  }
  sub.is_owned.assign(sub.local_to_global.size(), 0);
  for (size_t l = 0; l < sub.local_to_global.size(); ++l) {
    if (sharding.ShardOf(sub.local_to_global[l]) == shard) {
      sub.is_owned[l] = 1;
    }
  }

  // Compact local-id lookup (dense; freed with the function).
  std::vector<int> global_to_local(graph.num_nodes(), -1);
  for (size_t l = 0; l < sub.local_to_global.size(); ++l) {
    global_to_local[static_cast<size_t>(sub.local_to_global[l])] =
        static_cast<int>(l);
  }

  // Induced edges, in global edge order — the merge keys downstream.
  std::vector<Edge> local_edges;
  const std::vector<Edge>& edges = graph.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    int ls = global_to_local[static_cast<size_t>(e.src)];
    int ld = global_to_local[static_cast<size_t>(e.dst)];
    if (ls < 0 || ld < 0) continue;
    local_edges.push_back({ls, ld});
    sub.global_edge_index.push_back(static_cast<int64_t>(i));
  }
  auto built = Digraph::FromEdges(sub.local_to_global.size(), local_edges);
  AHNTP_CHECK_OK(built.status());
  sub.graph = std::move(built).value();
  // The global graph is already deduplicated and self-loop-free, so
  // FromEdges drops nothing and global_edge_index stays aligned.
  AHNTP_CHECK_EQ(sub.graph.num_edges(), sub.global_edge_index.size());

  AHNTP_METRIC_COUNT("graph.shard.subgraphs_built", 1);
  AHNTP_METRIC_COUNT(
      "graph.shard.halo_vertices",
      static_cast<int64_t>(sub.local_to_global.size() - sub.num_owned));
  return sub;
}

namespace {

/// Assembles a global (n x n) CSR from per-shard matrices by taking, for
/// each global row, the owning shard's local row with columns remapped to
/// global ids. Monotone local ids keep remapped columns ascending, so the
/// rows drop straight into CSR canonical form.
tensor::CsrMatrix AssembleOwnedRows(
    const UserSharding& sharding, const std::vector<ShardSubgraph>& subs,
    const std::vector<tensor::CsrMatrix>& locals) {
  const size_t n = sharding.num_users();
  std::vector<std::vector<int>> row_cols(n);
  std::vector<std::vector<float>> row_vals(n);
  for (size_t r = 0; r < n; ++r) {
    int s = sharding.ShardOf(static_cast<int>(r));
    const ShardSubgraph& sub = subs[static_cast<size_t>(s)];
    const tensor::CsrMatrix& local = locals[static_cast<size_t>(s)];
    int lr = sub.LocalId(static_cast<int>(r));
    AHNTP_CHECK_GE(lr, 0);
    const auto& row_ptr = local.row_ptr();
    const auto& col_idx = local.col_idx();
    const auto& values = local.values();
    for (int p = row_ptr[static_cast<size_t>(lr)];
         p < row_ptr[static_cast<size_t>(lr) + 1]; ++p) {
      row_cols[r].push_back(sub.GlobalId(col_idx[static_cast<size_t>(p)]));
      row_vals[r].push_back(values[static_cast<size_t>(p)]);
    }
  }
  return tensor::CsrMatrix::FromSortedRows(n, n, row_cols, row_vals);
}

std::vector<ShardSubgraph> BuildAllSubgraphs(const Digraph& graph,
                                             const UserSharding& sharding,
                                             int halo_hops) {
  std::vector<ShardSubgraph> subs;
  subs.reserve(static_cast<size_t>(sharding.num_shards()));
  for (int s = 0; s < sharding.num_shards(); ++s) {
    auto sub = BuildShardSubgraph(graph, sharding, s, halo_hops);
    AHNTP_CHECK_OK(sub.status());
    subs.push_back(std::move(sub).value());
  }
  return subs;
}

}  // namespace

tensor::CsrMatrix ShardedAdjacency(const Digraph& graph,
                                   const UserSharding& sharding) {
  trace::TraceSpan span("graph.shard.adjacency");
  std::vector<ShardSubgraph> subs = BuildAllSubgraphs(graph, sharding, 1);
  std::vector<tensor::CsrMatrix> locals;
  locals.reserve(subs.size());
  for (const ShardSubgraph& sub : subs) {
    locals.push_back(sub.graph.Adjacency());
  }
  return AssembleOwnedRows(sharding, subs, locals);
}

tensor::CsrMatrix ShardedMotifAdjacency(const Digraph& graph,
                                        const UserSharding& sharding,
                                        Motif motif) {
  trace::TraceSpan span("graph.shard.motif_adjacency");
  // 1-hop halo with closure edges is exact for triangle motifs (see header).
  std::vector<ShardSubgraph> subs = BuildAllSubgraphs(graph, sharding, 1);
  std::vector<tensor::CsrMatrix> locals;
  locals.reserve(subs.size());
  for (const ShardSubgraph& sub : subs) {
    locals.push_back(MotifAdjacency(sub.graph.Adjacency(), motif));
  }
  return AssembleOwnedRows(sharding, subs, locals);
}

std::vector<double> ShardedPageRank(const Digraph& graph,
                                    const UserSharding& sharding,
                                    const PageRankOptions& options) {
  trace::TraceSpan span("graph.shard.pagerank");
  // The iteration is a global fixed point; what shards contribute is the
  // operator itself. The assembled adjacency is bitwise the monolithic one,
  // so the (deterministically chunked) iteration is too.
  return PageRank(ShardedAdjacency(graph, sharding), options);
}

MotifPageRankResult ShardedMotifPageRank(const Digraph& graph,
                                         const UserSharding& sharding,
                                         const MotifPageRankOptions& options) {
  trace::TraceSpan span("graph.shard.motif_pagerank");
  AHNTP_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0);
  MotifPageRankResult result;
  result.motif_adjacency = ShardedMotifAdjacency(graph, sharding, options.motif);
  tensor::CsrMatrix adjacency = ShardedAdjacency(graph, sharding);
  // From here on, the exact expression MotifPageRank evaluates (Eq. 4-5),
  // over bitwise-identical inputs.
  tensor::CsrMatrix weighted_pairwise =
      adjacency.Binarized().Scaled(static_cast<float>(options.alpha));
  tensor::CsrMatrix weighted_motif =
      result.motif_adjacency.Scaled(static_cast<float>(1.0 - options.alpha));
  result.combined_weights =
      tensor::SparseAdd(weighted_pairwise, weighted_motif).Pruned();
  result.scores = PageRank(result.combined_weights, options.pagerank);
  return result;
}

}  // namespace ahntp::graph
