#ifndef AHNTP_GRAPH_MOTIFS_H_
#define AHNTP_GRAPH_MOTIFS_H_

#include <array>
#include <vector>

#include "graph/digraph.h"
#include "tensor/csr.h"

namespace ahntp::graph {

/// The seven classical directed triangle motifs of Fig. 4 (Benson et al.;
/// adopted by the paper's Motif-based PageRank, Table II).
enum class Motif {
  kM1 = 1,  // cyclic triangle of one-way edges
  kM2,      // one bidirectional edge + cyclic one-way edges
  kM3,      // two bidirectional edges
  kM4,      // all three edges bidirectional
  kM5,      // feed-forward-ish all one-way, acyclic
  kM6,      // one node bidirectionally tied to both ends of a one-way edge
  kM7,      // mirror of M6
};

/// Splits R_U into the bidirectional part BC = R ⊙ R^T and the
/// unidirectional part UC = R - BC (both binary).
struct DirectionalSplit {
  tensor::CsrMatrix bidirectional;   // BC
  tensor::CsrMatrix unidirectional;  // UC
};
DirectionalSplit SplitDirections(const tensor::CsrMatrix& adjacency);

/// Motif-induced adjacency A^{M_k} per Table II: A[i][j] counts the
/// instances of motif k that contain both i and j (symmetric, zero diagonal
/// contributions from the formulas themselves).
tensor::CsrMatrix MotifAdjacency(const tensor::CsrMatrix& adjacency,
                                 Motif motif);

/// All seven motif adjacencies, index 0 -> M1 ... 6 -> M7.
std::array<tensor::CsrMatrix, 7> AllMotifAdjacencies(
    const tensor::CsrMatrix& adjacency);

/// Reference implementation by brute-force triple enumeration (O(n^3));
/// used to validate the sparse algebra on small graphs.
tensor::CsrMatrix MotifAdjacencyByEnumeration(const Digraph& graph,
                                              Motif motif);

/// Total number of instances of `motif` in the graph (each instance counted
/// once). Derived from the motif adjacency: every triangle instance
/// contributes to exactly 3 unordered node pairs.
int64_t CountMotifInstances(const tensor::CsrMatrix& motif_adjacency);

/// Classifies a triple {a, b, c} from its six directed edge indicators
/// (ab = edge a->b exists, etc.) into a motif id 1..7, or 0 when some pair
/// is unconnected. This is the single classification rule shared by the
/// brute-force enumerator and the incremental maintenance path
/// (graph/dynamic_motifs.h), so the two can never drift.
int ClassifyTripleEdges(bool ab, bool ba, bool bc, bool cb, bool ac, bool ca);

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_MOTIFS_H_
