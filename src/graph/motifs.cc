#include "graph/motifs.h"

#include "common/check.h"
#include "common/parallel.h"

namespace ahntp::graph {

using tensor::CsrMatrix;
using tensor::SparseAdd;
using tensor::SparseHadamard;
using tensor::SparseSub;
using tensor::SpGemm;

DirectionalSplit SplitDirections(const CsrMatrix& adjacency) {
  AHNTP_CHECK_EQ(adjacency.rows(), adjacency.cols());
  CsrMatrix binary = adjacency.Binarized();
  CsrMatrix bc = SparseHadamard(binary, binary.Transposed());
  CsrMatrix uc = SparseSub(binary, bc).Pruned();
  return {std::move(bc), std::move(uc)};
}

CsrMatrix MotifAdjacency(const CsrMatrix& adjacency, Motif motif) {
  DirectionalSplit split = SplitDirections(adjacency);
  const CsrMatrix& b = split.bidirectional;
  const CsrMatrix& u = split.unidirectional;
  CsrMatrix ut = u.Transposed();
  CsrMatrix c;
  bool symmetrize = false;
  switch (motif) {
    case Motif::kM1:
      c = SparseHadamard(SpGemm(u, u), ut);
      symmetrize = true;
      break;
    case Motif::kM2:
      c = SparseAdd(SparseAdd(SparseHadamard(SpGemm(b, u), ut),
                              SparseHadamard(SpGemm(u, b), ut)),
                    SparseHadamard(SpGemm(u, u), b));
      symmetrize = true;
      break;
    case Motif::kM3:
      c = SparseAdd(SparseAdd(SparseHadamard(SpGemm(b, b), u),
                              SparseHadamard(SpGemm(b, u), b)),
                    SparseHadamard(SpGemm(u, b), b));
      symmetrize = true;
      break;
    case Motif::kM4:
      c = SparseHadamard(SpGemm(b, b), b);
      break;
    case Motif::kM5:
      c = SparseAdd(SparseAdd(SparseHadamard(SpGemm(u, u), u),
                              SparseHadamard(SpGemm(u, ut), u)),
                    SparseHadamard(SpGemm(ut, u), u));
      symmetrize = true;
      break;
    case Motif::kM6:
      c = SparseAdd(SparseAdd(SparseHadamard(SpGemm(u, b), u),
                              SparseHadamard(SpGemm(b, ut), ut)),
                    SparseHadamard(SpGemm(ut, u), b));
      break;
    case Motif::kM7:
      c = SparseAdd(SparseAdd(SparseHadamard(SpGemm(ut, b), ut),
                              SparseHadamard(SpGemm(b, u), u)),
                    SparseHadamard(SpGemm(u, ut), b));
      break;
  }
  if (symmetrize) c = SparseAdd(c, c.Transposed());
  return c;
}

std::array<CsrMatrix, 7> AllMotifAdjacencies(const CsrMatrix& adjacency) {
  std::array<CsrMatrix, 7> out;
  // The seven motif matrices are independent; fan them out one per task
  // (grain 1). Each slot is written by exactly one task.
  ParallelFor(0, 7, 1, [&](size_t k0, size_t k1) {
    for (size_t k = k0; k < k1; ++k) {
      out[k] = MotifAdjacency(adjacency, static_cast<Motif>(k + 1));
    }
  });
  return out;
}

int ClassifyTripleEdges(bool ab, bool ba, bool bc, bool cb, bool ac, bool ca) {
  if (!(ab || ba) || !(bc || cb) || !(ac || ca)) return 0;
  const bool bidir_ab = ab && ba;
  const bool bidir_bc = bc && cb;
  const bool bidir_ac = ac && ca;
  int num_bidir =
      (bidir_ab ? 1 : 0) + (bidir_bc ? 1 : 0) + (bidir_ac ? 1 : 0);
  if (num_bidir == 3) return 4;
  if (num_bidir == 2) return 3;
  if (num_bidir == 1) {
    // With the reciprocated pair (x, y) and the apex z, the apex's edges
    // decide: both toward the pair -> M6, both away -> M7, mixed -> M2.
    bool z_to_x, z_to_y;
    if (bidir_ab) {
      z_to_x = ca;  // c -> a
      z_to_y = cb;  // c -> b
    } else if (bidir_bc) {
      z_to_x = ab;  // a -> b
      z_to_y = ac;  // a -> c
    } else {
      z_to_x = ba;  // b -> a
      z_to_y = bc;  // b -> c
    }
    if (z_to_x && z_to_y) return 6;
    if (!z_to_x && !z_to_y) return 7;
    return 2;
  }
  // All three pairs unidirectional: cycle -> M1, otherwise feed-forward M5.
  bool cycle_fwd = ab && bc && ca;
  bool cycle_bwd = ba && cb && ac;
  return (cycle_fwd || cycle_bwd) ? 1 : 5;
}

namespace {

/// Classifies the induced subgraph of a fully-connected triple {a, b, c}
/// into its motif type; returns 0 when some pair is unconnected.
int ClassifyTriple(const Digraph& g, int a, int b, int c) {
  return ClassifyTripleEdges(g.HasEdge(a, b), g.HasEdge(b, a),
                             g.HasEdge(b, c), g.HasEdge(c, b),
                             g.HasEdge(a, c), g.HasEdge(c, a));
}

}  // namespace

CsrMatrix MotifAdjacencyByEnumeration(const Digraph& graph, Motif motif) {
  const int n = static_cast<int>(graph.num_nodes());
  const int want = static_cast<int>(motif);
  // Parallel over the outer node: chunk c collects its triplets privately
  // and the chunks are spliced in ascending order afterwards, reproducing
  // the exact serial triplet sequence.
  const size_t num_a = n < 0 ? 0 : static_cast<size_t>(n);
  const size_t grain = GrainForCost(num_a * num_a / 2 + 1);
  std::vector<tensor::Triplet> triplets = ParallelReduce<
      std::vector<tensor::Triplet>>(
      0, num_a, grain, {},
      [&](size_t a0, size_t a1) {
        std::vector<tensor::Triplet> local;
        for (int a = static_cast<int>(a0); a < static_cast<int>(a1); ++a) {
          for (int b = a + 1; b < n; ++b) {
            for (int c = b + 1; c < n; ++c) {
              if (ClassifyTriple(graph, a, b, c) != want) continue;
              const int nodes[3] = {a, b, c};
              for (int i = 0; i < 3; ++i) {
                for (int j = 0; j < 3; ++j) {
                  if (i != j) local.push_back({nodes[i], nodes[j], 1.0f});
                }
              }
            }
          }
        }
        return local;
      },
      [](std::vector<tensor::Triplet> acc,
         const std::vector<tensor::Triplet>& local) {
        acc.insert(acc.end(), local.begin(), local.end());
        return acc;
      });
  return CsrMatrix::FromTriplets(graph.num_nodes(), graph.num_nodes(),
                                 std::move(triplets));
}

int64_t CountMotifInstances(const CsrMatrix& motif_adjacency) {
  // Each triangle instance contributes 1 to all 6 ordered node pairs.
  float total = motif_adjacency.Sum();
  return static_cast<int64_t>(total / 6.0f + 0.5f);
}

}  // namespace ahntp::graph
