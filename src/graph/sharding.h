#ifndef AHNTP_GRAPH_SHARDING_H_
#define AHNTP_GRAPH_SHARDING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "graph/pagerank.h"

namespace ahntp::graph {

// ---------------------------------------------------------------------------
// The shard abstraction behind the out-of-core path (DESIGN.md §14): users
// are partitioned deterministically into K shards, each shard materializes a
// local subgraph of its owned users plus a halo of ghost vertices wide
// enough that every boundary computation (motif counts, r-hop balls,
// influence rankings) is *exact*, and the per-shard results merge back into
// structures bit-identical to the monolithic build. K=1 therefore recovers
// today's path exactly and serves as the parity oracle.
// ---------------------------------------------------------------------------

/// How users map to shards.
enum class ShardingMode {
  /// Shard s owns a contiguous id range; ranges differ by at most one user.
  kContiguous,
  /// Shard of u = splitmix64(u) % K: decorrelates shard membership from the
  /// generator's community/id structure (communities are id-clustered only
  /// by accident of generation order, but adversarial id layouts exist).
  kHashed,
};

struct ShardingOptions {
  int num_shards = 1;
  ShardingMode mode = ShardingMode::kContiguous;
};

/// Deterministic user -> shard partition. Immutable once created; every
/// consumer (generator edge routing, subgraph builders, the sharded
/// inference plan) derives its layout from the same instance, so shard ids
/// mean the same thing at every layer.
class UserSharding {
 public:
  /// Rejects non-positive shard counts, zero users, and K > N (which would
  /// manufacture empty shards) with InvalidArgument — degenerate requests
  /// are caller bugs worth surfacing, not silently clamping.
  static Result<UserSharding> Create(size_t num_users,
                                     const ShardingOptions& options);

  int num_shards() const { return options_.num_shards; }
  size_t num_users() const { return num_users_; }
  ShardingMode mode() const { return options_.mode; }

  /// Shard owning `user`. Precondition: user in [0, num_users).
  int ShardOf(int user) const;

  /// Owned users of `shard`, ascending. Precondition: shard in [0, K).
  const std::vector<int>& UsersOf(int shard) const;

 private:
  ShardingOptions options_;
  size_t num_users_ = 0;
  std::vector<int> shard_of_;            // per user
  std::vector<std::vector<int>> users_;  // per shard, ascending
};

/// One shard's materialized subgraph: the owned users plus every vertex
/// within `halo_hops` undirected hops of them (the halo / ghost vertices),
/// with *all* edges of the global graph whose two endpoints both fall in
/// that vertex set (halo-closure edges included — the exactness argument of
/// DESIGN.md §14 needs edges between two halo vertices).
///
/// Local ids are assigned in ascending global-id order, so sorted local
/// neighbor lists correspond position-by-position to sorted global neighbor
/// lists and every order-sensitive traversal (BFS balls, influence ties,
/// CSR column order) is reproduced exactly.
struct ShardSubgraph {
  int shard = 0;
  size_t num_owned = 0;
  /// Ascending; owned and halo vertices interleaved in global-id order.
  std::vector<int> local_to_global;
  /// Parallel to local_to_global: 1 = owned by `shard`, 0 = halo ghost.
  std::vector<uint8_t> is_owned;
  /// The induced local graph. Edge order follows the global graph's edge
  /// order (restricted to surviving edges).
  Digraph graph;
  /// Per local edge, its index in the global graph's edges() — the key the
  /// hypergroup merge uses to reproduce monolithic first-appearance order.
  std::vector<int64_t> global_edge_index;

  int GlobalId(int local) const { return local_to_global[static_cast<size_t>(local)]; }
  /// Local id of a global vertex, or -1 when outside owned ∪ halo.
  int LocalId(int global) const;
};

/// Builds shard `shard`'s subgraph. The graph must cover exactly
/// sharding.num_users() vertices; halo_hops >= 0 (0 = owned users only, no
/// boundary exactness). Returns InvalidArgument on a bad shard index or a
/// vertex-count mismatch.
Result<ShardSubgraph> BuildShardSubgraph(const Digraph& graph,
                                         const UserSharding& sharding,
                                         int shard, int halo_hops = 1);

// ---------------------------------------------------------------------------
// Sharded analytics. Each runs the per-shard computation on every shard's
// subgraph (built with the minimal exact halo) and assembles the owned rows
// into the global structure. All are bit-identical to their monolithic
// counterparts at any (num_shards, thread-count) combination; motif counts
// are small integers, so even float accumulation is order-independent.
// ---------------------------------------------------------------------------

/// Per-shard reassembly of the global adjacency; bitwise equal to
/// graph.Adjacency().
tensor::CsrMatrix ShardedAdjacency(const Digraph& graph,
                                   const UserSharding& sharding);

/// Motif adjacency computed per shard on 1-hop-halo subgraphs; bitwise equal
/// to MotifAdjacency(graph.Adjacency(), motif). Exact because every motif
/// formula is Hadamard-masked by the (split) adjacency: a masked entry
/// (i, j) only sums over common neighbours k of i and j, and for owned i
/// all such k — and the k↔j closure edges — lie inside the 1-hop halo.
tensor::CsrMatrix ShardedMotifAdjacency(const Digraph& graph,
                                        const UserSharding& sharding,
                                        Motif motif);

/// PageRank over the shard-assembled adjacency; bitwise equal to
/// PageRank(graph.Adjacency(), options).
std::vector<double> ShardedPageRank(const Digraph& graph,
                                    const UserSharding& sharding,
                                    const PageRankOptions& options = {});

/// Motif-based PageRank from shard-assembled ingredients; every field is
/// bitwise equal to MotifPageRank(graph.Adjacency(), options).
MotifPageRankResult ShardedMotifPageRank(
    const Digraph& graph, const UserSharding& sharding,
    const MotifPageRankOptions& options = {});

}  // namespace ahntp::graph

#endif  // AHNTP_GRAPH_SHARDING_H_
