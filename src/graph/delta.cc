#include "graph/delta.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/fault.h"

namespace ahntp::graph {
namespace {

bool EdgeLess(const Edge& a, const Edge& b) {
  if (a.src != b.src) return a.src < b.src;
  return a.dst < b.dst;
}

bool EdgeEq(const Edge& a, const Edge& b) {
  return a.src == b.src && a.dst == b.dst;
}

bool SortedContains(const std::vector<Edge>& edges, const Edge& e) {
  auto it = std::lower_bound(edges.begin(), edges.end(), e, EdgeLess);
  return it != edges.end() && EdgeEq(*it, e);
}

/// Inserts `e` into a sorted vector, keeping it sorted. Precondition: `e`
/// is not already present.
void SortedInsert(std::vector<Edge>* edges, const Edge& e) {
  auto it = std::lower_bound(edges->begin(), edges->end(), e, EdgeLess);
  edges->insert(it, e);
}

/// Removes `e` from a sorted vector. Precondition: `e` is present.
void SortedErase(std::vector<Edge>* edges, const Edge& e) {
  auto it = std::lower_bound(edges->begin(), edges->end(), e, EdgeLess);
  edges->erase(it);
}

Status ValidateEndpoints(const std::vector<Edge>& edges, size_t num_nodes,
                         const char* what) {
  for (const Edge& e : edges) {
    if (e.src < 0 || e.dst < 0 || static_cast<size_t>(e.src) >= num_nodes ||
        static_cast<size_t>(e.dst) >= num_nodes) {
      return Status::InvalidArgument(
          std::string(what) + " edge (" + std::to_string(e.src) + ", " +
          std::to_string(e.dst) + ") out of range for " +
          std::to_string(num_nodes) + " nodes");
    }
  }
  return Status::Ok();
}

}  // namespace

MutableTrustGraph::MutableTrustGraph(size_t num_nodes, std::vector<Edge> base,
                                     Options options)
    : num_nodes_(num_nodes), options_(options), base_(std::move(base)) {}

MutableTrustGraph::MutableTrustGraph(MutableTrustGraph&& other) noexcept
    : num_nodes_(other.num_nodes_),
      options_(other.options_),
      base_(std::move(other.base_)),
      overlay_adds_(std::move(other.overlay_adds_)),
      overlay_removes_(std::move(other.overlay_removes_)),
      generation_(other.generation_.load(std::memory_order_acquire)),
      undo_(std::move(other.undo_)),
      canonical_(std::move(other.canonical_)),
      canonical_valid_(other.canonical_valid_),
      view_(std::move(other.view_)),
      view_valid_(other.view_valid_) {}

MutableTrustGraph& MutableTrustGraph::operator=(
    MutableTrustGraph&& other) noexcept {
  if (this == &other) return *this;
  num_nodes_ = other.num_nodes_;
  options_ = other.options_;
  base_ = std::move(other.base_);
  overlay_adds_ = std::move(other.overlay_adds_);
  overlay_removes_ = std::move(other.overlay_removes_);
  generation_.store(other.generation_.load(std::memory_order_acquire),
                    std::memory_order_release);
  undo_ = std::move(other.undo_);
  canonical_ = std::move(other.canonical_);
  canonical_valid_ = other.canonical_valid_;
  view_ = std::move(other.view_);
  view_valid_ = other.view_valid_;
  return *this;
}

Result<MutableTrustGraph> MutableTrustGraph::Create(
    size_t num_nodes, const std::vector<Edge>& initial_edges, Options options) {
  AHNTP_RETURN_IF_ERROR(ValidateEndpoints(initial_edges, num_nodes, "initial"));
  std::vector<Edge> base;
  base.reserve(initial_edges.size());
  for (const Edge& e : initial_edges) {
    if (e.src == e.dst) continue;  // same drop rule as Digraph::FromEdges
    base.push_back(e);
  }
  std::sort(base.begin(), base.end(), EdgeLess);
  base.erase(std::unique(base.begin(), base.end(), EdgeEq), base.end());
  if (options.compaction_threshold == 0) options.compaction_threshold = 1;
  return MutableTrustGraph(num_nodes, std::move(base), options);
}

size_t MutableTrustGraph::num_edges() const {
  return base_.size() + overlay_adds_.size() - overlay_removes_.size();
}

bool MutableTrustGraph::HasEdge(int src, int dst) const {
  Edge e{src, dst};
  if (SortedContains(overlay_adds_, e)) return true;
  if (SortedContains(overlay_removes_, e)) return false;
  return SortedContains(base_, e);
}

Result<DeltaReceipt> MutableTrustGraph::Apply(const GraphDelta& delta) {
  AHNTP_RETURN_IF_ERROR(
      ValidateEndpoints(delta.add_edges, num_nodes_, "add"));
  AHNTP_RETURN_IF_ERROR(
      ValidateEndpoints(delta.remove_edges, num_nodes_, "remove"));
  for (const RatingDelta& r : delta.add_ratings) {
    if (r.user < 0 || static_cast<size_t>(r.user) >= num_nodes_) {
      return Status::InvalidArgument("rating user " + std::to_string(r.user) +
                                     " out of range");
    }
    if (r.item < 0 || (options_.num_items > 0 &&
                       static_cast<size_t>(r.item) >= options_.num_items)) {
      return Status::InvalidArgument("rating item " + std::to_string(r.item) +
                                     " out of range");
    }
    if (!std::isfinite(r.rating) || r.rating < 1.0f || r.rating > 5.0f) {
      return Status::InvalidArgument("rating outside the 1..5 review scale");
    }
  }

  Snapshot snapshot{base_, overlay_adds_, overlay_removes_, generation()};

  DeltaReceipt receipt;
  // Removes before adds: a delta that removes and re-adds the same edge
  // leaves it present (and both sides count as applied).
  for (const Edge& e : delta.remove_edges) {
    if (!HasEdge(e.src, e.dst)) {
      ++receipt.removes_ignored;
      continue;
    }
    if (SortedContains(overlay_adds_, e)) {
      SortedErase(&overlay_adds_, e);
    } else {
      SortedInsert(&overlay_removes_, e);
    }
    receipt.applied_removes.push_back(e);
  }
  for (const Edge& e : delta.add_edges) {
    if (e.src == e.dst || HasEdge(e.src, e.dst)) {
      ++receipt.adds_ignored;
      continue;
    }
    if (SortedContains(overlay_removes_, e)) {
      SortedErase(&overlay_removes_, e);
    } else {
      SortedInsert(&overlay_adds_, e);
    }
    receipt.applied_adds.push_back(e);
  }

  Status fault = fault::FaultPoint("graph.delta.apply", StatusCode::kInternal);
  if (!fault.ok()) {
    // Roll the store back to the previous version: state and generation
    // are bit-identical to before this Apply().
    base_ = std::move(snapshot.base);
    overlay_adds_ = std::move(snapshot.overlay_adds);
    overlay_removes_ = std::move(snapshot.overlay_removes);
    return fault;
  }

  receipt.edges_added = receipt.applied_adds.size();
  receipt.edges_removed = receipt.applied_removes.size();
  receipt.rating_rows = delta.add_ratings.size();
  for (const Edge& e : receipt.applied_adds) {
    receipt.touched_vertices.push_back(e.src);
    receipt.touched_vertices.push_back(e.dst);
  }
  for (const Edge& e : receipt.applied_removes) {
    receipt.touched_vertices.push_back(e.src);
    receipt.touched_vertices.push_back(e.dst);
  }
  std::sort(receipt.touched_vertices.begin(), receipt.touched_vertices.end());
  receipt.touched_vertices.erase(
      std::unique(receipt.touched_vertices.begin(),
                  receipt.touched_vertices.end()),
      receipt.touched_vertices.end());
  for (const RatingDelta& r : delta.add_ratings) {
    receipt.touched_rating_users.push_back(r.user);
  }
  std::sort(receipt.touched_rating_users.begin(),
            receipt.touched_rating_users.end());
  receipt.touched_rating_users.erase(
      std::unique(receipt.touched_rating_users.begin(),
                  receipt.touched_rating_users.end()),
      receipt.touched_rating_users.end());

  undo_ = std::move(snapshot);
  generation_.store(generation() + 1, std::memory_order_release);
  receipt.generation = generation();
  MaybeCompact();
  InvalidateCaches();
  return receipt;
}

Status MutableTrustGraph::RevertLast() {
  if (!undo_.has_value()) {
    return Status::FailedPrecondition(
        "no applied delta to revert (undo history is one level deep)");
  }
  base_ = std::move(undo_->base);
  overlay_adds_ = std::move(undo_->overlay_adds);
  overlay_removes_ = std::move(undo_->overlay_removes);
  // Restore the previous generation *number*, not a fresh one: the state is
  // bit-identical to that version, so generation-keyed caches stay sound.
  generation_.store(undo_->generation, std::memory_order_release);
  undo_.reset();
  InvalidateCaches();
  return Status::Ok();
}

void MutableTrustGraph::MaybeCompact() {
  if (overlay_size() <= options_.compaction_threshold) return;
  // Merge base \ removes with adds; all three are sorted, result stays
  // sorted and unique.
  std::vector<Edge> merged;
  merged.reserve(num_edges());
  std::set_difference(base_.begin(), base_.end(), overlay_removes_.begin(),
                      overlay_removes_.end(), std::back_inserter(merged),
                      EdgeLess);
  std::vector<Edge> compacted;
  compacted.reserve(merged.size() + overlay_adds_.size());
  std::merge(merged.begin(), merged.end(), overlay_adds_.begin(),
             overlay_adds_.end(), std::back_inserter(compacted), EdgeLess);
  base_ = std::move(compacted);
  overlay_adds_.clear();
  overlay_removes_.clear();
}

void MutableTrustGraph::InvalidateCaches() {
  canonical_valid_ = false;
  view_valid_ = false;
}

const std::vector<Edge>& MutableTrustGraph::CanonicalEdges() const {
  if (!canonical_valid_) {
    canonical_.clear();
    canonical_.reserve(num_edges());
    std::vector<Edge> kept;
    kept.reserve(base_.size());
    std::set_difference(base_.begin(), base_.end(), overlay_removes_.begin(),
                        overlay_removes_.end(), std::back_inserter(kept),
                        EdgeLess);
    std::merge(kept.begin(), kept.end(), overlay_adds_.begin(),
               overlay_adds_.end(), std::back_inserter(canonical_), EdgeLess);
    canonical_valid_ = true;
  }
  return canonical_;
}

const Digraph& MutableTrustGraph::View() const {
  if (!view_valid_) {
    auto graph = Digraph::FromEdges(num_nodes_, CanonicalEdges());
    // Canonical edges are validated at Apply()/Create() time, so this can
    // only fail on programmer error.
    view_ = std::make_unique<Digraph>(std::move(graph).value());
    view_valid_ = true;
  }
  return *view_;
}

}  // namespace ahntp::graph
