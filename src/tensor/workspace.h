#ifndef AHNTP_TENSOR_WORKSPACE_H_
#define AHNTP_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace ahntp::tensor {

/// Bump allocator of reusable Matrix buffers for tape-free inference.
///
/// Acquire() hands out scratch matrices in call order; Reset() rewinds the
/// bump pointer without releasing storage, so a loop that performs the same
/// sequence of Acquire() calls per iteration (the compiled scoring loop)
/// touches the heap only while buffers warm up to their steady-state
/// shapes — afterwards every iteration is allocation-free.
///
/// Not thread-safe: one Workspace per dispatcher/scoring thread. Buffers
/// stay valid until the next Reset(), never across it.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Next scratch buffer, reshaped to rows x cols. Contents unspecified —
  /// kernels writing into it must assign or clear every element.
  Matrix* Acquire(size_t rows, size_t cols);

  /// Rewinds the bump pointer; storage is kept for reuse.
  void Reset() { next_ = 0; }

  /// Number of slot creations plus buffer growths since construction. A
  /// steady-state loop leaves this unchanged — the hook for the
  /// zero-allocation regression tests and scripts/check_inference.sh.
  size_t allocations() const { return allocations_; }

  /// Bytes of float storage currently held across all slots.
  size_t bytes() const;

  size_t num_slots() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<Matrix>> slots_;
  size_t next_ = 0;
  size_t allocations_ = 0;
};

}  // namespace ahntp::tensor

#endif  // AHNTP_TENSOR_WORKSPACE_H_
