#ifndef AHNTP_TENSOR_QUANT_H_
#define AHNTP_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace ahntp::tensor {

/// Per-row symmetric int8 calibration: absmax[r] is the largest |x| seen in
/// row r of the activations being quantized. scale(r) = absmax[r] / 127, so
/// dequantization error is bounded by scale(r) / 2 per element.
struct RowCalibration {
  std::vector<float> absmax;

  size_t rows() const { return absmax.size(); }
};

/// Computes per-row absmax over `activations`. InvalidArgument when any
/// element is non-finite (a NaN/Inf absmax would silently zero or saturate
/// the whole row at quantization time).
Result<RowCalibration> CalibrateRowAbsmax(const Matrix& activations);

/// Validates externally supplied calibration stats before they are trusted:
/// the row count must match and every absmax must be finite and >= 0.
/// InvalidArgument otherwise — ingestion callers surface this instead of
/// crashing on fuzzed input.
Status ValidateCalibration(const RowCalibration& calib, size_t rows);

/// Row-major int8 matrix with one float scale per row (symmetric range,
/// zero-point-free): x ~= q * scale. All-zero rows get scale 0 and quantize
/// to exact zeros. Values saturate at +/-127 (never -128, keeping the range
/// symmetric).
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Quantizes `m` row by row using `calib` (which must already be
  /// validated against m.rows()). q = clamp(round(x * 127 / absmax)).
  static QuantizedMatrix Quantize(const Matrix& m, const RowCalibration& calib);

  /// Reassembles a matrix from serialized parts (the spill-block reader).
  /// Sizes must already be validated by the caller.
  static QuantizedMatrix FromParts(size_t rows, size_t cols,
                                   std::vector<int8_t> data,
                                   std::vector<float> scales);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Payload + scales, the spill/residency accounting unit.
  size_t bytes() const {
    return data_.size() * sizeof(int8_t) + scales_.size() * sizeof(float);
  }

  const int8_t* RowData(size_t r) const { return data_.data() + r * cols_; }
  const int8_t* data() const { return data_.data(); }
  const std::vector<float>& scales() const { return scales_; }
  float scale(size_t r) const { return scales_[r]; }

  /// Requantizes row r in place from `src` (cols() floats) with a fresh
  /// `absmax`. Runs exactly the Quantize() row loop, so a table patched row
  /// by row is bitwise-identical to a fresh Quantize() of the patched float
  /// table under the matching calibration — the invariant the dynamic
  /// delta-refresh path (DESIGN.md §17) relies on.
  void UpdateRow(size_t r, const float* src, float absmax);

  /// Dequantizes row r into dst[0, cols): dst[c] = q[c] * scale(r).
  void DequantizeRowInto(size_t r, float* dst) const;

  /// Dequantizes rows[i] of this matrix into row i of `out` (reshaped to
  /// indices.size() x cols). The gather analogue of GatherRowsInto.
  void GatherDequantizeInto(Matrix* out,
                            const std::vector<int>& indices) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int8_t> data_;
  std::vector<float> scales_;
};

}  // namespace ahntp::tensor

#endif  // AHNTP_TENSOR_QUANT_H_
