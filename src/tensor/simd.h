#ifndef AHNTP_TENSOR_SIMD_H_
#define AHNTP_TENSOR_SIMD_H_

#include <cstddef>

#include "common/cpu.h"

namespace ahntp::tensor::simd {

// ---------------------------------------------------------------------------
// AVX2 kernel primitives (tensor/kernels_avx2.cc — the only TU built with
// -mavx2 -mfma). The dispatching kernels in kernels.cc / matrix.cc / csr.cc
// branch on UseAvx2() per call; when it returns false, none of these symbols
// are reachable (builds without AVX2 support compile them as CHECK-failing
// stubs).
//
// Two parity tiers against the scalar oracle (common/cpu.h):
//  * "exact" primitives perform the same per-element float operations as
//    the scalar loops and are bitwise-identical to them;
//  * "fma" primitives fuse multiply-adds and/or reassociate reductions into
//    fixed-width lanes — bitwise-stable for a given input (lane boundaries
//    never depend on the thread count) but only tolerance-equal to scalar.
// tests/kernel_parity_test.cc enforces both tiers.
//
// All functions take raw pointers: this TU must not instantiate inline
// Matrix code with AVX2 codegen that the linker could then pick for
// non-AVX2 TUs.
// ---------------------------------------------------------------------------

/// Dispatch predicate, one relaxed atomic load.
inline bool UseAvx2() {
  return ActiveKernelIsa() == KernelIsa::kAvx2;
}

// --- exact tier -----------------------------------------------------------

void AddF32(float* o, const float* a, const float* b, size_t n);
void SubF32(float* o, const float* a, const float* b, size_t n);
void MulF32(float* o, const float* a, const float* b, size_t n);
void ScaleF32(float* o, const float* a, float s, size_t n);
void AddScalarF32(float* o, const float* a, float s, size_t n);
void ReluF32(float* o, const float* a, size_t n);
void LeakyReluF32(float* o, const float* a, float slope, size_t n);
/// out = min(max(lo, a), hi) with the scalar kernel's NaN/signed-zero
/// behaviour (operand order chosen so NaN propagates like std::min/max).
void ClampF32(float* o, const float* a, float lo, float hi, size_t n);
void AbsF32(float* o, const float* a, size_t n);
/// out = sqrt(max(a, eps)); _mm256_sqrt_ps is IEEE-exact.
void SqrtMaxF32(float* o, const float* a, float eps, size_t n);
/// out = (a - sub) * mul, two separately rounded passes like the scalar
/// RowStandardize normalization loop.
void SubMulF32(float* o, const float* a, float sub, float mul, size_t n);

// --- fma tier -------------------------------------------------------------

/// o[i] = fma(a, x[i], o[i]). Shared by the SpMM gather band and the
/// SpMMTransposed scatter path so the two stay bitwise-identical to each
/// other under AVX2 (their relative parity is a thread-count contract).
void AxpyF32(float* o, const float* x, float a, size_t n);

/// Double-precision reductions over float inputs: 4-wide double FMA lanes,
/// fixed combine order (deterministic for a given input at any thread
/// count).
double DotF64(const float* a, const float* b, size_t n);
double SumF64(const float* a, size_t n);
double SumSqF64(const float* a, size_t n);
/// sum over i of ((double)a[i] - mean)^2.
double SumSqDiffF64(const float* a, double mean, size_t n);

/// Row band [r0, r1) of out = a * b (row-major, a is (m x k), b is (k x n)),
/// k-blocked like the scalar MatMulRowBandNN with an FMA-vectorized j loop.
/// `out` rows must be zeroed on entry (the kernel accumulates).
void MatMulBandNN(const float* a, const float* b, float* out, size_t r0,
                  size_t r1, size_t k, size_t n, size_t kblock);

/// Row band [r0, r1) of out = a * b^T (b is (nb x k)): per-element
/// double-FMA dot products.
void MatMulBandNT(const float* a, const float* b, float* out, size_t r0,
                  size_t r1, size_t k, size_t nb);

/// Row band of out = A * B for CSR A (gather form), FMA axpy inner loop.
/// `out` rows must be zeroed on entry.
void SpMMRowBand(const int* row_ptr, const int* col_idx, const float* values,
                 const float* b, size_t bcols, float* out, size_t r0,
                 size_t r1);

/// Rows [r0, r1) of y = A * x for CSR A: gathered double-FMA dots.
void SpMVRows(const int* row_ptr, const int* col_idx, const float* values,
              const float* x, float* y, size_t r0, size_t r1);

}  // namespace ahntp::tensor::simd

#endif  // AHNTP_TENSOR_SIMD_H_
