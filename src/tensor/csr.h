#ifndef AHNTP_TENSOR_CSR_H_
#define AHNTP_TENSOR_CSR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace ahntp::tensor {

/// One (row, col, value) entry used to assemble sparse matrices.
struct Triplet {
  int row = 0;
  int col = 0;
  float value = 0.0f;
};

/// Compressed-sparse-row float32 matrix. Powers the motif algebra of
/// Table II (SpGEMM + Hadamard), graph/hypergraph convolutions (SpMM), and
/// PageRank iterations (SpMV).
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() : rows_(0), cols_(0), row_ptr_{0} {}

  /// Zero matrix of the given shape.
  CsrMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix FromTriplets(size_t rows, size_t cols,
                                std::vector<Triplet> triplets);

  /// Builds from a dense matrix, dropping entries with |v| <= tolerance.
  static CsrMatrix FromDense(const Matrix& dense, float tolerance = 0.0f);

  /// Builds from per-row column/value arrays whose columns are already
  /// sorted and unique. Exact-size allocation, no sort, copy is
  /// row-parallel — the assembly path for the parallel SpGEMM.
  static CsrMatrix FromSortedRows(size_t rows, size_t cols,
                                  const std::vector<std::vector<int>>& row_cols,
                                  const std::vector<std::vector<float>>& row_vals);

  /// Identity matrix of size n.
  static CsrMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Value at (r, c); zero when the entry is not stored. O(log nnz(row)).
  float At(size_t r, size_t c) const;

  /// Number of stored entries in row r.
  size_t RowNnz(size_t r) const {
    AHNTP_DCHECK(r < rows_);
    return static_cast<size_t>(row_ptr_[r + 1] - row_ptr_[r]);
  }

  /// Dense copy (small matrices / tests only).
  Matrix ToDense() const;

  /// Transpose (CSR -> CSR, O(nnz) counting sort, nnz-preserving). Each
  /// output row's entries appear in ascending original-row order, which is
  /// what lets SpMMTransposed switch to the gather form without changing
  /// float accumulation order.
  CsrMatrix Transposed() const;

  /// Multiplies all stored values by `scalar`.
  CsrMatrix Scaled(float scalar) const;

  /// Drops stored entries with |v| <= tolerance.
  CsrMatrix Pruned(float tolerance = 0.0f) const;

  /// Returns a copy whose stored values are all 1 (the sparsity pattern).
  CsrMatrix Binarized() const;

  /// Per-row sum of stored values (length rows()).
  std::vector<float> RowSums() const;
  /// Per-column sum of stored values (length cols()).
  std::vector<float> ColSums() const;

  /// Row-stochastic copy: each nonempty row divided by its sum.
  CsrMatrix RowNormalized(float epsilon = 0.0f) const;

  /// Sum of all stored values.
  float Sum() const;

  /// True if shapes match and the dense forms differ by at most `tol`.
  bool AllClose(const CsrMatrix& other, float tol = 1e-5f) const;

  std::string DebugString(size_t max_entries = 16) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<float> values_;
};

/// y = A * x where x and y are dense vectors (x.size() == A.cols()).
std::vector<float> SpMV(const CsrMatrix& a, const std::vector<float>& x);

/// out = A * B where A is sparse and B dense. Shapes: (m x k) * (k x n).
Matrix SpMM(const CsrMatrix& a, const Matrix& b);

/// SpMM writing into a reusable buffer (`out` reshaped via ResetShape, no
/// allocation once warmed; must not alias `b`). Bit-identical to SpMM.
void SpMMInto(Matrix* out, const CsrMatrix& a, const Matrix& b);

/// out = A^T * B. Small inputs use the scatter form without materializing
/// the transpose; large inputs materialize A^T and run row-parallel (both
/// forms are bit-identical, see the implementation note).
Matrix SpMMTransposed(const CsrMatrix& a, const Matrix& b);

/// Sparse-sparse product (m x k) * (k x n) -> (m x n).
CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b);

/// Entrywise (Hadamard) product; result pattern is the intersection.
CsrMatrix SparseHadamard(const CsrMatrix& a, const CsrMatrix& b);

/// Entrywise sum; result pattern is the union.
CsrMatrix SparseAdd(const CsrMatrix& a, const CsrMatrix& b);

/// Entrywise difference a - b.
CsrMatrix SparseSub(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace ahntp::tensor

#endif  // AHNTP_TENSOR_CSR_H_
