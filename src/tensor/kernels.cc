#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/simd.h"

namespace ahntp::tensor {

namespace {

/// Same serial threshold as matrix.cc: elementwise loops below ~32k floats
/// are not worth dispatching.
constexpr size_t kElementwiseGrain = size_t{1} << 15;

/// Applies `f` to every element. Per-element transforms are bit-identical
/// under any partitioning, so a fixed-grain ParallelFor keeps the
/// determinism contract while large (all-user) matrices still parallelize.
template <typename F>
void ElementwiseInto(Matrix* out, const Matrix& a, F f) {
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  float* po = out->data();
  ParallelFor(0, out->size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
}

/// AVX2-dispatched variant: when the active ISA is kAvx2, each chunk runs
/// the vector primitive `vec(po + lo, pa + lo, hi - lo)` instead of the
/// scalar lambda. The exact-tier primitives perform the same per-element
/// operations, so this stays bitwise-identical to the scalar path; chunk
/// boundaries come from the fixed grain either way (thread-count
/// invariant).
template <typename F, typename Vec>
void ElementwiseIntoDispatch(Matrix* out, const Matrix& a, F f, Vec vec) {
  if (!simd::UseAvx2()) {
    ElementwiseInto(out, a, f);
    return;
  }
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  float* po = out->data();
  ParallelFor(0, out->size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    vec(po + lo, pa + lo, hi - lo);
  });
}

}  // namespace

void ReluInto(Matrix* out, const Matrix& a) {
  ElementwiseIntoDispatch(
      out, a, [](float x) { return x < 0.0f ? 0.0f : x; },
      [](float* o, const float* p, size_t n) { simd::ReluF32(o, p, n); });
}

void LeakyReluInto(Matrix* out, const Matrix& a, float negative_slope) {
  ElementwiseIntoDispatch(
      out, a,
      [negative_slope](float x) {
        return x < 0.0f ? x * negative_slope : x;
      },
      [negative_slope](float* o, const float* p, size_t n) {
        simd::LeakyReluF32(o, p, negative_slope, n);
      });
}

void SigmoidInto(Matrix* out, const Matrix& a) {
  ElementwiseInto(out, a,
                  [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

void TanhInto(Matrix* out, const Matrix& a) {
  ElementwiseInto(out, a, [](float x) { return std::tanh(x); });
}

void ExpInto(Matrix* out, const Matrix& a) {
  ElementwiseInto(out, a, [](float x) { return std::exp(x); });
}

void LogInto(Matrix* out, const Matrix& a, float epsilon) {
  ElementwiseInto(out, a, [epsilon](float x) {
    return std::log(std::max(x, epsilon));
  });
}

void ClampInto(Matrix* out, const Matrix& a, float lo, float hi) {
  AHNTP_CHECK_LE(lo, hi);
  ElementwiseIntoDispatch(
      out, a,
      [lo, hi](float x) { return std::min(std::max(x, lo), hi); },
      [lo, hi](float* o, const float* p, size_t n) {
        simd::ClampF32(o, p, lo, hi, n);
      });
}

void SqrtInto(Matrix* out, const Matrix& a, float epsilon) {
  ElementwiseIntoDispatch(
      out, a,
      [epsilon](float x) { return std::sqrt(std::max(x, epsilon)); },
      [epsilon](float* o, const float* p, size_t n) {
        simd::SqrtMaxF32(o, p, epsilon, n);
      });
}

void AbsInto(Matrix* out, const Matrix& a) {
  ElementwiseIntoDispatch(
      out, a, [](float x) { return std::fabs(x); },
      [](float* o, const float* p, size_t n) { simd::AbsF32(o, p, n); });
}

void PowScalarInto(Matrix* out, const Matrix& a, float exponent,
                   float epsilon) {
  ElementwiseInto(out, a, [exponent, epsilon](float x) {
    return std::pow(std::max(x, epsilon), exponent);
  });
}

void MulColBroadcastInto(Matrix* out, const Matrix& a, const Matrix& col) {
  AHNTP_CHECK_EQ(col.rows(), a.rows());
  AHNTP_CHECK_EQ(col.cols(), 1u);
  out->ResetShape(a.rows(), a.cols());
  const size_t cols = a.cols();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float s = col.At(r, 0);
      const float* arow = a.RowPtr(r);
      float* orow = out->RowPtr(r);
      if (avx2) {
        simd::ScaleF32(orow, arow, s, cols);
      } else {
        for (size_t c = 0; c < cols; ++c) orow[c] = arow[c] * s;
      }
    }
  });
}

void MulRowBroadcastInto(Matrix* out, const Matrix& a, const Matrix& row) {
  AHNTP_CHECK_EQ(row.rows(), 1u);
  AHNTP_CHECK_EQ(row.cols(), a.cols());
  out->ResetShape(a.rows(), a.cols());
  const float* brow = row.RowPtr(0);
  const size_t cols = a.cols();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* arow = a.RowPtr(r);
      float* orow = out->RowPtr(r);
      if (avx2) {
        simd::MulF32(orow, arow, brow, cols);
      } else {
        for (size_t c = 0; c < cols; ++c) orow[c] = arow[c] * brow[c];
      }
    }
  });
}

void RowStandardizeInto(Matrix* out, const Matrix& a, float epsilon,
                        std::vector<float>* inv_std) {
  AHNTP_CHECK(out != &a) << "RowStandardizeInto cannot alias its input";
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  AHNTP_CHECK_GT(cols, 0u);
  out->ResetShape(rows, cols);
  if (inv_std != nullptr) inv_std->resize(rows);
  // Rows are independent, so row-parallelism is bit-identical to the serial
  // loop. Double accumulators keep mean/var stable for wide rows.
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, rows, GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* src = a.RowPtr(r);
      double mean = 0.0;
      double var = 0.0;
      if (avx2) {
        mean = simd::SumF64(src, cols) / static_cast<double>(cols);
        var = simd::SumSqDiffF64(src, mean, cols) /
              static_cast<double>(cols);
      } else {
        for (size_t c = 0; c < cols; ++c) mean += src[c];
        mean /= static_cast<double>(cols);
        for (size_t c = 0; c < cols; ++c) {
          double d = src[c] - mean;
          var += d * d;
        }
        var /= static_cast<double>(cols);
      }
      float inv = 1.0f / std::sqrt(static_cast<float>(var) + epsilon);
      if (inv_std != nullptr) (*inv_std)[r] = inv;
      float* dst = out->RowPtr(r);
      if (avx2) {
        simd::SubMulF32(dst, src, static_cast<float>(mean), inv, cols);
      } else {
        for (size_t c = 0; c < cols; ++c) {
          dst[c] = (src[c] - static_cast<float>(mean)) * inv;
        }
      }
    }
  });
}

void RowNormsInto(Matrix* out, const Matrix& a, float epsilon) {
  AHNTP_CHECK(out != &a) << "RowNormsInto cannot alias its input";
  out->ResetShape(a.rows(), 1);
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [&](size_t r0, size_t r1) {
                for (size_t r = r0; r < r1; ++r) {
                  double acc = 0.0;
                  const float* row = a.RowPtr(r);
                  if (avx2) {
                    acc = simd::SumSqF64(row, a.cols());
                  } else {
                    for (size_t c = 0; c < a.cols(); ++c) {
                      acc += static_cast<double>(row[c]) * row[c];
                    }
                  }
                  out->At(r, 0) =
                      static_cast<float>(std::sqrt(acc + epsilon));
                }
              });
}

void DivRowsByNormsInto(Matrix* out, const Matrix& a, const Matrix& norms) {
  AHNTP_CHECK_EQ(norms.rows(), a.rows());
  AHNTP_CHECK_EQ(norms.cols(), 1u);
  out->ResetShape(a.rows(), a.cols());
  const size_t cols = a.cols();
  // Multiplying by the reciprocal (not dividing) matches the tape's
  // RowL2Normalize bit for bit.
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float inv = 1.0f / norms.At(r, 0);
      const float* arow = a.RowPtr(r);
      float* orow = out->RowPtr(r);
      if (avx2) {
        simd::ScaleF32(orow, arow, inv, cols);
      } else {
        for (size_t c = 0; c < cols; ++c) orow[c] = arow[c] * inv;
      }
    }
  });
}

void RowwiseDotInto(Matrix* out, const Matrix& a, const Matrix& b) {
  AHNTP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  AHNTP_CHECK(out != &a && out != &b)
      << "RowwiseDotInto cannot alias an input";
  out->ResetShape(a.rows(), 1);
  const size_t cols = a.cols();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* arow = a.RowPtr(r);
      const float* brow = b.RowPtr(r);
      double acc = 0.0;
      if (avx2) {
        acc = simd::DotF64(arow, brow, cols);
      } else {
        for (size_t c = 0; c < cols; ++c) {
          acc += static_cast<double>(arow[c]) * brow[c];
        }
      }
      out->At(r, 0) = static_cast<float>(acc);
    }
  });
}

void RowSoftmaxInto(Matrix* out, const Matrix& a) {
  out->ResetShape(a.rows(), a.cols());
  const size_t cols = a.cols();
  ParallelFor(0, a.rows(), GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* arow = a.RowPtr(r);
      float* orow = out->RowPtr(r);
      float max_v = arow[0];
      for (size_t c = 1; c < cols; ++c) max_v = std::max(max_v, arow[c]);
      double sum = 0.0;
      for (size_t c = 0; c < cols; ++c) {
        orow[c] = std::exp(arow[c] - max_v);
        sum += orow[c];
      }
      float inv = static_cast<float>(1.0 / std::max(sum, 1e-30));
      for (size_t c = 0; c < cols; ++c) orow[c] *= inv;
    }
  });
}

void CheckSegments(const std::vector<int>& segments, size_t num_rows,
                   size_t num_segments) {
  AHNTP_CHECK_EQ(segments.size(), num_rows);
  for (int s : segments) {
    AHNTP_CHECK(s >= 0 && static_cast<size_t>(s) < num_segments)
        << "segment id " << s << " out of range [0," << num_segments << ")";
  }
}

void SegmentSumInto(Matrix* out, const Matrix& a,
                    const std::vector<int>& segments, size_t num_segments) {
  AHNTP_CHECK(out != &a) << "SegmentSumInto cannot alias its input";
  CheckSegments(segments, a.rows(), num_segments);
  out->ResetShape(num_segments, a.cols());
  out->Fill(0.0f);
  // Serial scatter: rows of a segment accumulate in ascending row order,
  // which is the determinism contract the tape op also follows.
  const bool avx2 = simd::UseAvx2();
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    float* dst = out->RowPtr(static_cast<size_t>(segments[r]));
    if (avx2) {
      simd::AddF32(dst, dst, src, a.cols());
    } else {
      for (size_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
    }
  }
}

void SegmentMeanInto(Matrix* out, const Matrix& a,
                     const std::vector<int>& segments, size_t num_segments,
                     std::vector<float>* counts) {
  AHNTP_CHECK(out != &a) << "SegmentMeanInto cannot alias its input";
  CheckSegments(segments, a.rows(), num_segments);
  std::vector<float> local_counts;
  std::vector<float>& cnt = counts != nullptr ? *counts : local_counts;
  cnt.assign(num_segments, 0.0f);
  for (int s : segments) cnt[static_cast<size_t>(s)] += 1.0f;
  SegmentSumInto(out, a, segments, num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    if (cnt[s] > 0.0f) {
      float* row = out->RowPtr(s);
      for (size_t c = 0; c < a.cols(); ++c) row[c] /= cnt[s];
    }
  }
}

void SegmentSoftmaxInto(Matrix* out, const Matrix& a,
                        const std::vector<int>& segments,
                        size_t num_segments) {
  AHNTP_CHECK_EQ(a.cols(), 1u);
  AHNTP_CHECK(out != &a) << "SegmentSoftmaxInto cannot alias its input";
  CheckSegments(segments, a.rows(), num_segments);
  const size_t n = a.rows();
  out->ResetShape(n, 1);
  // Shifted exp for numerical stability; per-segment sums accumulate in
  // ascending row order (serial, deterministic).
  std::vector<float> max_per_seg(num_segments,
                                 -std::numeric_limits<float>::infinity());
  for (size_t r = 0; r < n; ++r) {
    size_t s = static_cast<size_t>(segments[r]);
    max_per_seg[s] = std::max(max_per_seg[s], a.At(r, 0));
  }
  std::vector<double> sum_per_seg(num_segments, 0.0);
  for (size_t r = 0; r < n; ++r) {
    size_t s = static_cast<size_t>(segments[r]);
    float e = std::exp(a.At(r, 0) - max_per_seg[s]);
    out->At(r, 0) = e;
    sum_per_seg[s] += e;
  }
  for (size_t r = 0; r < n; ++r) {
    size_t s = static_cast<size_t>(segments[r]);
    out->At(r, 0) =
        static_cast<float>(out->At(r, 0) / std::max(sum_per_seg[s], 1e-30));
  }
}

}  // namespace ahntp::tensor
