#include "tensor/workspace.h"

namespace ahntp::tensor {

Matrix* Workspace::Acquire(size_t rows, size_t cols) {
  if (next_ == slots_.size()) {
    slots_.push_back(std::make_unique<Matrix>());
    ++allocations_;
  }
  Matrix* m = slots_[next_++].get();
  if (rows * cols > m->capacity()) ++allocations_;
  m->ResetShape(rows, cols);
  return m;
}

size_t Workspace::bytes() const {
  size_t total = 0;
  for (const auto& slot : slots_) total += slot->capacity() * sizeof(float);
  return total;
}

}  // namespace ahntp::tensor
