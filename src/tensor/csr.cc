#include "tensor/csr.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/metrics.h"
#include "common/parallel.h"
#include "tensor/simd.h"

namespace ahntp::tensor {

namespace {

/// Sparse kernels go parallel only past this many stored entries; below it
/// the rows fit comfortably in one task's worth of work.
constexpr size_t kSparseParallelNnz = size_t{1} << 14;

/// Average flops per stored entry for grain sizing of row-parallel loops.
size_t RowGrain(const CsrMatrix& a, size_t dense_cols) {
  const size_t nnz_per_row = a.rows() == 0 ? 1 : a.nnz() / a.rows() + 1;
  return GrainForCost(nnz_per_row * std::max<size_t>(dense_cols, 1));
}

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    AHNTP_CHECK(t.row >= 0 && static_cast<size_t>(t.row) < rows);
    AHNTP_CHECK(t.col >= 0 && static_cast<size_t>(t.col) < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix out(rows, cols);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  size_t i = 0;
  for (size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && static_cast<size_t>(triplets[i].row) == r) {
      int col = triplets[i].col;
      float value = triplets[i].value;
      ++i;
      while (i < triplets.size() &&
             static_cast<size_t>(triplets[i].row) == r &&
             triplets[i].col == col) {
        value += triplets[i].value;
        ++i;
      }
      out.col_idx_.push_back(col);
      out.values_.push_back(value);
    }
    out.row_ptr_[r + 1] = static_cast<int>(out.col_idx_.size());
  }
  return out;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, float tolerance) {
  // Count first so the triplet buffer is allocated exactly once.
  size_t count = 0;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (std::fabs(dense.data()[i]) > tolerance) ++count;
  }
  std::vector<Triplet> triplets;
  triplets.reserve(count);
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      float v = dense.At(r, c);
      if (std::fabs(v) > tolerance) {
        triplets.push_back({static_cast<int>(r), static_cast<int>(c), v});
      }
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(triplets));
}

CsrMatrix CsrMatrix::FromSortedRows(
    size_t rows, size_t cols, const std::vector<std::vector<int>>& row_cols,
    const std::vector<std::vector<float>>& row_vals) {
  AHNTP_CHECK_EQ(row_cols.size(), rows);
  AHNTP_CHECK_EQ(row_vals.size(), rows);
  CsrMatrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    AHNTP_CHECK_EQ(row_cols[r].size(), row_vals[r].size());
    out.row_ptr_[r + 1] =
        out.row_ptr_[r] + static_cast<int>(row_cols[r].size());
  }
  const size_t total = static_cast<size_t>(out.row_ptr_[rows]);
  out.col_idx_.resize(total);
  out.values_.resize(total);
  ParallelFor(0, rows, GrainForCost(total / std::max<size_t>(rows, 1) + 1),
              [&](size_t r0, size_t r1) {
                for (size_t r = r0; r < r1; ++r) {
                  const size_t base = static_cast<size_t>(out.row_ptr_[r]);
                  std::copy(row_cols[r].begin(), row_cols[r].end(),
                            out.col_idx_.begin() + static_cast<long>(base));
                  std::copy(row_vals[r].begin(), row_vals[r].end(),
                            out.values_.begin() + static_cast<long>(base));
                }
              });
  return out;
}

CsrMatrix CsrMatrix::Identity(size_t n) {
  CsrMatrix out(n, n);
  out.col_idx_.resize(n);
  out.values_.assign(n, 1.0f);
  for (size_t i = 0; i < n; ++i) {
    out.col_idx_[i] = static_cast<int>(i);
    out.row_ptr_[i + 1] = static_cast<int>(i + 1);
  }
  return out;
}

float CsrMatrix::At(size_t r, size_t c) const {
  AHNTP_DCHECK(r < rows_ && c < cols_);
  const int* begin = col_idx_.data() + row_ptr_[r];
  const int* end = col_idx_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(begin, end, static_cast<int>(c));
  if (it != end && *it == static_cast<int>(c)) {
    return values_[static_cast<size_t>(it - col_idx_.data())];
  }
  return 0.0f;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      out.At(r, static_cast<size_t>(col_idx_[i])) += values_[i];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix out(cols_, rows_);
  std::vector<int> counts(cols_, 0);
  for (int c : col_idx_) ++counts[static_cast<size_t>(c)];
  out.row_ptr_.assign(cols_ + 1, 0);
  for (size_t c = 0; c < cols_; ++c) {
    out.row_ptr_[c + 1] = out.row_ptr_[c] + counts[c];
  }
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<int> offsets(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      size_t c = static_cast<size_t>(col_idx_[i]);
      int slot = offsets[c]++;
      out.col_idx_[slot] = static_cast<int>(r);
      out.values_[slot] = values_[i];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Scaled(float scalar) const {
  CsrMatrix out = *this;
  for (auto& v : out.values_) v *= scalar;
  return out;
}

CsrMatrix CsrMatrix::Pruned(float tolerance) const {
  CsrMatrix out(rows_, cols_);
  out.col_idx_.reserve(nnz());
  out.values_.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      if (std::fabs(values_[i]) > tolerance) {
        out.col_idx_.push_back(col_idx_[i]);
        out.values_.push_back(values_[i]);
      }
    }
    out.row_ptr_[r + 1] = static_cast<int>(out.col_idx_.size());
  }
  return out;
}

CsrMatrix CsrMatrix::Binarized() const {
  CsrMatrix out = Pruned(0.0f);
  for (auto& v : out.values_) v = 1.0f;
  return out;
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) sums[r] += values_[i];
  }
  return sums;
}

std::vector<float> CsrMatrix::ColSums() const {
  std::vector<float> sums(cols_, 0.0f);
  for (size_t i = 0; i < values_.size(); ++i) {
    sums[static_cast<size_t>(col_idx_[i])] += values_[i];
  }
  return sums;
}

CsrMatrix CsrMatrix::RowNormalized(float epsilon) const {
  CsrMatrix out = *this;
  std::vector<float> sums = RowSums();
  for (size_t r = 0; r < rows_; ++r) {
    float denom = sums[r] + epsilon;
    if (denom == 0.0f) continue;
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      out.values_[i] /= denom;
    }
  }
  return out;
}

float CsrMatrix::Sum() const {
  double acc = 0.0;
  for (float v : values_) acc += v;
  return static_cast<float>(acc);
}

bool CsrMatrix::AllClose(const CsrMatrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return ToDense().AllClose(other.ToDense(), tol);
}

std::string CsrMatrix::DebugString(size_t max_entries) const {
  std::ostringstream out;
  out << "CsrMatrix " << rows_ << "x" << cols_ << " nnz=" << nnz() << " {";
  size_t shown = 0;
  for (size_t r = 0; r < rows_ && shown < max_entries; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1] && shown < max_entries;
         ++i, ++shown) {
      if (shown > 0) out << ", ";
      out << "(" << r << "," << col_idx_[i] << ")=" << values_[i];
    }
  }
  if (shown < nnz()) out << ", ...";
  out << "}";
  return out.str();
}

std::vector<float> SpMV(const CsrMatrix& a, const std::vector<float>& x) {
  AHNTP_CHECK_EQ(a.cols(), x.size());
  AHNTP_METRIC_COUNT("tensor.spmv.calls", 1);
  AHNTP_METRIC_COUNT("tensor.spmv.flops", static_cast<int64_t>(2 * a.nnz()));
  std::vector<float> y(a.rows(), 0.0f);
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), RowGrain(a, 1), [&](size_t r0, size_t r1) {
    if (avx2) {
      simd::SpMVRows(row_ptr.data(), col_idx.data(), values.data(), x.data(),
                     y.data(), r0, r1);
      return;
    }
    for (size_t r = r0; r < r1; ++r) {
      double acc = 0.0;
      for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        acc +=
            static_cast<double>(values[i]) * x[static_cast<size_t>(col_idx[i])];
      }
      y[r] = static_cast<float>(acc);
    }
  });
  return y;
}

namespace {

/// Uncounted SpMM body: shared by the counted public entry and the
/// SpMMTransposed fast path (which must not inflate the SpMM counters —
/// which path runs depends on the thread count, and counter values must
/// not; see common/metrics.h).
void SpMMKernelInto(Matrix* out, const CsrMatrix& a, const Matrix& b) {
  out->ResetShape(a.rows(), b.cols());
  out->Fill(0.0f);  // the row kernel accumulates into the reused buffer
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const size_t n = b.cols();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), RowGrain(a, n), [&](size_t r0, size_t r1) {
    if (avx2) {
      simd::SpMMRowBand(row_ptr.data(), col_idx.data(), values.data(),
                        b.data(), n, out->data(), r0, r1);
      return;
    }
    for (size_t r = r0; r < r1; ++r) {
      float* orow = out->RowPtr(r);
      for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        float av = values[i];
        const float* brow = b.RowPtr(static_cast<size_t>(col_idx[i]));
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

Matrix SpMMKernel(const CsrMatrix& a, const Matrix& b) {
  Matrix out;
  SpMMKernelInto(&out, a, b);
  return out;
}

void CountSpMM(const CsrMatrix& a, const Matrix& b) {
  AHNTP_METRIC_COUNT("tensor.spmm.calls", 1);
  AHNTP_METRIC_COUNT("tensor.spmm.flops",
                     static_cast<int64_t>(2 * a.nnz() * b.cols()));
}

}  // namespace

Matrix SpMM(const CsrMatrix& a, const Matrix& b) {
  AHNTP_CHECK_EQ(a.cols(), b.rows());
  CountSpMM(a, b);
  return SpMMKernel(a, b);
}

void SpMMInto(Matrix* out, const CsrMatrix& a, const Matrix& b) {
  AHNTP_CHECK(out != nullptr && out != &b)
      << "SpMMInto cannot alias its dense input";
  AHNTP_CHECK_EQ(a.cols(), b.rows());
  CountSpMM(a, b);
  SpMMKernelInto(out, a, b);
}

Matrix SpMMTransposed(const CsrMatrix& a, const Matrix& b) {
  AHNTP_CHECK_EQ(a.rows(), b.rows());
  AHNTP_METRIC_COUNT("tensor.spmm_t.calls", 1);
  AHNTP_METRIC_COUNT("tensor.spmm_t.flops",
                     static_cast<int64_t>(2 * a.nnz() * b.cols()));
  // The direct form scatters into out.row(col_idx[i]) and cannot be
  // row-parallelized. Past the serial threshold we take the nnz-preserving
  // Transposed() fast path and run the gather-form kernel row-parallel.
  // Transposed() emits each output row's entries in ascending original-row
  // order — the same order the scatter loop adds them — so both paths are
  // bit-identical.
  if (a.nnz() * b.cols() >= kSparseParallelNnz && NumThreads() > 1 &&
      !InParallelWorker()) {
    return SpMMKernel(a.Transposed(), b);
  }
  Matrix out(a.cols(), b.cols());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const size_t n = b.cols();
  // The scatter inner loop uses the same AxpyF32 FMA sequence as the gather
  // kernel above, so the two paths stay bitwise-identical to each other
  // under AVX2 (which path runs depends on the thread count).
  const bool avx2 = simd::UseAvx2();
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* brow = b.RowPtr(r);
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      float av = values[i];
      float* orow = out.RowPtr(static_cast<size_t>(col_idx[i]));
      if (avx2) {
        simd::AxpyF32(orow, brow, av, n);
      } else {
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b) {
  AHNTP_CHECK_EQ(a.cols(), b.rows());
  AHNTP_METRIC_COUNT("tensor.spgemm.calls", 1);
  // Gustavson's algorithm, row-parallel: every chunk owns a private dense
  // accumulator and emits finished rows into its slot of `row_cols` /
  // `row_vals`; the final CSR assembly walks rows in order, so the result
  // does not depend on how rows were distributed over threads.
  const auto& a_row_ptr = a.row_ptr();
  const auto& a_col_idx = a.col_idx();
  const auto& a_values = a.values();
  const auto& b_row_ptr = b.row_ptr();
  const auto& b_col_idx = b.col_idx();
  const auto& b_values = b.values();
  std::vector<std::vector<int>> row_cols(a.rows());
  std::vector<std::vector<float>> row_vals(a.rows());
  // Grain by flops: each a-entry expands a b-row.
  const size_t flops_per_row =
      (a.rows() == 0 ? 1 : a.nnz() / a.rows() + 1) *
      (b.rows() == 0 ? 1 : b.nnz() / b.rows() + 1);
  ParallelFor(0, a.rows(), GrainForCost(flops_per_row),
              [&](size_t r0, size_t r1) {
    std::vector<float> accumulator(b.cols(), 0.0f);
    std::vector<int> touched;
    for (size_t r = r0; r < r1; ++r) {
      touched.clear();
      for (int i = a_row_ptr[r]; i < a_row_ptr[r + 1]; ++i) {
        float av = a_values[i];
        size_t mid = static_cast<size_t>(a_col_idx[i]);
        for (int j = b_row_ptr[mid]; j < b_row_ptr[mid + 1]; ++j) {
          size_t c = static_cast<size_t>(b_col_idx[j]);
          if (accumulator[c] == 0.0f) touched.push_back(static_cast<int>(c));
          accumulator[c] += av * b_values[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      row_cols[r].reserve(touched.size());
      row_vals[r].reserve(touched.size());
      for (int c : touched) {
        float v = accumulator[static_cast<size_t>(c)];
        accumulator[static_cast<size_t>(c)] = 0.0f;
        if (v != 0.0f) {
          row_cols[r].push_back(c);
          row_vals[r].push_back(v);
        }
      }
    }
  });
  CsrMatrix out =
      CsrMatrix::FromSortedRows(a.rows(), b.cols(), row_cols, row_vals);
  AHNTP_METRIC_COUNT("tensor.spgemm.out_nnz", static_cast<int64_t>(out.nnz()));
  return out;
}

namespace {

/// Merges rows of a and b with the given combine rule; entries combining to
/// zero are kept out when `drop_zero` (intersection semantics for Hadamard).
enum class MergeMode { kHadamard, kAdd, kSub };

CsrMatrix Merge(const CsrMatrix& a, const CsrMatrix& b, MergeMode mode) {
  AHNTP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < a.rows(); ++r) {
    int ia = a.row_ptr()[r];
    int ea = a.row_ptr()[r + 1];
    int ib = b.row_ptr()[r];
    int eb = b.row_ptr()[r + 1];
    while (ia < ea || ib < eb) {
      int ca = ia < ea ? a.col_idx()[ia] : INT32_MAX;
      int cb = ib < eb ? b.col_idx()[ib] : INT32_MAX;
      if (ca == cb) {
        float v = 0.0f;
        switch (mode) {
          case MergeMode::kHadamard:
            v = a.values()[ia] * b.values()[ib];
            break;
          case MergeMode::kAdd:
            v = a.values()[ia] + b.values()[ib];
            break;
          case MergeMode::kSub:
            v = a.values()[ia] - b.values()[ib];
            break;
        }
        if (v != 0.0f) triplets.push_back({static_cast<int>(r), ca, v});
        ++ia;
        ++ib;
      } else if (ca < cb) {
        if (mode != MergeMode::kHadamard && a.values()[ia] != 0.0f) {
          triplets.push_back({static_cast<int>(r), ca, a.values()[ia]});
        }
        ++ia;
      } else {
        if (mode == MergeMode::kAdd && b.values()[ib] != 0.0f) {
          triplets.push_back({static_cast<int>(r), cb, b.values()[ib]});
        } else if (mode == MergeMode::kSub && b.values()[ib] != 0.0f) {
          triplets.push_back({static_cast<int>(r), cb, -b.values()[ib]});
        }
        ++ib;
      }
    }
  }
  return CsrMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
}

}  // namespace

CsrMatrix SparseHadamard(const CsrMatrix& a, const CsrMatrix& b) {
  return Merge(a, b, MergeMode::kHadamard);
}

CsrMatrix SparseAdd(const CsrMatrix& a, const CsrMatrix& b) {
  return Merge(a, b, MergeMode::kAdd);
}

CsrMatrix SparseSub(const CsrMatrix& a, const CsrMatrix& b) {
  return Merge(a, b, MergeMode::kSub);
}

}  // namespace ahntp::tensor
