#ifndef AHNTP_TENSOR_MATRIX_H_
#define AHNTP_TENSOR_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ahntp::tensor {

/// Dense row-major float32 matrix. The single dense container used by the
/// autograd engine, the neural-network layers, and the models. A row vector
/// is a 1xN matrix; a column vector is Nx1.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Matrix filled with `value`.
  Matrix(size_t rows, size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Takes ownership of `data` (size must be rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<float> data);

  /// Builds from nested initializer-style data; all rows must be equal width.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  /// Identity matrix of size n.
  static Matrix Identity(size_t n);
  /// I.i.d. normal entries with the given mean/stddev.
  static Matrix Randn(size_t rows, size_t cols, Rng* rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Matrix RandUniform(size_t rows, size_t cols, Rng* rng, float lo,
                            float hi);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    AHNTP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    AHNTP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float& operator()(size_t r, size_t c) { return At(r, c); }
  float operator()(size_t r, size_t c) const { return At(r, c); }

  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float value);
  /// Reshapes in place; total element count must be preserved.
  void Reshape(size_t rows, size_t cols);

  /// Re-shapes to rows x cols reusing the existing buffer: storage only
  /// grows when rows*cols exceeds capacity(), never shrinks, and the
  /// contents are unspecified afterwards. The resize primitive behind
  /// Workspace buffer reuse — steady-state callers pay zero allocations.
  void ResetShape(size_t rows, size_t cols);

  /// Allocated element capacity of the underlying buffer (>= size()).
  size_t capacity() const { return data_.capacity(); }

  /// Elementwise in-place updates (shapes must match for matrix args).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  /// Frobenius-norm helpers and reductions.
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  float FrobeniusNorm() const;

  /// Copies row r into a new 1 x cols matrix.
  Matrix RowCopy(size_t r) const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// True if shapes match and all entries differ by at most `tol`.
  bool AllClose(const Matrix& other, float tol = 1e-5f) const;

  /// Compact debug string ("Matrix 3x4 [...]"); rows/cols clipped for size.
  std::string DebugString(size_t max_entries = 16) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// out = a + b (shape-checked).
Matrix Add(const Matrix& a, const Matrix& b);
/// out = a - b.
Matrix Sub(const Matrix& a, const Matrix& b);
/// Elementwise product.
Matrix Hadamard(const Matrix& a, const Matrix& b);
/// out = a * scalar.
Matrix Scale(const Matrix& a, float scalar);

/// General matrix multiply with optional transposes:
/// out = op(a) * op(b), op(x) = x or x^T.
Matrix MatMul(const Matrix& a, const Matrix& b, bool transpose_a = false,
              bool transpose_b = false);

/// Adds `row` (1 x cols) to every row of `a` (broadcast).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);

/// Column vector (rows x 1) of per-row sums.
Matrix RowSums(const Matrix& a);
/// Row vector (1 x cols) of per-column sums.
Matrix ColSums(const Matrix& a);

/// Per-row L2 norms as a rows x 1 matrix.
Matrix RowNorms(const Matrix& a, float epsilon = 1e-12f);

/// Concatenates matrices left-to-right; all must share the row count.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);
/// Stacks matrices top-to-bottom; all must share the column count.
Matrix ConcatRows(const std::vector<const Matrix*>& parts);

/// Gathers rows: out.row(i) = a.row(indices[i]).
Matrix GatherRows(const Matrix& a, const std::vector<int>& indices);

// ---------------------------------------------------------------------------
// Out-parameter kernel variants. Each reshapes `out` in place (see
// Matrix::ResetShape — storage is reused, so warmed buffers cost zero heap
// allocations) and is bit-identical to its allocating counterpart. Unless
// noted, `out` may alias `a` for the elementwise forms only.
// ---------------------------------------------------------------------------

/// out = op(a) * op(b). `out` must not alias an input. The transpose_a path
/// materializes a^T and is therefore not allocation-free.
void MatMulInto(Matrix* out, const Matrix& a, const Matrix& b,
                bool transpose_a = false, bool transpose_b = false);

void AddInto(Matrix* out, const Matrix& a, const Matrix& b);
void SubInto(Matrix* out, const Matrix& a, const Matrix& b);
void HadamardInto(Matrix* out, const Matrix& a, const Matrix& b);
void ScaleInto(Matrix* out, const Matrix& a, float scalar);
void AddScalarInto(Matrix* out, const Matrix& a, float scalar);
/// out = a + row broadcast over rows; `out` may alias `a`.
void AddRowBroadcastInto(Matrix* out, const Matrix& a, const Matrix& row);
/// out.row(i) = a.row(indices[i]); `out` must not alias `a`.
void GatherRowsInto(Matrix* out, const Matrix& a,
                    const std::vector<int>& indices);
/// Concatenates left-to-right; `out` must not alias any part.
void ConcatColsInto(Matrix* out, const std::vector<const Matrix*>& parts);

}  // namespace ahntp::tensor

#endif  // AHNTP_TENSOR_MATRIX_H_
