#ifndef AHNTP_TENSOR_KERNELS_H_
#define AHNTP_TENSOR_KERNELS_H_

#include <vector>

#include "tensor/matrix.h"

namespace ahntp::tensor {

// ---------------------------------------------------------------------------
// Shared forward-math kernels.
//
// These free functions are the single implementation of every op's forward
// pass: the tape-building autograd ops (autograd/ops.cc) and the tape-free
// inference entry points (nn/infer.h, models/inference_plan.h) both call
// them, so the two forward paths cannot numerically diverge — parity is
// structural, not tested-into-existence (the parity gate in
// scripts/check_inference.sh then enforces it end to end).
//
// Every kernel reshapes `out` via Matrix::ResetShape (buffer reuse — zero
// heap allocations once warmed) and fully overwrites it. `out` may alias
// `a` for the elementwise kernels; the row/segment kernels note their own
// aliasing rules.
// ---------------------------------------------------------------------------

/// out = max(a, 0).
void ReluInto(Matrix* out, const Matrix& a);

/// out = a, negative entries scaled by `negative_slope`.
void LeakyReluInto(Matrix* out, const Matrix& a, float negative_slope);

/// out = 1 / (1 + exp(-a)).
void SigmoidInto(Matrix* out, const Matrix& a);

/// out = tanh(a).
void TanhInto(Matrix* out, const Matrix& a);

/// out = exp(a).
void ExpInto(Matrix* out, const Matrix& a);

/// out = log(max(a, epsilon)).
void LogInto(Matrix* out, const Matrix& a, float epsilon);

/// out = clamp(a, lo, hi).
void ClampInto(Matrix* out, const Matrix& a, float lo, float hi);

/// out = sqrt(max(a, epsilon)).
void SqrtInto(Matrix* out, const Matrix& a, float epsilon);

/// out = |a|.
void AbsInto(Matrix* out, const Matrix& a);

/// out = max(a, epsilon)^exponent.
void PowScalarInto(Matrix* out, const Matrix& a, float exponent,
                   float epsilon);

/// Scales row r of `a` by col(r, 0); col is (rows x 1).
void MulColBroadcastInto(Matrix* out, const Matrix& a, const Matrix& col);

/// Multiplies every row of `a` elementwise by `row` (1 x cols).
void MulRowBroadcastInto(Matrix* out, const Matrix& a, const Matrix& row);

/// Normalizes each row to zero mean / unit variance. When `inv_std` is
/// non-null it receives the per-row 1/std factors (the tape's backward
/// cache). `out` must not alias `a`.
void RowStandardizeInto(Matrix* out, const Matrix& a, float epsilon,
                        std::vector<float>* inv_std = nullptr);

/// Per-row L2 norms (sqrt(sum sq + epsilon)) as a rows x 1 matrix.
void RowNormsInto(Matrix* out, const Matrix& a, float epsilon);

/// Divides each row of `a` by norms(r, 0); `norms` is RowNormsInto output.
void DivRowsByNormsInto(Matrix* out, const Matrix& a, const Matrix& norms);

/// out(r, 0) = dot(a.row(r), b.row(r)); shapes must match.
void RowwiseDotInto(Matrix* out, const Matrix& a, const Matrix& b);

/// Row-wise softmax over columns.
void RowSoftmaxInto(Matrix* out, const Matrix& a);

/// out.row(s) = sum of rows r with segments[r] == s. Segment ids must lie
/// in [0, num_segments). `out` must not alias `a`.
void SegmentSumInto(Matrix* out, const Matrix& a,
                    const std::vector<int>& segments, size_t num_segments);

/// Like SegmentSumInto but divides by segment size (empty segments stay 0).
/// When `counts` is non-null it receives the per-segment sizes.
void SegmentMeanInto(Matrix* out, const Matrix& a,
                     const std::vector<int>& segments, size_t num_segments,
                     std::vector<float>* counts = nullptr);

/// Softmax of a column vector within each segment; `a` must be (n x 1).
/// `out` must not alias `a`.
void SegmentSoftmaxInto(Matrix* out, const Matrix& a,
                        const std::vector<int>& segments,
                        size_t num_segments);

/// CHECK-fails unless all segment ids lie in [0, num_segments) and
/// segments.size() == num_rows. Shared precondition of the segment ops.
void CheckSegments(const std::vector<int>& segments, size_t num_rows,
                   size_t num_segments);

}  // namespace ahntp::tensor

#endif  // AHNTP_TENSOR_KERNELS_H_
