#include "tensor/matrix.h"

#include <cmath>
#include <sstream>

namespace ahntp::tensor {

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  AHNTP_CHECK_EQ(rows_ * cols_, data_.size());
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  size_t cols = rows[0].size();
  Matrix out(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    AHNTP_CHECK_EQ(rows[r].size(), cols);
    for (size_t c = 0; c < cols; ++c) out.At(r, c) = rows[r][c];
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = 1.0f;
  return out;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng, float mean,
                     float stddev) {
  AHNTP_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Matrix Matrix::RandUniform(size_t rows, size_t cols, Rng* rng, float lo,
                           float hi) {
  AHNTP_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = rng->Uniform(lo, hi);
  }
  return out;
}

void Matrix::Fill(float value) {
  for (auto& v : data_) v = value;
}

void Matrix::Reshape(size_t rows, size_t cols) {
  AHNTP_CHECK_EQ(rows * cols, data_.size());
  rows_ = rows;
  cols_ = cols;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  AHNTP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  AHNTP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  if (data_.empty()) return 0.0f;
  return Sum() / static_cast<float>(data_.size());
}

float Matrix::MaxAbs() const {
  float best = 0.0f;
  for (float v : data_) best = std::max(best, std::fabs(v));
  return best;
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

Matrix Matrix::RowCopy(size_t r) const {
  AHNTP_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  for (size_t c = 0; c < cols_; ++c) out.At(0, c) = At(r, c);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::DebugString(size_t max_entries) const {
  std::ostringstream out;
  out << "Matrix " << rows_ << "x" << cols_ << " [";
  size_t shown = std::min(max_entries, data_.size());
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  if (shown < data_.size()) out << ", ...";
  out << "]";
  return out.str();
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  AHNTP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  return out;
}

Matrix Scale(const Matrix& a, float scalar) {
  Matrix out = a;
  out *= scalar;
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b, bool transpose_a,
              bool transpose_b) {
  const size_t m = transpose_a ? a.cols() : a.rows();
  const size_t k = transpose_a ? a.rows() : a.cols();
  const size_t k2 = transpose_b ? b.cols() : b.rows();
  const size_t n = transpose_b ? b.rows() : b.cols();
  AHNTP_CHECK_EQ(k, k2);
  Matrix out(m, n);
  if (!transpose_a && !transpose_b) {
    // ikj loop order keeps the inner loop streaming over contiguous rows.
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a.RowPtr(i);
      float* orow = out.RowPtr(i);
      for (size_t p = 0; p < k; ++p) {
        float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b.RowPtr(p);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  } else if (transpose_a && !transpose_b) {
    // out[i][j] += a[p][i] * b[p][j]
    for (size_t p = 0; p < k; ++p) {
      const float* arow = a.RowPtr(p);
      const float* brow = b.RowPtr(p);
      for (size_t i = 0; i < m; ++i) {
        float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = out.RowPtr(i);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  } else if (!transpose_a && transpose_b) {
    // out[i][j] = dot(a.row(i), b.row(j))
    for (size_t i = 0; i < m; ++i) {
      const float* arow = a.RowPtr(i);
      float* orow = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.RowPtr(j);
        double acc = 0.0;
        for (size_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
        orow[j] = static_cast<float>(acc);
      }
    }
  } else {
    // Rare path; materialize a^T and recurse once.
    return MatMul(a.Transposed(), b, /*transpose_a=*/false,
                  /*transpose_b=*/true);
  }
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  AHNTP_CHECK_EQ(row.rows(), 1u);
  AHNTP_CHECK_EQ(row.cols(), a.cols());
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    float* orow = out.RowPtr(r);
    const float* brow = row.RowPtr(0);
    for (size_t c = 0; c < a.cols(); ++c) orow[c] += brow[c];
  }
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const float* row = a.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) acc += row[c];
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix ColSums(const Matrix& a) {
  Matrix out(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) out.At(0, c) += row[c];
  }
  return out;
}

Matrix RowNorms(const Matrix& a, float epsilon) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const float* row = a.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      acc += static_cast<double>(row[c]) * row[c];
    }
    out.At(r, 0) = static_cast<float>(std::sqrt(acc + epsilon));
  }
  return out;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  AHNTP_CHECK(!parts.empty());
  size_t rows = parts[0]->rows();
  size_t cols = 0;
  for (const Matrix* part : parts) {
    AHNTP_CHECK_EQ(part->rows(), rows);
    cols += part->cols();
  }
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* orow = out.RowPtr(r);
    size_t offset = 0;
    for (const Matrix* part : parts) {
      const float* prow = part->RowPtr(r);
      for (size_t c = 0; c < part->cols(); ++c) orow[offset + c] = prow[c];
      offset += part->cols();
    }
  }
  return out;
}

Matrix ConcatRows(const std::vector<const Matrix*>& parts) {
  AHNTP_CHECK(!parts.empty());
  size_t cols = parts[0]->cols();
  size_t rows = 0;
  for (const Matrix* part : parts) {
    AHNTP_CHECK_EQ(part->cols(), cols);
    rows += part->rows();
  }
  Matrix out(rows, cols);
  size_t offset = 0;
  for (const Matrix* part : parts) {
    for (size_t r = 0; r < part->rows(); ++r) {
      const float* prow = part->RowPtr(r);
      float* orow = out.RowPtr(offset + r);
      for (size_t c = 0; c < cols; ++c) orow[c] = prow[c];
    }
    offset += part->rows();
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int>& indices) {
  Matrix out(indices.size(), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    AHNTP_CHECK(indices[i] >= 0 &&
                static_cast<size_t>(indices[i]) < a.rows());
    const float* src = a.RowPtr(static_cast<size_t>(indices[i]));
    float* dst = out.RowPtr(i);
    for (size_t c = 0; c < a.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace ahntp::tensor
