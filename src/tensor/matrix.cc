#include "tensor/matrix.h"

#include <cmath>
#include <sstream>

#include "common/metrics.h"
#include "common/parallel.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace ahntp::tensor {

namespace {

/// Elementwise loops shorter than this stay serial: below ~32k floats the
/// task-dispatch overhead exceeds the loop body.
constexpr size_t kElementwiseGrain = size_t{1} << 15;

/// Fixed reduction grain. Chunk boundaries must not depend on the thread
/// count (determinism contract in common/parallel.h), so this is a
/// constant, not a function of NumThreads().
constexpr size_t kReduceGrain = size_t{1} << 15;

/// Panel height for the blocked MatMul k-loop: 64 rows of B are streamed
/// repeatedly while they are still cache-resident.
constexpr size_t kMatMulKBlock = 64;

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  AHNTP_CHECK_EQ(rows_ * cols_, data_.size());
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  size_t cols = rows[0].size();
  Matrix out(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    AHNTP_CHECK_EQ(rows[r].size(), cols);
    for (size_t c = 0; c < cols; ++c) out.At(r, c) = rows[r][c];
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = 1.0f;
  return out;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng, float mean,
                     float stddev) {
  AHNTP_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return out;
}

Matrix Matrix::RandUniform(size_t rows, size_t cols, Rng* rng, float lo,
                           float hi) {
  AHNTP_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = rng->Uniform(lo, hi);
  }
  return out;
}

void Matrix::Fill(float value) {
  for (auto& v : data_) v = value;
}

void Matrix::Reshape(size_t rows, size_t cols) {
  AHNTP_CHECK_EQ(rows * cols, data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::ResetShape(size_t rows, size_t cols) {
  // vector::resize never reallocates when the new size fits the current
  // capacity, so a warmed buffer is reshaped allocation-free.
  data_.resize(rows * cols);
  rows_ = rows;
  cols_ = cols;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  AHNTP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  float* a = data_.data();
  const float* b = other.data_.data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, data_.size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::AddF32(a + lo, a + lo, b + lo, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) a[i] += b[i];
    }
  });
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  AHNTP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  float* a = data_.data();
  const float* b = other.data_.data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, data_.size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::SubF32(a + lo, a + lo, b + lo, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) a[i] -= b[i];
    }
  });
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  float* a = data_.data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, data_.size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::ScaleF32(a + lo, a + lo, scalar, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) a[i] *= scalar;
    }
  });
  return *this;
}

float Matrix::Sum() const {
  const float* a = data_.data();
  const bool avx2 = simd::UseAvx2();
  double acc = ParallelReduce<double>(
      0, data_.size(), kReduceGrain, 0.0,
      [=](size_t lo, size_t hi) {
        if (avx2) return simd::SumF64(a + lo, hi - lo);
        double partial = 0.0;
        for (size_t i = lo; i < hi; ++i) partial += a[i];
        return partial;
      },
      [](double x, double y) { return x + y; });
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  if (data_.empty()) return 0.0f;
  return Sum() / static_cast<float>(data_.size());
}

float Matrix::MaxAbs() const {
  const float* a = data_.data();
  return ParallelReduce<float>(
      0, data_.size(), kReduceGrain, 0.0f,
      [=](size_t lo, size_t hi) {
        float best = 0.0f;
        for (size_t i = lo; i < hi; ++i) best = std::max(best, std::fabs(a[i]));
        return best;
      },
      [](float x, float y) { return std::max(x, y); });
}

float Matrix::FrobeniusNorm() const {
  const float* a = data_.data();
  const bool avx2 = simd::UseAvx2();
  double acc = ParallelReduce<double>(
      0, data_.size(), kReduceGrain, 0.0,
      [=](size_t lo, size_t hi) {
        if (avx2) return simd::SumSqF64(a + lo, hi - lo);
        double partial = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          partial += static_cast<double>(a[i]) * a[i];
        }
        return partial;
      },
      [](double x, double y) { return x + y; });
  return static_cast<float>(std::sqrt(acc));
}

Matrix Matrix::RowCopy(size_t r) const {
  AHNTP_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  for (size_t c = 0; c < cols_; ++c) out.At(0, c) = At(r, c);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Parallel over output rows: each chunk writes a disjoint row band of the
  // transpose (strided reads, contiguous writes).
  ParallelFor(0, cols_, GrainForCost(rows_), [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      float* orow = out.RowPtr(c);
      for (size_t r = 0; r < rows_; ++r) orow[r] = At(r, c);
    }
  });
  return out;
}

bool Matrix::AllClose(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::DebugString(size_t max_entries) const {
  std::ostringstream out;
  out << "Matrix " << rows_ << "x" << cols_ << " [";
  size_t shown = std::min(max_entries, data_.size());
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  if (shown < data_.size()) out << ", ...";
  out << "]";
  return out.str();
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out;
  AddInto(&out, a, b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out;
  SubInto(&out, a, b);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out;
  HadamardInto(&out, a, b);
  return out;
}

Matrix Scale(const Matrix& a, float scalar) {
  Matrix out;
  ScaleInto(&out, a, scalar);
  return out;
}

namespace {

/// Blocked i-k-j kernel for out[r0, r1) = a * b: the k loop is tiled so a
/// ~kMatMulKBlock-row panel of b is reused across every row of the band
/// while it is cache-hot. Per output element the additions still occur in
/// ascending-k order, so the result is bit-identical to the untiled i-k-j
/// loop and independent of the row partitioning (= thread count).
void MatMulRowBandNN(const Matrix& a, const Matrix& b, Matrix* out, size_t r0,
                     size_t r1) {
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t p0 = 0; p0 < k; p0 += kMatMulKBlock) {
    const size_t p1 = std::min(k, p0 + kMatMulKBlock);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a.RowPtr(i);
      float* orow = out->RowPtr(i);
      for (size_t p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b.RowPtr(p);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

/// out[r0, r1) rows of a * b^T: each output element is an independent dot
/// product of two contiguous rows.
void MatMulRowBandNT(const Matrix& a, const Matrix& b, Matrix* out, size_t r0,
                     size_t r1) {
  const size_t k = a.cols();
  const size_t n = b.rows();
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a.RowPtr(i);
    float* orow = out->RowPtr(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.RowPtr(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(arow[p]) * brow[p];
      }
      orow[j] = static_cast<float>(acc);
    }
  }
}

/// Uncounted kernel body shared by MatMul and MatMulInto; the public
/// entries record their metrics exactly once even on the transpose_a path,
/// which re-enters here after materializing a^T. `out` is reshaped (buffer
/// reuse, see Matrix::ResetShape) and fully overwritten.
void MatMulIntoImpl(Matrix* out, const Matrix& a, const Matrix& b,
                    bool transpose_a, bool transpose_b) {
  const size_t m = transpose_a ? a.cols() : a.rows();
  const size_t k = transpose_a ? a.rows() : a.cols();
  const size_t k2 = transpose_b ? b.cols() : b.rows();
  const size_t n = transpose_b ? b.rows() : b.cols();
  AHNTP_CHECK_EQ(k, k2);
  if (transpose_a) {
    // The a^T variants would scatter across output rows if parallelized
    // directly; materializing a^T (itself row-parallel) reduces them to the
    // row-parallel kernels below at O(m*k) extra traffic.
    MatMulIntoImpl(out, a.Transposed(), b, /*transpose_a=*/false,
                   transpose_b);
    return;
  }
  AHNTP_CHECK(out != &a && out != &b) << "MatMulInto cannot alias an input";
  out->ResetShape(m, n);
  const size_t grain = GrainForCost(k * std::max<size_t>(n, 1));
  const bool avx2 = simd::UseAvx2();
  if (!transpose_b) {
    // The NN band kernel accumulates, so the reused buffer is zeroed first
    // (the NT kernel assigns every element and needs no clear).
    out->Fill(0.0f);
    ParallelFor(0, m, grain, [&](size_t r0, size_t r1) {
      if (avx2) {
        simd::MatMulBandNN(a.data(), b.data(), out->data(), r0, r1, k, n,
                           kMatMulKBlock);
      } else {
        MatMulRowBandNN(a, b, out, r0, r1);
      }
    });
  } else {
    ParallelFor(0, m, grain, [&](size_t r0, size_t r1) {
      if (avx2) {
        simd::MatMulBandNT(a.data(), b.data(), out->data(), r0, r1, k, n);
      } else {
        MatMulRowBandNT(a, b, out, r0, r1);
      }
    });
  }
}

void CountMatMul(const Matrix& a, const Matrix& b, bool transpose_a,
                 bool transpose_b) {
  const size_t m = transpose_a ? a.cols() : a.rows();
  const size_t k = transpose_a ? a.rows() : a.cols();
  const size_t n = transpose_b ? b.rows() : b.cols();
  AHNTP_METRIC_COUNT("tensor.matmul.calls", 1);
  AHNTP_METRIC_COUNT("tensor.matmul.flops",
                     static_cast<int64_t>(2 * m * k * n));
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b, bool transpose_a,
              bool transpose_b) {
  CountMatMul(a, b, transpose_a, transpose_b);
  Matrix out;
  MatMulIntoImpl(&out, a, b, transpose_a, transpose_b);
  return out;
}

void MatMulInto(Matrix* out, const Matrix& a, const Matrix& b,
                bool transpose_a, bool transpose_b) {
  AHNTP_CHECK(out != nullptr);
  CountMatMul(a, b, transpose_a, transpose_b);
  MatMulIntoImpl(out, a, b, transpose_a, transpose_b);
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  Matrix out;
  AddRowBroadcastInto(&out, a, row);
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out(a.rows(), 1);
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [&](size_t r0, size_t r1) {
                for (size_t r = r0; r < r1; ++r) {
                  double acc = 0.0;
                  const float* row = a.RowPtr(r);
                  if (avx2) {
                    acc = simd::SumF64(row, a.cols());
                  } else {
                    for (size_t c = 0; c < a.cols(); ++c) acc += row[c];
                  }
                  out.At(r, 0) = static_cast<float>(acc);
                }
              });
  return out;
}

Matrix ColSums(const Matrix& a) {
  Matrix out(1, a.cols());
  // Parallel over column bands: each band's accumulators are private to its
  // chunk and every column still sums rows in ascending order.
  ParallelFor(0, a.cols(), GrainForCost(a.rows()),
              [&](size_t c0, size_t c1) {
                for (size_t r = 0; r < a.rows(); ++r) {
                  const float* row = a.RowPtr(r);
                  float* orow = out.RowPtr(0);
                  for (size_t c = c0; c < c1; ++c) orow[c] += row[c];
                }
              });
  return out;
}

Matrix RowNorms(const Matrix& a, float epsilon) {
  Matrix out;
  RowNormsInto(&out, a, epsilon);
  return out;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  Matrix out;
  ConcatColsInto(&out, parts);
  return out;
}

Matrix ConcatRows(const std::vector<const Matrix*>& parts) {
  AHNTP_CHECK(!parts.empty());
  size_t cols = parts[0]->cols();
  size_t rows = 0;
  for (const Matrix* part : parts) {
    AHNTP_CHECK_EQ(part->cols(), cols);
    rows += part->rows();
  }
  Matrix out(rows, cols);
  size_t offset = 0;
  for (const Matrix* part : parts) {
    for (size_t r = 0; r < part->rows(); ++r) {
      const float* prow = part->RowPtr(r);
      float* orow = out.RowPtr(offset + r);
      for (size_t c = 0; c < cols; ++c) orow[c] = prow[c];
    }
    offset += part->rows();
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int>& indices) {
  Matrix out;
  GatherRowsInto(&out, a, indices);
  return out;
}

// ---------------------------------------------------------------------------
// Out-parameter variants. Each reshapes `out` via ResetShape (buffer reuse,
// zero steady-state allocations) and performs the exact same per-element
// float operations as its allocating counterpart, in the same order, so the
// two families are bit-identical.
// ---------------------------------------------------------------------------

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b) {
  AHNTP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
}

}  // namespace

void AddInto(Matrix* out, const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, out->size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::AddF32(po + lo, pa + lo, pb + lo, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
    }
  });
}

void SubInto(Matrix* out, const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, out->size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::SubF32(po + lo, pa + lo, pb + lo, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
    }
  });
}

void HadamardInto(Matrix* out, const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, out->size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::MulF32(po + lo, pa + lo, pb + lo, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
    }
  });
}

void ScaleInto(Matrix* out, const Matrix& a, float scalar) {
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  float* po = out->data();
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, out->size(), kElementwiseGrain, [=](size_t lo, size_t hi) {
    if (avx2) {
      simd::ScaleF32(po + lo, pa + lo, scalar, hi - lo);
    } else {
      for (size_t i = lo; i < hi; ++i) po[i] = pa[i] * scalar;
    }
  });
}

void AddScalarInto(Matrix* out, const Matrix& a, float scalar) {
  out->ResetShape(a.rows(), a.cols());
  const float* pa = a.data();
  float* po = out->data();
  if (simd::UseAvx2()) {
    simd::AddScalarF32(po, pa, scalar, out->size());
    return;
  }
  for (size_t i = 0; i < out->size(); ++i) po[i] = pa[i] + scalar;
}

void AddRowBroadcastInto(Matrix* out, const Matrix& a, const Matrix& row) {
  AHNTP_CHECK_EQ(row.rows(), 1u);
  AHNTP_CHECK_EQ(row.cols(), a.cols());
  out->ResetShape(a.rows(), a.cols());
  const float* brow = row.RowPtr(0);
  const bool avx2 = simd::UseAvx2();
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [out, &a, brow, avx2, cols = a.cols()](size_t r0, size_t r1) {
                for (size_t r = r0; r < r1; ++r) {
                  const float* arow = a.RowPtr(r);
                  float* orow = out->RowPtr(r);
                  if (avx2) {
                    simd::AddF32(orow, arow, brow, cols);
                  } else {
                    for (size_t c = 0; c < cols; ++c) {
                      orow[c] = arow[c] + brow[c];
                    }
                  }
                }
              });
}

void GatherRowsInto(Matrix* out, const Matrix& a,
                    const std::vector<int>& indices) {
  AHNTP_CHECK(out != &a) << "GatherRowsInto cannot alias its input";
  for (size_t i = 0; i < indices.size(); ++i) {
    AHNTP_CHECK(indices[i] >= 0 &&
                static_cast<size_t>(indices[i]) < a.rows());
  }
  out->ResetShape(indices.size(), a.cols());
  ParallelFor(0, indices.size(), GrainForCost(a.cols()),
              [&](size_t i0, size_t i1) {
                for (size_t i = i0; i < i1; ++i) {
                  const float* src = a.RowPtr(static_cast<size_t>(indices[i]));
                  float* dst = out->RowPtr(i);
                  for (size_t c = 0; c < a.cols(); ++c) dst[c] = src[c];
                }
              });
}

void ConcatColsInto(Matrix* out, const std::vector<const Matrix*>& parts) {
  AHNTP_CHECK(!parts.empty());
  size_t rows = parts[0]->rows();
  size_t cols = 0;
  for (const Matrix* part : parts) {
    AHNTP_CHECK(part != out) << "ConcatColsInto cannot alias an input";
    AHNTP_CHECK_EQ(part->rows(), rows);
    cols += part->cols();
  }
  out->ResetShape(rows, cols);
  ParallelFor(0, rows, GrainForCost(cols), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* orow = out->RowPtr(r);
      size_t offset = 0;
      for (const Matrix* part : parts) {
        const float* prow = part->RowPtr(r);
        for (size_t c = 0; c < part->cols(); ++c) orow[offset + c] = prow[c];
        offset += part->cols();
      }
    }
  });
}

}  // namespace ahntp::tensor
