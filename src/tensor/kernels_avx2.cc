// AVX2+FMA implementations of the tensor kernel primitives (tensor/simd.h).
//
// This is the only translation unit compiled with -mavx2 -mfma (see the
// AHNTP_KERNEL_AVX2 probe in the top-level CMakeLists.txt). When the probe
// fails — non-x86 target or a compiler without the flags — the same file
// compiles the CHECK-failing stubs at the bottom; they are unreachable
// because common/cpu.cc then refuses to resolve KernelIsa::kAvx2.

#include "tensor/simd.h"

#include "common/check.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ahntp::tensor::simd {

namespace {

/// Shared FMA axpy body: 8-wide fused lanes plus a scalar tail. Every AVX2
/// caller (SpMM gather band, SpMMTransposed scatter, MatMul NN band) inlines
/// this exact sequence, which is what keeps the gather and scatter sparse
/// paths bitwise-identical to each other.
inline void AxpyBody(float* o, const float* x, float a, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vo = _mm256_loadu_ps(o + i);
    __m256 vx = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(o + i, _mm256_fmadd_ps(va, vx, vo));
  }
  for (; i < n; ++i) o[i] = __builtin_fmaf(a, x[i], o[i]);
}

/// Fixed-order horizontal sum of a 4-lane double accumulator:
/// ((l0 + l1) + l2) + l3. The order is part of the determinism contract.
inline double HSum(__m256d acc) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

}  // namespace

void AddF32(float* o, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void SubF32(float* o, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void MulF32(float* o, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void ScaleF32(float* o, const float* a, float s, size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] * s;
}

void AddScalarF32(float* o, const float* a, float s, size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] + s;
}

void ReluF32(float* o, const float* a, size_t n) {
  // blend, not max_ps: the scalar kernel keeps -0.0f and NaN unchanged
  // (x < 0 ? 0 : x), and this must stay bitwise-identical to it.
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(a + i);
    __m256 neg = _mm256_cmp_ps(x, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(o + i, _mm256_blendv_ps(x, zero, neg));
  }
  for (; i < n; ++i) o[i] = a[i] < 0.0f ? 0.0f : a[i];
}

void LeakyReluF32(float* o, const float* a, float slope, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vs = _mm256_set1_ps(slope);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(a + i);
    __m256 neg = _mm256_cmp_ps(x, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(o + i,
                     _mm256_blendv_ps(x, _mm256_mul_ps(x, vs), neg));
  }
  for (; i < n; ++i) o[i] = a[i] < 0.0f ? a[i] * slope : a[i];
}

void ClampF32(float* o, const float* a, float lo, float hi, size_t n) {
  // Operand order matters: VMAXPS/VMINPS return the *second* operand when
  // either input is NaN, so putting the data second propagates NaN exactly
  // like std::min(std::max(x, lo), hi) does.
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(o + i,
                     _mm256_min_ps(vhi, _mm256_max_ps(vlo, x)));
  }
  for (; i < n; ++i) {
    float x = a[i] < lo ? lo : a[i];
    o[i] = x > hi ? hi : x;
  }
}

void AbsF32(float* o, const float* a, size_t n) {
  const __m256 mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_and_ps(_mm256_loadu_ps(a + i), mask));
  }
  for (; i < n; ++i) o[i] = __builtin_fabsf(a[i]);
}

void SqrtMaxF32(float* o, const float* a, float eps, size_t n) {
  const __m256 veps = _mm256_set1_ps(eps);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(o + i, _mm256_sqrt_ps(_mm256_max_ps(veps, x)));
  }
  for (; i < n; ++i) {
    float x = a[i] < eps ? eps : a[i];
    o[i] = __builtin_sqrtf(x);
  }
}

void SubMulF32(float* o, const float* a, float sub, float mul, size_t n) {
  const __m256 vsub = _mm256_set1_ps(sub);
  const __m256 vmul = _mm256_set1_ps(mul);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(o + i,
                     _mm256_mul_ps(_mm256_sub_ps(x, vsub), vmul));
  }
  for (; i < n; ++i) o[i] = (a[i] - sub) * mul;
}

void AxpyF32(float* o, const float* x, float a, size_t n) {
  AxpyBody(o, x, a, n);
}

double DotF64(const float* a, const float* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    acc = _mm256_fmadd_pd(da, db, acc);
  }
  double sum = HSum(acc);
  for (; i < n; ++i) sum += static_cast<double>(a[i]) * b[i];
  return sum;
}

double SumF64(const float* a, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm_loadu_ps(a + i)));
  }
  double sum = HSum(acc);
  for (; i < n; ++i) sum += static_cast<double>(a[i]);
  return sum;
}

double SumSqF64(const float* a, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    acc = _mm256_fmadd_pd(da, da, acc);
  }
  double sum = HSum(acc);
  for (; i < n; ++i) sum += static_cast<double>(a[i]) * a[i];
  return sum;
}

double SumSqDiffF64(const float* a, double mean, size_t n) {
  const __m256d vmean = _mm256_set1_pd(mean);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)), vmean);
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  double sum = HSum(acc);
  for (; i < n; ++i) {
    double d = static_cast<double>(a[i]) - mean;
    sum += d * d;
  }
  return sum;
}

void MatMulBandNN(const float* a, const float* b, float* out, size_t r0,
                  size_t r1, size_t k, size_t n, size_t kblock) {
  // Same k-blocked i-k-j structure (and zero-skip) as the scalar band; only
  // the innermost j loop is fused.
  for (size_t p0 = 0; p0 < k; p0 += kblock) {
    const size_t p1 = p0 + kblock < k ? p0 + kblock : k;
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (size_t p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        AxpyBody(orow, b + p * n, av, n);
      }
    }
  }
}

void MatMulBandNT(const float* a, const float* b, float* out, size_t r0,
                  size_t r1, size_t k, size_t nb) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * nb;
    for (size_t j = 0; j < nb; ++j) {
      orow[j] = static_cast<float>(DotF64(arow, b + j * k, k));
    }
  }
}

void SpMMRowBand(const int* row_ptr, const int* col_idx, const float* values,
                 const float* b, size_t bcols, float* out, size_t r0,
                 size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    float* orow = out + r * bcols;
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      AxpyBody(orow, b + static_cast<size_t>(col_idx[i]) * bcols, values[i],
               bcols);
    }
  }
}

void SpMVRows(const int* row_ptr, const int* col_idx, const float* values,
              const float* x, float* y, size_t r0, size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    __m256d acc = _mm256_setzero_pd();
    int i = row_ptr[r];
    const int end = row_ptr[r + 1];
    for (; i + 4 <= end; i += 4) {
      __m128 vals = _mm_loadu_ps(values + i);
      __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(col_idx + i));
      __m128 xs = _mm_i32gather_ps(x, idx, 4);
      acc = _mm256_fmadd_pd(_mm256_cvtps_pd(vals), _mm256_cvtps_pd(xs), acc);
    }
    double sum = HSum(acc);
    for (; i < end; ++i) {
      sum += static_cast<double>(values[i]) * x[static_cast<size_t>(col_idx[i])];
    }
    y[r] = static_cast<float>(sum);
  }
}

}  // namespace ahntp::tensor::simd

#else  // !(__AVX2__ && __FMA__): CHECK-failing stubs, never dispatched to.

namespace ahntp::tensor::simd {

namespace {
[[noreturn]] void NoAvx2() {
  AHNTP_CHECK(false) << "AVX2 kernels were not compiled into this build";
  __builtin_unreachable();
}
}  // namespace

void AddF32(float*, const float*, const float*, size_t) { NoAvx2(); }
void SubF32(float*, const float*, const float*, size_t) { NoAvx2(); }
void MulF32(float*, const float*, const float*, size_t) { NoAvx2(); }
void ScaleF32(float*, const float*, float, size_t) { NoAvx2(); }
void AddScalarF32(float*, const float*, float, size_t) { NoAvx2(); }
void ReluF32(float*, const float*, size_t) { NoAvx2(); }
void LeakyReluF32(float*, const float*, float, size_t) { NoAvx2(); }
void ClampF32(float*, const float*, float, float, size_t) { NoAvx2(); }
void AbsF32(float*, const float*, size_t) { NoAvx2(); }
void SqrtMaxF32(float*, const float*, float, size_t) { NoAvx2(); }
void SubMulF32(float*, const float*, float, float, size_t) { NoAvx2(); }
void AxpyF32(float*, const float*, float, size_t) { NoAvx2(); }
double DotF64(const float*, const float*, size_t) { NoAvx2(); }
double SumF64(const float*, size_t) { NoAvx2(); }
double SumSqF64(const float*, size_t) { NoAvx2(); }
double SumSqDiffF64(const float*, double, size_t) { NoAvx2(); }
void MatMulBandNN(const float*, const float*, float*, size_t, size_t, size_t,
                  size_t, size_t) {
  NoAvx2();
}
void MatMulBandNT(const float*, const float*, float*, size_t, size_t, size_t,
                  size_t) {
  NoAvx2();
}
void SpMMRowBand(const int*, const int*, const float*, const float*, size_t,
                 float*, size_t, size_t) {
  NoAvx2();
}
void SpMVRows(const int*, const int*, const float*, const float*, float*,
              size_t, size_t) {
  NoAvx2();
}

}  // namespace ahntp::tensor::simd

#endif  // __AVX2__ && __FMA__
