#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ahntp::tensor {

Result<RowCalibration> CalibrateRowAbsmax(const Matrix& activations) {
  RowCalibration calib;
  calib.absmax.assign(activations.rows(), 0.0f);
  for (size_t r = 0; r < activations.rows(); ++r) {
    const float* row = activations.RowPtr(r);
    float best = 0.0f;
    for (size_t c = 0; c < activations.cols(); ++c) {
      if (!std::isfinite(row[c])) {
        return Status::InvalidArgument(
            "non-finite activation at row " + std::to_string(r) +
            " during int8 calibration");
      }
      best = std::max(best, std::fabs(row[c]));
    }
    calib.absmax[r] = best;
  }
  return calib;
}

Status ValidateCalibration(const RowCalibration& calib, size_t rows) {
  if (calib.absmax.size() != rows) {
    return Status::InvalidArgument(
        "calibration covers " + std::to_string(calib.absmax.size()) +
        " rows, embedding table has " + std::to_string(rows));
  }
  for (size_t r = 0; r < calib.absmax.size(); ++r) {
    float v = calib.absmax[r];
    if (!std::isfinite(v) || v < 0.0f) {
      return Status::InvalidArgument(
          "calibration absmax[" + std::to_string(r) +
          "] is not a finite non-negative value");
    }
  }
  return Status::Ok();
}

QuantizedMatrix QuantizedMatrix::Quantize(const Matrix& m,
                                          const RowCalibration& calib) {
  AHNTP_CHECK_EQ(calib.absmax.size(), m.rows());
  QuantizedMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.data_.resize(m.size());
  out.scales_.resize(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    const float absmax = calib.absmax[r];
    out.scales_[r] = absmax / 127.0f;
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    const float* src = m.RowPtr(r);
    int8_t* dst = out.data_.data() + r * m.cols();
    for (size_t c = 0; c < m.cols(); ++c) {
      // lrintf rounds to nearest-even; the clamp covers rows quantized with
      // a stale (too small) absmax, saturating at the symmetric +/-127.
      long q = std::lrintf(src[c] * inv);
      q = std::min<long>(127, std::max<long>(-127, q));
      dst[c] = static_cast<int8_t>(q);
    }
  }
  return out;
}

QuantizedMatrix QuantizedMatrix::FromParts(size_t rows, size_t cols,
                                           std::vector<int8_t> data,
                                           std::vector<float> scales) {
  AHNTP_CHECK_EQ(data.size(), rows * cols);
  AHNTP_CHECK_EQ(scales.size(), rows);
  QuantizedMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.data_ = std::move(data);
  out.scales_ = std::move(scales);
  return out;
}

void QuantizedMatrix::UpdateRow(size_t r, const float* src, float absmax) {
  AHNTP_CHECK(r < rows_);
  scales_[r] = absmax / 127.0f;
  const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
  int8_t* dst = data_.data() + r * cols_;
  for (size_t c = 0; c < cols_; ++c) {
    long q = std::lrintf(src[c] * inv);
    q = std::min<long>(127, std::max<long>(-127, q));
    dst[c] = static_cast<int8_t>(q);
  }
}

void QuantizedMatrix::DequantizeRowInto(size_t r, float* dst) const {
  AHNTP_DCHECK(r < rows_);
  const float scale = scales_[r];
  const int8_t* src = data_.data() + r * cols_;
  for (size_t c = 0; c < cols_; ++c) {
    dst[c] = static_cast<float>(src[c]) * scale;
  }
}

void QuantizedMatrix::GatherDequantizeInto(
    Matrix* out, const std::vector<int>& indices) const {
  for (size_t i = 0; i < indices.size(); ++i) {
    AHNTP_CHECK(indices[i] >= 0 && static_cast<size_t>(indices[i]) < rows_);
  }
  out->ResetShape(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    DequantizeRowInto(static_cast<size_t>(indices[i]), out->RowPtr(i));
  }
}

}  // namespace ahntp::tensor
