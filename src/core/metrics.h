#ifndef AHNTP_CORE_METRICS_H_
#define AHNTP_CORE_METRICS_H_

#include <string>
#include <vector>

namespace ahntp::core {

/// Binary-classification metrics for trust prediction (Section V-A.3 uses
/// accuracy and F1; precision/recall/AUC are reported for completeness).
/// Brier score and expected calibration error quantify how trustworthy the
/// probabilities themselves are — the robustness suite (DESIGN.md §16)
/// gates on them alongside AUC.
struct BinaryMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
  /// Mean squared error of the probabilities against the 0/1 labels
  /// (proper scoring rule; 0 = perfect, 0.25 = uninformed 0.5 forecasts).
  double brier = 0.0;
  /// Expected calibration error over kCalibrationBins equal-width
  /// probability bins: sum over bins of (n_b / n) * |mean confidence_b -
  /// empirical accuracy_b|. Probabilities are clamped to [0, 1] before
  /// binning so out-of-range scores land in the edge bins.
  double ece = 0.0;
  size_t num_samples = 0;

  /// Bin count for `ece` (equal-width over [0, 1]).
  static constexpr size_t kCalibrationBins = 10;

  std::string ToString() const;
};

/// Computes metrics from predicted probabilities and 0/1 labels.
/// `threshold` classifies probability >= threshold as positive.
BinaryMetrics EvaluateBinary(const std::vector<float>& probabilities,
                             const std::vector<float>& labels,
                             float threshold = 0.5f);

/// Picks the accuracy-maximizing decision threshold by scanning the
/// midpoints between consecutive sorted scores. Used to calibrate the
/// cosine head (Eq. 19) on *training* pairs before test evaluation —
/// cosine similarities carry ranking information but no inherent 0.5
/// operating point. Ties prefer the threshold closest to 0.5.
float BestAccuracyThreshold(const std::vector<float>& probabilities,
                            const std::vector<float>& labels);

}  // namespace ahntp::core

#endif  // AHNTP_CORE_METRICS_H_
