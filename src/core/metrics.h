#ifndef AHNTP_CORE_METRICS_H_
#define AHNTP_CORE_METRICS_H_

#include <string>
#include <vector>

namespace ahntp::core {

/// Binary-classification metrics for trust prediction (Section V-A.3 uses
/// accuracy and F1; precision/recall/AUC are reported for completeness).
struct BinaryMetrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
  size_t num_samples = 0;

  std::string ToString() const;
};

/// Computes metrics from predicted probabilities and 0/1 labels.
/// `threshold` classifies probability >= threshold as positive.
BinaryMetrics EvaluateBinary(const std::vector<float>& probabilities,
                             const std::vector<float>& labels,
                             float threshold = 0.5f);

/// Picks the accuracy-maximizing decision threshold by scanning the
/// midpoints between consecutive sorted scores. Used to calibrate the
/// cosine head (Eq. 19) on *training* pairs before test evaluation —
/// cosine similarities carry ranking information but no inherent 0.5
/// operating point. Ties prefer the threshold closest to 0.5.
float BestAccuracyThreshold(const std::vector<float>& probabilities,
                            const std::vector<float>& labels);

}  // namespace ahntp::core

#endif  // AHNTP_CORE_METRICS_H_
