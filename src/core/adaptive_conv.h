#ifndef AHNTP_CORE_ADAPTIVE_CONV_H_
#define AHNTP_CORE_ADAPTIVE_CONV_H_

#include <memory>

#include "autograd/ops.h"
#include "hypergraph/hypergraph.h"
#include "nn/linear.h"
#include "tensor/workspace.h"

namespace ahntp::core {

/// The paper's two-step adaptive hypergraph convolution (Section IV-C).
///
/// Step 1 — vertex -> hyperedge (Eqs. 10-11):
///   Mess_e = mean_{v in e} x_v,   h_e = w_e * Mess_e
/// with a *trainable* per-hyperedge scalar w_e ("adaptive": each hyperedge
/// learns how loudly it speaks).
///
/// Step 2 — hyperedge -> vertex. With attention (Eqs. 14-16):
///   a_ie = LeakyReLU(beta^T [W x_i || W h_e]),
///   w_ie = softmax over the hyperedges of vertex i,
///   x_i' = ReLU(sum_e w_ie W h_e).
/// Without attention (the AHNTP_noatt ablation, Eqs. 12-13):
///   x_i' = ReLU(mean_{e ∋ i} h_e * theta).
class AdaptiveHypergraphConv : public nn::Module {
 public:
  /// `num_heads` > 1 enables multi-head attention: out_features is split
  /// evenly across heads, each with its own transform and beta, and the
  /// head outputs are concatenated (a natural extension of the paper's
  /// single-head design; requires out_features % num_heads == 0).
  AdaptiveHypergraphConv(const hypergraph::Hypergraph& hg, size_t in_features,
                         size_t out_features, Rng* rng,
                         bool use_attention = true, float leaky_slope = 0.2f,
                         size_t num_heads = 1);

  /// x is (num_vertices x in_features); returns (num_vertices x out).
  autograd::Variable Forward(const autograd::Variable& x) const;

  /// Tape-free forward; bit-identical to Forward(). Returns a `ws` buffer.
  /// Does not update last_attention() — explanations stay on the tape path.
  tensor::Matrix& Infer(const tensor::Matrix& x, tensor::Workspace* ws) const;

  /// Tape-free forward restricted to `vertices` (ascending, deduplicated,
  /// in range): returns a (|vertices| x out_features) buffer whose i-th row
  /// is bit-identical to row vertices[i] of Infer(x, ws). `x` is the FULL
  /// previous-layer matrix; only the incident hyperedges of the requested
  /// vertices are processed, so cost scales with the dirty neighbourhood
  /// instead of the graph. The restricted attention pass stays bitwise
  /// because every requested vertex's incidence segment is materialized
  /// whole (all its hyperedges) in the same relative order as the full
  /// edge-major pair list.
  tensor::Matrix& InferRows(const tensor::Matrix& x,
                            const std::vector<int>& vertices,
                            tensor::Workspace* ws) const;

  /// Rebuilds the incidence-derived structures (edge/vertex means,
  /// attention pairs, edge count) for a mutated hypergraph over the same
  /// vertex set. `new_from_old[e]` names the previous edge whose trained
  /// adaptive weight w_e edge e inherits, or -1 for a brand-new edge
  /// (weight 1, the init value). Head weights are untouched — they are
  /// structure-independent. Note: replaces the edge-weight parameter
  /// object, so optimizers holding the old Parameters() list must be
  /// rebuilt before further training (the serving path never trains).
  void ResetStructure(const hypergraph::Hypergraph& hg,
                      const std::vector<int>& new_from_old);

  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

  size_t out_features() const { return out_features_; }
  bool use_attention() const { return use_attention_; }
  size_t num_heads() const { return heads_.size(); }

  /// Incidence pairs this layer attends over (edge-major order).
  const hypergraph::Hypergraph::IncidencePairs& pairs() const {
    return pairs_;
  }

  /// Attention coefficients w_ie (Eq. 15) of the most recent Forward()
  /// call, one per incidence pair (head-averaged when multi-head) — the raw
  /// material for explanations. Empty before the first attention forward or
  /// when attention is off.
  const tensor::Matrix& last_attention() const { return last_attention_; }

 private:
  tensor::CsrMatrix edge_mean_;    // (m x n) D_e^{-1} H^T
  tensor::CsrMatrix vertex_mean_;  // (n x m) per-vertex mean over edges
  hypergraph::Hypergraph::IncidencePairs pairs_;
  /// One attention head: its own W and beta halves.
  struct Head {
    std::unique_ptr<nn::Linear> transform;  // W (theta when attention off)
    autograd::Variable attn_vertex;         // beta, vertex half (d_h x 1)
    autograd::Variable attn_edge;           // beta, hyperedge half (d_h x 1)
  };

  /// Runs one head's Eq. 14-16 pass; appends its attention snapshot.
  autograd::Variable RunHead(const Head& head, const autograd::Variable& x,
                             const autograd::Variable& h_e,
                             tensor::Matrix* attention_sum) const;

  size_t num_vertices_;
  size_t num_edges_;
  size_t out_features_;
  bool use_attention_;
  float leaky_slope_;
  std::vector<Head> heads_;
  autograd::Variable edge_weight_;   // (m x 1) trainable w_e, init 1
  mutable tensor::Matrix last_attention_;  // snapshot for explanations
};

}  // namespace ahntp::core

#endif  // AHNTP_CORE_ADAPTIVE_CONV_H_
