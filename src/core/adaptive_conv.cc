#include "core/adaptive_conv.h"

#include "common/check.h"
#include "nn/infer.h"
#include "nn/init.h"
#include "tensor/kernels.h"

namespace ahntp::core {

using autograd::Variable;

AdaptiveHypergraphConv::AdaptiveHypergraphConv(
    const hypergraph::Hypergraph& hg, size_t in_features, size_t out_features,
    Rng* rng, bool use_attention, float leaky_slope, size_t num_heads)
    : num_vertices_(hg.num_vertices()),
      num_edges_(hg.num_edges()),
      out_features_(out_features),
      use_attention_(use_attention),
      leaky_slope_(leaky_slope),
      edge_weight_(
          autograd::Parameter(tensor::Matrix(hg.num_edges(), 1, 1.0f))) {
  AHNTP_CHECK_GT(num_edges_, 0u) << "hypergraph has no hyperedges";
  AHNTP_CHECK_GE(num_heads, 1u);
  if (!use_attention) num_heads = 1;  // heads only differ through attention
  AHNTP_CHECK_EQ(out_features % num_heads, 0u)
      << "out_features must divide evenly across attention heads";
  const size_t head_dim = out_features / num_heads;
  for (size_t h = 0; h < num_heads; ++h) {
    Head head;
    head.transform = std::make_unique<nn::Linear>(in_features, head_dim, rng,
                                                  /*use_bias=*/false);
    head.attn_vertex =
        autograd::Parameter(nn::XavierUniform(head_dim, 1, rng));
    head.attn_edge = autograd::Parameter(nn::XavierUniform(head_dim, 1, rng));
    heads_.push_back(std::move(head));
  }
  tensor::CsrMatrix incidence = hg.Incidence();
  edge_mean_ = incidence.Transposed().RowNormalized();
  vertex_mean_ = incidence.RowNormalized();
  pairs_ = hg.Pairs();
}

Variable AdaptiveHypergraphConv::RunHead(
    const Head& head, const Variable& x, const Variable& h_e,
    tensor::Matrix* attention_sum) const {
  // Eqs. 14-16: shared-attention reweighting of incident hyperedges.
  Variable wh_e = head.transform->Forward(h_e);  // m x d_h
  Variable wx = head.transform->Forward(x);      // n x d_h
  Variable wx_pairs = autograd::GatherRows(wx, pairs_.vertex);
  Variable whe_pairs = autograd::GatherRows(wh_e, pairs_.edge);
  Variable score = autograd::LeakyRelu(
      autograd::Add(autograd::MatMul(wx_pairs, head.attn_vertex),
                    autograd::MatMul(whe_pairs, head.attn_edge)),
      leaky_slope_);
  Variable alpha =
      autograd::SegmentSoftmax(score, pairs_.vertex, num_vertices_);
  *attention_sum += alpha.value();
  Variable weighted = autograd::MulColBroadcast(whe_pairs, alpha);
  return autograd::SegmentSum(weighted, pairs_.vertex, num_vertices_);
}

Variable AdaptiveHypergraphConv::Forward(const Variable& x) const {
  AHNTP_CHECK_EQ(x.rows(), num_vertices_);
  // Step 1: Mess_e (Eq. 10) and the adaptive reweighting h_e (Eq. 11).
  Variable mess_e = autograd::SpMMConst(edge_mean_, x);
  Variable h_e = autograd::MulColBroadcast(mess_e, edge_weight_);

  if (!use_attention_) {
    // Eqs. 12-13: mean over incident hyperedges, then theta + ReLU.
    Variable mess_v = autograd::SpMMConst(vertex_mean_, h_e);
    return autograd::Relu(heads_.front().transform->Forward(mess_v));
  }

  tensor::Matrix attention_sum(pairs_.vertex.size(), 1);
  std::vector<Variable> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    head_outputs.push_back(RunHead(head, x, h_e, &attention_sum));
  }
  attention_sum *= 1.0f / static_cast<float>(heads_.size());
  last_attention_ = attention_sum;
  Variable combined = head_outputs.size() == 1
                          ? head_outputs.front()
                          : autograd::ConcatCols(head_outputs);
  return autograd::Relu(combined);
}

tensor::Matrix& AdaptiveHypergraphConv::Infer(const tensor::Matrix& x,
                                              tensor::Workspace* ws) const {
  using tensor::Matrix;
  AHNTP_CHECK_EQ(x.rows(), num_vertices_);
  Matrix* mess_e = ws->Acquire(edge_mean_.rows(), x.cols());
  tensor::SpMMInto(mess_e, edge_mean_, x);
  Matrix* h_e = ws->Acquire(mess_e->rows(), mess_e->cols());
  tensor::MulColBroadcastInto(h_e, *mess_e, edge_weight_.value());

  if (!use_attention_) {
    Matrix* mess_v = ws->Acquire(vertex_mean_.rows(), h_e->cols());
    tensor::SpMMInto(mess_v, vertex_mean_, *h_e);
    Matrix& out = nn::InferLinear(*heads_.front().transform, *mess_v, ws);
    tensor::ReluInto(&out, out);
    return out;
  }

  const size_t p = pairs_.vertex.size();
  std::vector<Matrix*> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    Matrix& wh_e = nn::InferLinear(*head.transform, *h_e, ws);
    Matrix& wx = nn::InferLinear(*head.transform, x, ws);
    Matrix* wx_pairs = ws->Acquire(p, wx.cols());
    tensor::GatherRowsInto(wx_pairs, wx, pairs_.vertex);
    Matrix* whe_pairs = ws->Acquire(p, wh_e.cols());
    tensor::GatherRowsInto(whe_pairs, wh_e, pairs_.edge);
    Matrix* score = ws->Acquire(p, 1);
    tensor::MatMulInto(score, *wx_pairs, head.attn_vertex.value());
    Matrix* score_edge = ws->Acquire(p, 1);
    tensor::MatMulInto(score_edge, *whe_pairs, head.attn_edge.value());
    tensor::AddInto(score, *score, *score_edge);
    tensor::LeakyReluInto(score, *score, leaky_slope_);
    Matrix* alpha = ws->Acquire(p, 1);
    tensor::SegmentSoftmaxInto(alpha, *score, pairs_.vertex, num_vertices_);
    tensor::MulColBroadcastInto(whe_pairs, *whe_pairs, *alpha);
    Matrix* agg = ws->Acquire(num_vertices_, whe_pairs->cols());
    tensor::SegmentSumInto(agg, *whe_pairs, pairs_.vertex, num_vertices_);
    head_outputs.push_back(agg);
  }
  Matrix* combined = head_outputs.front();
  if (head_outputs.size() > 1) {
    combined = ws->Acquire(num_vertices_, out_features_);
    std::vector<const Matrix*> parts(head_outputs.begin(),
                                     head_outputs.end());
    tensor::ConcatColsInto(combined, parts);
  }
  tensor::ReluInto(combined, *combined);
  return *combined;
}

tensor::Matrix& AdaptiveHypergraphConv::InferRows(
    const tensor::Matrix& x, const std::vector<int>& vertices,
    tensor::Workspace* ws) const {
  using tensor::Matrix;
  AHNTP_CHECK_EQ(x.rows(), num_vertices_);
  AHNTP_CHECK(!vertices.empty());
  const size_t nv = vertices.size();
  std::vector<int> vertex_local(num_vertices_, -1);
  for (size_t i = 0; i < nv; ++i) {
    int v = vertices[i];
    AHNTP_CHECK(v >= 0 && static_cast<size_t>(v) < num_vertices_);
    if (i > 0) {
      AHNTP_CHECK_GT(v, vertices[i - 1]);
    }
    vertex_local[v] = static_cast<int>(i);
  }

  // Active hyperedges: the union of the requested vertices' incidence
  // lists, ascending. Completeness per vertex is what keeps the restricted
  // softmax segments identical to the full pass.
  const std::vector<int>& vm_ptr = vertex_mean_.row_ptr();
  const std::vector<int>& vm_col = vertex_mean_.col_idx();
  std::vector<char> edge_mark(num_edges_, 0);
  for (int v : vertices) {
    for (int k = vm_ptr[v]; k < vm_ptr[v + 1]; ++k) edge_mark[vm_col[k]] = 1;
  }
  std::vector<int> active;
  std::vector<int> edge_local(num_edges_, -1);
  for (size_t e = 0; e < num_edges_; ++e) {
    if (edge_mark[e]) {
      edge_local[e] = static_cast<int>(active.size());
      active.push_back(static_cast<int>(e));
    }
  }
  if (active.empty()) {
    // All requested vertices are isolated in this hypergraph: the full pass
    // aggregates nothing for them and ReLU(0) = 0.
    Matrix* out = ws->Acquire(nv, out_features_);
    out->Fill(0.0f);
    return *out;
  }
  const size_t na = active.size();

  // mess_e / h_e for the active edges only: the sub-CSR copies each active
  // edge's full row, so the SpMM accumulation order per row is unchanged.
  const std::vector<int>& em_ptr = edge_mean_.row_ptr();
  const std::vector<int>& em_col = edge_mean_.col_idx();
  const std::vector<float>& em_val = edge_mean_.values();
  std::vector<std::vector<int>> sub_cols(na);
  std::vector<std::vector<float>> sub_vals(na);
  for (size_t i = 0; i < na; ++i) {
    const int e = active[i];
    sub_cols[i].assign(em_col.begin() + em_ptr[e],
                       em_col.begin() + em_ptr[e + 1]);
    sub_vals[i].assign(em_val.begin() + em_ptr[e],
                       em_val.begin() + em_ptr[e + 1]);
  }
  tensor::CsrMatrix sub_edge_mean =
      tensor::CsrMatrix::FromSortedRows(na, num_vertices_, sub_cols, sub_vals);
  Matrix* mess_e = ws->Acquire(na, x.cols());
  tensor::SpMMInto(mess_e, sub_edge_mean, x);
  Matrix* w_col = ws->Acquire(na, 1);
  tensor::GatherRowsInto(w_col, edge_weight_.value(), active);
  Matrix* h_e = ws->Acquire(na, mess_e->cols());
  tensor::MulColBroadcastInto(h_e, *mess_e, *w_col);

  if (!use_attention_) {
    // Sub vertex-mean over requested rows; columns remapped to active-local
    // edge ids (monotone, so per-row entry order is preserved).
    std::vector<std::vector<int>> row_cols(nv);
    std::vector<std::vector<float>> row_vals(nv);
    const std::vector<float>& vm_val = vertex_mean_.values();
    for (size_t i = 0; i < nv; ++i) {
      const int v = vertices[i];
      for (int k = vm_ptr[v]; k < vm_ptr[v + 1]; ++k) {
        row_cols[i].push_back(edge_local[vm_col[k]]);
        row_vals[i].push_back(vm_val[k]);
      }
    }
    tensor::CsrMatrix sub_vertex_mean =
        tensor::CsrMatrix::FromSortedRows(nv, na, row_cols, row_vals);
    Matrix* mess_v = ws->Acquire(nv, h_e->cols());
    tensor::SpMMInto(mess_v, sub_vertex_mean, *h_e);
    Matrix& out = nn::InferLinear(*heads_.front().transform, *mess_v, ws);
    tensor::ReluInto(&out, out);
    return out;
  }

  // Restricted incidence pairs: edge-major over active edges, members
  // filtered to requested vertices — each requested vertex's segment is its
  // full-pass segment in the same relative order, relabeled to local ids.
  std::vector<int> pair_vertex;
  std::vector<int> pair_edge;
  for (size_t i = 0; i < na; ++i) {
    const int e = active[i];
    for (int k = em_ptr[e]; k < em_ptr[e + 1]; ++k) {
      const int v = em_col[k];
      if (vertex_local[v] >= 0) {
        pair_vertex.push_back(vertex_local[v]);
        pair_edge.push_back(static_cast<int>(i));
      }
    }
  }
  const size_t p = pair_vertex.size();
  Matrix* x_req = ws->Acquire(nv, x.cols());
  tensor::GatherRowsInto(x_req, x, vertices);
  std::vector<Matrix*> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    Matrix& wh_e = nn::InferLinear(*head.transform, *h_e, ws);
    Matrix& wx = nn::InferLinear(*head.transform, *x_req, ws);
    Matrix* wx_pairs = ws->Acquire(p, wx.cols());
    tensor::GatherRowsInto(wx_pairs, wx, pair_vertex);
    Matrix* whe_pairs = ws->Acquire(p, wh_e.cols());
    tensor::GatherRowsInto(whe_pairs, wh_e, pair_edge);
    Matrix* score = ws->Acquire(p, 1);
    tensor::MatMulInto(score, *wx_pairs, head.attn_vertex.value());
    Matrix* score_edge = ws->Acquire(p, 1);
    tensor::MatMulInto(score_edge, *whe_pairs, head.attn_edge.value());
    tensor::AddInto(score, *score, *score_edge);
    tensor::LeakyReluInto(score, *score, leaky_slope_);
    Matrix* alpha = ws->Acquire(p, 1);
    tensor::SegmentSoftmaxInto(alpha, *score, pair_vertex, nv);
    tensor::MulColBroadcastInto(whe_pairs, *whe_pairs, *alpha);
    Matrix* agg = ws->Acquire(nv, whe_pairs->cols());
    tensor::SegmentSumInto(agg, *whe_pairs, pair_vertex, nv);
    head_outputs.push_back(agg);
  }
  Matrix* combined = head_outputs.front();
  if (head_outputs.size() > 1) {
    combined = ws->Acquire(nv, out_features_);
    std::vector<const Matrix*> parts(head_outputs.begin(),
                                     head_outputs.end());
    tensor::ConcatColsInto(combined, parts);
  }
  tensor::ReluInto(combined, *combined);
  return *combined;
}

void AdaptiveHypergraphConv::ResetStructure(
    const hypergraph::Hypergraph& hg, const std::vector<int>& new_from_old) {
  AHNTP_CHECK_EQ(hg.num_vertices(), num_vertices_);
  AHNTP_CHECK_GT(hg.num_edges(), 0u) << "hypergraph has no hyperedges";
  AHNTP_CHECK_EQ(new_from_old.size(), hg.num_edges());
  tensor::Matrix weights(hg.num_edges(), 1, 1.0f);
  const tensor::Matrix& old_weights = edge_weight_.value();
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    const int old_e = new_from_old[e];
    if (old_e >= 0) {
      AHNTP_CHECK(static_cast<size_t>(old_e) < num_edges_);
      weights.At(e, 0) = old_weights.At(static_cast<size_t>(old_e), 0);
    }
  }
  edge_weight_ = autograd::Parameter(std::move(weights));
  num_edges_ = hg.num_edges();
  tensor::CsrMatrix incidence = hg.Incidence();
  edge_mean_ = incidence.Transposed().RowNormalized();
  vertex_mean_ = incidence.RowNormalized();
  pairs_ = hg.Pairs();
  last_attention_ = tensor::Matrix();
}

std::vector<Variable> AdaptiveHypergraphConv::Parameters() const {
  std::vector<Variable> params;
  for (const Head& head : heads_) {
    for (auto& p : head.transform->Parameters()) params.push_back(p);
    if (use_attention_) {
      params.push_back(head.attn_vertex);
      params.push_back(head.attn_edge);
    }
  }
  params.push_back(edge_weight_);
  return params;
}

std::vector<nn::Module*> AdaptiveHypergraphConv::Submodules() {
  std::vector<nn::Module*> subs;
  for (const Head& head : heads_) subs.push_back(head.transform.get());
  return subs;
}

}  // namespace ahntp::core
