#include "core/adaptive_conv.h"

#include "common/check.h"
#include "nn/infer.h"
#include "nn/init.h"
#include "tensor/kernels.h"

namespace ahntp::core {

using autograd::Variable;

AdaptiveHypergraphConv::AdaptiveHypergraphConv(
    const hypergraph::Hypergraph& hg, size_t in_features, size_t out_features,
    Rng* rng, bool use_attention, float leaky_slope, size_t num_heads)
    : num_vertices_(hg.num_vertices()),
      num_edges_(hg.num_edges()),
      out_features_(out_features),
      use_attention_(use_attention),
      leaky_slope_(leaky_slope),
      edge_weight_(
          autograd::Parameter(tensor::Matrix(hg.num_edges(), 1, 1.0f))) {
  AHNTP_CHECK_GT(num_edges_, 0u) << "hypergraph has no hyperedges";
  AHNTP_CHECK_GE(num_heads, 1u);
  if (!use_attention) num_heads = 1;  // heads only differ through attention
  AHNTP_CHECK_EQ(out_features % num_heads, 0u)
      << "out_features must divide evenly across attention heads";
  const size_t head_dim = out_features / num_heads;
  for (size_t h = 0; h < num_heads; ++h) {
    Head head;
    head.transform = std::make_unique<nn::Linear>(in_features, head_dim, rng,
                                                  /*use_bias=*/false);
    head.attn_vertex =
        autograd::Parameter(nn::XavierUniform(head_dim, 1, rng));
    head.attn_edge = autograd::Parameter(nn::XavierUniform(head_dim, 1, rng));
    heads_.push_back(std::move(head));
  }
  tensor::CsrMatrix incidence = hg.Incidence();
  edge_mean_ = incidence.Transposed().RowNormalized();
  vertex_mean_ = incidence.RowNormalized();
  pairs_ = hg.Pairs();
}

Variable AdaptiveHypergraphConv::RunHead(
    const Head& head, const Variable& x, const Variable& h_e,
    tensor::Matrix* attention_sum) const {
  // Eqs. 14-16: shared-attention reweighting of incident hyperedges.
  Variable wh_e = head.transform->Forward(h_e);  // m x d_h
  Variable wx = head.transform->Forward(x);      // n x d_h
  Variable wx_pairs = autograd::GatherRows(wx, pairs_.vertex);
  Variable whe_pairs = autograd::GatherRows(wh_e, pairs_.edge);
  Variable score = autograd::LeakyRelu(
      autograd::Add(autograd::MatMul(wx_pairs, head.attn_vertex),
                    autograd::MatMul(whe_pairs, head.attn_edge)),
      leaky_slope_);
  Variable alpha =
      autograd::SegmentSoftmax(score, pairs_.vertex, num_vertices_);
  *attention_sum += alpha.value();
  Variable weighted = autograd::MulColBroadcast(whe_pairs, alpha);
  return autograd::SegmentSum(weighted, pairs_.vertex, num_vertices_);
}

Variable AdaptiveHypergraphConv::Forward(const Variable& x) const {
  AHNTP_CHECK_EQ(x.rows(), num_vertices_);
  // Step 1: Mess_e (Eq. 10) and the adaptive reweighting h_e (Eq. 11).
  Variable mess_e = autograd::SpMMConst(edge_mean_, x);
  Variable h_e = autograd::MulColBroadcast(mess_e, edge_weight_);

  if (!use_attention_) {
    // Eqs. 12-13: mean over incident hyperedges, then theta + ReLU.
    Variable mess_v = autograd::SpMMConst(vertex_mean_, h_e);
    return autograd::Relu(heads_.front().transform->Forward(mess_v));
  }

  tensor::Matrix attention_sum(pairs_.vertex.size(), 1);
  std::vector<Variable> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    head_outputs.push_back(RunHead(head, x, h_e, &attention_sum));
  }
  attention_sum *= 1.0f / static_cast<float>(heads_.size());
  last_attention_ = attention_sum;
  Variable combined = head_outputs.size() == 1
                          ? head_outputs.front()
                          : autograd::ConcatCols(head_outputs);
  return autograd::Relu(combined);
}

tensor::Matrix& AdaptiveHypergraphConv::Infer(const tensor::Matrix& x,
                                              tensor::Workspace* ws) const {
  using tensor::Matrix;
  AHNTP_CHECK_EQ(x.rows(), num_vertices_);
  Matrix* mess_e = ws->Acquire(edge_mean_.rows(), x.cols());
  tensor::SpMMInto(mess_e, edge_mean_, x);
  Matrix* h_e = ws->Acquire(mess_e->rows(), mess_e->cols());
  tensor::MulColBroadcastInto(h_e, *mess_e, edge_weight_.value());

  if (!use_attention_) {
    Matrix* mess_v = ws->Acquire(vertex_mean_.rows(), h_e->cols());
    tensor::SpMMInto(mess_v, vertex_mean_, *h_e);
    Matrix& out = nn::InferLinear(*heads_.front().transform, *mess_v, ws);
    tensor::ReluInto(&out, out);
    return out;
  }

  const size_t p = pairs_.vertex.size();
  std::vector<Matrix*> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    Matrix& wh_e = nn::InferLinear(*head.transform, *h_e, ws);
    Matrix& wx = nn::InferLinear(*head.transform, x, ws);
    Matrix* wx_pairs = ws->Acquire(p, wx.cols());
    tensor::GatherRowsInto(wx_pairs, wx, pairs_.vertex);
    Matrix* whe_pairs = ws->Acquire(p, wh_e.cols());
    tensor::GatherRowsInto(whe_pairs, wh_e, pairs_.edge);
    Matrix* score = ws->Acquire(p, 1);
    tensor::MatMulInto(score, *wx_pairs, head.attn_vertex.value());
    Matrix* score_edge = ws->Acquire(p, 1);
    tensor::MatMulInto(score_edge, *whe_pairs, head.attn_edge.value());
    tensor::AddInto(score, *score, *score_edge);
    tensor::LeakyReluInto(score, *score, leaky_slope_);
    Matrix* alpha = ws->Acquire(p, 1);
    tensor::SegmentSoftmaxInto(alpha, *score, pairs_.vertex, num_vertices_);
    tensor::MulColBroadcastInto(whe_pairs, *whe_pairs, *alpha);
    Matrix* agg = ws->Acquire(num_vertices_, whe_pairs->cols());
    tensor::SegmentSumInto(agg, *whe_pairs, pairs_.vertex, num_vertices_);
    head_outputs.push_back(agg);
  }
  Matrix* combined = head_outputs.front();
  if (head_outputs.size() > 1) {
    combined = ws->Acquire(num_vertices_, out_features_);
    std::vector<const Matrix*> parts(head_outputs.begin(),
                                     head_outputs.end());
    tensor::ConcatColsInto(combined, parts);
  }
  tensor::ReluInto(combined, *combined);
  return *combined;
}

std::vector<Variable> AdaptiveHypergraphConv::Parameters() const {
  std::vector<Variable> params;
  for (const Head& head : heads_) {
    for (auto& p : head.transform->Parameters()) params.push_back(p);
    if (use_attention_) {
      params.push_back(head.attn_vertex);
      params.push_back(head.attn_edge);
    }
  }
  params.push_back(edge_weight_);
  return params;
}

std::vector<nn::Module*> AdaptiveHypergraphConv::Submodules() {
  std::vector<nn::Module*> subs;
  for (const Head& head : heads_) subs.push_back(head.transform.get());
  return subs;
}

}  // namespace ahntp::core
