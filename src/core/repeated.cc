#include "core/repeated.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace ahntp::core {

namespace {

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  double sum = 0.0;
  for (double v : values) sum += v;
  summary.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      double d = v - summary.mean;
      sq += d * d;
    }
    summary.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return summary;
}

}  // namespace

std::string RepeatedResult::ToString() const {
  return StrFormat(
      "%s over %d runs: acc=%.4f±%.4f f1=%.4f±%.4f auc=%.4f±%.4f",
      model.c_str(), num_runs, accuracy.mean, accuracy.stddev, f1.mean,
      f1.stddev, auc.mean, auc.stddev);
}

Result<RepeatedResult> RunRepeatedExperiment(const data::SocialDataset& dataset,
                                             ExperimentConfig config,
                                             int num_runs,
                                             bool vary_split_seed) {
  AHNTP_CHECK_GE(num_runs, 1);
  RepeatedResult aggregate;
  aggregate.model = config.model;
  aggregate.num_runs = num_runs;
  uint64_t base_model_seed = config.model_seed;
  uint64_t base_split_seed = config.split.seed;
  // Fan the independent runs out across the pool: every run gets its own
  // config/seed and trains a private model against the shared read-only
  // dataset. Kernels inside a run then execute inline on that run's worker
  // (nested-parallelism policy in common/parallel.h). Runs are aggregated
  // by run index below, so the summary is the same at any thread count.
  std::vector<Result<ExperimentResult>> runs(
      static_cast<size_t>(num_runs), Status::Internal("run never executed"));
  ParallelFor(0, static_cast<size_t>(num_runs), 1, [&](size_t r0, size_t r1) {
    for (size_t run = r0; run < r1; ++run) {
      ExperimentConfig run_config = config;
      run_config.model_seed = base_model_seed + run;
      if (vary_split_seed) {
        run_config.split.seed = base_split_seed + run;
      }
      runs[run] = RunExperiment(dataset, run_config);
    }
  });
  std::vector<double> accs, f1s, aucs;
  for (size_t run = 0; run < runs.size(); ++run) {
    AHNTP_RETURN_IF_ERROR(runs[run].status());
    ExperimentResult result = std::move(runs[run]).value();
    accs.push_back(result.test.accuracy);
    f1s.push_back(result.test.f1);
    aucs.push_back(result.test.auc);
    aggregate.total_train_seconds += result.train_seconds;
    aggregate.last = std::move(result);
  }
  aggregate.accuracy = Summarize(accs);
  aggregate.f1 = Summarize(f1s);
  aggregate.auc = Summarize(aucs);
  return aggregate;
}

Result<RepeatedResult> RunCrossValidation(const data::SocialDataset& dataset,
                                          ExperimentConfig config,
                                          int num_folds) {
  AHNTP_CHECK_GE(num_folds, 2);
  // Each fold reshuffles positives with a distinct split seed, so the 20%
  // test slice rotates through the edge set (sampling without the
  // bookkeeping of exact partitioning, which negative sampling would break
  // anyway).
  return RunRepeatedExperiment(dataset, config, num_folds,
                               /*vary_split_seed=*/true);
}

}  // namespace ahntp::core
