#include "core/repeated.h"

#include <cmath>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/fileio.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ahntp::core {

namespace {

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  double sum = 0.0;
  for (double v : values) sum += v;
  summary.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      double d = v - summary.mean;
      sq += d * d;
    }
    summary.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Sweep-state checkpoint format (line-based, comma-separated).
//
//   ahntp-sweep-state,<version>,<model>,<num_runs>,<vary_split_seed>,
//       <model_seed>,<split_seed>
//   run,<idx>,ok,<threshold>,<best_epoch>,<setup_s>,<train_s>,<num_params>,
//       <test acc,prec,rec,f1,auc,n>,<train acc,prec,rec,f1,auc,n>
//   run,<idx>,failed,<status code>,<message, may contain commas>
//
// Floating-point fields use C hexfloats ("%a") so a reloaded run is
// bit-identical to the run that produced it; ParseDouble (strtod) reads
// them back exactly. The header fingerprints the sweep so --resume cannot
// silently mix state from a different model or seed range.
// ---------------------------------------------------------------------------

constexpr int kStateVersion = 1;

std::string SerializeMetrics(const BinaryMetrics& m) {
  return StrFormat("%a,%a,%a,%a,%a,%zu", m.accuracy, m.precision, m.recall,
                   m.f1, m.auc, m.num_samples);
}

std::string HeaderLine(const ExperimentConfig& config, int num_runs,
                       bool vary_split_seed) {
  return StrFormat("ahntp-sweep-state,%d,%s,%d,%d,%llu,%llu", kStateVersion,
                   config.model.c_str(), num_runs, vary_split_seed ? 1 : 0,
                   static_cast<unsigned long long>(config.model_seed),
                   static_cast<unsigned long long>(config.split.seed));
}

std::string SerializeRun(size_t idx, const Result<ExperimentResult>& run) {
  if (!run.ok()) {
    return StrFormat("run,%zu,failed,%s,%s", idx,
                     StatusCodeToString(run.status().code()),
                     run.status().message().c_str());
  }
  const ExperimentResult& r = run.value();
  return StrFormat("run,%zu,ok,%a,%d,%a,%a,%zu,%s,%s", idx,
                   static_cast<double>(r.threshold), r.best_epoch,
                   r.setup_seconds, r.train_seconds, r.num_parameters,
                   SerializeMetrics(r.test).c_str(),
                   SerializeMetrics(r.train).c_str());
}

Status ParseMetrics(const std::vector<std::string>& fields, size_t offset,
                    BinaryMetrics* out) {
  AHNTP_ASSIGN_OR_RETURN(out->accuracy, ParseDouble(fields[offset]));
  AHNTP_ASSIGN_OR_RETURN(out->precision, ParseDouble(fields[offset + 1]));
  AHNTP_ASSIGN_OR_RETURN(out->recall, ParseDouble(fields[offset + 2]));
  AHNTP_ASSIGN_OR_RETURN(out->f1, ParseDouble(fields[offset + 3]));
  AHNTP_ASSIGN_OR_RETURN(out->auc, ParseDouble(fields[offset + 4]));
  AHNTP_ASSIGN_OR_RETURN(int64_t n, ParseInt(fields[offset + 5]));
  out->num_samples = static_cast<size_t>(n);
  return Status::Ok();
}

/// Completed runs recovered from a prior sweep's state file, by run index.
/// Failed runs are deliberately *not* recovered: a resumed sweep retries
/// them (the failure may have been an injected or transient fault).
Status LoadSweepState(const std::string& path, const ExperimentConfig& config,
                      int num_runs, bool vary_split_seed,
                      std::vector<Result<ExperimentResult>>* runs,
                      std::vector<uint8_t>* loaded) {
  std::string contents;
  AHNTP_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  std::vector<std::string> lines = StrSplit(contents, '\n');
  if (lines.empty() || StrTrim(lines[0]).empty()) {
    return Status::Corruption("sweep state is empty: " + path);
  }
  const std::string expected = HeaderLine(config, num_runs, vary_split_seed);
  if (StrTrim(lines[0]) != expected) {
    return Status::InvalidArgument(StrFormat(
        "sweep state %s does not match this sweep (header \"%s\", expected "
        "\"%s\"); delete it or fix the configuration",
        path.c_str(), StrTrim(lines[0]).c_str(), expected.c_str()));
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = StrTrim(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, ',');
    if (fields.size() < 3 || fields[0] != "run") {
      return Status::Corruption(
          StrFormat("sweep state %s line %zu: unrecognized record \"%s\"",
                    path.c_str(), i + 1, line.c_str()));
    }
    AHNTP_ASSIGN_OR_RETURN(int64_t idx64, ParseInt(fields[1]));
    if (idx64 < 0 || idx64 >= num_runs) {
      return Status::Corruption(StrFormat(
          "sweep state %s line %zu: run index %lld out of range [0, %d)",
          path.c_str(), i + 1, static_cast<long long>(idx64), num_runs));
    }
    size_t idx = static_cast<size_t>(idx64);
    if (fields[2] == "failed") continue;  // retried on resume
    if (fields[2] != "ok" || fields.size() != 20) {
      return Status::Corruption(
          StrFormat("sweep state %s line %zu: malformed run record \"%s\"",
                    path.c_str(), i + 1, line.c_str()));
    }
    ExperimentResult result;
    result.model = config.model;
    AHNTP_ASSIGN_OR_RETURN(double threshold, ParseDouble(fields[3]));
    result.threshold = static_cast<float>(threshold);
    AHNTP_ASSIGN_OR_RETURN(int64_t best_epoch, ParseInt(fields[4]));
    result.best_epoch = static_cast<int>(best_epoch);
    AHNTP_ASSIGN_OR_RETURN(result.setup_seconds, ParseDouble(fields[5]));
    AHNTP_ASSIGN_OR_RETURN(result.train_seconds, ParseDouble(fields[6]));
    AHNTP_ASSIGN_OR_RETURN(int64_t num_params, ParseInt(fields[7]));
    result.num_parameters = static_cast<size_t>(num_params);
    AHNTP_RETURN_IF_ERROR(ParseMetrics(fields, 8, &result.test));
    AHNTP_RETURN_IF_ERROR(ParseMetrics(fields, 14, &result.train));
    (*runs)[idx] = std::move(result);
    (*loaded)[idx] = true;
  }
  return Status::Ok();
}

/// Rewrites the sweep-state file with every finished run so far. Atomic
/// (temp + rename, common/fileio.h), so a crash mid-write leaves the
/// previous state intact. A state-save failure degrades the sweep to
/// non-resumable rather than aborting it.
/// Fault-injection site: "sweep.state.save".
Status SaveSweepState(const std::string& path, const ExperimentConfig& config,
                      int num_runs, bool vary_split_seed,
                      const std::vector<Result<ExperimentResult>>& runs,
                      const std::vector<uint8_t>& done) {
  AHNTP_RETURN_IF_ERROR(fault::MaybeIoError("sweep.state.save"));
  std::string contents = HeaderLine(config, num_runs, vary_split_seed);
  contents.push_back('\n');
  for (size_t idx = 0; idx < runs.size(); ++idx) {
    if (!done[idx]) continue;
    contents += SerializeRun(idx, runs[idx]);
    contents.push_back('\n');
  }
  return WriteFileAtomic(path, contents);
}

}  // namespace

std::string RepeatedResult::ToString() const {
  std::string text = StrFormat(
      "%s over %d runs: acc=%.4f±%.4f f1=%.4f±%.4f auc=%.4f±%.4f",
      model.c_str(), num_runs, accuracy.mean, accuracy.stddev, f1.mean,
      f1.stddev, auc.mean, auc.stddev);
  if (num_resumed > 0) {
    text += StrFormat(" (%d resumed)", num_resumed);
  }
  if (num_failed > 0) {
    text += StrFormat("; %d failed:", num_failed);
    for (const std::string& failure : failures) {
      text += "\n  " + failure;
    }
  }
  return text;
}

Result<RepeatedResult> RunRepeatedExperiment(const data::SocialDataset& dataset,
                                             ExperimentConfig config,
                                             int num_runs,
                                             bool vary_split_seed,
                                             const SweepOptions& options) {
  AHNTP_CHECK_GE(num_runs, 1);
  RepeatedResult aggregate;
  aggregate.model = config.model;
  uint64_t base_model_seed = config.model_seed;
  uint64_t base_split_seed = config.split.seed;

  std::vector<Result<ExperimentResult>> runs(
      static_cast<size_t>(num_runs), Status::Internal("run never executed"));
  // uint8_t (not vector<bool>): workers flag distinct indices concurrently,
  // and packed bits would make those writes race on shared words.
  std::vector<uint8_t> done(static_cast<size_t>(num_runs), 0);
  if (options.resume && !options.state_path.empty() &&
      std::filesystem::exists(options.state_path)) {
    AHNTP_RETURN_IF_ERROR(LoadSweepState(options.state_path, config, num_runs,
                                         vary_split_seed, &runs, &done));
    for (uint8_t d : done) aggregate.num_resumed += d ? 1 : 0;
  }

  // After each run finishes, its result is published and the full state
  // (all finished runs, in index order) rewritten atomically under this
  // mutex, so an interrupted sweep can resume losing at most the in-flight
  // runs.
  std::mutex state_mutex;
  bool state_save_warned = false;
  auto publish_result = [&](size_t idx, Result<ExperimentResult> r) {
    std::lock_guard<std::mutex> lock(state_mutex);
    runs[idx] = std::move(r);
    done[idx] = 1;
    if (options.state_path.empty()) return;
    Status status = SaveSweepState(options.state_path, config, num_runs,
                                   vary_split_seed, runs, done);
    if (!status.ok() && !state_save_warned) {
      state_save_warned = true;
      AHNTP_LOG(Warning) << "sweep state checkpoint failed (sweep continues, "
                            "but is not resumable): "
                         << status.ToString();
    }
  };

  // Fan the independent runs out across the pool: every run gets its own
  // config/seed and trains a private model against the shared read-only
  // dataset. Kernels inside a run then execute inline on that run's worker
  // (nested-parallelism policy in common/parallel.h). Runs are aggregated
  // by run index below, so the summary is the same at any thread count.
  // A run that throws or returns an error is captured as that run's Status
  // and reported in the summary; the rest of the sweep completes.
  ParallelFor(0, static_cast<size_t>(num_runs), 1, [&](size_t r0, size_t r1) {
    for (size_t run = r0; run < r1; ++run) {
      if (done[run]) continue;  // recovered via --resume
      trace::TraceSpan run_span("sweep.run");
      ExperimentConfig run_config = config;
      run_config.model_seed = base_model_seed + run;
      if (vary_split_seed) {
        run_config.split.seed = base_split_seed + run;
      }
      Result<ExperimentResult> result = Status::Internal("run never executed");
      try {
        fault::MaybeThrow("experiment.run");
        result = RunExperiment(dataset, run_config);
      } catch (const std::exception& e) {
        result = Status::Internal(
            StrFormat("run %zu threw: %s", run, e.what()));
      }
      publish_result(run, std::move(result));
    }
  });

  std::vector<double> accs, f1s, aucs;
  Status first_error = Status::Ok();
  for (size_t run = 0; run < runs.size(); ++run) {
    if (!runs[run].ok()) {
      ++aggregate.num_failed;
      AHNTP_METRIC_COUNT("experiment.run_failures", 1);
      aggregate.failures.push_back(StrFormat(
          "run %zu: %s", run, runs[run].status().ToString().c_str()));
      if (first_error.ok()) first_error = runs[run].status();
      continue;
    }
    ExperimentResult result = runs[run].value();
    accs.push_back(result.test.accuracy);
    f1s.push_back(result.test.f1);
    aucs.push_back(result.test.auc);
    aggregate.total_train_seconds += result.train_seconds;
    aggregate.last = std::move(result);
    ++aggregate.num_runs;
  }
  if (metrics::Enabled() && fault::Enabled()) {
    // Snapshot of the fault registry at sweep end: lets a telemetry consumer
    // correlate run failures with how many injections actually fired.
    metrics::GetGauge("fault.injections")
        .Set(static_cast<double>(fault::InjectionCount()));
  }
  if (aggregate.num_runs == 0) {
    // Nothing succeeded: degrading further would hide total failure.
    return first_error;
  }
  aggregate.accuracy = Summarize(accs);
  aggregate.f1 = Summarize(f1s);
  aggregate.auc = Summarize(aucs);
  return aggregate;
}

Result<RepeatedResult> RunCrossValidation(const data::SocialDataset& dataset,
                                          ExperimentConfig config,
                                          int num_folds) {
  AHNTP_CHECK_GE(num_folds, 2);
  // Each fold reshuffles positives with a distinct split seed, so the 20%
  // test slice rotates through the edge set (sampling without the
  // bookkeeping of exact partitioning, which negative sampling would break
  // anyway).
  return RunRepeatedExperiment(dataset, config, num_folds,
                               /*vary_split_seed=*/true);
}

}  // namespace ahntp::core
