#include "core/dynamic_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "hypergraph/builders.h"
#include "hypergraph/dynamic.h"

namespace ahntp::core {

using hypergraph::Hypergraph;

Result<DynamicTrustPipeline> DynamicTrustPipeline::Create(
    const data::SocialDataset& dataset, DynamicPipelineOptions options) {
  trace::TraceSpan span("dynamic.create");
  DynamicTrustPipeline p;
  p.options_ = options;
  p.dataset_ = dataset;
  if (p.options_.store.num_items == 0) {
    p.options_.store.num_items = static_cast<size_t>(dataset.num_items);
  }

  auto store = graph::MutableTrustGraph::Create(
      static_cast<size_t>(dataset.num_users), dataset.trust_edges,
      p.options_.store);
  AHNTP_RETURN_IF_ERROR(store.status());
  p.store_.emplace(std::move(store).value());
  const graph::Digraph& view = p.store_->View();

  p.features_ = data::BuildFeatureMatrix(p.dataset_, p.options_.features);

  // Influence: cold solve (or the override handed over by a rebuild). The
  // motif counter is kept either way so later deltas patch instead of
  // re-enumerating.
  const AhntpConfig& mc = p.options_.model;
  if (mc.use_mpr) {
    p.motifs_.emplace(view, mc.motif);
  }
  if (!mc.influence_override.empty()) {
    AHNTP_CHECK_EQ(mc.influence_override.size(), view.num_nodes());
    p.influence_ = mc.influence_override;
  } else {
    graph::PageRankStats stats;
    if (mc.use_mpr) {
      graph::MotifPageRankOptions mpr;
      mpr.alpha = mc.mpr_alpha;
      mpr.motif = mc.motif;
      mpr.pagerank = mc.pagerank;
      p.influence_ = graph::MotifPageRankFrom(view.Adjacency(),
                                              p.motifs_->ToCsr(), mpr,
                                              /*warm_start=*/nullptr, &stats)
                         .scores;
    } else {
      p.influence_ = graph::PageRankWarm(view.Adjacency(), mc.pagerank,
                                         /*warm_start=*/nullptr, &stats);
    }
    p.cold_pr_iterations_ = stats.iterations;
  }

  // Hypergroup states + identity keys.
  const size_t n = view.num_nodes();
  p.social_ =
      hypergraph::BuildSocialInfluenceHypergroup(view, p.influence_,
                                                 mc.social_top_k);
  p.attribute_ = hypergraph::BuildAttributeHypergroup(
      n, p.dataset_.attributes, mc.attribute_min_size);
  p.pairwise_ = hypergraph::BuildPairwiseHypergroup(view);
  p.hop_options_.num_hops = mc.multi_hop;
  p.hop_options_.max_edge_size = mc.multi_hop_max_edge_size;
  p.multihop_ = hypergraph::BuildMultiHopHypergroup(view, p.hop_options_);
  p.node_keys_ = hypergraph::ConcatKeys(
      hypergraph::SocialEdgeKeys(n),
      hypergraph::AttributeEdgeKeys(n, p.dataset_.attributes,
                                    mc.attribute_min_size));
  p.pairwise_keys_ = hypergraph::PairwiseEdgeKeys(p.pairwise_, view);
  p.multihop_keys_ = hypergraph::MultiHopEdgeKeys(n, p.hop_options_);

  // Model + predictor. The influence override keeps the model from
  // re-solving (M)PR — it consumes the pipeline's vector.
  p.rng_ = std::make_unique<Rng>(p.options_.seed);
  AhntpConfig model_config = mc;
  model_config.influence_override = p.influence_;
  models::ModelInputs inputs;
  inputs.features = &p.features_;
  inputs.graph = &view;
  inputs.dataset = &p.dataset_;
  inputs.rng = p.rng_.get();
  p.model_ = std::make_shared<AhntpModel>(inputs, model_config);
  p.predictor_ = std::make_unique<models::TrustPredictor>(
      p.model_, p.options_.predictor, p.rng_.get());

  // Prime the activation caches — the full pass incremental refreshes are
  // measured against.
  p.ws_ = std::make_unique<tensor::Workspace>();
  p.model_->InferUsersCached(p.ws_.get());
  p.ws_->Reset();
  return p;
}

Result<DeltaOutcome> DynamicTrustPipeline::ApplyDelta(
    const graph::GraphDelta& delta) {
  trace::TraceSpan span("dynamic.apply");
  AHNTP_METRIC_COUNT("dynamic.apply.calls", 1);

  // Snapshot the pre-delta view before Apply() invalidates it — the
  // multi-hop ball diff needs adjacency on both sides of the delta. Only
  // deltas carrying edge operations can be structural.
  graph::Digraph old_view(0);
  if (!delta.add_edges.empty() || !delta.remove_edges.empty()) {
    old_view = store_->View();
  }

  auto applied = store_->Apply(delta);
  AHNTP_RETURN_IF_ERROR(applied.status());
  DeltaOutcome outcome;
  outcome.receipt = std::move(applied).value();
  const graph::DeltaReceipt& receipt = outcome.receipt;

  // The downstream-refresh fault site. Everything derived is still
  // untouched here, so rolling the store back restores the exact previous
  // pipeline state, generation included.
  Status fault =
      fault::FaultPoint("plan.delta.refresh", StatusCode::kInternal);
  if (!fault.ok()) {
    Status revert = store_->RevertLast();
    AHNTP_CHECK(revert.ok()) << revert.ToString();
    return fault;
  }

  const bool structural = receipt.structural_change();
  const graph::Digraph& new_view = store_->View();

  // Dataset bookkeeping: the edge list mirrors the canonical store state;
  // per-edge timestamps cannot be maintained under mutation and are
  // dropped on the first structural delta.
  if (structural) {
    dataset_.trust_edges = store_->CanonicalEdges();
    dataset_.trust_edge_times.clear();
  }
  for (const graph::RatingDelta& r : delta.add_ratings) {
    dataset_.purchases.push_back(
        data::Purchase{r.user, r.item, r.rating});
  }

  // Per-stage latency telemetry (seconds): where an apply actually spends
  // its time — analytics (motifs + influence), hypergroup maintenance,
  // branch diffing, the encoder refresh, and the plan-table patch.
  Stopwatch stage_watch;
  auto observe_stage = [&stage_watch](const char* name) {
    if (metrics::Enabled()) {
      metrics::GetHistogram(name).Observe(stage_watch.ElapsedSeconds());
    }
    stage_watch.Restart();
  };

  Hypergraph new_social(0);
  Hypergraph new_pairwise(0);
  Hypergraph new_multihop(0);
  std::vector<int64_t> new_pairwise_keys;
  if (structural) {
    // Motif counts: replay the applied changes (removes before adds, the
    // store's commit order).
    if (motifs_) {
      for (const graph::Edge& e : receipt.applied_removes) {
        motifs_->RemoveEdge(e.src, e.dst);
      }
      for (const graph::Edge& e : receipt.applied_adds) {
        motifs_->AddEdge(e.src, e.dst);
      }
    }

    // Influence: warm-started from the previous vector.
    const AhntpConfig& mc = options_.model;
    graph::PageRankStats stats;
    if (mc.use_mpr) {
      graph::MotifPageRankOptions mpr;
      mpr.alpha = mc.mpr_alpha;
      mpr.motif = mc.motif;
      mpr.pagerank = mc.pagerank;
      influence_ = graph::MotifPageRankFrom(new_view.Adjacency(),
                                            motifs_->ToCsr(), mpr,
                                            &influence_, &stats)
                       .scores;
    } else {
      influence_ = graph::PageRankWarm(new_view.Adjacency(), mc.pagerank,
                                       &influence_, &stats);
    }
    outcome.pagerank_iterations = stats.iterations;
    outcome.pagerank_cold_iterations = cold_pr_iterations_;
    AHNTP_METRIC_COUNT(
        "dynamic.pagerank.iterations_saved",
        static_cast<size_t>(std::max(0, cold_pr_iterations_ -
                                            stats.iterations)));
    observe_stage("dynamic.apply.analytics_seconds");

    // Hypergroups: social whole (global top-K), pairwise/multi-hop
    // incrementally, attribute never.
    new_social = hypergraph::BuildSocialInfluenceHypergroup(
        new_view, influence_, mc.social_top_k);
    outcome.social_rebuilt = true;
    new_pairwise = hypergraph::UpdatePairwiseHypergroup(
        pairwise_, new_view, receipt.applied_adds, receipt.applied_removes);
    new_pairwise_keys = hypergraph::PairwiseEdgeKeys(new_pairwise, new_view);
    new_multihop = hypergraph::UpdateMultiHopHypergroup(
        multihop_, old_view, new_view, hop_options_,
        receipt.touched_vertices);
    observe_stage("dynamic.apply.hypergroups_seconds");
  }

  // Feature rows: purchases feed the behavior/histogram columns, so only
  // rating-touched users can change (attributes are static; trust edges
  // are deliberately not encoded as features).
  std::vector<int> dirty_feature_rows;
  tensor::Matrix new_feature_rows;
  if (receipt.rating_rows > 0 && (options_.features.include_behavior ||
                                  options_.features.include_category_histogram)) {
    features_ = data::BuildFeatureMatrix(dataset_, options_.features);
    dirty_feature_rows = receipt.touched_rating_users;
    new_feature_rows =
        tensor::Matrix(dirty_feature_rows.size(), features_.cols());
    tensor::GatherRowsInto(&new_feature_rows, features_, dirty_feature_rows);
  }

  if (!structural && dirty_feature_rows.empty()) {
    // Nothing derived changed (all-ignored or attribute-only-features
    // rating delta); the generation bump alone flushes serving caches.
    return outcome;
  }

  // Branch diffs + model refresh.
  AhntpModel::BranchUpdate node_update;
  AhntpModel::BranchUpdate structure_update;
  if (structural) {
    node_update.hypergraph = Hypergraph::Concat(new_social, attribute_);
    node_update.diff = hypergraph::DiffBranch(
        model_->node_hypergraph(), node_keys_, node_update.hypergraph,
        node_keys_);
    node_update.edge_sources.assign(new_social.num_edges(),
                                    "social-influence");
    node_update.edge_sources.insert(node_update.edge_sources.end(),
                                    attribute_.num_edges(), "attribute");

    structure_update.hypergraph = Hypergraph::Concat(new_pairwise,
                                                     new_multihop);
    structure_update.diff = hypergraph::DiffBranch(
        model_->structure_hypergraph(),
        hypergraph::ConcatKeys(pairwise_keys_, multihop_keys_),
        structure_update.hypergraph,
        hypergraph::ConcatKeys(new_pairwise_keys, multihop_keys_));
    structure_update.edge_sources.assign(new_pairwise.num_edges(),
                                         "pairwise");
    structure_update.edge_sources.insert(structure_update.edge_sources.end(),
                                         new_multihop.num_edges(),
                                         "multi-hop");
    observe_stage("dynamic.apply.diff_seconds");
  }

  ws_->Reset();
  AhntpModel::RefreshResult refresh = model_->RefreshIncremental(
      std::move(node_update), std::move(structure_update),
      dirty_feature_rows, new_feature_rows, influence_, ws_.get());
  ws_->Reset();
  observe_stage("dynamic.apply.refresh_seconds");

  if (structural) {
    social_ = std::move(new_social);
    pairwise_ = std::move(new_pairwise);
    pairwise_keys_ = std::move(new_pairwise_keys);
    multihop_ = std::move(new_multihop);
  }

  // Plan tables: patch only the dirty rows (fp32 memcpy / int8 per-row
  // requantize; sharded plans re-spill only the dirty shards).
  AHNTP_RETURN_IF_ERROR(predictor_->RefreshPlanRows(
      refresh.dirty_users, refresh.dirty_embeddings));
  observe_stage("dynamic.apply.plan_seconds");

  AHNTP_METRIC_COUNT("dynamic.apply.dirty_users",
                     refresh.dirty_users.size());
  outcome.refreshed_users = std::move(refresh.dirty_users);
  return outcome;
}

Result<DynamicTrustPipeline> DynamicTrustPipeline::RebuildFromScratch()
    const {
  DynamicPipelineOptions options = options_;
  options.model.influence_override = influence_;
  return Create(dataset_, options);
}

}  // namespace ahntp::core
