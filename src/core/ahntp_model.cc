#include "core/ahntp_model.h"

#include <algorithm>

#include "common/check.h"
#include "graph/pagerank.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::core {

using autograd::Variable;
using hypergraph::Hypergraph;

AhntpModel::AhntpModel(const models::ModelInputs& inputs,
                       const AhntpConfig& config)
    : config_(config),
      features_(autograd::Constant(*inputs.features)),
      node_hg_(0),
      structure_hg_(0),
      combined_hg_(0),
      dropout_(config.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr &&
              inputs.dataset != nullptr && inputs.rng != nullptr);
  AHNTP_CHECK(!config_.hidden_dims.empty());
  const graph::Digraph& g = *inputs.graph;

  // ---- Influence scores: MPR (Eqs. 3-5) or plain PageRank (ablation). ----
  if (!config_.influence_override.empty()) {
    AHNTP_CHECK_EQ(config_.influence_override.size(), g.num_nodes());
    influence_ = config_.influence_override;
  } else if (config_.use_mpr) {
    graph::MotifPageRankOptions mpr;
    mpr.alpha = config_.mpr_alpha;
    mpr.motif = config_.motif;
    mpr.pagerank = config_.pagerank;
    influence_ = graph::MotifPageRank(g.Adjacency(), mpr).scores;
  } else {
    influence_ = graph::PageRank(g.Adjacency(), config_.pagerank);
  }

  // ---- Two-tier hypergroups (Section IV-B). ----
  Hypergraph social = hypergraph::BuildSocialInfluenceHypergroup(
      g, influence_, config_.social_top_k);
  Hypergraph attr = hypergraph::BuildAttributeHypergroup(
      g.num_nodes(), inputs.dataset->attributes, config_.attribute_min_size);
  node_hg_ = Hypergraph::Concat(social, attr);
  node_edge_sources_.assign(social.num_edges(), "social-influence");
  node_edge_sources_.insert(node_edge_sources_.end(), attr.num_edges(),
                            "attribute");

  Hypergraph pairwise = hypergraph::BuildPairwiseHypergroup(g);
  hypergraph::MultiHopOptions hop_options;
  hop_options.num_hops = config_.multi_hop;
  hop_options.max_edge_size = config_.multi_hop_max_edge_size;
  Hypergraph multihop = hypergraph::BuildMultiHopHypergroup(g, hop_options);
  structure_hg_ = Hypergraph::Concat(pairwise, multihop);
  structure_edge_sources_.assign(pairwise.num_edges(), "pairwise");
  structure_edge_sources_.insert(structure_edge_sources_.end(),
                                 multihop.num_edges(), "multi-hop");

  combined_hg_ = Hypergraph::Concat(node_hg_, structure_hg_);

  // ---- Branches. ----
  const size_t in_dim = inputs.features->cols();
  node_branch_ = MakeBranch(node_hg_, in_dim, inputs.rng);
  structure_branch_ = MakeBranch(structure_hg_, in_dim, inputs.rng);
}

AhntpModel::Branch AhntpModel::MakeBranch(const Hypergraph& hg, size_t in_dim,
                                          Rng* rng) {
  Branch branch;
  const auto& dims = config_.hidden_dims;
  // Feature-extraction MLP into the first conv width (Section IV-B end).
  branch.feature_mlp = std::make_unique<nn::Mlp>(
      std::vector<size_t>{in_dim, dims[0]}, rng, nn::Activation::kRelu,
      nn::Activation::kRelu);
  size_t prev = dims[0];
  for (size_t out : dims) {
    branch.convs.push_back(std::make_unique<AdaptiveHypergraphConv>(
        hg, prev, out, rng, config_.use_attention, /*leaky_slope=*/0.2f,
        config_.attention_heads));
    prev = out;
  }
  return branch;
}

Variable AhntpModel::RunBranch(const Branch& branch, const Variable& x) {
  Variable h = branch.feature_mlp->Forward(x);
  for (size_t i = 0; i < branch.convs.size(); ++i) {
    h = branch.convs[i]->Forward(h);
    if (i + 1 < branch.convs.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

Variable AhntpModel::EncodeUsers() {
  Variable node_embedding = RunBranch(node_branch_, features_);
  Variable structure_embedding = RunBranch(structure_branch_, features_);
  return autograd::ConcatCols({node_embedding, structure_embedding});
}

tensor::Matrix& AhntpModel::InferBranch(const Branch& branch,
                                        const tensor::Matrix& x,
                                        tensor::Workspace* ws) {
  const tensor::Matrix* h = &nn::InferMlp(*branch.feature_mlp, x, ws);
  tensor::Matrix* out = nullptr;
  for (const auto& conv : branch.convs) {
    out = &conv->Infer(*h, ws);
    h = out;
  }
  return *out;
}

tensor::Matrix AhntpModel::InferUsers(tensor::Workspace* ws) {
  tensor::Matrix& node_embedding =
      InferBranch(node_branch_, features_.value(), ws);
  tensor::Matrix& structure_embedding =
      InferBranch(structure_branch_, features_.value(), ws);
  tensor::Matrix* out = ws->Acquire(
      node_embedding.rows(),
      node_embedding.cols() + structure_embedding.cols());
  tensor::ConcatColsInto(out, {&node_embedding, &structure_embedding});
  return *out;
}

tensor::Matrix& AhntpModel::InferBranchCached(Branch& branch,
                                              const tensor::Matrix& x,
                                              tensor::Workspace* ws) {
  branch.cache.clear();
  branch.cache.reserve(branch.convs.size() + 1);
  const tensor::Matrix* h = &nn::InferMlp(*branch.feature_mlp, x, ws);
  branch.cache.push_back(*h);
  for (const auto& conv : branch.convs) {
    h = &conv->Infer(*h, ws);
    branch.cache.push_back(*h);
  }
  return branch.cache.back();
}

tensor::Matrix AhntpModel::InferUsersCached(tensor::Workspace* ws) {
  tensor::Matrix& node_embedding =
      InferBranchCached(node_branch_, features_.value(), ws);
  tensor::Matrix& structure_embedding =
      InferBranchCached(structure_branch_, features_.value(), ws);
  tensor::Matrix out(node_embedding.rows(),
                     node_embedding.cols() + structure_embedding.cols());
  tensor::ConcatColsInto(&out, {&node_embedding, &structure_embedding});
  return out;
}

std::vector<int> AhntpModel::RefreshBranch(
    Branch& branch, hypergraph::Hypergraph* hg_member,
    std::vector<std::string>* sources_member, BranchUpdate* update,
    const std::vector<int>& seed, tensor::Workspace* ws) {
  const size_t n = hg_member->num_vertices();
  const hypergraph::BranchDiff& diff = update->diff;
  const bool structural = diff.any_change;
  if (structural) {
    for (auto& conv : branch.convs) {
      conv->ResetStructure(update->hypergraph, diff.new_from_old);
    }
    *hg_member = std::move(update->hypergraph);
    *sources_member = std::move(update->edge_sources);
  }

  // Vertices whose structural context changed: any member of a new/changed
  // hyperedge, plus vertices whose ordered incidence sequence changed
  // (their attention segments are laid out differently). These are dirty
  // at every layer regardless of input changes.
  std::vector<char> structure_dirty(n, 0);
  if (structural) {
    for (int e : diff.changed_edges) {
      for (int v : hg_member->EdgeVertices(static_cast<size_t>(e))) {
        structure_dirty[v] = 1;
      }
    }
    for (int v : diff.reorder_dirty) structure_dirty[v] = 1;
  }

  // Vertex -> incident hyperedges of the (new) branch hypergraph, for the
  // closure expansion.
  std::vector<std::vector<int>> incident(n);
  const auto& pairs = hg_member->Pairs();
  for (size_t p = 0; p < pairs.vertex.size(); ++p) {
    incident[pairs.vertex[p]].push_back(pairs.edge[p]);
  }

  // D^0: users whose feature rows changed — recompute their MLP rows.
  // InferMlp is row-local, so running it on the gathered rows is bitwise
  // identical to the corresponding rows of the full pass.
  std::vector<int> dirty = seed;
  if (!dirty.empty()) {
    tensor::Matrix* sub =
        ws->Acquire(dirty.size(), features_.value().cols());
    tensor::GatherRowsInto(sub, features_.value(), dirty);
    const tensor::Matrix& rows = nn::InferMlp(*branch.feature_mlp, *sub, ws);
    tensor::Matrix& x0 = branch.cache[0];
    for (size_t i = 0; i < dirty.size(); ++i) {
      std::copy(rows.RowPtr(i), rows.RowPtr(i) + rows.cols(),
                x0.RowPtr(static_cast<size_t>(dirty[i])));
    }
  }

  for (size_t l = 0; l < branch.convs.size(); ++l) {
    std::vector<char> mark(n, 0);
    for (int v : dirty) {
      mark[v] = 1;
      for (int e : incident[v]) {
        for (int w : hg_member->EdgeVertices(static_cast<size_t>(e))) {
          mark[w] = 1;
        }
      }
    }
    if (structural) {
      for (size_t v = 0; v < n; ++v) {
        if (structure_dirty[v]) mark[v] = 1;
      }
    }
    std::vector<int> next;
    for (size_t v = 0; v < n; ++v) {
      if (mark[v]) next.push_back(static_cast<int>(v));
    }
    if (next.empty()) return {};
    tensor::Matrix& rows = branch.convs[l]->InferRows(branch.cache[l], next, ws);
    tensor::Matrix& out = branch.cache[l + 1];
    for (size_t i = 0; i < next.size(); ++i) {
      std::copy(rows.RowPtr(i), rows.RowPtr(i) + rows.cols(),
                out.RowPtr(static_cast<size_t>(next[i])));
    }
    dirty = std::move(next);
  }
  return dirty;
}

AhntpModel::RefreshResult AhntpModel::RefreshIncremental(
    BranchUpdate node_update, BranchUpdate structure_update,
    const std::vector<int>& dirty_feature_rows,
    const tensor::Matrix& new_feature_rows,
    const std::vector<double>& new_influence, tensor::Workspace* ws) {
  AHNTP_CHECK(caches_primed())
      << "prime the activation caches with InferUsersCached() first";
  AHNTP_CHECK_EQ(new_influence.size(), influence_.size());
  AHNTP_CHECK_EQ(dirty_feature_rows.size(), new_feature_rows.rows());
  influence_ = new_influence;

  if (!dirty_feature_rows.empty()) {
    tensor::Matrix feats = features_.value();
    AHNTP_CHECK_EQ(new_feature_rows.cols(), feats.cols());
    for (size_t i = 0; i < dirty_feature_rows.size(); ++i) {
      int r = dirty_feature_rows[i];
      AHNTP_CHECK(r >= 0 && static_cast<size_t>(r) < feats.rows());
      if (i > 0) {
        AHNTP_CHECK_GT(r, dirty_feature_rows[i - 1]);
      }
      std::copy(new_feature_rows.RowPtr(i),
                new_feature_rows.RowPtr(i) + new_feature_rows.cols(),
                feats.RowPtr(static_cast<size_t>(r)));
    }
    features_ = autograd::Constant(std::move(feats));
  }

  std::vector<int> node_dirty =
      RefreshBranch(node_branch_, &node_hg_, &node_edge_sources_,
                    &node_update, dirty_feature_rows, ws);
  std::vector<int> structure_dirty =
      RefreshBranch(structure_branch_, &structure_hg_,
                    &structure_edge_sources_, &structure_update,
                    dirty_feature_rows, ws);
  if (node_update.diff.any_change || structure_update.diff.any_change) {
    combined_hg_ = Hypergraph::Concat(node_hg_, structure_hg_);
  }

  RefreshResult result;
  std::set_union(node_dirty.begin(), node_dirty.end(),
                 structure_dirty.begin(), structure_dirty.end(),
                 std::back_inserter(result.dirty_users));
  const tensor::Matrix& node_out = node_branch_.cache.back();
  const tensor::Matrix& structure_out = structure_branch_.cache.back();
  result.dirty_embeddings =
      tensor::Matrix(result.dirty_users.size(), embedding_dim());
  for (size_t i = 0; i < result.dirty_users.size(); ++i) {
    const size_t v = static_cast<size_t>(result.dirty_users[i]);
    float* dst = result.dirty_embeddings.RowPtr(i);
    std::copy(node_out.RowPtr(v), node_out.RowPtr(v) + node_out.cols(), dst);
    std::copy(structure_out.RowPtr(v),
              structure_out.RowPtr(v) + structure_out.cols(),
              dst + node_out.cols());
  }
  return result;
}

std::vector<AhntpModel::HyperedgeInfluence> AhntpModel::ExplainUser(
    int u, size_t top_k) {
  AHNTP_CHECK(config_.use_attention)
      << "ExplainUser requires the attention variant";
  AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < node_hg_.num_vertices());
  bool was_training = training_;
  SetTraining(false);
  EncodeUsers();  // refreshes last_attention() on every conv layer
  SetTraining(was_training);

  std::vector<HyperedgeInfluence> influences;
  struct BranchView {
    const Branch* branch;
    const Hypergraph* hg;
    const std::vector<std::string>* sources;
    const char* name;
  };
  const BranchView views[] = {
      {&node_branch_, &node_hg_, &node_edge_sources_, "node"},
      {&structure_branch_, &structure_hg_, &structure_edge_sources_,
       "structure"},
  };
  for (const BranchView& view : views) {
    const AdaptiveHypergraphConv& last = *view.branch->convs.back();
    const auto& pairs = last.pairs();
    const tensor::Matrix& attention = last.last_attention();
    AHNTP_CHECK_EQ(attention.rows(), pairs.vertex.size());
    for (size_t p = 0; p < pairs.vertex.size(); ++p) {
      if (pairs.vertex[p] != u) continue;
      HyperedgeInfluence info;
      info.branch = view.name;
      info.edge_index = pairs.edge[p];
      info.source = (*view.sources)[static_cast<size_t>(pairs.edge[p])];
      info.attention = attention.At(p, 0);
      info.members =
          view.hg->EdgeVertices(static_cast<size_t>(pairs.edge[p]));
      influences.push_back(std::move(info));
    }
  }
  std::sort(influences.begin(), influences.end(),
            [](const HyperedgeInfluence& a, const HyperedgeInfluence& b) {
              return a.attention > b.attention;
            });
  if (influences.size() > top_k) influences.resize(top_k);
  return influences;
}

std::vector<Variable> AhntpModel::Parameters() const {
  std::vector<Variable> params;
  for (const Branch* branch : {&node_branch_, &structure_branch_}) {
    for (auto& p : branch->feature_mlp->Parameters()) params.push_back(p);
    for (const auto& conv : branch->convs) {
      for (auto& p : conv->Parameters()) params.push_back(p);
    }
  }
  return params;
}

std::vector<nn::Module*> AhntpModel::Submodules() {
  std::vector<nn::Module*> subs;
  for (Branch* branch : {&node_branch_, &structure_branch_}) {
    subs.push_back(branch->feature_mlp.get());
    for (const auto& conv : branch->convs) subs.push_back(conv.get());
  }
  return subs;
}

}  // namespace ahntp::core
