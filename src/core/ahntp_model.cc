#include "core/ahntp_model.h"

#include <algorithm>

#include "common/check.h"
#include "graph/pagerank.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::core {

using autograd::Variable;
using hypergraph::Hypergraph;

AhntpModel::AhntpModel(const models::ModelInputs& inputs,
                       const AhntpConfig& config)
    : config_(config),
      features_(autograd::Constant(*inputs.features)),
      node_hg_(0),
      structure_hg_(0),
      combined_hg_(0),
      dropout_(config.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr &&
              inputs.dataset != nullptr && inputs.rng != nullptr);
  AHNTP_CHECK(!config_.hidden_dims.empty());
  const graph::Digraph& g = *inputs.graph;

  // ---- Influence scores: MPR (Eqs. 3-5) or plain PageRank (ablation). ----
  if (config_.use_mpr) {
    graph::MotifPageRankOptions mpr;
    mpr.alpha = config_.mpr_alpha;
    mpr.motif = config_.motif;
    influence_ = graph::MotifPageRank(g.Adjacency(), mpr).scores;
  } else {
    influence_ = graph::PageRank(g.Adjacency());
  }

  // ---- Two-tier hypergroups (Section IV-B). ----
  Hypergraph social = hypergraph::BuildSocialInfluenceHypergroup(
      g, influence_, config_.social_top_k);
  Hypergraph attr = hypergraph::BuildAttributeHypergroup(
      g.num_nodes(), inputs.dataset->attributes, config_.attribute_min_size);
  node_hg_ = Hypergraph::Concat(social, attr);
  node_edge_sources_.assign(social.num_edges(), "social-influence");
  node_edge_sources_.insert(node_edge_sources_.end(), attr.num_edges(),
                            "attribute");

  Hypergraph pairwise = hypergraph::BuildPairwiseHypergroup(g);
  hypergraph::MultiHopOptions hop_options;
  hop_options.num_hops = config_.multi_hop;
  hop_options.max_edge_size = config_.multi_hop_max_edge_size;
  Hypergraph multihop = hypergraph::BuildMultiHopHypergroup(g, hop_options);
  structure_hg_ = Hypergraph::Concat(pairwise, multihop);
  structure_edge_sources_.assign(pairwise.num_edges(), "pairwise");
  structure_edge_sources_.insert(structure_edge_sources_.end(),
                                 multihop.num_edges(), "multi-hop");

  combined_hg_ = Hypergraph::Concat(node_hg_, structure_hg_);

  // ---- Branches. ----
  const size_t in_dim = inputs.features->cols();
  node_branch_ = MakeBranch(node_hg_, in_dim, inputs.rng);
  structure_branch_ = MakeBranch(structure_hg_, in_dim, inputs.rng);
}

AhntpModel::Branch AhntpModel::MakeBranch(const Hypergraph& hg, size_t in_dim,
                                          Rng* rng) {
  Branch branch;
  const auto& dims = config_.hidden_dims;
  // Feature-extraction MLP into the first conv width (Section IV-B end).
  branch.feature_mlp = std::make_unique<nn::Mlp>(
      std::vector<size_t>{in_dim, dims[0]}, rng, nn::Activation::kRelu,
      nn::Activation::kRelu);
  size_t prev = dims[0];
  for (size_t out : dims) {
    branch.convs.push_back(std::make_unique<AdaptiveHypergraphConv>(
        hg, prev, out, rng, config_.use_attention, /*leaky_slope=*/0.2f,
        config_.attention_heads));
    prev = out;
  }
  return branch;
}

Variable AhntpModel::RunBranch(const Branch& branch, const Variable& x) {
  Variable h = branch.feature_mlp->Forward(x);
  for (size_t i = 0; i < branch.convs.size(); ++i) {
    h = branch.convs[i]->Forward(h);
    if (i + 1 < branch.convs.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

Variable AhntpModel::EncodeUsers() {
  Variable node_embedding = RunBranch(node_branch_, features_);
  Variable structure_embedding = RunBranch(structure_branch_, features_);
  return autograd::ConcatCols({node_embedding, structure_embedding});
}

tensor::Matrix& AhntpModel::InferBranch(const Branch& branch,
                                        const tensor::Matrix& x,
                                        tensor::Workspace* ws) {
  const tensor::Matrix* h = &nn::InferMlp(*branch.feature_mlp, x, ws);
  tensor::Matrix* out = nullptr;
  for (const auto& conv : branch.convs) {
    out = &conv->Infer(*h, ws);
    h = out;
  }
  return *out;
}

tensor::Matrix AhntpModel::InferUsers(tensor::Workspace* ws) {
  tensor::Matrix& node_embedding =
      InferBranch(node_branch_, features_.value(), ws);
  tensor::Matrix& structure_embedding =
      InferBranch(structure_branch_, features_.value(), ws);
  tensor::Matrix* out = ws->Acquire(
      node_embedding.rows(),
      node_embedding.cols() + structure_embedding.cols());
  tensor::ConcatColsInto(out, {&node_embedding, &structure_embedding});
  return *out;
}

std::vector<AhntpModel::HyperedgeInfluence> AhntpModel::ExplainUser(
    int u, size_t top_k) {
  AHNTP_CHECK(config_.use_attention)
      << "ExplainUser requires the attention variant";
  AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < node_hg_.num_vertices());
  bool was_training = training_;
  SetTraining(false);
  EncodeUsers();  // refreshes last_attention() on every conv layer
  SetTraining(was_training);

  std::vector<HyperedgeInfluence> influences;
  struct BranchView {
    const Branch* branch;
    const Hypergraph* hg;
    const std::vector<std::string>* sources;
    const char* name;
  };
  const BranchView views[] = {
      {&node_branch_, &node_hg_, &node_edge_sources_, "node"},
      {&structure_branch_, &structure_hg_, &structure_edge_sources_,
       "structure"},
  };
  for (const BranchView& view : views) {
    const AdaptiveHypergraphConv& last = *view.branch->convs.back();
    const auto& pairs = last.pairs();
    const tensor::Matrix& attention = last.last_attention();
    AHNTP_CHECK_EQ(attention.rows(), pairs.vertex.size());
    for (size_t p = 0; p < pairs.vertex.size(); ++p) {
      if (pairs.vertex[p] != u) continue;
      HyperedgeInfluence info;
      info.branch = view.name;
      info.edge_index = pairs.edge[p];
      info.source = (*view.sources)[static_cast<size_t>(pairs.edge[p])];
      info.attention = attention.At(p, 0);
      info.members =
          view.hg->EdgeVertices(static_cast<size_t>(pairs.edge[p]));
      influences.push_back(std::move(info));
    }
  }
  std::sort(influences.begin(), influences.end(),
            [](const HyperedgeInfluence& a, const HyperedgeInfluence& b) {
              return a.attention > b.attention;
            });
  if (influences.size() > top_k) influences.resize(top_k);
  return influences;
}

std::vector<Variable> AhntpModel::Parameters() const {
  std::vector<Variable> params;
  for (const Branch* branch : {&node_branch_, &structure_branch_}) {
    for (auto& p : branch->feature_mlp->Parameters()) params.push_back(p);
    for (const auto& conv : branch->convs) {
      for (auto& p : conv->Parameters()) params.push_back(p);
    }
  }
  return params;
}

std::vector<nn::Module*> AhntpModel::Submodules() {
  std::vector<nn::Module*> subs;
  for (Branch* branch : {&node_branch_, &structure_branch_}) {
    subs.push_back(branch->feature_mlp.get());
    for (const auto& conv : branch->convs) subs.push_back(conv.get());
  }
  return subs;
}

}  // namespace ahntp::core
