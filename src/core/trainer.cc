#include "core/trainer.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/trace.h"
#include "hypergraph/regularizer.h"
#include "nn/losses.h"
#include "nn/optimizer.h"

namespace ahntp::core {

using autograd::Variable;

namespace {

/// Builds the segment structure for Eq. 20 within a batch: pairs sharing an
/// anchor (source user) form one segment.
struct ContrastiveGroups {
  std::vector<int> anchors;        // segment id per pair
  size_t num_anchors = 0;
  std::vector<bool> is_positive;   // per pair
  bool has_positive_anchor = false;
};

ContrastiveGroups GroupByAnchor(const std::vector<data::TrustPair>& batch) {
  ContrastiveGroups groups;
  groups.anchors.reserve(batch.size());
  groups.is_positive.reserve(batch.size());
  std::unordered_map<int, int> anchor_ids;
  for (const data::TrustPair& p : batch) {
    auto [it, inserted] =
        anchor_ids.emplace(p.src, static_cast<int>(anchor_ids.size()));
    groups.anchors.push_back(it->second);
    bool positive = p.label >= 0.5f;
    groups.is_positive.push_back(positive);
    if (positive) groups.has_positive_anchor = true;
  }
  groups.num_anchors = anchor_ids.size();
  return groups;
}

}  // namespace

namespace {

/// Copies all parameter values (for best-epoch restore).
std::vector<tensor::Matrix> SnapshotParameters(
    const std::vector<Variable>& params) {
  std::vector<tensor::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const Variable& p : params) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(std::vector<Variable>* params,
                       const std::vector<tensor::Matrix>& snapshot) {
  AHNTP_CHECK_EQ(params->size(), snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    (*params)[i].mutable_value() = snapshot[i];
  }
}

}  // namespace

Status ValidateTrainerConfig(const TrainerConfig& config) {
  if (config.epochs <= 0) {
    return Status::InvalidArgument(
        StrFormat("epochs must be positive, got %d", config.epochs));
  }
  if (!(config.learning_rate > 0.0f) ||
      !std::isfinite(config.learning_rate)) {
    return Status::InvalidArgument(
        StrFormat("learning_rate must be positive and finite, got %g",
                  static_cast<double>(config.learning_rate)));
  }
  if (config.weight_decay < 0.0f) {
    return Status::InvalidArgument(
        StrFormat("weight_decay must be >= 0, got %g",
                  static_cast<double>(config.weight_decay)));
  }
  if (config.lambda1 < 0.0f || config.lambda2 < 0.0f) {
    return Status::InvalidArgument(
        StrFormat("lambda1/lambda2 must be >= 0, got %g/%g",
                  static_cast<double>(config.lambda1),
                  static_cast<double>(config.lambda2)));
  }
  if (config.use_contrastive && !(config.temperature > 0.0f)) {
    return Status::InvalidArgument(
        StrFormat("temperature must be positive, got %g",
                  static_cast<double>(config.temperature)));
  }
  if (config.aux_loss_weight < 0.0f) {
    return Status::InvalidArgument(
        StrFormat("aux_loss_weight must be >= 0, got %g",
                  static_cast<double>(config.aux_loss_weight)));
  }
  if (config.regularizer_weight < 0.0f) {
    return Status::InvalidArgument(
        StrFormat("regularizer_weight must be >= 0, got %g",
                  static_cast<double>(config.regularizer_weight)));
  }
  if (config.clip_gradient_norm < 0.0f) {
    return Status::InvalidArgument(
        StrFormat("clip_gradient_norm must be >= 0, got %g",
                  static_cast<double>(config.clip_gradient_norm)));
  }
  if (config.patience < 0) {
    return Status::InvalidArgument(
        StrFormat("patience must be >= 0, got %d", config.patience));
  }
  if (config.patience > 0 && config.eval_every <= 0) {
    return Status::InvalidArgument(
        StrFormat("eval_every must be positive when patience > 0, got %d",
                  config.eval_every));
  }
  if (config.divergence_guard && config.divergence_factor <= 1.0) {
    return Status::InvalidArgument(
        StrFormat("divergence_factor must be > 1, got %g",
                  config.divergence_factor));
  }
  if (config.max_divergence_rollbacks < 0) {
    return Status::InvalidArgument(
        StrFormat("max_divergence_rollbacks must be >= 0, got %d",
                  config.max_divergence_rollbacks));
  }
  return Status::Ok();
}

Result<TrainResult> Trainer::Fit(
    models::TrustPredictor* model,
    const std::vector<data::TrustPair>& train_pairs,
    const std::vector<data::TrustPair>& validation_pairs) {
  AHNTP_CHECK(model != nullptr);
  AHNTP_RETURN_IF_ERROR(ValidateTrainerConfig(config_));
  if (train_pairs.empty()) {
    return Status::InvalidArgument("Fit() needs at least one training pair");
  }
  trace::TraceSpan fit_span("trainer.fit");
  Stopwatch timer;
  const bool early_stopping =
      config_.patience > 0 && !validation_pairs.empty();
  std::vector<Variable> params = model->Parameters();
  std::vector<tensor::Matrix> best_snapshot;
  double best_val_auc = -1.0;
  int best_epoch = 0;
  int checks_without_improvement = 0;
  Rng rng(config_.seed);
  nn::Adam optimizer(model->Parameters(), config_.learning_rate, 0.9f, 0.999f,
                     1e-8f, config_.weight_decay);
  std::vector<data::TrustPair> pairs = train_pairs;
  const size_t batch_size =
      config_.batch_size == 0 ? pairs.size() : config_.batch_size;

  TrainResult result;
  model->SetTraining(true);
  // Divergence guard state: the parameters as of the last healthy epoch,
  // that epoch's loss as the explosion baseline, and the cumulative
  // learning-rate backoff (folded into every subsequent epoch so an
  // LrSchedule cannot undo it).
  const bool guard = config_.divergence_guard;
  std::vector<tensor::Matrix> good_snapshot;
  double good_loss = std::numeric_limits<double>::quiet_NaN();
  float lr_scale = 1.0f;
  int rollbacks = 0;
  if (guard) good_snapshot = SnapshotParameters(params);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    trace::TraceSpan epoch_span("trainer.epoch");
    Stopwatch epoch_timer;
    AHNTP_METRIC_COUNT("trainer.epochs", 1);
    const float base_lr = config_.lr_schedule != nullptr
                              ? config_.lr_schedule->Rate(epoch)
                              : config_.learning_rate;
    optimizer.set_learning_rate(base_lr * lr_scale);
    rng.Shuffle(&pairs);
    double epoch_loss = 0.0;
    double epoch_contrastive = 0.0;
    double epoch_bce = 0.0;
    double epoch_grad_norm = 0.0;
    bool nonfinite_grad = false;
    size_t num_batches = 0;
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      size_t end = std::min(start + batch_size, pairs.size());
      std::vector<data::TrustPair> batch(pairs.begin() + static_cast<long>(start),
                                         pairs.begin() + static_cast<long>(end));
      std::vector<float> labels(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) labels[i] = batch[i].label;

      models::TrustPredictor::PairOutput out = model->Forward(batch);
      Variable bce = nn::BinaryCrossEntropy(out.probability, labels);
      Variable loss = autograd::Scale(bce, config_.lambda2);
      double contrastive_value = 0.0;
      if (config_.use_contrastive) {
        ContrastiveGroups groups = GroupByAnchor(batch);
        if (groups.has_positive_anchor) {
          Variable contrastive = nn::SupervisedContrastiveLoss(
              out.cosine, groups.anchors, groups.num_anchors,
              groups.is_positive, config_.temperature);
          contrastive_value = contrastive.value().At(0, 0);
          loss = autograd::Add(loss,
                               autograd::Scale(contrastive, config_.lambda1));
        }
      }
      if (model->encoder().HasAuxLoss() && config_.aux_loss_weight > 0.0f) {
        loss = autograd::Add(loss, autograd::Scale(model->encoder().AuxLoss(),
                                                   config_.aux_loss_weight));
      }
      if (config_.regularizer_weight > 0.0f &&
          config_.regularizer_hypergraph != nullptr) {
        Variable reg = hypergraph::HypergraphSmoothness(
            out.embeddings, *config_.regularizer_hypergraph);
        float scale = config_.regularizer_weight /
                      static_cast<float>(out.embeddings.rows());
        loss = autograd::Add(loss, autograd::Scale(reg, scale));
      }

      optimizer.ZeroGrad();
      loss.Backward();
      if (fault::Enabled() && !params.empty() &&
          fault::ShouldInject("trainer.nan_grad")) {
        params[0].mutable_grad().data()[0] =
            std::numeric_limits<float>::quiet_NaN();
      }
      float batch_grad_norm = 0.0f;
      if (config_.clip_gradient_norm > 0.0f) {
        batch_grad_norm = nn::ClipGradientNorm(optimizer.params(),
                                               config_.clip_gradient_norm);
      } else if (guard) {
        batch_grad_norm = nn::GlobalGradientNorm(optimizer.params());
      }
      if (std::isfinite(batch_grad_norm)) {
        epoch_grad_norm =
            std::max(epoch_grad_norm, static_cast<double>(batch_grad_norm));
      } else {
        nonfinite_grad = true;
      }
      optimizer.Step();

      epoch_loss += loss.value().At(0, 0);
      epoch_contrastive += contrastive_value;
      epoch_bce += bce.value().At(0, 0);
      ++num_batches;
      AHNTP_METRIC_COUNT("trainer.batches", 1);
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = epoch_loss / static_cast<double>(num_batches);
    stats.contrastive_loss =
        epoch_contrastive / static_cast<double>(num_batches);
    stats.bce_loss = epoch_bce / static_cast<double>(num_batches);
    stats.grad_norm = nonfinite_grad
                          ? std::numeric_limits<double>::quiet_NaN()
                          : epoch_grad_norm;
    if (metrics::Enabled()) {
      metrics::GetGauge("trainer.loss").Set(stats.loss);
      metrics::GetGauge("trainer.grad_norm").Set(stats.grad_norm);
      metrics::GetGauge("trainer.lr").Set(
          static_cast<double>(base_lr * lr_scale));
      metrics::GetHistogram("trainer.epoch_seconds")
          .Observe(epoch_timer.ElapsedSeconds());
    }
    // Divergence check: a non-finite loss/gradient or a loss explosion
    // relative to the last healthy epoch invalidates this epoch's update.
    bool healthy = std::isfinite(stats.loss) && !nonfinite_grad;
    if (healthy && guard && std::isfinite(good_loss) &&
        stats.loss >
            config_.divergence_factor * std::max(std::abs(good_loss), 1e-6)) {
      healthy = false;
    }
    if (guard && !healthy) {
      stats.rolled_back = true;
      result.history.push_back(stats);
      ++result.num_rollbacks;
      ++rollbacks;
      AHNTP_METRIC_COUNT("trainer.rollbacks", 1);
      if (metrics::Enabled()) {
        metrics::GetGauge("trainer.rollback_count").Set(rollbacks);
      }
      RestoreParameters(&params, good_snapshot);
      // Restored weights invalidate any cached inference embeddings.
      model->InvalidateCaches();
      // Stale Adam moments would re-inject the poisoned step after the
      // rollback, so optimizer state restarts clean at the reduced rate.
      optimizer.Reset();
      lr_scale *= 0.5f;
      const char* cause = std::isfinite(stats.loss) && !nonfinite_grad
                              ? "loss explosion"
                              : "non-finite loss/gradient";
      result.events.push_back(StrFormat(
          "epoch %d: %s (loss=%g), rolled back to last healthy parameters, "
          "lr scale -> %g",
          epoch, cause, stats.loss, static_cast<double>(lr_scale)));
      if (config_.verbose) {
        AHNTP_LOG(Warning) << result.events.back();
      }
      if (rollbacks >= config_.max_divergence_rollbacks) {
        result.divergence_halt = true;
        result.events.push_back(StrFormat(
            "epoch %d: divergence rollback budget (%d) exhausted, stopping "
            "with last healthy parameters",
            epoch, config_.max_divergence_rollbacks));
        if (config_.verbose) {
          AHNTP_LOG(Warning) << result.events.back();
        }
        break;
      }
      continue;
    }
    result.history.push_back(stats);
    if (guard) {
      good_snapshot = SnapshotParameters(params);
      good_loss = stats.loss;
    }
    if (config_.verbose &&
        (epoch % std::max(config_.log_every, 1) == 0 ||
         epoch + 1 == config_.epochs)) {
      AHNTP_LOG(Info) << "epoch " << epoch << " loss=" << stats.loss
                      << " (bce=" << stats.bce_loss
                      << " con=" << stats.contrastive_loss << ")";
    }
    if (early_stopping && (epoch % std::max(config_.eval_every, 1) == 0 ||
                           epoch + 1 == config_.epochs)) {
      double val_auc = Evaluate(model, validation_pairs).auc;
      model->SetTraining(true);
      if (val_auc > best_val_auc) {
        best_val_auc = val_auc;
        best_epoch = epoch;
        best_snapshot = SnapshotParameters(params);
        checks_without_improvement = 0;
      } else if (++checks_without_improvement >= config_.patience) {
        if (config_.verbose) {
          AHNTP_LOG(Info) << "early stop at epoch " << epoch
                          << " (best val auc " << best_val_auc << " @ epoch "
                          << best_epoch << ")";
        }
        break;
      }
    }
  }
  // final_loss / best_epoch report the last *kept* epoch; rolled-back
  // epochs stay in the history for diagnosis but never contributed
  // parameters.
  const EpochStats* last_kept = nullptr;
  for (auto it = result.history.rbegin(); it != result.history.rend(); ++it) {
    if (!it->rolled_back) {
      last_kept = &*it;
      break;
    }
  }
  if (early_stopping && !best_snapshot.empty()) {
    RestoreParameters(&params, best_snapshot);
    model->InvalidateCaches();
    result.best_epoch = best_epoch;
    result.best_validation_auc = best_val_auc;
  } else {
    result.best_epoch = last_kept == nullptr ? 0 : last_kept->epoch;
  }
  result.final_loss = last_kept == nullptr ? 0.0 : last_kept->loss;
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

BinaryMetrics Trainer::Evaluate(models::TrustPredictor* model,
                                const std::vector<data::TrustPair>& pairs,
                                float threshold) const {
  AHNTP_CHECK(model != nullptr);
  // The forward pass inside PredictProbabilities dispatches its MatMul /
  // SpMM work to the pool; the metric pass below is batch-parallel too.
  std::vector<float> probs = model->PredictProbabilities(pairs);
  std::vector<float> labels(pairs.size());
  ParallelFor(0, pairs.size(), size_t{1} << 15, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) labels[i] = pairs[i].label;
  });
  return EvaluateBinary(probs, labels, threshold);
}

float Trainer::CalibrateThreshold(
    models::TrustPredictor* model,
    const std::vector<data::TrustPair>& pairs) const {
  AHNTP_CHECK(model != nullptr);
  std::vector<float> probs = model->PredictProbabilities(pairs);
  std::vector<float> labels(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) labels[i] = pairs[i].label;
  return BestAccuracyThreshold(probs, labels);
}

}  // namespace ahntp::core
