#include "core/trainer.h"

#include <unordered_map>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "hypergraph/regularizer.h"
#include "nn/losses.h"
#include "nn/optimizer.h"

namespace ahntp::core {

using autograd::Variable;

namespace {

/// Builds the segment structure for Eq. 20 within a batch: pairs sharing an
/// anchor (source user) form one segment.
struct ContrastiveGroups {
  std::vector<int> anchors;        // segment id per pair
  size_t num_anchors = 0;
  std::vector<bool> is_positive;   // per pair
  bool has_positive_anchor = false;
};

ContrastiveGroups GroupByAnchor(const std::vector<data::TrustPair>& batch) {
  ContrastiveGroups groups;
  groups.anchors.reserve(batch.size());
  groups.is_positive.reserve(batch.size());
  std::unordered_map<int, int> anchor_ids;
  for (const data::TrustPair& p : batch) {
    auto [it, inserted] =
        anchor_ids.emplace(p.src, static_cast<int>(anchor_ids.size()));
    groups.anchors.push_back(it->second);
    bool positive = p.label >= 0.5f;
    groups.is_positive.push_back(positive);
    if (positive) groups.has_positive_anchor = true;
  }
  groups.num_anchors = anchor_ids.size();
  return groups;
}

}  // namespace

namespace {

/// Copies all parameter values (for best-epoch restore).
std::vector<tensor::Matrix> SnapshotParameters(
    const std::vector<Variable>& params) {
  std::vector<tensor::Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const Variable& p : params) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(std::vector<Variable>* params,
                       const std::vector<tensor::Matrix>& snapshot) {
  AHNTP_CHECK_EQ(params->size(), snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    (*params)[i].mutable_value() = snapshot[i];
  }
}

}  // namespace

TrainResult Trainer::Fit(models::TrustPredictor* model,
                         const std::vector<data::TrustPair>& train_pairs,
                         const std::vector<data::TrustPair>& validation_pairs) {
  AHNTP_CHECK(model != nullptr);
  AHNTP_CHECK(!train_pairs.empty());
  Stopwatch timer;
  const bool early_stopping =
      config_.patience > 0 && !validation_pairs.empty();
  std::vector<Variable> params = model->Parameters();
  std::vector<tensor::Matrix> best_snapshot;
  double best_val_auc = -1.0;
  int best_epoch = 0;
  int checks_without_improvement = 0;
  Rng rng(config_.seed);
  nn::Adam optimizer(model->Parameters(), config_.learning_rate, 0.9f, 0.999f,
                     1e-8f, config_.weight_decay);
  std::vector<data::TrustPair> pairs = train_pairs;
  const size_t batch_size =
      config_.batch_size == 0 ? pairs.size() : config_.batch_size;

  TrainResult result;
  model->SetTraining(true);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.lr_schedule != nullptr) {
      optimizer.set_learning_rate(config_.lr_schedule->Rate(epoch));
    }
    rng.Shuffle(&pairs);
    double epoch_loss = 0.0;
    double epoch_contrastive = 0.0;
    double epoch_bce = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < pairs.size(); start += batch_size) {
      size_t end = std::min(start + batch_size, pairs.size());
      std::vector<data::TrustPair> batch(pairs.begin() + static_cast<long>(start),
                                         pairs.begin() + static_cast<long>(end));
      std::vector<float> labels(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) labels[i] = batch[i].label;

      models::TrustPredictor::PairOutput out = model->Forward(batch);
      Variable bce = nn::BinaryCrossEntropy(out.probability, labels);
      Variable loss = autograd::Scale(bce, config_.lambda2);
      double contrastive_value = 0.0;
      if (config_.use_contrastive) {
        ContrastiveGroups groups = GroupByAnchor(batch);
        if (groups.has_positive_anchor) {
          Variable contrastive = nn::SupervisedContrastiveLoss(
              out.cosine, groups.anchors, groups.num_anchors,
              groups.is_positive, config_.temperature);
          contrastive_value = contrastive.value().At(0, 0);
          loss = autograd::Add(loss,
                               autograd::Scale(contrastive, config_.lambda1));
        }
      }
      if (model->encoder().HasAuxLoss() && config_.aux_loss_weight > 0.0f) {
        loss = autograd::Add(loss, autograd::Scale(model->encoder().AuxLoss(),
                                                   config_.aux_loss_weight));
      }
      if (config_.regularizer_weight > 0.0f &&
          config_.regularizer_hypergraph != nullptr) {
        Variable reg = hypergraph::HypergraphSmoothness(
            out.embeddings, *config_.regularizer_hypergraph);
        float scale = config_.regularizer_weight /
                      static_cast<float>(out.embeddings.rows());
        loss = autograd::Add(loss, autograd::Scale(reg, scale));
      }

      optimizer.ZeroGrad();
      loss.Backward();
      if (config_.clip_gradient_norm > 0.0f) {
        nn::ClipGradientNorm(optimizer.params(), config_.clip_gradient_norm);
      }
      optimizer.Step();

      epoch_loss += loss.value().At(0, 0);
      epoch_contrastive += contrastive_value;
      epoch_bce += bce.value().At(0, 0);
      ++num_batches;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = epoch_loss / static_cast<double>(num_batches);
    stats.contrastive_loss =
        epoch_contrastive / static_cast<double>(num_batches);
    stats.bce_loss = epoch_bce / static_cast<double>(num_batches);
    result.history.push_back(stats);
    if (config_.verbose &&
        (epoch % std::max(config_.log_every, 1) == 0 ||
         epoch + 1 == config_.epochs)) {
      AHNTP_LOG(Info) << "epoch " << epoch << " loss=" << stats.loss
                      << " (bce=" << stats.bce_loss
                      << " con=" << stats.contrastive_loss << ")";
    }
    if (early_stopping && (epoch % std::max(config_.eval_every, 1) == 0 ||
                           epoch + 1 == config_.epochs)) {
      double val_auc = Evaluate(model, validation_pairs).auc;
      model->SetTraining(true);
      if (val_auc > best_val_auc) {
        best_val_auc = val_auc;
        best_epoch = epoch;
        best_snapshot = SnapshotParameters(params);
        checks_without_improvement = 0;
      } else if (++checks_without_improvement >= config_.patience) {
        if (config_.verbose) {
          AHNTP_LOG(Info) << "early stop at epoch " << epoch
                          << " (best val auc " << best_val_auc << " @ epoch "
                          << best_epoch << ")";
        }
        break;
      }
    }
  }
  if (early_stopping && !best_snapshot.empty()) {
    RestoreParameters(&params, best_snapshot);
    result.best_epoch = best_epoch;
    result.best_validation_auc = best_val_auc;
  } else {
    result.best_epoch =
        result.history.empty() ? 0 : result.history.back().epoch;
  }
  result.final_loss =
      result.history.empty() ? 0.0 : result.history.back().loss;
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

BinaryMetrics Trainer::Evaluate(models::TrustPredictor* model,
                                const std::vector<data::TrustPair>& pairs,
                                float threshold) const {
  AHNTP_CHECK(model != nullptr);
  // The forward pass inside PredictProbabilities dispatches its MatMul /
  // SpMM work to the pool; the metric pass below is batch-parallel too.
  std::vector<float> probs = model->PredictProbabilities(pairs);
  std::vector<float> labels(pairs.size());
  ParallelFor(0, pairs.size(), size_t{1} << 15, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) labels[i] = pairs[i].label;
  });
  return EvaluateBinary(probs, labels, threshold);
}

float Trainer::CalibrateThreshold(
    models::TrustPredictor* model,
    const std::vector<data::TrustPair>& pairs) const {
  AHNTP_CHECK(model != nullptr);
  std::vector<float> probs = model->PredictProbabilities(pairs);
  std::vector<float> labels(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) labels[i] = pairs[i].label;
  return BestAccuracyThreshold(probs, labels);
}

}  // namespace ahntp::core
