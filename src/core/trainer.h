#ifndef AHNTP_CORE_TRAINER_H_
#define AHNTP_CORE_TRAINER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/metrics.h"
#include "data/split.h"
#include "models/trust_predictor.h"
#include "nn/scheduler.h"

namespace ahntp::core {

/// Training configuration implementing Section IV-D's objective: the
/// combined loss L = lambda1 * L_contrastive + lambda2 * L_bce (Eq. 22),
/// optionally plus the hypergraph regularizer (Eq. 23) and an encoder
/// auxiliary loss (AtNE-Trust reconstruction). Baselines per the paper use
/// cross-entropy only -> set use_contrastive = false.
struct TrainerConfig {
  int epochs = 60;
  /// 0 = full-batch (one encoder pass per epoch, the fast path on CPU).
  size_t batch_size = 0;
  float learning_rate = 1e-3f;  // Section V-A.4
  float weight_decay = 1e-4f;   // Section V-A.4

  bool use_contrastive = true;
  float lambda1 = 1.0f;      // weight of L1 (contrastive)
  float lambda2 = 1.0f;      // weight of L2 (cross-entropy)
  float temperature = 0.3f;  // Section V-A.4 best t

  /// Weight of the encoder's auxiliary loss when it has one.
  float aux_loss_weight = 0.1f;

  /// Weight of the Eq. 23 hypergraph smoothness regularizer (0 = off);
  /// scaled internally by 1/num_users.
  float regularizer_weight = 0.0f;
  const hypergraph::Hypergraph* regularizer_hypergraph = nullptr;

  /// Global gradient-norm clip applied before every optimizer step
  /// (0 = off).
  float clip_gradient_norm = 0.0f;

  /// Optional learning-rate schedule queried at each epoch; must outlive
  /// the trainer. Null = constant learning_rate.
  const nn::LrSchedule* lr_schedule = nullptr;

  uint64_t seed = 123;
  bool verbose = false;
  int log_every = 10;

  /// Early stopping: when > 0 and validation pairs are supplied to Fit(),
  /// validation AUC is checked every `eval_every` epochs; after `patience`
  /// consecutive checks without improvement, training stops and the best
  /// parameters are restored. Lets every model train to its own sweet spot
  /// (the paper does not fix an epoch budget). Ignored when Fit() receives
  /// no validation pairs.
  int patience = 6;
  int eval_every = 5;

  /// Divergence guard (DESIGN.md §10). When enabled, every epoch's mean
  /// loss and max gradient norm are checked; on a non-finite value or a
  /// loss explosion (loss > divergence_factor x the last healthy epoch's
  /// loss) the guard rolls parameters back to the last healthy epoch,
  /// resets the optimizer moments, halves the learning rate, and keeps
  /// training. After max_divergence_rollbacks rollbacks training stops
  /// early with the best state so far instead of returning garbage. The
  /// guard leaves healthy runs bit-identical: it only reads losses and
  /// gradients unless it actually fires.
  bool divergence_guard = true;
  double divergence_factor = 1e3;
  int max_divergence_rollbacks = 3;
};

/// Validates a TrainerConfig; InvalidArgument naming the offending field.
/// Called at Fit() entry so a bad sweep cell fails fast and loud instead
/// of silently training garbage.
Status ValidateTrainerConfig(const TrainerConfig& config);

/// Per-epoch training record.
struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double contrastive_loss = 0.0;
  double bce_loss = 0.0;
  /// Max gradient norm seen across the epoch's batches (0 when the guard
  /// and clipping are both off — nothing computed it).
  double grad_norm = 0.0;
  /// True when the divergence guard rejected this epoch and rolled the
  /// parameters back; its loss never becomes the comparison baseline.
  bool rolled_back = false;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_loss = 0.0;
  double train_seconds = 0.0;
  /// Epoch whose parameters were kept (last epoch without early stopping).
  int best_epoch = 0;
  /// Best validation AUC seen (0 when no validation set was supplied).
  double best_validation_auc = 0.0;
  /// Divergence-guard outcome: rollbacks performed, whether training was
  /// halted by the rollback budget, and a human-readable event log
  /// ("epoch 12: non-finite loss, rolled back, lr -> 5e-4").
  int num_rollbacks = 0;
  bool divergence_halt = false;
  std::vector<std::string> events;
};

/// Mini-batch trainer for any TrustPredictor.
class Trainer {
 public:
  explicit Trainer(const TrainerConfig& config) : config_(config) {}

  /// Trains in place; deterministic given config.seed and the model's
  /// initialization. When `validation_pairs` is non-empty and
  /// config.patience > 0, applies early stopping on validation AUC and
  /// restores the best parameters before returning. InvalidArgument on a
  /// config that fails ValidateTrainerConfig or on empty train_pairs.
  /// Fault-injection site: "trainer.nan_grad" poisons one batch gradient
  /// to exercise the divergence guard (common/fault.h).
  Result<TrainResult> Fit(
      models::TrustPredictor* model,
      const std::vector<data::TrustPair>& train_pairs,
      const std::vector<data::TrustPair>& validation_pairs = {});

  /// Evaluates accuracy/F1/AUC on labelled pairs (eval mode) at the given
  /// decision threshold.
  BinaryMetrics Evaluate(models::TrustPredictor* model,
                         const std::vector<data::TrustPair>& pairs,
                         float threshold = 0.5f) const;

  /// Calibrates the accuracy-maximizing decision threshold on labelled
  /// pairs (normally the training pairs). The cosine head (Eq. 19) ranks
  /// pairs but has no inherent 0.5 operating point; calibration on train
  /// data is applied uniformly to every model in the benchmark.
  float CalibrateThreshold(models::TrustPredictor* model,
                           const std::vector<data::TrustPair>& pairs) const;

  const TrainerConfig& config() const { return config_; }

 private:
  TrainerConfig config_;
};

}  // namespace ahntp::core

#endif  // AHNTP_CORE_TRAINER_H_
