#include "core/model_zoo.h"

#include "models/atne_trust.h"
#include "models/gat.h"
#include "models/guardian.h"
#include "models/hgnn_plus.h"
#include "models/kgtrust.h"
#include "models/matrix_factorization.h"
#include "models/sgc.h"
#include "models/unignn.h"

namespace ahntp::core {

std::vector<std::string> AvailableModels() {
  return {"GAT",    "SGC",    "Guardian",    "AtNE-Trust",
          "KGTrust", "UniGCN", "UniGAT",      "HGNN+",
          "MF",     "AHNTP",  "AHNTP-nompr", "AHNTP-noatt",
          "AHNTP-nocon"};
}

bool ModelNeedsHypergraph(const std::string& name) {
  return name == "UniGCN" || name == "UniGAT" || name == "HGNN+";
}

Result<ModelSpec> CreateEncoder(const std::string& name,
                                const models::ModelInputs& inputs,
                                const AhntpConfig& ahntp_config) {
  ModelSpec spec;
  if (name == "GAT") {
    spec.encoder = std::make_shared<models::Gat>(inputs);
  } else if (name == "SGC") {
    spec.encoder = std::make_shared<models::Sgc>(inputs);
  } else if (name == "Guardian") {
    spec.encoder = std::make_shared<models::Guardian>(inputs);
  } else if (name == "AtNE-Trust") {
    spec.encoder = std::make_shared<models::AtneTrust>(inputs);
  } else if (name == "KGTrust") {
    spec.encoder = std::make_shared<models::KgTrust>(inputs);
  } else if (name == "UniGCN") {
    spec.encoder = std::make_shared<models::UniGcn>(inputs);
  } else if (name == "UniGAT") {
    spec.encoder = std::make_shared<models::UniGat>(inputs);
  } else if (name == "HGNN+") {
    spec.encoder = std::make_shared<models::HgnnPlus>(inputs);
  } else if (name == "MF") {
    spec.encoder = std::make_shared<models::MatrixFactorization>(inputs);
  } else if (name == "AHNTP" || name == "AHNTP-nompr" ||
             name == "AHNTP-noatt" || name == "AHNTP-nocon") {
    AhntpConfig config = ahntp_config;
    config.hidden_dims = inputs.hidden_dims;
    config.dropout = inputs.dropout;
    if (name == "AHNTP-nompr") config.use_mpr = false;
    if (name == "AHNTP-noatt") config.use_attention = false;
    spec.encoder = std::make_shared<AhntpModel>(inputs, config);
    spec.use_contrastive = name != "AHNTP-nocon";
  } else {
    return Status::NotFound("unknown model: " + name);
  }
  return spec;
}

Result<std::unique_ptr<models::TrustPredictor>> CreatePredictor(
    const std::string& name, const models::ModelInputs& inputs,
    const AhntpConfig& ahntp_config,
    const models::TrustPredictorConfig& predictor_config) {
  AHNTP_ASSIGN_OR_RETURN(ModelSpec spec,
                         CreateEncoder(name, inputs, ahntp_config));
  return std::make_unique<models::TrustPredictor>(
      spec.encoder, predictor_config, inputs.rng);
}

}  // namespace ahntp::core
