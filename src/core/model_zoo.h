#ifndef AHNTP_CORE_MODEL_ZOO_H_
#define AHNTP_CORE_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ahntp_model.h"
#include "models/encoder.h"
#include "models/trust_predictor.h"

namespace ahntp::core {

/// A constructed encoder plus the training-protocol flags its paper variant
/// prescribes.
struct ModelSpec {
  std::shared_ptr<models::Encoder> encoder;
  /// True only for full AHNTP: the baselines (and the AHNTP_nocon ablation)
  /// train with cross-entropy alone, per Sections V-A.2 and V-C.
  bool use_contrastive = false;
};

/// All model names accepted by CreateEncoder: the eight baselines of
/// Section V-A.2, AHNTP, and its three Table V ablations.
std::vector<std::string> AvailableModels();

/// True for models that consume ModelInputs::hypergraph.
bool ModelNeedsHypergraph(const std::string& name);

/// Builds an encoder by name. `ahntp_config` parameterizes AHNTP and its
/// ablation variants (ablations override the relevant switch).
Result<ModelSpec> CreateEncoder(const std::string& name,
                                const models::ModelInputs& inputs,
                                const AhntpConfig& ahntp_config);

/// Encoder + pairwise head in one call: the complete scoring model the
/// serving path (src/serve) and checkpoint tooling work with. Draws all
/// initialization from inputs.rng, so a fixed seed rebuilds the identical
/// architecture — the contract hot-reload staging relies on.
Result<std::unique_ptr<models::TrustPredictor>> CreatePredictor(
    const std::string& name, const models::ModelInputs& inputs,
    const AhntpConfig& ahntp_config,
    const models::TrustPredictorConfig& predictor_config = {});

}  // namespace ahntp::core

#endif  // AHNTP_CORE_MODEL_ZOO_H_
