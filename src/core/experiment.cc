#include "core/experiment.h"

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "hypergraph/builders.h"
#include "models/heuristics.h"

namespace ahntp::core {

namespace {

/// Evaluation path for the non-learned propagation heuristics: score pairs
/// on the training graph, calibrate the threshold on training pairs, report
/// test metrics. Mirrors the learned-model protocol minus the training.
ExperimentResult RunHeuristicExperiment(const data::SocialDataset& dataset,
                                        const ExperimentConfig& config,
                                        models::Heuristic heuristic) {
  Stopwatch timer;
  data::TrustSplit split =
      config.temporal_split ? data::MakeTemporalSplit(dataset, config.split)
                            : data::MakeSplit(dataset, config.split);
  graph::Digraph train_graph =
      dataset.GraphFromEdges(split.train_positive).value();
  auto labels_of = [](const std::vector<data::TrustPair>& pairs) {
    std::vector<float> labels(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) labels[i] = pairs[i].label;
    return labels;
  };
  std::vector<float> train_probs = models::HeuristicProbabilities(
      train_graph, heuristic, split.train_pairs);
  std::vector<float> test_probs = models::HeuristicProbabilities(
      train_graph, heuristic, split.test_pairs);
  ExperimentResult result;
  result.model = config.model;
  result.threshold =
      BestAccuracyThreshold(train_probs, labels_of(split.train_pairs));
  result.train = EvaluateBinary(train_probs, labels_of(split.train_pairs),
                                result.threshold);
  result.test = EvaluateBinary(test_probs, labels_of(split.test_pairs),
                               result.threshold);
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

Result<ExperimentResult> RunExperiment(const data::SocialDataset& dataset,
                                       const ExperimentConfig& config) {
  trace::TraceSpan span("experiment.run");
  AHNTP_METRIC_COUNT("experiment.runs", 1);
  if (auto heuristic = models::ParseHeuristic(config.model);
      heuristic.ok()) {
    if (config.temporal_split && dataset.trust_edge_times.empty()) {
      return Status::FailedPrecondition(
          "temporal_split requires dataset.trust_edge_times");
    }
    return RunHeuristicExperiment(dataset, config, heuristic.value());
  }
  Stopwatch setup_timer;
  if (config.temporal_split && dataset.trust_edge_times.empty()) {
    return Status::FailedPrecondition(
        "temporal_split requires dataset.trust_edge_times");
  }
  data::TrustSplit split =
      config.temporal_split ? data::MakeTemporalSplit(dataset, config.split)
                            : data::MakeSplit(dataset, config.split);
  AHNTP_ASSIGN_OR_RETURN(graph::Digraph train_graph,
                         dataset.GraphFromEdges(split.train_positive));
  tensor::Matrix features =
      data::BuildFeatureMatrix(dataset, config.features);
  Rng rng(config.model_seed);

  models::ModelInputs inputs;
  inputs.features = &features;
  inputs.graph = &train_graph;
  inputs.dataset = &dataset;
  inputs.hidden_dims = config.hidden_dims;
  inputs.dropout = config.dropout;
  inputs.rng = &rng;

  hypergraph::Hypergraph baseline_hg(0);
  if (ModelNeedsHypergraph(config.model)) {
    // The three hypergroups read only the (frozen) dataset and training
    // graph, so they build concurrently; each task writes its own slot.
    hypergraph::Hypergraph attr(0), pairwise(0), multihop(0);
    hypergraph::MultiHopOptions hop;
    hop.num_hops = config.baseline_multi_hop;
    hop.max_edge_size = config.baseline_multi_hop_max_edge_size;
    ParallelFor(0, 3, 1, [&](size_t t0, size_t t1) {
      for (size_t t = t0; t < t1; ++t) {
        if (t == 0) {
          attr = hypergraph::BuildAttributeHypergroup(dataset.num_users,
                                                      dataset.attributes);
        } else if (t == 1) {
          pairwise = hypergraph::BuildPairwiseHypergroup(train_graph);
        } else {
          multihop = hypergraph::BuildMultiHopHypergroup(train_graph, hop);
        }
      }
    });
    baseline_hg = hypergraph::Hypergraph::Concat(
        hypergraph::Hypergraph::Concat(attr, pairwise), multihop);
    inputs.hypergraph = &baseline_hg;
  }

  AHNTP_ASSIGN_OR_RETURN(ModelSpec spec,
                         CreateEncoder(config.model, inputs, config.ahntp));
  models::TrustPredictorConfig head;
  models::TrustPredictor predictor(spec.encoder, head, &rng);

  TrainerConfig trainer_config = config.trainer;
  trainer_config.use_contrastive =
      trainer_config.use_contrastive && spec.use_contrastive;
  auto* ahntp_encoder = dynamic_cast<AhntpModel*>(spec.encoder.get());
  if (trainer_config.regularizer_weight > 0.0f &&
      trainer_config.regularizer_hypergraph == nullptr &&
      ahntp_encoder != nullptr) {
    trainer_config.regularizer_hypergraph =
        &ahntp_encoder->combined_hypergraph();
  }
  double setup_seconds = setup_timer.ElapsedSeconds();

  // Carve a validation slice off the (already shuffled) training pairs for
  // early stopping and threshold calibration; test pairs stay untouched.
  std::vector<data::TrustPair> fit_pairs = split.train_pairs;
  std::vector<data::TrustPair> val_pairs;
  size_t val_count = static_cast<size_t>(
      static_cast<double>(fit_pairs.size()) * config.validation_fraction);
  if (val_count > 0 && val_count < fit_pairs.size()) {
    val_pairs.assign(fit_pairs.end() - static_cast<long>(val_count),
                     fit_pairs.end());
    fit_pairs.resize(fit_pairs.size() - val_count);
  }

  Trainer trainer(trainer_config);
  AHNTP_ASSIGN_OR_RETURN(TrainResult train_result,
                         trainer.Fit(&predictor, fit_pairs, val_pairs));

  ExperimentResult result;
  result.model = config.model;
  result.best_epoch = train_result.best_epoch;
  // The decision threshold is calibrated on held-out validation pairs (the
  // cosine head ranks but carries no natural 0.5 operating point).
  const auto& calibration_pairs = val_pairs.empty() ? fit_pairs : val_pairs;
  result.threshold = trainer.CalibrateThreshold(&predictor, calibration_pairs);
  result.test = trainer.Evaluate(&predictor, split.test_pairs,
                                 result.threshold);
  result.train = trainer.Evaluate(&predictor, split.train_pairs,
                                  result.threshold);
  result.setup_seconds = setup_seconds;
  result.train_seconds = train_result.train_seconds;
  result.num_parameters = predictor.NumParameters();
  return result;
}

}  // namespace ahntp::core
