#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace ahntp::core {

std::string BinaryMetrics::ToString() const {
  return StrFormat(
      "acc=%.4f precision=%.4f recall=%.4f f1=%.4f auc=%.4f brier=%.4f "
      "ece=%.4f (n=%zu)",
      accuracy, precision, recall, f1, auc, brier, ece, num_samples);
}

BinaryMetrics EvaluateBinary(const std::vector<float>& probabilities,
                             const std::vector<float>& labels,
                             float threshold) {
  AHNTP_CHECK_EQ(probabilities.size(), labels.size());
  AHNTP_CHECK_GT(probabilities.size(), 0u);
  BinaryMetrics m;
  m.num_samples = probabilities.size();
  // Confusion counts are integer sums, so the parallel reduction is exact
  // at any thread count.
  struct Confusion {
    size_t tp = 0, fp = 0, tn = 0, fn = 0;
  };
  Confusion counts = ParallelReduce<Confusion>(
      0, probabilities.size(), size_t{1} << 15, Confusion{},
      [&](size_t lo, size_t hi) {
        Confusion c;
        for (size_t i = lo; i < hi; ++i) {
          bool predicted = probabilities[i] >= threshold;
          bool actual = labels[i] >= 0.5f;
          if (predicted && actual) {
            ++c.tp;
          } else if (predicted && !actual) {
            ++c.fp;
          } else if (!predicted && !actual) {
            ++c.tn;
          } else {
            ++c.fn;
          }
        }
        return c;
      },
      [](Confusion a, const Confusion& b) {
        a.tp += b.tp;
        a.fp += b.fp;
        a.tn += b.tn;
        a.fn += b.fn;
        return a;
      });
  const size_t tp = counts.tp, fp = counts.fp, tn = counts.tn,
               fn = counts.fn;
  m.accuracy = static_cast<double>(tp + tn) /
               static_cast<double>(m.num_samples);
  m.precision = (tp + fp) > 0
                    ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
  m.recall = (tp + fn) > 0
                 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                 : 0.0;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;

  // Brier and ECE accumulate in one serial pass: double sums are
  // order-dependent, and a fixed left-to-right order keeps both metrics
  // bit-identical at any --threads=N (the pass is cheap next to the AUC
  // sort below).
  {
    constexpr size_t kBins = BinaryMetrics::kCalibrationBins;
    double sq_error = 0.0;
    double bin_conf[kBins] = {};
    double bin_pos[kBins] = {};
    size_t bin_count[kBins] = {};
    for (size_t i = 0; i < probabilities.size(); ++i) {
      const double p = std::min(1.0, std::max(0.0, double{probabilities[i]}));
      const double y = labels[i] >= 0.5f ? 1.0 : 0.0;
      sq_error += (p - y) * (p - y);
      size_t bin = std::min(kBins - 1, static_cast<size_t>(p * kBins));
      bin_conf[bin] += p;
      bin_pos[bin] += y;
      ++bin_count[bin];
    }
    m.brier = sq_error / static_cast<double>(m.num_samples);
    double ece = 0.0;
    for (size_t b = 0; b < kBins; ++b) {
      if (bin_count[b] == 0) continue;
      const double count = static_cast<double>(bin_count[b]);
      ece += count / static_cast<double>(m.num_samples) *
             std::fabs(bin_conf[b] / count - bin_pos[b] / count);
    }
    m.ece = ece;
  }

  // AUC via the rank-sum (Mann-Whitney) formulation; ties share ranks.
  size_t num_pos = tp + fn;
  size_t num_neg = fp + tn;
  if (num_pos > 0 && num_neg > 0) {
    std::vector<size_t> order(probabilities.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return probabilities[a] < probabilities[b];
    });
    double rank_sum_pos = 0.0;
    size_t i = 0;
    double rank = 1.0;
    while (i < order.size()) {
      size_t j = i;
      while (j + 1 < order.size() &&
             probabilities[order[j + 1]] == probabilities[order[i]]) {
        ++j;
      }
      double avg_rank = (rank + rank + static_cast<double>(j - i)) / 2.0;
      for (size_t k = i; k <= j; ++k) {
        if (labels[order[k]] >= 0.5f) rank_sum_pos += avg_rank;
      }
      rank += static_cast<double>(j - i + 1);
      i = j + 1;
    }
    m.auc = (rank_sum_pos -
             static_cast<double>(num_pos) * (static_cast<double>(num_pos) + 1.0) / 2.0) /
            (static_cast<double>(num_pos) * static_cast<double>(num_neg));
  }
  return m;
}

float BestAccuracyThreshold(const std::vector<float>& probabilities,
                            const std::vector<float>& labels) {
  AHNTP_CHECK_EQ(probabilities.size(), labels.size());
  AHNTP_CHECK_GT(probabilities.size(), 0u);
  const size_t n = probabilities.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return probabilities[a] < probabilities[b];
  });
  size_t total_pos = 0;
  for (float l : labels) total_pos += l >= 0.5f ? 1 : 0;
  // Sweep thresholds between consecutive distinct scores. With threshold
  // below everything, all predictions are positive.
  size_t pos_below = 0;  // positives with score < threshold (misclassified)
  size_t neg_below = 0;  // negatives with score < threshold (correct)
  size_t best_correct = total_pos;  // threshold below all scores
  float best_threshold = probabilities[order[0]] - 1e-6f;
  float best_distance = std::fabs(best_threshold - 0.5f);
  for (size_t i = 0; i < n; ++i) {
    size_t idx = order[i];
    if (labels[idx] >= 0.5f) {
      ++pos_below;
    } else {
      ++neg_below;
    }
    // Candidate threshold just above probabilities[idx].
    if (i + 1 < n && probabilities[order[i + 1]] == probabilities[idx]) {
      continue;  // not a distinct boundary
    }
    float threshold = i + 1 < n ? (probabilities[idx] +
                                   probabilities[order[i + 1]]) /
                                      2.0f
                                : probabilities[idx] + 1e-6f;
    size_t correct = neg_below + (total_pos - pos_below);
    float distance = std::fabs(threshold - 0.5f);
    if (correct > best_correct ||
        (correct == best_correct && distance < best_distance)) {
      best_correct = correct;
      best_threshold = threshold;
      best_distance = distance;
    }
  }
  return best_threshold;
}

}  // namespace ahntp::core
