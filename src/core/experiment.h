#ifndef AHNTP_CORE_EXPERIMENT_H_
#define AHNTP_CORE_EXPERIMENT_H_

#include <string>

#include "core/model_zoo.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/split.h"

namespace ahntp::core {

/// One end-to-end run: split -> features -> encoder -> train -> evaluate.
/// This is the unit every bench binary sweeps over.
struct ExperimentConfig {
  std::string model = "AHNTP";
  data::SplitOptions split;
  /// Use the chronological split (train on oldest edges, test on newest)
  /// instead of the random split. Requires dataset.trust_edge_times.
  bool temporal_split = false;
  data::FeatureOptions features;
  std::vector<size_t> hidden_dims = {256, 128, 64};
  float dropout = 0.1f;
  AhntpConfig ahntp;
  TrainerConfig trainer;
  /// Fraction of training pairs held out for early stopping and decision-
  /// threshold calibration (never part of the test set).
  double validation_fraction = 0.1;
  /// Multi-hop depth of the hypergraph handed to the hypergraph baselines
  /// (attribute || pairwise || multi-hop). Table VI sweeps this for HGNN+.
  int baseline_multi_hop = 1;
  size_t baseline_multi_hop_max_edge_size = 128;
  uint64_t model_seed = 1;
};

struct ExperimentResult {
  std::string model;
  BinaryMetrics test;
  BinaryMetrics train;
  /// Decision threshold calibrated on the validation pairs.
  float threshold = 0.5f;
  /// Epoch whose parameters were kept under early stopping.
  int best_epoch = 0;
  double setup_seconds = 0.0;
  double train_seconds = 0.0;
  size_t num_parameters = 0;
};

/// Runs one experiment. The training graph contains only the split's
/// training positives; test edges stay hidden from every model input.
Result<ExperimentResult> RunExperiment(const data::SocialDataset& dataset,
                                       const ExperimentConfig& config);

}  // namespace ahntp::core

#endif  // AHNTP_CORE_EXPERIMENT_H_
