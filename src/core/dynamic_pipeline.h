#ifndef AHNTP_CORE_DYNAMIC_PIPELINE_H_
#define AHNTP_CORE_DYNAMIC_PIPELINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/ahntp_model.h"
#include "data/dataset.h"
#include "data/features.h"
#include "graph/delta.h"
#include "graph/dynamic_motifs.h"
#include "models/trust_predictor.h"
#include "tensor/workspace.h"

namespace ahntp::core {

/// Configuration of a DynamicTrustPipeline. The default constructor
/// tightens the power-iteration settings: a warm-started PageRank and a
/// cold one must land on the same fixed point to testing tolerance, which
/// a loose 1e-9 stop does not guarantee after many deltas.
struct DynamicPipelineOptions {
  DynamicPipelineOptions() {
    model.pagerank.tolerance = 1e-12;
    model.pagerank.max_iterations = 300;
  }

  AhntpConfig model;
  models::TrustPredictorConfig predictor;
  data::FeatureOptions features;
  graph::MutableGraphOptions store;
  /// Seed for model/predictor initialization. Weight draws depend only on
  /// layer dimensions — never on graph structure — so a rebuilt pipeline
  /// with the same seed reproduces the weights bit-for-bit.
  uint64_t seed = 2024;
};

/// What one ApplyDelta() did beyond the raw store receipt.
struct DeltaOutcome {
  graph::DeltaReceipt receipt;
  /// Users whose final embeddings were recomputed and patched into the
  /// inference plans (the k-hop dirty closure through the conv stack).
  std::vector<int> refreshed_users;
  /// Power iterations the warm-started influence refresh used, and the
  /// cold-start count measured at construction. iterations saved =
  /// cold - warm. Both 0 for rating-only deltas (influence untouched).
  int pagerank_iterations = 0;
  int pagerank_cold_iterations = 0;
  /// Whether the social hypergroup was re-derived (structural deltas only;
  /// influence is a global fixed point, so its top-K sets are rebuilt
  /// whole rather than patched).
  bool social_rebuilt = false;
};

/// The dynamic trust stack (DESIGN.md §17): a mutable graph store plus
/// every derived structure — motif counts, influence scores, hypergroups,
/// the encoder's activation caches, and the inference-plan embedding
/// tables — maintained *incrementally* under graph deltas. Every patched
/// value is bit-identical to what a full rebuild from the current snapshot
/// produces (RebuildFromScratch() is the equivalence oracle; the influence
/// vector alone is tolerance-equal, see below).
///
/// Per delta, the update cascade is:
///   store.Apply  ->  motif counts patched around touched edges
///                ->  influence re-solved warm-started from the previous
///                    vector (iterations-saved telemetry in the outcome)
///                ->  hypergroups: social rebuilt whole (global top-K),
///                    attribute untouched, pairwise/multi-hop patched via
///                    retained + changed fragments (hypergraph/dynamic.h)
///                ->  encoder re-embeds only the dirty closure
///                    (AhntpModel::RefreshIncremental)
///                ->  fp32/int8 plan tables patched row-wise; spilled
///                    shard blocks re-written only for dirty shards.
///
/// Fault site "plan.delta.refresh" fires right after the store commit; an
/// injected fault rolls the store back (RevertLast) and leaves every
/// derived structure untouched, so the pipeline stays consistent at the
/// previous generation.
///
/// Not thread-safe; the serving layer applies deltas between batches on
/// its dispatcher thread. generation() is safe from any thread.
class DynamicTrustPipeline {
 public:
  /// Builds the full stack from `dataset` and primes the encoder's
  /// activation caches (one full inference pass — the cold baseline).
  static Result<DynamicTrustPipeline> Create(
      const data::SocialDataset& dataset,
      DynamicPipelineOptions options = DynamicPipelineOptions());

  DynamicTrustPipeline(DynamicTrustPipeline&&) = default;
  DynamicTrustPipeline& operator=(DynamicTrustPipeline&&) = default;

  /// Applies one delta through the whole cascade. On error (validation or
  /// an injected fault) the pipeline is unchanged, previous generation
  /// included.
  Result<DeltaOutcome> ApplyDelta(const graph::GraphDelta& delta);

  /// Builds a fresh pipeline from the current snapshot — the equivalence
  /// oracle for the incremental path. The incrementally maintained
  /// influence vector is handed to the rebuild verbatim
  /// (AhntpConfig::influence_override), so everything downstream of
  /// influence compares bitwise; the vector itself is validated separately
  /// against a cold solve at testing tolerance (tests/dynamic_test.cc).
  Result<DynamicTrustPipeline> RebuildFromScratch() const;

  /// The store's monotonic generation — the serving cache key. Safe from
  /// any thread.
  int64_t generation() const { return store_->generation(); }

  models::TrustPredictor& predictor() { return *predictor_; }
  const models::TrustPredictor& predictor() const { return *predictor_; }
  AhntpModel& model() { return *model_; }
  const AhntpModel& model() const { return *model_; }
  const graph::MutableTrustGraph& store() const { return *store_; }
  const data::SocialDataset& dataset() const { return dataset_; }
  const tensor::Matrix& features() const { return features_; }
  const std::vector<double>& influence() const { return influence_; }
  /// Incrementally maintained motif counts (null when use_mpr is off).
  const graph::MotifCounts* motif_counts() const {
    return motifs_ ? &*motifs_ : nullptr;
  }
  int cold_pagerank_iterations() const { return cold_pr_iterations_; }

  /// The per-hypergroup states the incremental updates maintain.
  const hypergraph::Hypergraph& social_hypergroup() const { return social_; }
  const hypergraph::Hypergraph& attribute_hypergroup() const {
    return attribute_;
  }
  const hypergraph::Hypergraph& pairwise_hypergroup() const {
    return pairwise_;
  }
  const hypergraph::Hypergraph& multihop_hypergroup() const {
    return multihop_;
  }

 private:
  DynamicTrustPipeline() = default;

  DynamicPipelineOptions options_;
  data::SocialDataset dataset_;
  std::optional<graph::MutableTrustGraph> store_;
  tensor::Matrix features_;
  std::optional<graph::MotifCounts> motifs_;
  std::vector<double> influence_;
  int cold_pr_iterations_ = 0;

  hypergraph::Hypergraph social_{0};
  hypergraph::Hypergraph attribute_{0};
  hypergraph::Hypergraph pairwise_{0};
  hypergraph::Hypergraph multihop_{0};
  hypergraph::MultiHopOptions hop_options_;
  std::vector<int64_t> node_keys_;      // social || attribute, static
  std::vector<int64_t> pairwise_keys_;  // tracks the live edge set
  std::vector<int64_t> multihop_keys_;  // static

  std::unique_ptr<Rng> rng_;  // stable address: the model keeps a pointer
  std::shared_ptr<AhntpModel> model_;
  std::unique_ptr<models::TrustPredictor> predictor_;
  std::unique_ptr<tensor::Workspace> ws_;
};

}  // namespace ahntp::core

#endif  // AHNTP_CORE_DYNAMIC_PIPELINE_H_
