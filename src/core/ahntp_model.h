#ifndef AHNTP_CORE_AHNTP_MODEL_H_
#define AHNTP_CORE_AHNTP_MODEL_H_

#include <memory>
#include <vector>

#include "core/adaptive_conv.h"
#include "graph/pagerank.h"
#include "hypergraph/builders.h"
#include "hypergraph/dynamic.h"
#include "models/encoder.h"
#include "nn/mlp.h"

namespace ahntp::core {

/// Configuration of the full AHNTP model (Fig. 5). Defaults follow
/// Section V-A.4: alpha = 0.8, three conv layers of 256-128-64, 1-hop
/// multi-hop group at those dims.
struct AhntpConfig {
  /// Output widths of the stacked adaptive conv layers.
  std::vector<size_t> hidden_dims = {256, 128, 64};

  // --- Hypergroup construction (Section IV-B) ---
  /// K of the high-social-influence hyperedges (Eq. 6).
  int social_top_k = 5;
  /// false = AHNTP_nompr ablation: plain PageRank replaces MPR.
  bool use_mpr = true;
  /// alpha of Eq. (4).
  double mpr_alpha = 0.8;
  /// Motif driving the high-order term of MPR.
  graph::Motif motif = graph::Motif::kM6;
  /// N of the multi-hop hypergroup (Eq. 9).
  int multi_hop = 1;
  /// Cap on multi-hop hyperedge size (0 = unlimited).
  size_t multi_hop_max_edge_size = 128;
  /// Attribute hyperedges smaller than this are dropped.
  size_t attribute_min_size = 2;

  // --- Convolution (Section IV-C) ---
  /// false = AHNTP_noatt ablation: standard hypergraph convolution.
  bool use_attention = true;
  /// Attention heads per conv layer (1 = the paper's design). Every entry
  /// of hidden_dims must be divisible by this.
  size_t attention_heads = 1;
  float dropout = 0.1f;

  // --- Influence computation ---
  /// Inner power-iteration settings for both MPR and the plain-PageRank
  /// ablation. The dynamic pipeline tightens tolerance and raises the
  /// iteration cap so warm-started and cold runs land on the same fixed
  /// point to within testing tolerance.
  graph::PageRankOptions pagerank;
  /// When non-empty (must be sized to the user count), used verbatim as
  /// the influence scores instead of running (M)PR. The dynamic pipeline
  /// computes the scores once — warm-started — and shares them with any
  /// model it constructs, including the rebuild-from-scratch oracle.
  std::vector<double> influence_override;
};

/// The Adaptive Hypergraph Network for Trust Prediction.
///
/// Construction builds the two-tier hypergroups from the *training* trust
/// graph and user attributes:
///   node level      = social-influence (MPR top-K)  ||  attribute groups,
///   structure level = pairwise (2-uniform)          ||  multi-hop balls.
/// Each tier runs through its own feature MLP and stack of adaptive
/// hypergraph convolutions; the two embeddings are concatenated (Fig. 5).
/// The pairwise towers + cosine head live in models::TrustPredictor.
class AhntpModel : public models::Encoder {
 public:
  AhntpModel(const models::ModelInputs& inputs, const AhntpConfig& config);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override {
    return 2 * config_.hidden_dims.back();
  }
  std::string name() const override { return "AHNTP"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

  const AhntpConfig& config() const { return config_; }
  const hypergraph::Hypergraph& node_hypergraph() const { return node_hg_; }
  const hypergraph::Hypergraph& structure_hypergraph() const {
    return structure_hg_;
  }
  /// Union of both tiers, used by the Eq. 23 regularizer.
  const hypergraph::Hypergraph& combined_hypergraph() const {
    return combined_hg_;
  }
  /// The (motif-)PageRank influence scores used for the social hypergroup.
  const std::vector<double>& influence_scores() const { return influence_; }

  /// One hyperedge's contribution to a user's embedding, read from the
  /// final adaptive-convolution attention (Eq. 15).
  struct HyperedgeInfluence {
    std::string branch;   // "node" or "structure"
    std::string source;   // "social-influence", "attribute", "pairwise",
                          // "multi-hop"
    int edge_index = 0;   // index within the branch hypergraph
    float attention = 0;  // w_ie of the last conv layer
    std::vector<int> members;
  };

  /// Explains user u: the top_k hyperedges (across both branches) that the
  /// final conv layer attends to most when embedding u. Runs one eval-mode
  /// forward pass. Requires the attention variant (use_attention).
  std::vector<HyperedgeInfluence> ExplainUser(int u, size_t top_k = 5);

  // --- Incremental refresh (DESIGN.md §17) ------------------------------

  /// Like InferUsers() — bit-identical output — but additionally snapshots
  /// every branch activation (the feature-MLP output and each conv layer's
  /// output) as owned matrices. These caches are what RefreshIncremental()
  /// reads and patches; call this once before the first refresh.
  tensor::Matrix InferUsersCached(tensor::Workspace* ws);

  /// Whether InferUsersCached() has primed the activation caches.
  bool caches_primed() const { return !node_branch_.cache.empty(); }

  /// One branch's post-delta structure, produced by the dynamic pipeline
  /// from the incremental hypergroup updates and hypergraph::DiffBranch.
  /// When `diff.any_change` is false the hypergraph/sources fields are
  /// ignored and the branch structure is left untouched.
  struct BranchUpdate {
    hypergraph::Hypergraph hypergraph{0};
    hypergraph::BranchDiff diff;
    /// Per-edge source labels parallel to `hypergraph` ("social-influence",
    /// "attribute", "pairwise", "multi-hop").
    std::vector<std::string> edge_sources;
  };

  /// Outcome of an incremental refresh: which users' final embeddings
  /// changed, with their new rows ready for InferencePlan::RefreshRows.
  struct RefreshResult {
    std::vector<int> dirty_users;     // ascending, deduplicated
    tensor::Matrix dirty_embeddings;  // (|dirty_users| x embedding_dim())
  };

  /// Incrementally re-embeds after a graph/rating delta. Per branch, the
  /// convs' incidence structures are rebuilt from the new hypergraph (edge
  /// weights remapped through diff.new_from_old), then the dirty closure
  ///   D^l = D^{l-1} ∪ members(incident(D^{l-1})) ∪ reorder_dirty
  ///         ∪ members(changed_edges)
  /// is propagated layer by layer, recomputing only the dirty rows via
  /// AdaptiveHypergraphConv::InferRows and patching the activation caches
  /// in place. Every patched row is bit-identical to a full InferUsers()
  /// on the post-delta model. `dirty_feature_rows` (ascending) are users
  /// whose feature rows changed, with their new rows in
  /// `new_feature_rows`; `new_influence` replaces influence_scores().
  /// Requires caches_primed().
  RefreshResult RefreshIncremental(BranchUpdate node_update,
                                   BranchUpdate structure_update,
                                   const std::vector<int>& dirty_feature_rows,
                                   const tensor::Matrix& new_feature_rows,
                                   const std::vector<double>& new_influence,
                                   tensor::Workspace* ws);

 private:
  /// One tier: feature MLP then stacked adaptive convolutions.
  struct Branch {
    std::unique_ptr<nn::Mlp> feature_mlp;
    std::vector<std::unique_ptr<AdaptiveHypergraphConv>> convs;
    /// Activation snapshots: cache[0] = feature-MLP output, cache[l+1] =
    /// conv l output. Empty until InferUsersCached() primes them.
    std::vector<tensor::Matrix> cache;
  };
  Branch MakeBranch(const hypergraph::Hypergraph& hg, size_t in_dim,
                    Rng* rng);
  autograd::Variable RunBranch(const Branch& branch,
                               const autograd::Variable& x);
  tensor::Matrix& InferBranch(const Branch& branch, const tensor::Matrix& x,
                              tensor::Workspace* ws);
  tensor::Matrix& InferBranchCached(Branch& branch, const tensor::Matrix& x,
                                    tensor::Workspace* ws);
  /// Applies one BranchUpdate + feature-dirty seed to a branch; returns the
  /// final-layer dirty vertex set (ascending).
  std::vector<int> RefreshBranch(Branch& branch,
                                 hypergraph::Hypergraph* hg_member,
                                 std::vector<std::string>* sources_member,
                                 BranchUpdate* update,
                                 const std::vector<int>& seed,
                                 tensor::Workspace* ws);

  AhntpConfig config_;
  autograd::Variable features_;
  std::vector<double> influence_;
  hypergraph::Hypergraph node_hg_;
  hypergraph::Hypergraph structure_hg_;
  hypergraph::Hypergraph combined_hg_;
  std::vector<std::string> node_edge_sources_;       // per node_hg_ edge
  std::vector<std::string> structure_edge_sources_;  // per structure_hg_ edge
  Branch node_branch_;
  Branch structure_branch_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::core

#endif  // AHNTP_CORE_AHNTP_MODEL_H_
