#ifndef AHNTP_CORE_AHNTP_MODEL_H_
#define AHNTP_CORE_AHNTP_MODEL_H_

#include <memory>
#include <vector>

#include "core/adaptive_conv.h"
#include "hypergraph/builders.h"
#include "models/encoder.h"
#include "nn/mlp.h"

namespace ahntp::core {

/// Configuration of the full AHNTP model (Fig. 5). Defaults follow
/// Section V-A.4: alpha = 0.8, three conv layers of 256-128-64, 1-hop
/// multi-hop group at those dims.
struct AhntpConfig {
  /// Output widths of the stacked adaptive conv layers.
  std::vector<size_t> hidden_dims = {256, 128, 64};

  // --- Hypergroup construction (Section IV-B) ---
  /// K of the high-social-influence hyperedges (Eq. 6).
  int social_top_k = 5;
  /// false = AHNTP_nompr ablation: plain PageRank replaces MPR.
  bool use_mpr = true;
  /// alpha of Eq. (4).
  double mpr_alpha = 0.8;
  /// Motif driving the high-order term of MPR.
  graph::Motif motif = graph::Motif::kM6;
  /// N of the multi-hop hypergroup (Eq. 9).
  int multi_hop = 1;
  /// Cap on multi-hop hyperedge size (0 = unlimited).
  size_t multi_hop_max_edge_size = 128;
  /// Attribute hyperedges smaller than this are dropped.
  size_t attribute_min_size = 2;

  // --- Convolution (Section IV-C) ---
  /// false = AHNTP_noatt ablation: standard hypergraph convolution.
  bool use_attention = true;
  /// Attention heads per conv layer (1 = the paper's design). Every entry
  /// of hidden_dims must be divisible by this.
  size_t attention_heads = 1;
  float dropout = 0.1f;
};

/// The Adaptive Hypergraph Network for Trust Prediction.
///
/// Construction builds the two-tier hypergroups from the *training* trust
/// graph and user attributes:
///   node level      = social-influence (MPR top-K)  ||  attribute groups,
///   structure level = pairwise (2-uniform)          ||  multi-hop balls.
/// Each tier runs through its own feature MLP and stack of adaptive
/// hypergraph convolutions; the two embeddings are concatenated (Fig. 5).
/// The pairwise towers + cosine head live in models::TrustPredictor.
class AhntpModel : public models::Encoder {
 public:
  AhntpModel(const models::ModelInputs& inputs, const AhntpConfig& config);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override {
    return 2 * config_.hidden_dims.back();
  }
  std::string name() const override { return "AHNTP"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

  const AhntpConfig& config() const { return config_; }
  const hypergraph::Hypergraph& node_hypergraph() const { return node_hg_; }
  const hypergraph::Hypergraph& structure_hypergraph() const {
    return structure_hg_;
  }
  /// Union of both tiers, used by the Eq. 23 regularizer.
  const hypergraph::Hypergraph& combined_hypergraph() const {
    return combined_hg_;
  }
  /// The (motif-)PageRank influence scores used for the social hypergroup.
  const std::vector<double>& influence_scores() const { return influence_; }

  /// One hyperedge's contribution to a user's embedding, read from the
  /// final adaptive-convolution attention (Eq. 15).
  struct HyperedgeInfluence {
    std::string branch;   // "node" or "structure"
    std::string source;   // "social-influence", "attribute", "pairwise",
                          // "multi-hop"
    int edge_index = 0;   // index within the branch hypergraph
    float attention = 0;  // w_ie of the last conv layer
    std::vector<int> members;
  };

  /// Explains user u: the top_k hyperedges (across both branches) that the
  /// final conv layer attends to most when embedding u. Runs one eval-mode
  /// forward pass. Requires the attention variant (use_attention).
  std::vector<HyperedgeInfluence> ExplainUser(int u, size_t top_k = 5);

 private:
  /// One tier: feature MLP then stacked adaptive convolutions.
  struct Branch {
    std::unique_ptr<nn::Mlp> feature_mlp;
    std::vector<std::unique_ptr<AdaptiveHypergraphConv>> convs;
  };
  Branch MakeBranch(const hypergraph::Hypergraph& hg, size_t in_dim,
                    Rng* rng);
  autograd::Variable RunBranch(const Branch& branch,
                               const autograd::Variable& x);
  tensor::Matrix& InferBranch(const Branch& branch, const tensor::Matrix& x,
                              tensor::Workspace* ws);

  AhntpConfig config_;
  autograd::Variable features_;
  std::vector<double> influence_;
  hypergraph::Hypergraph node_hg_;
  hypergraph::Hypergraph structure_hg_;
  hypergraph::Hypergraph combined_hg_;
  std::vector<std::string> node_edge_sources_;       // per node_hg_ edge
  std::vector<std::string> structure_edge_sources_;  // per structure_hg_ edge
  Branch node_branch_;
  Branch structure_branch_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::core

#endif  // AHNTP_CORE_AHNTP_MODEL_H_
