#ifndef AHNTP_CORE_REPEATED_H_
#define AHNTP_CORE_REPEATED_H_

#include <string>

#include "core/experiment.h"

namespace ahntp::core {

/// Mean and sample standard deviation of one metric across repeats.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Fault-tolerance knobs for RunRepeatedExperiment (DESIGN.md §10).
struct SweepOptions {
  /// Path of the sweep-state checkpoint ("" disables checkpointing). The
  /// file is rewritten atomically after every completed run, so an
  /// interrupted sweep loses at most the runs still in flight.
  std::string state_path;
  /// Load completed runs from `state_path` (when it exists) instead of
  /// recomputing them. Runs are seeded per index, so a resumed sweep is
  /// bit-identical to an uninterrupted one on every metric. Previously
  /// failed runs are retried. The state header records the sweep identity
  /// (model, run count, seeds); resuming against a mismatched state file
  /// is an InvalidArgument, not silent reuse.
  bool resume = false;
};

/// Aggregate of repeated experiment runs (different model seeds and/or
/// split seeds). Single-seed GNN results on small graphs are noisy; papers
/// (and this harness) should report means.
struct RepeatedResult {
  std::string model;
  /// Runs that completed successfully and entered the aggregates.
  int num_runs = 0;
  MetricSummary accuracy;
  MetricSummary f1;
  MetricSummary auc;
  double total_train_seconds = 0.0;
  /// The last successful run's full result (thresholds, parameter
  /// counts, ...).
  ExperimentResult last;
  /// Degraded runs: a run that returned a non-OK Status or threw is
  /// reported here ("run 2: Internal: ...") while the sweep completes; it
  /// never enters the aggregates.
  int num_failed = 0;
  std::vector<std::string> failures;
  /// Completed runs loaded from SweepOptions::state_path rather than
  /// recomputed.
  int num_resumed = 0;

  std::string ToString() const;
};

/// Runs the experiment `num_runs` times with model seeds
/// config.model_seed + i. When `vary_split_seed` is set, the split seed
/// advances in lockstep as well (different negative samples / shuffles).
/// Failed runs degrade into RepeatedResult::failures instead of aborting
/// the sweep; only a sweep with zero successful runs returns an error.
/// `options` adds periodic sweep-state checkpointing and resume.
/// Fault-injection site: "experiment.run" throws at run entry
/// (common/fault.h).
Result<RepeatedResult> RunRepeatedExperiment(const data::SocialDataset& dataset,
                                             ExperimentConfig config,
                                             int num_runs,
                                             bool vary_split_seed = false,
                                             const SweepOptions& options = {});

/// K-fold style robustness check over the *positive edge set*: rotates the
/// split seed so each fold sees a different test slice, mirroring the
/// paper's Q2 robustness question. Returns the cross-fold summary.
Result<RepeatedResult> RunCrossValidation(const data::SocialDataset& dataset,
                                          ExperimentConfig config,
                                          int num_folds = 5);

}  // namespace ahntp::core

#endif  // AHNTP_CORE_REPEATED_H_
