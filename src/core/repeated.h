#ifndef AHNTP_CORE_REPEATED_H_
#define AHNTP_CORE_REPEATED_H_

#include <string>

#include "core/experiment.h"

namespace ahntp::core {

/// Mean and sample standard deviation of one metric across repeats.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Aggregate of repeated experiment runs (different model seeds and/or
/// split seeds). Single-seed GNN results on small graphs are noisy; papers
/// (and this harness) should report means.
struct RepeatedResult {
  std::string model;
  int num_runs = 0;
  MetricSummary accuracy;
  MetricSummary f1;
  MetricSummary auc;
  double total_train_seconds = 0.0;
  /// The last run's full result (for thresholds, parameter counts, ...).
  ExperimentResult last;

  std::string ToString() const;
};

/// Runs the experiment `num_runs` times with model seeds
/// config.model_seed + i. When `vary_split_seed` is set, the split seed
/// advances in lockstep as well (different negative samples / shuffles).
Result<RepeatedResult> RunRepeatedExperiment(const data::SocialDataset& dataset,
                                             ExperimentConfig config,
                                             int num_runs,
                                             bool vary_split_seed = false);

/// K-fold style robustness check over the *positive edge set*: rotates the
/// split seed so each fold sees a different test slice, mirroring the
/// paper's Q2 robustness question. Returns the cross-fold summary.
Result<RepeatedResult> RunCrossValidation(const data::SocialDataset& dataset,
                                          ExperimentConfig config,
                                          int num_folds = 5);

}  // namespace ahntp::core

#endif  // AHNTP_CORE_REPEATED_H_
