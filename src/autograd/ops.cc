#include "autograd/ops.h"

#include <cmath>

#include "common/check.h"
#include "tensor/kernels.h"

namespace ahntp::autograd {

using tensor::CsrMatrix;
using tensor::Matrix;

namespace {

/// Builds an op node. `backward` may capture raw Node pointers of inputs;
/// they stay alive because the node holds shared_ptrs to them.
Variable MakeOp(Matrix value, std::vector<std::shared_ptr<Node>> inputs,
                std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (const auto& in : inputs) {
    if (in->requires_grad) node->requires_grad = true;
  }
  node->inputs = std::move(inputs);
  if (node->requires_grad) node->backward = std::move(backward);
  return Variable(node);
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  Matrix out = tensor::MatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(std::move(out), {an, bn}, [an, bn](Node& self) {
    if (an->requires_grad) {
      an->AccumulateGrad(tensor::MatMul(self.grad, bn->value,
                                        /*transpose_a=*/false,
                                        /*transpose_b=*/true));
    }
    if (bn->requires_grad) {
      bn->AccumulateGrad(tensor::MatMul(an->value, self.grad,
                                        /*transpose_a=*/true,
                                        /*transpose_b=*/false));
    }
  });
}

Variable Add(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(tensor::Add(a.value(), b.value()), {an, bn},
                [an, bn](Node& self) {
                  if (an->requires_grad) an->AccumulateGrad(self.grad);
                  if (bn->requires_grad) bn->AccumulateGrad(self.grad);
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(tensor::Sub(a.value(), b.value()), {an, bn},
                [an, bn](Node& self) {
                  if (an->requires_grad) an->AccumulateGrad(self.grad);
                  if (bn->requires_grad) {
                    bn->AccumulateGrad(tensor::Scale(self.grad, -1.0f));
                  }
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(tensor::Hadamard(a.value(), b.value()), {an, bn},
                [an, bn](Node& self) {
                  if (an->requires_grad) {
                    an->AccumulateGrad(tensor::Hadamard(self.grad, bn->value));
                  }
                  if (bn->requires_grad) {
                    bn->AccumulateGrad(tensor::Hadamard(self.grad, an->value));
                  }
                });
}

Variable MulConst(const Variable& a, const Matrix& k) {
  auto an = a.node();
  Matrix k_copy = k;
  return MakeOp(tensor::Hadamard(a.value(), k), {an},
                [an, k_copy](Node& self) {
                  an->AccumulateGrad(tensor::Hadamard(self.grad, k_copy));
                });
}

Variable Scale(const Variable& a, float scalar) {
  auto an = a.node();
  return MakeOp(tensor::Scale(a.value(), scalar), {an},
                [an, scalar](Node& self) {
                  an->AccumulateGrad(tensor::Scale(self.grad, scalar));
                });
}

Variable AddScalar(const Variable& a, float scalar) {
  auto an = a.node();
  Matrix out;
  tensor::AddScalarInto(&out, a.value(), scalar);
  return MakeOp(std::move(out), {an},
                [an](Node& self) { an->AccumulateGrad(self.grad); });
}

Variable AddRowBroadcast(const Variable& a, const Variable& bias) {
  AHNTP_CHECK_EQ(bias.rows(), 1u);
  AHNTP_CHECK_EQ(bias.cols(), a.cols());
  auto an = a.node();
  auto bn = bias.node();
  return MakeOp(tensor::AddRowBroadcast(a.value(), bias.value()), {an, bn},
                [an, bn](Node& self) {
                  if (an->requires_grad) an->AccumulateGrad(self.grad);
                  if (bn->requires_grad) {
                    bn->AccumulateGrad(tensor::ColSums(self.grad));
                  }
                });
}

Variable MulColBroadcast(const Variable& a, const Variable& col) {
  AHNTP_CHECK_EQ(col.rows(), a.rows());
  AHNTP_CHECK_EQ(col.cols(), 1u);
  auto an = a.node();
  auto cn = col.node();
  Matrix out;
  tensor::MulColBroadcastInto(&out, a.value(), col.value());
  return MakeOp(std::move(out), {an, cn}, [an, cn](Node& self) {
    if (an->requires_grad) {
      Matrix ga = self.grad;
      for (size_t r = 0; r < ga.rows(); ++r) {
        float s = cn->value.At(r, 0);
        float* row = ga.RowPtr(r);
        for (size_t c = 0; c < ga.cols(); ++c) row[c] *= s;
      }
      an->AccumulateGrad(ga);
    }
    if (cn->requires_grad) {
      Matrix gc(self.grad.rows(), 1);
      for (size_t r = 0; r < self.grad.rows(); ++r) {
        const float* grow = self.grad.RowPtr(r);
        const float* arow = an->value.RowPtr(r);
        double acc = 0.0;
        for (size_t c = 0; c < self.grad.cols(); ++c) acc += static_cast<double>(grow[c]) * arow[c];
        gc.At(r, 0) = static_cast<float>(acc);
      }
      cn->AccumulateGrad(gc);
    }
  });
}

Variable SpMMConst(const CsrMatrix& s, const Variable& x) {
  auto xn = x.node();
  // The sparse operand is shared so graphs built in a loop do not copy it.
  auto s_shared = std::make_shared<CsrMatrix>(s);
  return MakeOp(tensor::SpMM(*s_shared, x.value()), {xn},
                [xn, s_shared](Node& self) {
                  xn->AccumulateGrad(tensor::SpMMTransposed(*s_shared, self.grad));
                });
}

Variable SpMMTransposedConst(const CsrMatrix& s, const Variable& x) {
  auto xn = x.node();
  auto s_shared = std::make_shared<CsrMatrix>(s);
  return MakeOp(tensor::SpMMTransposed(*s_shared, x.value()), {xn},
                [xn, s_shared](Node& self) {
                  xn->AccumulateGrad(tensor::SpMM(*s_shared, self.grad));
                });
}

Variable Relu(const Variable& a) {
  auto an = a.node();
  Matrix out;
  tensor::ReluInto(&out, a.value());
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      if (an->value.data()[i] <= 0.0f) g.data()[i] = 0.0f;
    }
    an->AccumulateGrad(g);
  });
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  auto an = a.node();
  Matrix out;
  tensor::LeakyReluInto(&out, a.value(), negative_slope);
  return MakeOp(std::move(out), {an}, [an, negative_slope](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      if (an->value.data()[i] < 0.0f) g.data()[i] *= negative_slope;
    }
    an->AccumulateGrad(g);
  });
}

Variable Sigmoid(const Variable& a) {
  auto an = a.node();
  Matrix out;
  tensor::SigmoidInto(&out, a.value());
  auto result = MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float y = self.value.data()[i];
      g.data()[i] *= y * (1.0f - y);
    }
    an->AccumulateGrad(g);
  });
  return result;
}

Variable Tanh(const Variable& a) {
  auto an = a.node();
  Matrix out;
  tensor::TanhInto(&out, a.value());
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float y = self.value.data()[i];
      g.data()[i] *= 1.0f - y * y;
    }
    an->AccumulateGrad(g);
  });
}

Variable Exp(const Variable& a) {
  auto an = a.node();
  Matrix out;
  tensor::ExpInto(&out, a.value());
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) g.data()[i] *= self.value.data()[i];
    an->AccumulateGrad(g);
  });
}

Variable Log(const Variable& a, float epsilon) {
  auto an = a.node();
  Matrix out;
  tensor::LogInto(&out, a.value(), epsilon);
  return MakeOp(std::move(out), {an}, [an, epsilon](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] /= std::max(an->value.data()[i], epsilon);
    }
    an->AccumulateGrad(g);
  });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  auto an = a.node();
  Matrix out;
  tensor::ClampInto(&out, a.value(), lo, hi);
  return MakeOp(std::move(out), {an}, [an, lo, hi](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float x = an->value.data()[i];
      if (x < lo || x > hi) g.data()[i] = 0.0f;
    }
    an->AccumulateGrad(g);
  });
}

Variable Sqrt(const Variable& a, float epsilon) {
  auto an = a.node();
  Matrix out;
  tensor::SqrtInto(&out, a.value(), epsilon);
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] *= 0.5f / self.value.data()[i];
    }
    an->AccumulateGrad(g);
  });
}

Variable Abs(const Variable& a) {
  auto an = a.node();
  Matrix out;
  tensor::AbsInto(&out, a.value());
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float x = an->value.data()[i];
      g.data()[i] *= x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
    }
    an->AccumulateGrad(g);
  });
}

Variable PowScalar(const Variable& a, float exponent, float epsilon) {
  auto an = a.node();
  Matrix out;
  tensor::PowScalarInto(&out, a.value(), exponent, epsilon);
  return MakeOp(std::move(out), {an}, [an, exponent, epsilon](Node& self) {
    Matrix g = self.grad;
    for (size_t i = 0; i < g.size(); ++i) {
      float x = std::max(an->value.data()[i], epsilon);
      g.data()[i] *= exponent * std::pow(x, exponent - 1.0f);
    }
    an->AccumulateGrad(g);
  });
}

Variable RowStandardize(const Variable& a, float epsilon) {
  auto an = a.node();
  Matrix out;
  std::vector<float> inv_std;
  tensor::RowStandardizeInto(&out, a.value(), epsilon, &inv_std);
  return MakeOp(std::move(out), {an}, [an, inv_std](Node& self) {
    // dX = inv_std * (dY - mean(dY) - y * mean(dY ⊙ y)), per row.
    const size_t rows2 = self.value.rows();
    const size_t cols2 = self.value.cols();
    Matrix g(rows2, cols2);
    for (size_t r = 0; r < rows2; ++r) {
      const float* yrow = self.value.RowPtr(r);
      const float* grow = self.grad.RowPtr(r);
      double mean_g = 0.0, mean_gy = 0.0;
      for (size_t c = 0; c < cols2; ++c) {
        mean_g += grow[c];
        mean_gy += static_cast<double>(grow[c]) * yrow[c];
      }
      mean_g /= static_cast<double>(cols2);
      mean_gy /= static_cast<double>(cols2);
      float* dst = g.RowPtr(r);
      for (size_t c = 0; c < cols2; ++c) {
        dst[c] = inv_std[r] *
                 static_cast<float>(grow[c] - mean_g - yrow[c] * mean_gy);
      }
    }
    an->AccumulateGrad(g);
  });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  AHNTP_CHECK(!parts.empty());
  std::vector<const Matrix*> values;
  std::vector<std::shared_ptr<Node>> nodes;
  std::vector<size_t> widths;
  for (const Variable& p : parts) {
    values.push_back(&p.value());
    nodes.push_back(p.node());
    widths.push_back(p.cols());
  }
  Matrix out = tensor::ConcatCols(values);
  auto inputs = nodes;
  return MakeOp(std::move(out), std::move(nodes),
                [inputs, widths](Node& self) {
                  size_t offset = 0;
                  for (size_t k = 0; k < inputs.size(); ++k) {
                    if (inputs[k]->requires_grad) {
                      Matrix g(self.grad.rows(), widths[k]);
                      for (size_t r = 0; r < g.rows(); ++r) {
                        const float* src = self.grad.RowPtr(r) + offset;
                        float* dst = g.RowPtr(r);
                        for (size_t c = 0; c < widths[k]; ++c) dst[c] = src[c];
                      }
                      inputs[k]->AccumulateGrad(g);
                    }
                    offset += widths[k];
                  }
                });
}

Variable GatherRows(const Variable& a, const std::vector<int>& indices) {
  auto an = a.node();
  std::vector<int> idx = indices;
  return MakeOp(tensor::GatherRows(a.value(), indices), {an},
                [an, idx](Node& self) {
                  Matrix g(an->value.rows(), an->value.cols());
                  for (size_t i = 0; i < idx.size(); ++i) {
                    const float* src = self.grad.RowPtr(i);
                    float* dst = g.RowPtr(static_cast<size_t>(idx[i]));
                    for (size_t c = 0; c < g.cols(); ++c) dst[c] += src[c];
                  }
                  an->AccumulateGrad(g);
                });
}

Variable SegmentSum(const Variable& a, const std::vector<int>& segments,
                    size_t num_segments) {
  auto an = a.node();
  std::vector<int> seg = segments;
  Matrix out;
  tensor::SegmentSumInto(&out, a.value(), segments, num_segments);
  return MakeOp(std::move(out), {an}, [an, seg](Node& self) {
    Matrix g(an->value.rows(), an->value.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      const float* src = self.grad.RowPtr(static_cast<size_t>(seg[r]));
      float* dst = g.RowPtr(r);
      for (size_t c = 0; c < g.cols(); ++c) dst[c] = src[c];
    }
    an->AccumulateGrad(g);
  });
}

Variable SegmentMean(const Variable& a, const std::vector<int>& segments,
                     size_t num_segments) {
  auto an = a.node();
  std::vector<int> seg = segments;
  std::vector<float> counts;
  Matrix out;
  tensor::SegmentMeanInto(&out, a.value(), segments, num_segments, &counts);
  return MakeOp(std::move(out), {an}, [an, seg, counts](Node& self) {
    Matrix g(an->value.rows(), an->value.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      size_t s = static_cast<size_t>(seg[r]);
      const float* src = self.grad.RowPtr(s);
      float* dst = g.RowPtr(r);
      float inv = counts[s] > 0.0f ? 1.0f / counts[s] : 0.0f;
      for (size_t c = 0; c < g.cols(); ++c) dst[c] = src[c] * inv;
    }
    an->AccumulateGrad(g);
  });
}

Variable SegmentSoftmax(const Variable& a, const std::vector<int>& segments,
                        size_t num_segments) {
  auto an = a.node();
  std::vector<int> seg = segments;
  Matrix out;
  tensor::SegmentSoftmaxInto(&out, a.value(), segments, num_segments);
  return MakeOp(std::move(out), {an}, [an, seg, num_segments](Node& self) {
    // dX_i = y_i * (dY_i - sum_{j in seg(i)} dY_j y_j)
    std::vector<double> weighted(num_segments, 0.0);
    const size_t n2 = self.value.rows();
    for (size_t r = 0; r < n2; ++r) {
      weighted[static_cast<size_t>(seg[r])] +=
          static_cast<double>(self.grad.At(r, 0)) * self.value.At(r, 0);
    }
    Matrix g(n2, 1);
    for (size_t r = 0; r < n2; ++r) {
      size_t s = static_cast<size_t>(seg[r]);
      g.At(r, 0) = self.value.At(r, 0) *
                   (self.grad.At(r, 0) - static_cast<float>(weighted[s]));
    }
    an->AccumulateGrad(g);
  });
}

Variable RowL2Normalize(const Variable& a, float epsilon) {
  auto an = a.node();
  Matrix norms;
  tensor::RowNormsInto(&norms, a.value(), epsilon);
  Matrix out;
  tensor::DivRowsByNormsInto(&out, a.value(), norms);
  return MakeOp(std::move(out), {an}, [an, norms](Node& self) {
    // y = x / n; dX = (dY - y * dot(dY, y)) / n, per row.
    Matrix g(self.value.rows(), self.value.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      const float* yrow = self.value.RowPtr(r);
      const float* grow = self.grad.RowPtr(r);
      double dot = 0.0;
      for (size_t c = 0; c < g.cols(); ++c) dot += static_cast<double>(grow[c]) * yrow[c];
      float inv = 1.0f / norms.At(r, 0);
      float* dst = g.RowPtr(r);
      for (size_t c = 0; c < g.cols(); ++c) {
        dst[c] = (grow[c] - yrow[c] * static_cast<float>(dot)) * inv;
      }
    }
    an->AccumulateGrad(g);
  });
}

Variable RowwiseDot(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  Matrix out;
  tensor::RowwiseDotInto(&out, a.value(), b.value());
  return MakeOp(std::move(out), {an, bn}, [an, bn](Node& self) {
    for (size_t r = 0; r < self.value.rows(); ++r) {
      float g = self.grad.At(r, 0);
      if (g == 0.0f) continue;
      if (an->requires_grad) {
        an->EnsureGrad();
        float* dst = an->grad.RowPtr(r);
        const float* src = bn->value.RowPtr(r);
        for (size_t c = 0; c < an->value.cols(); ++c) dst[c] += g * src[c];
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        float* dst = bn->grad.RowPtr(r);
        const float* src = an->value.RowPtr(r);
        for (size_t c = 0; c < bn->value.cols(); ++c) dst[c] += g * src[c];
      }
    }
  });
}

Variable PairwiseCosine(const Variable& a, const Variable& b, float epsilon) {
  Variable na = RowL2Normalize(a, epsilon);
  Variable nb = RowL2Normalize(b, epsilon);
  return RowwiseDot(na, nb);
}

Variable RowSoftmax(const Variable& a) {
  auto an = a.node();
  Matrix out;
  tensor::RowSoftmaxInto(&out, a.value());
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    Matrix g(self.value.rows(), self.value.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      const float* yrow = self.value.RowPtr(r);
      const float* grow = self.grad.RowPtr(r);
      double dot = 0.0;
      for (size_t c = 0; c < g.cols(); ++c) dot += static_cast<double>(grow[c]) * yrow[c];
      float* dst = g.RowPtr(r);
      for (size_t c = 0; c < g.cols(); ++c) {
        dst[c] = yrow[c] * (grow[c] - static_cast<float>(dot));
      }
    }
    an->AccumulateGrad(g);
  });
}

Variable ReduceSum(const Variable& a) {
  auto an = a.node();
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Sum();
  return MakeOp(std::move(out), {an}, [an](Node& self) {
    float g = self.grad.At(0, 0);
    Matrix grad(an->value.rows(), an->value.cols(), g);
    an->AccumulateGrad(grad);
  });
}

Variable ReduceMean(const Variable& a) {
  auto an = a.node();
  AHNTP_CHECK_GT(a.value().size(), 0u);
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Mean();
  float inv = 1.0f / static_cast<float>(a.value().size());
  return MakeOp(std::move(out), {an}, [an, inv](Node& self) {
    float g = self.grad.At(0, 0) * inv;
    Matrix grad(an->value.rows(), an->value.cols(), g);
    an->AccumulateGrad(grad);
  });
}

Variable Dropout(const Variable& a, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  AHNTP_CHECK(p < 1.0f);
  AHNTP_CHECK(rng != nullptr);
  Matrix mask(a.rows(), a.cols());
  float scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  return MulConst(a, mask);
}

}  // namespace ahntp::autograd
