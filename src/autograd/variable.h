#ifndef AHNTP_AUTOGRAD_VARIABLE_H_
#define AHNTP_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace ahntp::autograd {

/// Internal tape node: holds the forward value, the (lazily allocated)
/// gradient, edges to the input nodes, and the closure that pushes this
/// node's gradient into its inputs.
struct Node {
  tensor::Matrix value;
  tensor::Matrix grad;
  bool requires_grad = false;
  bool grad_allocated = false;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Accumulates input gradients from `grad`. Null for leaves.
  std::function<void(Node&)> backward;

  /// Adds `g` into this node's gradient, allocating on first touch.
  void AccumulateGrad(const tensor::Matrix& g);
  /// Ensures `grad` is a zero matrix of the value's shape.
  void EnsureGrad();
};

/// A matrix value tracked on the autograd tape. Cheap to copy (shared
/// handle). Build computation graphs with the free functions in
/// autograd/ops.h, then call Backward() on a scalar (1x1) result.
class Variable {
 public:
  /// Detached empty variable.
  Variable() : node_(std::make_shared<Node>()) {}

  /// Wraps a value; set `requires_grad` for trainable parameters.
  explicit Variable(tensor::Matrix value, bool requires_grad = false);

  /// Internal: wraps an existing node (used by ops).
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  const tensor::Matrix& value() const { return node_->value; }
  tensor::Matrix& mutable_value() { return node_->value; }

  /// Gradient accumulated by the last Backward(). Zero matrix when untouched.
  const tensor::Matrix& grad() const;

  /// Mutable gradient (gradient clipping and similar in-place transforms).
  tensor::Matrix& mutable_grad() {
    node_->EnsureGrad();
    return node_->grad;
  }

  bool requires_grad() const { return node_->requires_grad; }

  size_t rows() const { return node_->value.rows(); }
  size_t cols() const { return node_->value.cols(); }

  /// Clears the accumulated gradient (parameters between steps).
  void ZeroGrad();

  /// Reverse-mode backprop from this node. Precondition: 1x1 value.
  /// Seeds with d(out)/d(out) = 1.
  void Backward() const;

  /// Backprop with an explicit seed gradient of this node's shape.
  void Backward(const tensor::Matrix& seed) const;

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Convenience: a trainable parameter variable.
inline Variable Parameter(tensor::Matrix value) {
  return Variable(std::move(value), /*requires_grad=*/true);
}

/// Convenience: a non-trainable input variable.
inline Variable Constant(tensor::Matrix value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

}  // namespace ahntp::autograd

#endif  // AHNTP_AUTOGRAD_VARIABLE_H_
