#ifndef AHNTP_AUTOGRAD_OPS_H_
#define AHNTP_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/csr.h"

namespace ahntp::autograd {

// ---------------------------------------------------------------------------
// Dense linear algebra
// ---------------------------------------------------------------------------

/// C = A * B.
Variable MatMul(const Variable& a, const Variable& b);

/// Elementwise sum (shapes must match).
Variable Add(const Variable& a, const Variable& b);

/// Elementwise difference.
Variable Sub(const Variable& a, const Variable& b);

/// Elementwise product.
Variable Mul(const Variable& a, const Variable& b);

/// Elementwise product with a constant matrix (mask etc.).
Variable MulConst(const Variable& a, const tensor::Matrix& k);

/// a * scalar.
Variable Scale(const Variable& a, float scalar);

/// a + scalar (every entry).
Variable AddScalar(const Variable& a, float scalar);

/// Adds a 1 x cols bias row to every row of `a` (broadcast).
Variable AddRowBroadcast(const Variable& a, const Variable& bias);

/// Scales row i of `a` by col(i, 0); col is an (rows x 1) variable.
Variable MulColBroadcast(const Variable& a, const Variable& col);

// ---------------------------------------------------------------------------
// Sparse-times-dense (sparse operand is a constant, e.g. adjacency/incidence)
// ---------------------------------------------------------------------------

/// Y = S * X for a constant sparse S.
Variable SpMMConst(const tensor::CsrMatrix& s, const Variable& x);

/// Y = S^T * X for a constant sparse S (no transpose materialization).
Variable SpMMTransposedConst(const tensor::CsrMatrix& s, const Variable& x);

// ---------------------------------------------------------------------------
// Nonlinearities
// ---------------------------------------------------------------------------

Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float negative_slope = 0.2f);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Exp(const Variable& a);
/// Natural log; inputs are clamped to >= epsilon for stability.
Variable Log(const Variable& a, float epsilon = 1e-12f);
/// Clamps values into [lo, hi]; gradient is zero outside the interval.
Variable Clamp(const Variable& a, float lo, float hi);

/// Elementwise square root of max(x, epsilon).
Variable Sqrt(const Variable& a, float epsilon = 1e-12f);

/// Elementwise absolute value; gradient is sign(x) (0 at 0).
Variable Abs(const Variable& a);

/// Elementwise x^p. Precondition: inputs strictly positive (clamped to
/// epsilon) — fractional exponents on negatives are undefined.
Variable PowScalar(const Variable& a, float exponent, float epsilon = 1e-12f);

/// Normalizes each row to zero mean / unit variance (LayerNorm core; the
/// affine gain/bias live in nn::LayerNorm).
Variable RowStandardize(const Variable& a, float epsilon = 1e-5f);

// ---------------------------------------------------------------------------
// Shape / selection
// ---------------------------------------------------------------------------

/// Concatenates variables left-to-right (same row count).
Variable ConcatCols(const std::vector<Variable>& parts);

/// out.row(i) = a.row(indices[i]); gradient scatter-adds back.
Variable GatherRows(const Variable& a, const std::vector<int>& indices);

// ---------------------------------------------------------------------------
// Segment operations (the primitives for hyperedge message passing and
// attention: rows are grouped by a segment id).
// ---------------------------------------------------------------------------

/// out.row(s) = sum of rows i with segments[i] == s. `segments` values must
/// lie in [0, num_segments).
Variable SegmentSum(const Variable& a, const std::vector<int>& segments,
                    size_t num_segments);

/// Like SegmentSum but divides by the segment size (empty segments stay 0).
Variable SegmentMean(const Variable& a, const std::vector<int>& segments,
                     size_t num_segments);

/// Softmax of a column vector within each segment: rows belonging to the
/// same segment are normalized to sum to 1. Precondition: a is (n x 1).
Variable SegmentSoftmax(const Variable& a, const std::vector<int>& segments,
                        size_t num_segments);

// ---------------------------------------------------------------------------
// Row-wise geometry
// ---------------------------------------------------------------------------

/// Divides each row by its L2 norm (plus epsilon).
Variable RowL2Normalize(const Variable& a, float epsilon = 1e-12f);

/// out(i, 0) = dot(a.row(i), b.row(i)). Shapes must match.
Variable RowwiseDot(const Variable& a, const Variable& b);

/// Cosine similarity of aligned rows: out(i,0) = cos(a.row(i), b.row(i)).
Variable PairwiseCosine(const Variable& a, const Variable& b,
                        float epsilon = 1e-12f);

/// Row-wise softmax over columns.
Variable RowSoftmax(const Variable& a);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of all entries -> 1x1.
Variable ReduceSum(const Variable& a);

/// Mean of all entries -> 1x1.
Variable ReduceMean(const Variable& a);

// ---------------------------------------------------------------------------
// Regularization
// ---------------------------------------------------------------------------

/// Inverted dropout; identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, Rng* rng, bool training);

}  // namespace ahntp::autograd

#endif  // AHNTP_AUTOGRAD_OPS_H_
