#include "autograd/variable.h"

#include <unordered_set>

#include "common/check.h"

namespace ahntp::autograd {

void Node::EnsureGrad() {
  if (!grad_allocated) {
    grad = tensor::Matrix(value.rows(), value.cols());
    grad_allocated = true;
  }
}

void Node::AccumulateGrad(const tensor::Matrix& g) {
  EnsureGrad();
  AHNTP_CHECK(g.rows() == value.rows() && g.cols() == value.cols())
      << "gradient shape " << g.rows() << "x" << g.cols()
      << " does not match value shape " << value.rows() << "x"
      << value.cols();
  grad += g;
}

Variable::Variable(tensor::Matrix value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const tensor::Matrix& Variable::grad() const {
  node_->EnsureGrad();
  return node_->grad;
}

void Variable::ZeroGrad() {
  node_->grad_allocated = false;
  node_->grad = tensor::Matrix();
}

namespace {

/// Iterative post-order DFS producing a topological order (inputs before
/// consumers).
void TopologicalOrder(const std::shared_ptr<Node>& root,
                      std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs.size()) {
      Node* child = top.node->inputs[top.next_input++].get();
      if (visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  AHNTP_CHECK(rows() == 1 && cols() == 1)
      << "Backward() without a seed requires a scalar output; shape is "
      << rows() << "x" << cols();
  Backward(tensor::Matrix::Ones(1, 1));
}

void Variable::Backward(const tensor::Matrix& seed) const {
  std::vector<Node*> order;
  TopologicalOrder(node_, &order);
  node_->AccumulateGrad(seed);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->grad_allocated) {
      node->backward(*node);
    }
  }
}

}  // namespace ahntp::autograd
