#include "common/fileio.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ahntp {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Flushes `path`'s data to stable storage. Best-effort on platforms
/// without fsync; an fsync failure is reported so callers do not report a
/// durable write that is not.
bool SyncFile(const std::string& path) {
#ifdef __unix__
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IoError("write error on " + tmp);
    }
  }
  std::error_code ec;
  if (!SyncFile(tmp)) {
    std::filesystem::remove(tmp, ec);
    return Status::IoError("fsync failed on " + tmp);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* contents) {
  if (contents == nullptr) return Status::InvalidArgument("contents is null");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read error on " + path);
  *contents = std::move(buffer).str();
  return Status::Ok();
}

}  // namespace ahntp
