#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace ahntp {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  (void)level_;
}

}  // namespace internal
}  // namespace ahntp
