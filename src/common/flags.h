#ifndef AHNTP_COMMON_FLAGS_H_
#define AHNTP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ahntp {

/// Minimal command-line flag parser used by the bench and example binaries.
///
/// Accepts `--name=value` and bare `--name` (boolean true). Positional
/// arguments are collected in order.
class FlagParser {
 public:
  /// Parses argv. Returns InvalidArgument on malformed input.
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed getters with defaults; a present-but-unparseable value aborts via
  /// CHECK because it is operator error worth failing loudly on.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated list of integers, e.g. --dims=256,128,64.
  std::vector<int64_t> GetIntList(
      const std::string& name, const std::vector<int64_t>& default_value) const;

  /// Comma-separated list of doubles, e.g. --alphas=0.4,0.5.
  std::vector<double> GetDoubleList(
      const std::string& name, const std::vector<double>& default_value) const;

  /// Comma-separated list of strings.
  std::vector<std::string> GetStringList(
      const std::string& name,
      const std::vector<std::string>& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Applies the process-wide runtime flags shared by every binary:
/// `--threads=N` configures the execution substrate's worker count
/// (0 or absent keeps the AHNTP_THREADS / hardware default),
/// `--kernel_isa=scalar|avx2|auto` pins the tensor-kernel dispatch family
/// (see common/cpu.h; AHNTP_KERNEL_ISA is the env equivalent),
/// `--fault_spec=` / `--fault_seed=` install a deterministic
/// fault-injection spec (see common/fault.h; AHNTP_FAULTS is the env
/// equivalent), and `--metrics_out=<path>` / `--trace_out=<path>` enable
/// the observability layer with a process-exit snapshot / trace export
/// (see common/metrics.h, common/trace.h; AHNTP_METRICS / AHNTP_TRACE are
/// the env equivalents; a `--trace_out` path ending in ".csv" exports the
/// flat CSV instead of Chrome JSON). Returns the resolved worker count so
/// callers can record it in their output. A malformed fault spec or an
/// empty observability path aborts via CHECK (operator error, same
/// contract as malformed typed flags).
int ApplyRuntimeFlags(const FlagParser& flags);

/// Process-wide cap on how many embedding shards a sharded inference plan
/// (models::ShardedInferencePlan) keeps resident in RAM at once. Resolution
/// order: the last SetMaxResidentShards() call, else the
/// AHNTP_MAX_RESIDENT_SHARDS environment variable, else 2. Always >= 1; a
/// non-positive or unparseable environment value aborts via CHECK (operator
/// error, same contract as malformed typed flags). `--max_resident_shards=N`
/// in ApplyRuntimeFlags routes here.
int MaxResidentShards();

/// Sets the resident-shard cap; n must be >= 1 (CHECK).
void SetMaxResidentShards(int n);

}  // namespace ahntp

#endif  // AHNTP_COMMON_FLAGS_H_
