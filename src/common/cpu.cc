#include "common/cpu.h"

#include <atomic>
#include <cstdlib>

#include "common/check.h"

namespace ahntp {

namespace {

CpuFeatures ProbeCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.avx = __builtin_cpu_supports("avx");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

/// True when kernels_avx2.cc was built with real AVX2+FMA codegen (the
/// CMake probe defines AHNTP_KERNEL_AVX2 project-wide on success).
constexpr bool kAvx2Compiled =
#if defined(AHNTP_KERNEL_AVX2)
    true;
#else
    false;
#endif

/// -1 = unresolved; otherwise a KernelIsa value. Resolution happens at most
/// once per explicit SetKernelIsa() (plus the first lazy read), so the hot
/// path is a single relaxed load.
std::atomic<int> g_kernel_isa{-1};

KernelIsa ResolveFromEnvironment() {
  const char* env = std::getenv("AHNTP_KERNEL_ISA");
  if (env == nullptr || *env == '\0') {
    return KernelIsaSupported(KernelIsa::kAvx2) ? KernelIsa::kAvx2
                                                : KernelIsa::kScalar;
  }
  Result<KernelIsa> parsed = ParseKernelIsa(env);
  AHNTP_CHECK(parsed.ok()) << "AHNTP_KERNEL_ISA: "
                           << parsed.status().ToString();
  return parsed.value();
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = ProbeCpuFeatures();
  return features;
}

std::string CpuFeaturesString() {
  const CpuFeatures& f = GetCpuFeatures();
  std::string out;
  auto append = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(f.sse42, "sse4.2");
  append(f.avx, "avx");
  append(f.avx2, "avx2");
  append(f.fma, "fma");
  append(f.avx512f, "avx512f");
  return out.empty() ? "scalar-only" : out;
}

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool KernelIsaSupported(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2: {
      const CpuFeatures& f = GetCpuFeatures();
      return kAvx2Compiled && f.avx2 && f.fma;
    }
  }
  return false;
}

Result<KernelIsa> ParseKernelIsa(const std::string& name) {
  KernelIsa isa;
  if (name == "scalar") {
    isa = KernelIsa::kScalar;
  } else if (name == "avx2") {
    isa = KernelIsa::kAvx2;
  } else if (name == "auto") {
    return KernelIsaSupported(KernelIsa::kAvx2) ? KernelIsa::kAvx2
                                                : KernelIsa::kScalar;
  } else {
    return Status::InvalidArgument("unknown kernel ISA '" + name +
                                   "' (want scalar, avx2, or auto)");
  }
  if (!KernelIsaSupported(isa)) {
    return Status::InvalidArgument(
        std::string("kernel ISA '") + KernelIsaName(isa) +
        "' is not supported by this build/CPU (" + CpuFeaturesString() + ")");
  }
  return isa;
}

KernelIsa ActiveKernelIsa() {
  int resolved = g_kernel_isa.load(std::memory_order_relaxed);
  if (resolved >= 0) return static_cast<KernelIsa>(resolved);
  KernelIsa isa = ResolveFromEnvironment();
  // Racing first reads resolve to the same value (the environment cannot
  // change mid-race), so a plain store is fine.
  g_kernel_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

void SetKernelIsa(KernelIsa isa) {
  AHNTP_CHECK(KernelIsaSupported(isa))
      << "kernel ISA '" << KernelIsaName(isa)
      << "' is not supported by this build/CPU (" << CpuFeaturesString()
      << ")";
  g_kernel_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

}  // namespace ahntp
