#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/fileio.h"
#include "common/logging.h"
#include "common/strings.h"

namespace ahntp::metrics {

/// Slot budget per shard. Counters take one slot; histograms take
/// kHistogramBuckets + 2 (buckets, count, nano-unit sum). 1024 slots fit
/// ~14 histograms plus hundreds of counters — far beyond current usage —
/// and a fixed capacity lets shards be plain arrays with no grow/reader
/// races.
constexpr size_t kMaxSlots = 1024;

struct Shard {
  std::atomic<int64_t> slots[kMaxSlots];
  Shard() {
    for (auto& s : slots) s.store(0, std::memory_order_relaxed);
  }
};

enum class Kind { kCounter, kGauge, kHistogram };

struct Entry {
  Kind kind;
  size_t index;  // shard slot (counter/histogram) or gauge table index
};

/// Internal registry singleton; named at namespace scope so the metric
/// classes can befriend it from the header.
class Registry {
 public:
  static Registry& Get() {
    static Registry* registry = new Registry();
    return *registry;
  }

  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      AHNTP_CHECK(next_slot_ + 1 <= kMaxSlots)
          << "metrics registry slot budget exhausted";
      it = entries_.emplace(name, Entry{Kind::kCounter, next_slot_}).first;
      next_slot_ += 1;
      counters_.push_back(new Counter(it->second.index));
      counter_of_[name] = counters_.back();
    }
    AHNTP_CHECK(it->second.kind == Kind::kCounter)
        << "metric '" << name << "' already registered with another kind";
    return *counter_of_[name];
  }

  Gauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      it = entries_.emplace(name, Entry{Kind::kGauge, gauges_.size()}).first;
      gauges_.push_back(new std::atomic<double>(0.0));
      gauge_handles_.push_back(new Gauge(it->second.index));
      gauge_of_[name] = gauge_handles_.back();
    }
    AHNTP_CHECK(it->second.kind == Kind::kGauge)
        << "metric '" << name << "' already registered with another kind";
    return *gauge_of_[name];
  }

  Histogram& GetHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      const size_t width = kHistogramBuckets + 2;
      AHNTP_CHECK(next_slot_ + width <= kMaxSlots)
          << "metrics registry slot budget exhausted";
      it = entries_.emplace(name, Entry{Kind::kHistogram, next_slot_}).first;
      next_slot_ += width;
      histograms_.push_back(new Histogram(it->second.index));
      histogram_of_[name] = histograms_.back();
    }
    AHNTP_CHECK(it->second.kind == Kind::kHistogram)
        << "metric '" << name << "' already registered with another kind";
    return *histogram_of_[name];
  }

  /// The calling thread's shard, registered on first touch. Shards are
  /// intentionally leaked when threads exit (bounded by thread count);
  /// their tallies keep contributing to every later fold, exactly like a
  /// still-live thread's would.
  Shard* LocalShard() {
    thread_local Shard* shard = nullptr;
    if (shard == nullptr) {
      shard = new Shard();
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(shard);
    }
    return shard;
  }

  int64_t FoldSlot(size_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    return FoldSlotLocked(slot);
  }

  double GaugeValue(size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[index]->load(std::memory_order_relaxed);
  }

  void SetGauge(size_t index, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[index]->store(value, std::memory_order_relaxed);
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (Shard* shard : shards_) {
      for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
    }
    for (auto* gauge : gauges_) gauge->store(0.0, std::memory_order_relaxed);
  }

  Snapshot Collect() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snapshot;
    for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
      switch (entry.kind) {
        case Kind::kCounter:
          snapshot.counters.push_back({name, FoldSlotLocked(entry.index)});
          break;
        case Kind::kGauge:
          snapshot.gauges.push_back(
              {name, gauges_[entry.index]->load(std::memory_order_relaxed)});
          break;
        case Kind::kHistogram: {
          HistogramSample sample;
          sample.name = name;
          sample.buckets.resize(kHistogramBuckets);
          for (size_t b = 0; b < kHistogramBuckets; ++b) {
            sample.buckets[b] = FoldSlotLocked(entry.index + b);
          }
          sample.count = FoldSlotLocked(entry.index + kHistogramBuckets);
          sample.sum = static_cast<double>(
                           FoldSlotLocked(entry.index + kHistogramBuckets + 1)) *
                       1e-9;
          snapshot.histograms.push_back(std::move(sample));
          break;
        }
      }
    }
    return snapshot;
  }

 private:
  int64_t FoldSlotLocked(size_t slot) {
    int64_t total = 0;
    for (const Shard* shard : shards_) {
      total += shard->slots[slot].load(std::memory_order_relaxed);
    }
    return total;
  }

  std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, Counter*> counter_of_;
  std::map<std::string, Gauge*> gauge_of_;
  std::map<std::string, Histogram*> histogram_of_;
  std::vector<Counter*> counters_;
  std::vector<Histogram*> histograms_;
  std::vector<Gauge*> gauge_handles_;
  std::vector<std::atomic<double>*> gauges_;
  std::vector<Shard*> shards_;
  size_t next_slot_ = 0;
};

namespace {

std::atomic<bool> g_enabled{false};

std::mutex g_output_mu;
std::string& OutputPathStorage() {
  static std::string* path = new std::string();
  return *path;
}

void WriteSnapshotAtExit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_output_mu);
    path = OutputPathStorage();
  }
  if (path.empty()) return;
  Status status = WriteSnapshotJson(path);
  if (!status.ok()) {
    AHNTP_LOG(Warning) << "metrics snapshot write failed: "
                       << status.ToString();
  }
}

/// Applies AHNTP_METRICS (a snapshot path) once, before the first query,
/// so binaries that never parse flags still honour the env.
void ApplyEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("AHNTP_METRICS");
    if (env != nullptr && env[0] != '\0') SetOutputPath(env);
  });
}

/// JSON string escaping for metric names (ASCII control chars, quote,
/// backslash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

bool Enabled() {
  ApplyEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

void Enable() { g_enabled.store(true, std::memory_order_release); }

void Disable() {
  g_enabled.store(false, std::memory_order_release);
  Registry::Get().Reset();
}

void Reset() { Registry::Get().Reset(); }

void SetOutputPath(const std::string& path) {
  static std::once_flag atexit_once;
  {
    std::lock_guard<std::mutex> lock(g_output_mu);
    OutputPathStorage() = path;
  }
  std::call_once(atexit_once, [] { std::atexit(WriteSnapshotAtExit); });
  Enable();
}

std::string OutputPath() {
  std::lock_guard<std::mutex> lock(g_output_mu);
  return OutputPathStorage();
}

void Counter::Add(int64_t delta) {
  if (!Enabled()) return;
  Registry::Get().LocalShard()->slots[slot_].fetch_add(
      delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const { return Registry::Get().FoldSlot(slot_); }

void Gauge::Set(double value) {
  if (!Enabled()) return;
  Registry::Get().SetGauge(index_, value);
}

double Gauge::Value() const { return Registry::Get().GaugeValue(index_); }

size_t HistogramBucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN observations
  const int exp = std::ilogb(value);
  const long idx = static_cast<long>(exp) + 33;
  return static_cast<size_t>(
      std::clamp<long>(idx, 1, static_cast<long>(kHistogramBuckets) - 1));
}

double HistogramBucketLowerBound(size_t i) {
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) - 33);
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  Shard* shard = Registry::Get().LocalShard();
  shard->slots[slot_ + HistogramBucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard->slots[slot_ + kHistogramBuckets].fetch_add(1,
                                                    std::memory_order_relaxed);
  const double nano = value * 1e9;
  int64_t nano_units = 0;
  if (std::isfinite(nano)) {
    nano_units = static_cast<int64_t>(std::llround(
        std::clamp(nano, -9.0e18, 9.0e18)));
  }
  shard->slots[slot_ + kHistogramBuckets + 1].fetch_add(
      nano_units, std::memory_order_relaxed);
}

int64_t Histogram::Count() const {
  return Registry::Get().FoldSlot(slot_ + kHistogramBuckets);
}

double Histogram::Sum() const {
  return static_cast<double>(
             Registry::Get().FoldSlot(slot_ + kHistogramBuckets + 1)) *
         1e-9;
}

int64_t Histogram::BucketCount(size_t i) const {
  AHNTP_CHECK(i < kHistogramBuckets);
  return Registry::Get().FoldSlot(slot_ + i);
}

Counter& GetCounter(const std::string& name) {
  return Registry::Get().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return Registry::Get().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name) {
  return Registry::Get().GetHistogram(name);
}

int64_t Snapshot::CounterValue(const std::string& name,
                               int64_t missing) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return missing;
}

std::string Snapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %lld", i == 0 ? "" : ",",
                     JsonEscape(counters[i].name).c_str(),
                     static_cast<long long>(counters[i].value));
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                     JsonEscape(gauges[i].name).c_str(), gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    out += StrFormat("%s\n    \"%s\": {\"count\": %lld, \"sum\": %.17g, "
                     "\"buckets\": {",
                     i == 0 ? "" : ",", JsonEscape(h.name).c_str(),
                     static_cast<long long>(h.count), h.sum);
    bool first = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out += StrFormat("%s\"%zu\": %lld", first ? "" : ", ", b,
                       static_cast<long long>(h.buckets[b]));
      first = false;
    }
    out += "}}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Snapshot Collect() { return Registry::Get().Collect(); }

Status WriteSnapshotJson(const std::string& path) {
  return WriteFileAtomic(path, Collect().ToJson());
}

}  // namespace ahntp::metrics
