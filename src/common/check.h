#ifndef AHNTP_COMMON_CHECK_H_
#define AHNTP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ahntp::internal {

/// Prints a fatal check failure and aborts. Out-of-line so the macro body
/// stays small at every call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream sink used by the AHNTP_CHECK macros to build the failure message.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace ahntp::internal

/// Aborts with a diagnostic when `cond` is false. For programming errors
/// (invariant violations), not recoverable conditions — those use Status.
#define AHNTP_CHECK(cond)                                             \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::ahntp::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define AHNTP_CHECK_EQ(a, b) AHNTP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define AHNTP_CHECK_NE(a, b) AHNTP_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define AHNTP_CHECK_LT(a, b) AHNTP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define AHNTP_CHECK_LE(a, b) AHNTP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define AHNTP_CHECK_GT(a, b) AHNTP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define AHNTP_CHECK_GE(a, b) AHNTP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Checks that a Status-returning expression is OK.
#define AHNTP_CHECK_OK(expr)                                      \
  do {                                                            \
    ::ahntp::Status _ahntp_check_status = (expr);                 \
    AHNTP_CHECK(_ahntp_check_status.ok())                         \
        << _ahntp_check_status.ToString();                        \
  } while (0)

#ifndef NDEBUG
#define AHNTP_DCHECK(cond) AHNTP_CHECK(cond)
#else
#define AHNTP_DCHECK(cond) \
  if (true) {              \
  } else /* NOLINT */      \
    ::ahntp::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#endif

#endif  // AHNTP_COMMON_CHECK_H_
