#ifndef AHNTP_COMMON_PARALLEL_H_
#define AHNTP_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace ahntp {

/// Shared execution substrate: one lazily-initialized global thread pool
/// that every hot kernel (dense MatMul, CSR SpMM/SpMV/SpGEMM, motif
/// algebra, PageRank, hypergroup builders, repeated-run fan-out) dispatches
/// to instead of growing ad-hoc threading.
///
/// Determinism contract (see DESIGN.md "Execution substrate"): results are
/// bit-identical regardless of the configured thread count. ParallelFor
/// callers only write disjoint output ranges; ParallelReduce decomposes the
/// range into chunks whose boundaries depend only on (begin, end, grain) —
/// never on the thread count — and combines the per-chunk partials in
/// ascending chunk order on the calling thread. `--threads=1` (or
/// AHNTP_THREADS=1) recovers fully serial execution without changing any
/// result.
///
/// Nested parallelism: a ParallelFor/ParallelReduce issued from inside a
/// pool worker runs inline on that worker (serially). This both avoids
/// deadlock (workers never block on other workers) and gives coarse-grained
/// callers like RunRepeatedExperiment exclusive use of the pool.

/// Number of workers the pool will use (>= 1). Resolution order: the last
/// SetNumThreads() call, else the AHNTP_THREADS environment variable, else
/// std::thread::hardware_concurrency().
int NumThreads();

/// Sets the worker count; n <= 0 restores the environment/hardware default.
/// Joins and discards any existing pool, so it must not be called while
/// parallel work is in flight (configure once at startup or between phases).
void SetNumThreads(int n);

/// True when called from a pool worker thread (nested region).
bool InParallelWorker();

namespace internal {

/// Runs fn(task_index) for task_index in [0, num_tasks) across the pool and
/// the calling thread; blocks until all tasks finish. The first exception
/// thrown by any task is rethrown on the calling thread (remaining tasks
/// still run to completion so the batch tears down cleanly). Runs serially
/// inline when num_tasks <= 1, the pool has one thread, or the caller is
/// itself a pool worker.
void RunTasks(size_t num_tasks, const std::function<void(size_t)>& fn);

}  // namespace internal

/// Calls fn(chunk_begin, chunk_end) over disjoint chunks covering
/// [begin, end). `grain` is the minimum chunk width: ranges at most `grain`
/// wide run serially on the caller, and no chunk is ever smaller than
/// `grain` except the final remainder. fn must only write state owned by
/// its chunk (e.g. output rows in [chunk_begin, chunk_end)).
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Deterministic parallel reduction: partials[c] = map(chunk_c_begin,
/// chunk_c_end) computed in parallel over fixed-width chunks of exactly
/// `grain` (last chunk may be short), then folded as
/// combine(...combine(combine(identity, partials[0]), partials[1])...) in
/// ascending chunk order on the calling thread. Chunk boundaries depend
/// only on (begin, end, grain), so the result is bit-identical for any
/// thread count. A range at most `grain` wide reduces serially via a single
/// map call, making small inputs byte-for-byte identical to pre-pool code.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T identity,
                 const MapFn& map, const CombineFn& combine) {
  if (begin >= end) return identity;
  const size_t g = std::max<size_t>(grain, 1);
  const size_t range = end - begin;
  if (range <= g) return combine(identity, map(begin, end));
  const size_t num_chunks = (range + g - 1) / g;
  std::vector<T> partials(num_chunks, identity);
  internal::RunTasks(num_chunks, [&](size_t c) {
    const size_t b = begin + c * g;
    const size_t e = std::min(end, b + g);
    partials[c] = map(b, e);
  });
  T acc = identity;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

/// Grain helper: given the approximate scalar-op cost of one iteration,
/// returns a grain sized so each chunk carries at least `min_chunk_cost`
/// operations (default ~32k, comfortably above task-dispatch overhead).
inline size_t GrainForCost(size_t per_item_cost,
                           size_t min_chunk_cost = size_t{1} << 15) {
  return std::max<size_t>(1, min_chunk_cost / std::max<size_t>(per_item_cost, 1));
}

}  // namespace ahntp

#endif  // AHNTP_COMMON_PARALLEL_H_
