#ifndef AHNTP_COMMON_CSV_H_
#define AHNTP_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ahntp {

/// A parsed CSV table: optional header plus rows of string fields.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Reads a CSV file. Fields are separated by `sep`; no quoting dialect is
/// supported (the datasets this library emits never need it). When
/// `has_header` is true the first non-empty line populates `header`.
Result<CsvTable> ReadCsv(const std::string& path, char sep = ',',
                         bool has_header = true);

/// Writes a CSV file; writes `table.header` first when non-empty.
Status WriteCsv(const std::string& path, const CsvTable& table,
                char sep = ',');

/// Like WriteCsv, but via temp-file + fsync + atomic rename
/// (common/fileio.h), so a failure or crash mid-write never leaves a
/// truncated table at `path`.
Status WriteCsvAtomic(const std::string& path, const CsvTable& table,
                      char sep = ',');

}  // namespace ahntp

#endif  // AHNTP_COMMON_CSV_H_
