#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.h"

namespace ahntp {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  AHNTP_CHECK_GT(bound, 0u);
  // Lemire rejection-free-ish bounded sampling with fixup for bias.
  uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AHNTP_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::Uniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  AHNTP_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  AHNTP_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  AHNTP_CHECK_LE(k, n);
  if (k == 0) return {};
  // For dense draws use a partial Fisher-Yates; for sparse draws, rejection.
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(NextBounded(n));
    if (chosen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  AHNTP_CHECK(!weights.empty());
  cumulative_.reserve(weights.size());
  // Left-to-right accumulation: cumulative_[i] is bit-identical to the
  // running sum SampleDiscrete would compare against at index i, and the
  // final element is bit-identical to its std::accumulate total.
  double cum = 0.0;
  for (double w : weights) {
    cum += w;
    cumulative_.push_back(cum);
  }
  AHNTP_CHECK_GT(cumulative_.back(), 0.0);
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  double target = rng->NextDouble() * cumulative_.back();
  // SampleDiscrete returns the first index whose running sum exceeds the
  // target (and the last index when none does, a float round-off guard).
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<size_t>(it - cumulative_.begin());
}

}  // namespace ahntp
