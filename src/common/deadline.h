#ifndef AHNTP_COMMON_DEADLINE_H_
#define AHNTP_COMMON_DEADLINE_H_

#include <limits>

#include "common/stopwatch.h"

namespace ahntp {

/// A wall-clock completion budget carried by a request and checked
/// *cooperatively* at cheap boundaries (the serving loop checks at batch
/// boundaries rather than preempting mid-inference). Built on Stopwatch,
/// so it shares its monotonic steady_clock.
///
/// The default-constructed Deadline is infinite: Expired() is always false
/// and the check costs one branch. `AfterMillis(0)` is expired from birth,
/// which tests and demos use to exercise the expiry path deterministically
/// (no sleeping, no timing races).
class Deadline {
 public:
  /// No deadline: never expires.
  Deadline() : budget_ms_(kInfiniteBudget) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget_ms` milliseconds after the call. A non-positive
  /// budget is expired immediately.
  static Deadline AfterMillis(double budget_ms) {
    Deadline d;
    d.budget_ms_ = budget_ms;
    return d;
  }

  bool infinite() const { return budget_ms_ == kInfiniteBudget; }

  bool Expired() const {
    if (infinite()) return false;
    return watch_.ElapsedMillis() >= budget_ms_;
  }

  /// Milliseconds until expiry: +inf for the infinite deadline, clamped at
  /// 0 once expired.
  double RemainingMillis() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    double remaining = budget_ms_ - watch_.ElapsedMillis();
    return remaining > 0.0 ? remaining : 0.0;
  }

 private:
  static constexpr double kInfiniteBudget =
      std::numeric_limits<double>::infinity();

  Stopwatch watch_;
  double budget_ms_;
};

}  // namespace ahntp

#endif  // AHNTP_COMMON_DEADLINE_H_
