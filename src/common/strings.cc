#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ahntp {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StrStartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt(std::string_view text) {
  std::string buf = StrTrim(text);
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf = StrTrim(text);
  if (buf.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: " + buf);
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ahntp
