#ifndef AHNTP_COMMON_CPU_H_
#define AHNTP_COMMON_CPU_H_

#include <string>

#include "common/status.h"

namespace ahntp {

/// Hardware vector capabilities probed once at first use (cpuid-backed on
/// x86; everything false elsewhere).
struct CpuFeatures {
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// The cached probe result for this process.
const CpuFeatures& GetCpuFeatures();

/// Human-readable feature summary, e.g. "sse4.2 avx avx2 fma" ("scalar-only"
/// when nothing vectorized is available). For banners and diagnostics.
std::string CpuFeaturesString();

/// Which kernel implementation family the tensor hot loops dispatch to.
///
/// kScalar is the bitwise reference oracle: its float operation sequence is
/// frozen (pre-SIMD digests must reproduce exactly at any --threads=N).
/// kAvx2 is the vectorized family (AVX2+FMA); elementwise AVX2 kernels are
/// bitwise-identical to scalar, while FMA/reassociated reductions (MatMul,
/// dot products, norms) agree only to tolerance — the two-tier parity
/// contract enforced by tests/kernel_parity_test.cc and
/// scripts/check_inference.sh.
enum class KernelIsa {
  kScalar = 0,
  kAvx2 = 1,
};

/// "scalar" / "avx2".
const char* KernelIsaName(KernelIsa isa);

/// Parses "scalar", "avx2", or "auto" (case-sensitive). "auto" resolves to
/// the best ISA this build *and* this CPU support. InvalidArgument on any
/// other string; explicitly requesting an unsupported ISA also returns
/// InvalidArgument (operator error — the caller CHECKs).
Result<KernelIsa> ParseKernelIsa(const std::string& name);

/// True when `isa` can execute here: kScalar always; kAvx2 only when the
/// build compiled the AVX2 kernels and the CPU reports AVX2+FMA.
bool KernelIsaSupported(KernelIsa isa);

/// The ISA the tensor kernels dispatch on. Resolution order: the last
/// SetKernelIsa() call, else the AHNTP_KERNEL_ISA environment variable
/// ("scalar" | "avx2" | "auto"; malformed or unsupported values abort via
/// CHECK, same contract as malformed typed flags), else auto. Cached after
/// first resolution; reads are one relaxed atomic load, cheap enough for
/// per-kernel dispatch. `--kernel_isa=` in ApplyRuntimeFlags routes here.
KernelIsa ActiveKernelIsa();

/// Installs the dispatch ISA; must be supported (CHECK). Tests flip this
/// between the scalar oracle and the SIMD candidate.
void SetKernelIsa(KernelIsa isa);

}  // namespace ahntp

#endif  // AHNTP_COMMON_CPU_H_
