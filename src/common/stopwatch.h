#ifndef AHNTP_COMMON_STOPWATCH_H_
#define AHNTP_COMMON_STOPWATCH_H_

#include <chrono>

namespace ahntp {

/// Wall-clock stopwatch used by the benchmark harness and trainers.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ahntp

#endif  // AHNTP_COMMON_STOPWATCH_H_
