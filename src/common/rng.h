#ifndef AHNTP_COMMON_RNG_H_
#define AHNTP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ahntp {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// splitmix64). All randomness in the library flows through this type so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Standard normal via Box-Muller (cached pair).
  double Normal();

  /// Normal with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Samples an index from unnormalized non-negative weights.
  /// Precondition: weights non-empty with positive sum.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Precondition: k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Precomputed discrete distribution over unnormalized non-negative weights:
/// one NextDouble() plus a binary search per draw, instead of
/// Rng::SampleDiscrete's O(n) scan — the difference between hours and
/// seconds when the generator samples sources from a million-entry activity
/// vector. Sample(rng) consumes the RNG stream exactly like
/// rng->SampleDiscrete(weights) and returns the identical index (the prefix
/// sums are accumulated in the same left-to-right order, so every comparison
/// sees bit-identical partial sums); the two are interchangeable without
/// perturbing any downstream draw.
class DiscreteDistribution {
 public:
  /// Precondition: weights non-empty with positive sum.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  size_t Sample(Rng* rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace ahntp

#endif  // AHNTP_COMMON_RNG_H_
