#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/fileio.h"
#include "common/strings.h"

namespace ahntp {

namespace {

std::string SerializeCsv(const CsvTable& table, char sep) {
  std::string sep_str(1, sep);
  std::ostringstream out;
  if (!table.header.empty()) {
    out << StrJoin(table.header, sep_str) << "\n";
  }
  for (const auto& row : table.rows) {
    out << StrJoin(row, sep_str) << "\n";
  }
  return std::move(out).str();
}

}  // namespace

Result<CsvTable> ReadCsv(const std::string& path, char sep, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool header_pending = has_header;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, sep);
    if (header_pending) {
      table.header = std::move(fields);
      header_pending = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  if (in.bad()) return Status::IoError("read error on " + path);
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table, char sep) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::string sep_str(1, sep);
  if (!table.header.empty()) {
    out << StrJoin(table.header, sep_str) << "\n";
  }
  for (const auto& row : table.rows) {
    out << StrJoin(row, sep_str) << "\n";
  }
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::Ok();
}

Status WriteCsvAtomic(const std::string& path, const CsvTable& table,
                      char sep) {
  return WriteFileAtomic(path, SerializeCsv(table, sep));
}

}  // namespace ahntp
