#include "common/check.h"

namespace ahntp::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[AHNTP FATAL] %s:%d: check failed: %s %s\n", file,
               line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ahntp::internal
