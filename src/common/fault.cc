#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/strings.h"

namespace ahntp::fault {

namespace {

enum class TriggerMode { kNth, kFromNth, kAlways, kProbability };

struct Trigger {
  TriggerMode mode = TriggerMode::kNth;
  uint64_t n = 1;          // kNth / kFromNth
  double probability = 0;  // kProbability
  uint64_t hits = 0;       // hits observed at this site so far
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Trigger> triggers;
  uint64_t seed = 0;
  std::atomic<int64_t> fired{0};
};

std::atomic<bool> g_enabled{false};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Applies AHNTP_FAULTS once, before the first spec/query touches the
/// registry, so test binaries that never parse flags still honour the env.
void ApplyEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("AHNTP_FAULTS");
    if (env != nullptr && env[0] != '\0') {
      Status status = EnableFromSpec(env);
      if (!status.ok()) {
        // Env-driven specs fail silently into "disabled" rather than
        // aborting unrelated binaries; the flag path CHECKs loudly.
        Disable();
      }
    }
  });
}

/// SplitMix64 over (seed, site hash, hit index): a stable per-hit uniform
/// draw for `site@~P` triggers.
double HitUniform(uint64_t seed, const std::string& site, uint64_t hit) {
  uint64_t x = seed ^ (std::hash<std::string>{}(site) * 0x9e3779b97f4a7c15ULL);
  x += hit * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Result<Trigger> ParseTrigger(const std::string& body,
                             const std::string& entry) {
  Trigger trigger;
  if (body == "*") {
    trigger.mode = TriggerMode::kAlways;
    return trigger;
  }
  if (!body.empty() && body[0] == '~') {
    AHNTP_ASSIGN_OR_RETURN(double p, ParseDouble(body.substr(1)));
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("fault probability outside [0,1] in '" +
                                     entry + "'");
    }
    trigger.mode = TriggerMode::kProbability;
    trigger.probability = p;
    return trigger;
  }
  std::string digits = body;
  if (!digits.empty() && digits.back() == '+') {
    trigger.mode = TriggerMode::kFromNth;
    digits.pop_back();
  }
  AHNTP_ASSIGN_OR_RETURN(int64_t n, ParseInt(digits));
  if (n < 1) {
    return Status::InvalidArgument("fault hit index must be >= 1 in '" +
                                   entry + "'");
  }
  trigger.n = static_cast<uint64_t>(n);
  return trigger;
}

}  // namespace

Status EnableFromSpec(const std::string& spec) {
  std::map<std::string, Trigger> parsed;
  for (const std::string& raw : StrSplit(spec, ',')) {
    std::string entry = StrTrim(raw);
    if (entry.empty()) continue;
    size_t at = entry.rfind('@');
    if (at == std::string::npos || at == 0 || at + 1 == entry.size()) {
      return Status::InvalidArgument(
          "fault trigger '" + entry + "' is not of the form site@N|N+|*|~P");
    }
    std::string site = entry.substr(0, at);
    AHNTP_ASSIGN_OR_RETURN(Trigger trigger,
                           ParseTrigger(entry.substr(at + 1), entry));
    parsed[site] = trigger;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.triggers = std::move(parsed);
  registry.fired.store(0, std::memory_order_relaxed);
  g_enabled.store(!registry.triggers.empty(), std::memory_order_release);
  return Status::Ok();
}

void SetSeed(uint64_t seed) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.seed = seed;
}

void Disable() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.triggers.clear();
  registry.fired.store(0, std::memory_order_relaxed);
  g_enabled.store(false, std::memory_order_release);
}

bool Enabled() {
  ApplyEnvOnce();
  return g_enabled.load(std::memory_order_acquire);
}

bool ShouldInject(const std::string& site) {
  if (!Enabled()) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.triggers.find(site);
  if (it == registry.triggers.end()) return false;
  Trigger& trigger = it->second;
  const uint64_t hit = ++trigger.hits;
  bool fire = false;
  switch (trigger.mode) {
    case TriggerMode::kNth:
      fire = hit == trigger.n;
      break;
    case TriggerMode::kFromNth:
      fire = hit >= trigger.n;
      break;
    case TriggerMode::kAlways:
      fire = true;
      break;
    case TriggerMode::kProbability:
      fire = HitUniform(registry.seed, site, hit) < trigger.probability;
      break;
  }
  if (fire) registry.fired.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

Status FaultPoint(const std::string& site, StatusCode code) {
  if (ShouldInject(site)) {
    return Status(code, "injected fault at " + site);
  }
  return Status::Ok();
}

Status MaybeIoError(const std::string& site) {
  return FaultPoint(site, StatusCode::kIoError);
}

void MaybeThrow(const std::string& site) {
  if (ShouldInject(site)) {
    throw std::runtime_error("injected fault at " + site);
  }
}

int64_t InjectionCount() {
  return GetRegistry().fired.load(std::memory_order_relaxed);
}

}  // namespace ahntp::fault
