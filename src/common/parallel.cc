#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/trace.h"

namespace ahntp {

namespace {

thread_local bool t_in_worker = false;

/// Work-stealing-free fixed pool: workers pull closures off one shared
/// queue. Batches are represented by a shared countdown so several
/// non-worker threads can submit concurrently without interleaving bugs.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  int size() const { return static_cast<int>(workers_.size()); }

  void Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
    auto state = std::make_shared<BatchState>();
    state->total = num_tasks;
    state->fn = &fn;
    // One runner per worker (capped by task count); each runner drains the
    // shared index counter, so idle workers pick up slack automatically.
    const size_t runners =
        std::min(num_tasks, static_cast<size_t>(workers_.size()));
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < runners; ++i) {
        queue_.push_back([state] { DrainBatch(state.get()); });
      }
    }
    cv_.notify_all();
    // The caller participates too: if all workers are busy with another
    // batch, the batch still completes on this thread.
    DrainBatch(state.get());
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait(lock, [&] {
        return state->completed.load(std::memory_order_acquire) ==
               state->total;
      });
    }
    if (state->error) std::rethrow_exception(state->error);
  }

 private:
  struct BatchState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    size_t total = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first failure; guarded by mu
  };

  static void DrainBatch(BatchState* state) {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->total) break;
      try {
        (*state->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      const size_t done =
          state->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == state->total) {
        // Lock pairs with the waiter's predicate check so the notify cannot
        // slip between its test and its sleep.
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    t_in_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

int EnvOrHardwareThreads() {
  if (const char* env = std::getenv("AHNTP_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_pool_mu;
int g_requested_threads = 0;  // <= 0: resolve from env/hardware
std::unique_ptr<ThreadPool> g_pool;

int ResolvedThreadsLocked() {
  return g_requested_threads > 0 ? g_requested_threads
                                 : EnvOrHardwareThreads();
}

/// Returns the pool, creating it on first use; nullptr when configured for
/// single-threaded execution.
ThreadPool* GetPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int threads = ResolvedThreadsLocked();
  if (threads <= 1) return nullptr;
  if (g_pool == nullptr || g_pool->size() != threads) {
    g_pool.reset();  // join the old pool before spawning the new one
    g_pool = std::make_unique<ThreadPool>(threads);
  }
  return g_pool.get();
}

}  // namespace

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolvedThreadsLocked();
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = n;
  g_pool.reset();  // lazily rebuilt at the new size on next use
}

bool InParallelWorker() { return t_in_worker; }

namespace internal {

void RunTasks(size_t num_tasks, const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  ThreadPool* pool =
      (num_tasks > 1 && !t_in_worker) ? GetPool() : nullptr;
  if (pool == nullptr) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  // Forward the submitting thread's span context so spans opened inside
  // tasks nest under the span that issued this batch (common/trace.h).
  // With tracing disabled CurrentSpanId() is 0 and fn runs unwrapped.
  const uint64_t parent_span = trace::CurrentSpanId();
  if (parent_span != 0) {
    pool->Run(num_tasks, [&fn, parent_span](size_t i) {
      trace::ScopedParent scope(parent_span);
      fn(i);
    });
    return;
  }
  pool->Run(num_tasks, fn);
}

}  // namespace internal

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t g = std::max<size_t>(grain, 1);
  const size_t range = end - begin;
  if (range <= g) {
    fn(begin, end);
    return;
  }
  // Covering chunks of exactly `g` keeps the decomposition independent of
  // the thread count; the shared-counter pool balances uneven chunk costs.
  const size_t num_chunks = (range + g - 1) / g;
  internal::RunTasks(num_chunks, [&](size_t c) {
    const size_t b = begin + c * g;
    const size_t e = std::min(end, b + g);
    fn(b, e);
  });
}

}  // namespace ahntp
