#include "common/status.h"

namespace ahntp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ahntp
