#ifndef AHNTP_COMMON_TRACE_H_
#define AHNTP_COMMON_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ahntp::trace {

/// Scoped-span tracer for the training/inference stack (DESIGN.md §11).
///
/// Phases mark themselves with an RAII TraceSpan; completed spans land in
/// a fixed-capacity ring buffer (oldest events overwritten) and export to
/// Chrome `chrome://tracing` / Perfetto `trace_event` JSON or a flat CSV,
/// both written atomically via common/fileio.h.
///
/// Clock: std::chrono::steady_clock (monotonic), timestamps relative to
/// the first event at export time.
///
/// Nesting: each thread tracks its current span; a span opened while
/// another is live becomes its child. The parallel substrate forwards the
/// submitting thread's current span to pool workers (common/parallel.cc),
/// so spans opened inside ParallelFor tasks parent correctly across
/// threads.
///
/// Overhead: with tracing disabled — the default — constructing a
/// TraceSpan costs a single relaxed atomic load (the common/fault.h
/// pattern). Enablement: Enable() / SetOutputPath() / `--trace_out=` /
/// the AHNTP_TRACE environment variable (a path; applied once).

/// True when spans are being recorded (single relaxed atomic load after a
/// one-time env check).
bool Enabled();

/// Starts recording into a ring buffer of `capacity` completed spans
/// (idempotent; re-enabling with a different capacity clears the buffer).
void Enable(size_t capacity = size_t{1} << 16);

/// Stops recording and clears the buffer.
void Disable();

/// Clears recorded spans without changing the enabled state.
void Clear();

/// Installs `path` as the process-exit export destination and enables
/// tracing. Paths ending in ".csv" export the flat CSV; anything else
/// exports Chrome trace JSON. Export failures log a warning.
void SetOutputPath(const std::string& path);

/// One completed span.
struct SpanEvent {
  std::string name;
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  int64_t start_ns = 0;    // steady_clock, process-relative
  int64_t duration_ns = 0;
  uint32_t thread_index = 0;  // stable small per-thread index
};

/// RAII span: records [construction, destruction) under `name`. `name`
/// must outlive the span (string literals in practice — it is copied only
/// at completion). Move-free by design; allocate on the stack.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id (0 when tracing was disabled at construction).
  uint64_t id() const { return id_; }

 private:
  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int64_t start_ns_ = 0;
};

/// Id of the innermost live span on this thread (0 when none / disabled).
/// Used by the parallel substrate to forward span context to workers.
uint64_t CurrentSpanId();

/// Overrides this thread's current-span id for a scope; restores the
/// previous value on destruction. The parallel substrate wraps each
/// pool task in one of these so worker-side spans nest under the span
/// that issued the ParallelFor.
class ScopedParent {
 public:
  explicit ScopedParent(uint64_t parent_id);
  ~ScopedParent();

  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  uint64_t saved_;
};

/// Completed spans, oldest first. `dropped` (optional out) reports how
/// many events the ring buffer overwrote.
std::vector<SpanEvent> Snapshot(uint64_t* dropped = nullptr);

/// Chrome trace_event JSON ("X" complete events, microsecond timestamps,
/// span/parent ids in args). Loadable in chrome://tracing and Perfetto.
std::string ToChromeJson();

/// Flat CSV: name,id,parent_id,thread,start_us,duration_us.
std::string ToCsv();

Status WriteChromeJson(const std::string& path);
Status WriteCsv(const std::string& path);

}  // namespace ahntp::trace

#endif  // AHNTP_COMMON_TRACE_H_
