#include "common/flags.h"

#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "common/cpu.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/trace.h"

namespace ahntp {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StrStartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) return Status::InvalidArgument("bare '--' argument");
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "true";  // bare flag; values use --name=value form
    }
  }
  return Status::Ok();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt(it->second);
  AHNTP_CHECK(parsed.ok()) << "flag --" << name << "=" << it->second
                           << " is not an integer";
  return parsed.value();
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  AHNTP_CHECK(parsed.ok()) << "flag --" << name << "=" << it->second
                           << " is not a number";
  return parsed.value();
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  AHNTP_CHECK(false) << "flag --" << name << "=" << v << " is not a boolean";
  return default_value;
}

std::vector<int64_t> FlagParser::GetIntList(
    const std::string& name, const std::vector<int64_t>& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<int64_t> out;
  for (const std::string& part : StrSplit(it->second, ',')) {
    if (StrTrim(part).empty()) continue;
    auto parsed = ParseInt(part);
    AHNTP_CHECK(parsed.ok()) << "flag --" << name << " element '" << part
                             << "' is not an integer";
    out.push_back(parsed.value());
  }
  return out;
}

std::vector<double> FlagParser::GetDoubleList(
    const std::string& name, const std::vector<double>& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<double> out;
  for (const std::string& part : StrSplit(it->second, ',')) {
    if (StrTrim(part).empty()) continue;
    auto parsed = ParseDouble(part);
    AHNTP_CHECK(parsed.ok()) << "flag --" << name << " element '" << part
                             << "' is not a number";
    out.push_back(parsed.value());
  }
  return out;
}

std::vector<std::string> FlagParser::GetStringList(
    const std::string& name,
    const std::vector<std::string>& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<std::string> out;
  for (const std::string& part : StrSplit(it->second, ',')) {
    std::string trimmed = StrTrim(part);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

int ApplyRuntimeFlags(const FlagParser& flags) {
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  if (threads > 0) SetNumThreads(threads);
  if (flags.Has("max_resident_shards")) {
    const int64_t resident = flags.GetInt("max_resident_shards", 0);
    AHNTP_CHECK_GE(resident, 1)
        << "--max_resident_shards must be a positive shard count, got "
        << resident;
    SetMaxResidentShards(static_cast<int>(resident));
  }
  if (flags.Has("kernel_isa")) {
    Result<KernelIsa> isa = ParseKernelIsa(flags.GetString("kernel_isa", ""));
    AHNTP_CHECK(isa.ok()) << "--kernel_isa: " << isa.status().ToString();
    SetKernelIsa(isa.value());
  }
  if (flags.Has("fault_seed")) {
    fault::SetSeed(static_cast<uint64_t>(flags.GetInt("fault_seed", 0)));
  }
  if (flags.Has("fault_spec")) {
    Status status = fault::EnableFromSpec(flags.GetString("fault_spec", ""));
    AHNTP_CHECK(status.ok()) << "bad --fault_spec: " << status.ToString();
  }
  if (flags.Has("metrics_out")) {
    const std::string path = flags.GetString("metrics_out", "");
    AHNTP_CHECK(!path.empty()) << "--metrics_out needs a path";
    metrics::SetOutputPath(path);
  }
  if (flags.Has("trace_out")) {
    const std::string path = flags.GetString("trace_out", "");
    AHNTP_CHECK(!path.empty()) << "--trace_out needs a path";
    trace::SetOutputPath(path);
  }
  return NumThreads();
}

namespace {

/// 0 = unset (fall through to the environment / the default of 2).
std::atomic<int> g_max_resident_shards{0};

}  // namespace

int MaxResidentShards() {
  int configured = g_max_resident_shards.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  if (const char* env = std::getenv("AHNTP_MAX_RESIDENT_SHARDS")) {
    auto parsed = ParseInt(env);
    AHNTP_CHECK(parsed.ok() && parsed.value() >= 1)
        << "AHNTP_MAX_RESIDENT_SHARDS must be a positive shard count, got '"
        << env << "'";
    return static_cast<int>(parsed.value());
  }
  return 2;
}

void SetMaxResidentShards(int n) {
  AHNTP_CHECK_GE(n, 1) << "resident-shard cap must be positive";
  g_max_resident_shards.store(n, std::memory_order_relaxed);
}

}  // namespace ahntp
