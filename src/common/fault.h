#ifndef AHNTP_COMMON_FAULT_H_
#define AHNTP_COMMON_FAULT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ahntp::fault {

/// Deterministic, site-keyed fault injection for exercising recovery paths.
///
/// Production code marks recoverable failure sites with a stable string key
/// ("checkpoint.save", "trainer.nan_grad", "experiment.run", ...) and asks
/// the registry whether a fault should fire at this hit. With no spec
/// installed — the default — every query is a single relaxed atomic load
/// returning false, so instrumented code is a no-op outside tests.
///
/// Spec grammar (comma-separated triggers, installed via `--fault_spec=`,
/// the AHNTP_FAULTS environment variable, or EnableFromSpec):
///
///   site@N     fire exactly on the Nth hit of `site` (1-based)
///   site@N+    fire on every hit from the Nth on
///   site@*     fire on every hit
///   site@~P    fire each hit with probability P in [0,1], drawn
///              deterministically from (seed, site, hit index)
///
/// Example: `--fault_spec=checkpoint.save@1,trainer.nan_grad@3`
/// injects one I/O failure on the first checkpoint save and one NaN
/// gradient on the third guarded batch.
///
/// Hit counters are per-site and atomic; firing decisions depend only on
/// the spec, the seed, and the per-site hit index, so a single-threaded
/// run replays identically.

/// Installs `spec` (replacing any previous one) and enables injection.
/// An empty spec disables injection. InvalidArgument on grammar errors.
Status EnableFromSpec(const std::string& spec);

/// Seeds the `site@~P` probabilistic triggers (default 0). Takes effect
/// for subsequent hits; call before EnableFromSpec for full determinism.
void SetSeed(uint64_t seed);

/// Clears the spec, all hit counters, and the fired-injection count.
void Disable();

/// True when a spec is installed. The fast path for instrumented code.
bool Enabled();

/// Counts a hit at `site` and returns true when its trigger fires. Always
/// false (and counts nothing) when disabled.
bool ShouldInject(const std::string& site);

/// Returns Status(code, "injected fault at <site>") when the site fires,
/// Ok otherwise — the one-liner for Status-returning call sites:
///
///   AHNTP_RETURN_IF_ERROR(fault::FaultPoint("serve.infer",
///                                           StatusCode::kUnavailable));
///
/// The default code models a transient outage (retryable by convention);
/// pass kIoError / kCorruption / ... to exercise a specific recovery path.
Status FaultPoint(const std::string& site,
                  StatusCode code = StatusCode::kUnavailable);

/// FaultPoint with kIoError, kept for the PR 2 I/O call sites.
Status MaybeIoError(const std::string& site);

/// Throws std::runtime_error("injected fault at <site>") when the site
/// fires.
void MaybeThrow(const std::string& site);

/// Number of injections fired since the last Disable()/EnableFromSpec().
int64_t InjectionCount();

}  // namespace ahntp::fault

#endif  // AHNTP_COMMON_FAULT_H_
