#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/check.h"
#include "common/fileio.h"
#include "common/logging.h"
#include "common/strings.h"

namespace ahntp::trace {

namespace {

std::atomic<bool> g_enabled{false};

thread_local uint64_t t_current_span = 0;

/// Stable, small per-thread index for export (Chrome "tid"). Assigned on
/// a thread's first completed span.
uint32_t LocalThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Completed-span ring buffer. Pushes are mutex-serialized: tracing is an
/// opt-in diagnostic mode, and span completion is orders of magnitude
/// rarer than the work inside a span. The disabled path never gets here.
class Ring {
 public:
  static Ring& Get() {
    static Ring* ring = new Ring();
    return *ring;
  }

  void Configure(size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity == 0 ? 1 : capacity;
    events_.clear();
    events_.reserve(std::min(capacity_, size_t{1} << 16));
    head_ = 0;
    dropped_ = 0;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  void Push(SpanEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(std::move(event));
      return;
    }
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  std::vector<SpanEvent> Snapshot(uint64_t* dropped) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dropped != nullptr) *dropped = dropped_;
    std::vector<SpanEvent> out;
    out.reserve(events_.size());
    // head_ is the oldest slot once the buffer has wrapped.
    for (size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<SpanEvent> events_;
  size_t capacity_ = size_t{1} << 16;
  size_t head_ = 0;
  uint64_t dropped_ = 0;
};

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::mutex g_output_mu;
std::string& OutputPathStorage() {
  static std::string* path = new std::string();
  return *path;
}

void WriteTraceAtExit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_output_mu);
    path = OutputPathStorage();
  }
  if (path.empty()) return;
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  Status status = csv ? WriteCsv(path) : WriteChromeJson(path);
  if (!status.ok()) {
    AHNTP_LOG(Warning) << "trace export failed: " << status.ToString();
  }
}

/// Applies AHNTP_TRACE (an export path) once, before the first query.
void ApplyEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("AHNTP_TRACE");
    if (env != nullptr && env[0] != '\0') SetOutputPath(env);
  });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Earliest start across events; exported timestamps are relative to it
/// so traces from different runs align at t=0.
int64_t EpochNanos(const std::vector<SpanEvent>& events) {
  int64_t epoch = 0;
  bool first = true;
  for (const SpanEvent& e : events) {
    if (first || e.start_ns < epoch) epoch = e.start_ns;
    first = false;
  }
  return epoch;
}

}  // namespace

bool Enabled() {
  ApplyEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

void Enable(size_t capacity) {
  Ring::Get().Configure(capacity);
  g_enabled.store(true, std::memory_order_release);
}

void Disable() {
  g_enabled.store(false, std::memory_order_release);
  Ring::Get().Clear();
}

void Clear() { Ring::Get().Clear(); }

void SetOutputPath(const std::string& path) {
  static std::once_flag atexit_once;
  {
    std::lock_guard<std::mutex> lock(g_output_mu);
    OutputPathStorage() = path;
  }
  std::call_once(atexit_once, [] { std::atexit(WriteTraceAtExit); });
  if (!g_enabled.load(std::memory_order_relaxed)) Enable();
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!Enabled()) return;
  id_ = NextSpanId();
  parent_id_ = t_current_span;
  t_current_span = id_;
  start_ns_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  SpanEvent event;
  event.name = name_;
  event.id = id_;
  event.parent_id = parent_id_;
  event.start_ns = start_ns_;
  event.duration_ns = NowNanos() - start_ns_;
  event.thread_index = LocalThreadIndex();
  t_current_span = parent_id_;
  // Spans that outlive a Disable() are dropped (the ring was cleared and
  // recording stopped); re-enabling mid-span records it normally.
  if (g_enabled.load(std::memory_order_relaxed)) {
    Ring::Get().Push(std::move(event));
  }
}

uint64_t CurrentSpanId() { return t_current_span; }

ScopedParent::ScopedParent(uint64_t parent_id) : saved_(t_current_span) {
  t_current_span = parent_id;
}

ScopedParent::~ScopedParent() { t_current_span = saved_; }

std::vector<SpanEvent> Snapshot(uint64_t* dropped) {
  return Ring::Get().Snapshot(dropped);
}

std::string ToChromeJson() {
  std::vector<SpanEvent> events = Snapshot();
  const int64_t epoch = EpochNanos(events);
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out += StrFormat(
        "%s\n  {\"name\": \"%s\", \"cat\": \"ahntp\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
        "\"args\": {\"id\": %llu, \"parent\": %llu}}",
        i == 0 ? "" : ",", JsonEscape(e.name).c_str(),
        static_cast<double>(e.start_ns - epoch) * 1e-3,
        static_cast<double>(e.duration_ns) * 1e-3, e.thread_index,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent_id));
  }
  out += events.empty() ? "], " : "\n], ";
  out += "\"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string ToCsv() {
  std::vector<SpanEvent> events = Snapshot();
  const int64_t epoch = EpochNanos(events);
  std::string out = "name,id,parent_id,thread,start_us,duration_us\n";
  for (const SpanEvent& e : events) {
    out += StrFormat("%s,%llu,%llu,%u,%.3f,%.3f\n", e.name.c_str(),
                     static_cast<unsigned long long>(e.id),
                     static_cast<unsigned long long>(e.parent_id),
                     e.thread_index,
                     static_cast<double>(e.start_ns - epoch) * 1e-3,
                     static_cast<double>(e.duration_ns) * 1e-3);
  }
  return out;
}

Status WriteChromeJson(const std::string& path) {
  return WriteFileAtomic(path, ToChromeJson());
}

Status WriteCsv(const std::string& path) {
  return WriteFileAtomic(path, ToCsv());
}

}  // namespace ahntp::trace
