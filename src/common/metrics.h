#ifndef AHNTP_COMMON_METRICS_H_
#define AHNTP_COMMON_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ahntp::metrics {

/// Process-wide metrics registry: named counters, gauges, and histograms
/// that hot paths update and tools snapshot (DESIGN.md §11).
///
/// Fast path: with metrics disabled — the default — every instrumented
/// site costs a single relaxed atomic load (the same pattern as
/// common/fault.h). When enabled, counter and histogram updates go to a
/// per-thread shard (no lock, no cross-thread cache-line contention);
/// Collect() folds the shards into one snapshot.
///
/// Determinism contract: counters and histogram bucket/observation counts
/// are plain integer sums over shards, so a snapshot's counter values are
/// bit-identical at any `--threads=N` as long as the instrumented code
/// itself is deterministic (which the parallel substrate guarantees —
/// see common/parallel.h). Gauges are last-write-wins and should only be
/// set from serial phases (e.g. the trainer's epoch loop); histogram
/// *sums* and wall-time observations are timing-dependent and excluded
/// from the determinism contract.
///
/// Enablement: EnableFromFlagsOrEnv order is SetOutputPath() /
/// `--metrics_out=<path>` first, else the AHNTP_METRICS environment
/// variable (a path; applied once, like AHNTP_FAULTS). When an output
/// path is installed, the snapshot is written as JSON on process exit via
/// the atomic writer in common/fileio.h.

/// True when the registry is recording. The fast path for instrumented
/// code: a single relaxed atomic load (after a one-time env check).
bool Enabled();

/// Starts recording (idempotent). Does not clear previous values.
void Enable();

/// Stops recording and clears every recorded value. Registered metric
/// handles stay valid and start from zero if recording resumes.
void Disable();

/// Clears every recorded value without changing the enabled state.
void Reset();

/// Installs `path` as the process-exit snapshot destination and enables
/// recording. The snapshot is written atomically (temp + rename) at exit;
/// a write failure logs a warning rather than aborting teardown.
void SetOutputPath(const std::string& path);

/// Currently installed output path ("" when none).
std::string OutputPath();

/// Monotonically increasing integer metric ("tensor.spmm.calls").
class Counter {
 public:
  /// Adds `delta` (no-op while disabled). Lock-free: touches only the
  /// calling thread's shard.
  void Add(int64_t delta);
  void Increment() { Add(1); }

  /// Current value folded across all shards.
  int64_t Value() const;

 private:
  friend class Registry;
  explicit Counter(size_t slot) : slot_(slot) {}
  size_t slot_;
};

/// Last-write-wins double metric ("trainer.loss"). Set from serial code
/// for deterministic snapshots.
class Gauge {
 public:
  void Set(double value);
  double Value() const;

 private:
  friend class Registry;
  explicit Gauge(size_t index) : index_(index) {}
  size_t index_;
};

/// Number of log-spaced histogram buckets. Bucket 0 catches v <= 0;
/// bucket i >= 1 covers [2^(i-33), 2^(i-32)), so the range spans 2^-32
/// (~0.23 ns when observing seconds) to 2^30 (~34 years), with the last
/// bucket absorbing the overflow.
inline constexpr size_t kHistogramBuckets = 64;

/// Bucket index for an observed value (exposed for tests).
size_t HistogramBucketIndex(double value);

/// Inclusive lower bound of bucket `i` (-inf for bucket 0).
double HistogramBucketLowerBound(size_t i);

/// Fixed log-spaced-bucket histogram ("trainer.epoch_seconds"). Bucket
/// and observation counts are integers (deterministic); the sum is kept
/// in nano-units (value * 1e9, rounded) so folding is order-independent.
class Histogram {
 public:
  void Observe(double value);

  int64_t Count() const;
  /// Sum of observed values (reconstructed from the nano-unit total).
  double Sum() const;
  int64_t BucketCount(size_t i) const;

 private:
  friend class Registry;
  explicit Histogram(size_t slot) : slot_(slot) {}
  size_t slot_;
};

/// Looks up or registers a metric. References stay valid for the process
/// lifetime; registering the same name twice returns the same metric.
/// Registering one name with two different kinds aborts via CHECK.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

/// One folded snapshot of the registry, sorted by name within each kind.
struct CounterSample {
  std::string name;
  int64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  std::vector<int64_t> buckets;  // kHistogramBuckets entries
};

struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by name; `missing` when never registered.
  int64_t CounterValue(const std::string& name, int64_t missing = -1) const;

  /// JSON rendering: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"count": n, "sum": s, "buckets": {...}}}}.
  /// One key per line, keys sorted — diffable and greppable. Histogram
  /// buckets with zero count are omitted.
  std::string ToJson() const;
};

/// Folds all shards into a snapshot. Concurrent updates may or may not be
/// included; call from quiescent points for exact values.
Snapshot Collect();

/// Collect() + WriteFileAtomic of Snapshot::ToJson().
Status WriteSnapshotJson(const std::string& path);

}  // namespace ahntp::metrics

/// Counter update macro for hot call sites: when metrics are disabled this
/// is a single relaxed atomic load; the registry lookup runs once per site
/// (function-local static) on the first enabled pass.
#define AHNTP_METRIC_COUNT(name, delta)                             \
  do {                                                              \
    if (ahntp::metrics::Enabled()) {                                \
      static ahntp::metrics::Counter& ahntp_metric_counter_ =       \
          ahntp::metrics::GetCounter(name);                         \
      ahntp_metric_counter_.Add(delta);                             \
    }                                                               \
  } while (0)

#endif  // AHNTP_COMMON_METRICS_H_
