#ifndef AHNTP_COMMON_LOGGING_H_
#define AHNTP_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace ahntp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// One log statement: buffers the message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ahntp

#define AHNTP_LOG(level)                                          \
  ::ahntp::internal::LogMessage(::ahntp::LogLevel::k##level,      \
                                __FILE__, __LINE__)

#endif  // AHNTP_COMMON_LOGGING_H_
