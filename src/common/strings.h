#ifndef AHNTP_COMMON_STRINGS_H_
#define AHNTP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ahntp {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string StrTrim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StrStartsWith(std::string_view text, std::string_view prefix);

/// Parses a base-10 integer; whole string must be consumed.
Result<int64_t> ParseInt(std::string_view text);

/// Parses a floating-point value; whole string must be consumed.
Result<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ahntp

#endif  // AHNTP_COMMON_STRINGS_H_
