#ifndef AHNTP_COMMON_FILEIO_H_
#define AHNTP_COMMON_FILEIO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace ahntp {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `size` bytes. Chainable:
/// pass the previous return value as `crc` to extend a running checksum.
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

/// Atomically replaces `path` with `contents`: writes to `path + ".tmp"`,
/// verifies the stream after every write (short writes / disk full surface
/// as IoError, never as a silently truncated file), fsyncs, then renames
/// over the target. On any failure the temp file is removed and `path` is
/// left untouched — readers never observe a partially written file.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Reads the whole file into `contents`. IoError when the file cannot be
/// opened or read.
Status ReadFileToString(const std::string& path, std::string* contents);

}  // namespace ahntp

#endif  // AHNTP_COMMON_FILEIO_H_
