#ifndef AHNTP_COMMON_STATUS_H_
#define AHNTP_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ahntp {

/// Error categories used across the library. Recoverable failures are
/// reported through Status / Result<T> (RocksDB idiom); programming errors
/// abort through the AHNTP_CHECK macros in common/check.h.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the success path
/// (no allocation when ok).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. `Result<T>` holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the error status (Ok if this holds a value).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace ahntp

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define AHNTP_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::ahntp::Status _ahntp_status = (expr);           \
    if (!_ahntp_status.ok()) return _ahntp_status;    \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define AHNTP_ASSIGN_OR_RETURN(lhs, expr)                    \
  auto AHNTP_CONCAT_(_ahntp_result_, __LINE__) = (expr);     \
  if (!AHNTP_CONCAT_(_ahntp_result_, __LINE__).ok())         \
    return AHNTP_CONCAT_(_ahntp_result_, __LINE__).status(); \
  lhs = std::move(AHNTP_CONCAT_(_ahntp_result_, __LINE__)).value()

#define AHNTP_CONCAT_INNER_(a, b) a##b
#define AHNTP_CONCAT_(a, b) AHNTP_CONCAT_INNER_(a, b)

#endif  // AHNTP_COMMON_STATUS_H_
