#include "hypergraph/dynamic.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ahntp::hypergraph {

namespace {

// Identity-key namespaces (top byte) so the two hypergroups concatenated
// into one branch can never collide.
constexpr int64_t kSocialTag = int64_t{1} << 56;
constexpr int64_t kAttributeTag = int64_t{2} << 56;
constexpr int64_t kPairwiseTag = int64_t{3} << 56;
constexpr int64_t kMultiHopTag = int64_t{4} << 56;

int64_t PairKey(int lo, int hi) {
  // 28 bits per endpoint leaves room for the tag; 268M users is far past
  // the out-of-core ceiling.
  AHNTP_CHECK(lo >= 0 && hi >= 0 && lo < (1 << 28) && hi < (1 << 28));
  return kPairwiseTag | (static_cast<int64_t>(lo) << 28) |
         static_cast<int64_t>(hi);
}

/// Vertices within `hops` (undirected) steps of any source, sources
/// included — the only anchors whose BFS balls a delta can have changed.
std::vector<char> WithinHops(const graph::Digraph& g,
                             const std::vector<int>& sources, int hops) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<int> frontier;
  for (int s : sources) {
    if (s >= 0 && static_cast<size_t>(s) < g.num_nodes() && dist[s] == -1) {
      dist[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    if (dist[v] >= hops) continue;
    auto visit = [&](int w) {
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    };
    for (int w : g.OutNeighbors(v)) visit(w);
    for (int w : g.InNeighbors(v)) visit(w);
  }
  std::vector<char> mask(g.num_nodes(), 0);
  for (size_t v = 0; v < mask.size(); ++v) mask[v] = dist[v] >= 0 ? 1 : 0;
  return mask;
}

}  // namespace

Hypergraph UpdatePairwiseHypergroup(
    const Hypergraph& old_hg, const graph::Digraph& new_view,
    const std::vector<graph::Edge>& applied_adds,
    const std::vector<graph::Edge>& applied_removes) {
  trace::TraceSpan span("hypergraph.update.pairwise");
  std::set<std::pair<int, int>> touched;
  for (const graph::Edge& e : applied_adds) {
    touched.insert({std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  for (const graph::Edge& e : applied_removes) {
    touched.insert({std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  // The key packs the representative orientation: the lexicographically
  // first existing direction, i.e. the pair's first appearance in the
  // sorted canonical edge list — MergeFragments' sort then reproduces
  // BuildPairwiseHypergroup's append order over that list.
  auto representative_key = [&new_view](int lo, int hi) {
    bool lo_hi = new_view.HasEdge(lo, hi);
    int64_t src = lo_hi ? lo : hi;
    int64_t dst = lo_hi ? hi : lo;
    return (src << 32) | dst;
  };
  HypergroupFragment retained;
  retained.edges.reserve(old_hg.num_edges());
  for (size_t e = 0; e < old_hg.num_edges(); ++e) {
    const std::vector<int>& members = old_hg.EdgeVertices(e);
    AHNTP_CHECK_EQ(members.size(), 2u);
    int lo = members[0], hi = members[1];
    if (touched.count({lo, hi})) continue;  // rebuilt below (or gone)
    retained.edges.push_back({representative_key(lo, hi), {lo, hi}});
  }
  HypergroupFragment changed;
  for (const auto& [lo, hi] : touched) {
    if (!new_view.HasEdge(lo, hi) && !new_view.HasEdge(hi, lo)) continue;
    changed.edges.push_back({representative_key(lo, hi), {lo, hi}});
  }
  std::vector<HypergroupFragment> fragments;
  fragments.push_back(std::move(retained));
  fragments.push_back(std::move(changed));
  AHNTP_METRIC_COUNT("hypergraph.update.pairwise_touched",
                     static_cast<int64_t>(touched.size()));
  return MergeFragments(new_view.num_nodes(), std::move(fragments));
}

Hypergraph UpdateMultiHopHypergroup(const Hypergraph& old_hg,
                                    const graph::Digraph& old_view,
                                    const graph::Digraph& new_view,
                                    const MultiHopOptions& options,
                                    const std::vector<int>& touched_vertices) {
  trace::TraceSpan span("hypergraph.update.multi_hop");
  AHNTP_CHECK_GE(options.num_hops, 1);
  const size_t n = new_view.num_nodes();
  AHNTP_CHECK_EQ(old_view.num_nodes(), n);
  AHNTP_CHECK_EQ(old_hg.num_edges(),
                 static_cast<size_t>(options.num_hops) * n);
  // An anchor's ball can only differ if a touched endpoint lies within
  // num_hops of it — the BFS to depth h reads the adjacency of vertices at
  // distance < h only, and a delta changes adjacency only at its endpoints.
  // Check the radius in *both* graphs: a removed edge can put an anchor out
  // of range in the new graph while its old ball still reached the change.
  std::vector<char> dirty_old =
      WithinHops(old_view, touched_vertices, options.num_hops);
  std::vector<char> dirty_new =
      WithinHops(new_view, touched_vertices, options.num_hops);
  HypergroupFragment retained;
  HypergroupFragment changed;
  size_t dirty_count = 0;
  for (size_t u = 0; u < n; ++u) {
    const bool dirty = dirty_old[u] || dirty_new[u];
    if (dirty) ++dirty_count;
    for (int hop = 1; hop <= options.num_hops; ++hop) {
      int64_t key = static_cast<int64_t>(hop - 1) * static_cast<int64_t>(n) +
                    static_cast<int64_t>(u);
      if (!dirty) {
        // Monolithic append order is hop-major then anchor, so the old edge
        // for (hop, u) sits exactly at this key's index.
        retained.edges.push_back(
            {key, old_hg.EdgeVertices(static_cast<size_t>(key))});
        continue;
      }
      std::vector<int> members;
      members.push_back(static_cast<int>(u));
      std::vector<int> ball =
          new_view.NeighborhoodBall(static_cast<int>(u), hop);
      for (int v : ball) {
        if (options.max_edge_size > 0 &&
            members.size() >= options.max_edge_size) {
          break;
        }
        members.push_back(v);
      }
      changed.edges.push_back({key, std::move(members)});
    }
  }
  AHNTP_METRIC_COUNT("hypergraph.update.multi_hop_dirty_anchors",
                     static_cast<int64_t>(dirty_count));
  std::vector<HypergroupFragment> fragments;
  fragments.push_back(std::move(retained));
  fragments.push_back(std::move(changed));
  return MergeFragments(n, std::move(fragments));
}

std::vector<int64_t> SocialEdgeKeys(size_t num_users) {
  std::vector<int64_t> keys(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    keys[u] = kSocialTag | static_cast<int64_t>(u);
  }
  return keys;
}

std::vector<int64_t> AttributeEdgeKeys(
    size_t num_users, const std::vector<std::vector<int>>& attributes,
    size_t min_size) {
  // Mirrors BuildAttributeHypergroup's append order: column-major, value
  // ascending, groups below min_size skipped.
  std::vector<int64_t> keys;
  for (size_t c = 0; c < attributes.size(); ++c) {
    const auto& column = attributes[c];
    AHNTP_CHECK_EQ(column.size(), num_users);
    std::map<int, size_t> group_sizes;
    for (size_t u = 0; u < num_users; ++u) {
      if (column[u] >= 0) ++group_sizes[column[u]];
    }
    for (const auto& [value, size] : group_sizes) {
      if (size >= min_size) {
        keys.push_back(kAttributeTag | (static_cast<int64_t>(c) << 32) |
                       static_cast<int64_t>(value));
      }
    }
  }
  return keys;
}

std::vector<int64_t> PairwiseEdgeKeys(const Hypergraph& pairwise,
                                      const graph::Digraph& view) {
  (void)view;  // identity is the unordered pair; orientation is order, not id
  std::vector<int64_t> keys;
  keys.reserve(pairwise.num_edges());
  for (size_t e = 0; e < pairwise.num_edges(); ++e) {
    const std::vector<int>& members = pairwise.EdgeVertices(e);
    AHNTP_CHECK_EQ(members.size(), 2u);
    keys.push_back(PairKey(members[0], members[1]));
  }
  return keys;
}

std::vector<int64_t> MultiHopEdgeKeys(size_t num_users,
                                      const MultiHopOptions& options) {
  std::vector<int64_t> keys;
  keys.reserve(static_cast<size_t>(options.num_hops) * num_users);
  for (int hop = 1; hop <= options.num_hops; ++hop) {
    for (size_t u = 0; u < num_users; ++u) {
      keys.push_back(kMultiHopTag |
                     (static_cast<int64_t>(hop - 1) *
                          static_cast<int64_t>(num_users) +
                      static_cast<int64_t>(u)));
    }
  }
  return keys;
}

std::vector<int64_t> ConcatKeys(const std::vector<int64_t>& a,
                                const std::vector<int64_t>& b) {
  std::vector<int64_t> keys;
  keys.reserve(a.size() + b.size());
  keys.insert(keys.end(), a.begin(), a.end());
  keys.insert(keys.end(), b.begin(), b.end());
  return keys;
}

BranchDiff DiffBranch(const Hypergraph& old_hg,
                      const std::vector<int64_t>& old_keys,
                      const Hypergraph& new_hg,
                      const std::vector<int64_t>& new_keys) {
  trace::TraceSpan span("hypergraph.diff_branch");
  AHNTP_CHECK_EQ(old_keys.size(), old_hg.num_edges());
  AHNTP_CHECK_EQ(new_keys.size(), new_hg.num_edges());
  AHNTP_CHECK_EQ(old_hg.num_vertices(), new_hg.num_vertices());
  const size_t n = new_hg.num_vertices();

  std::unordered_map<int64_t, int> old_by_key;
  old_by_key.reserve(old_keys.size());
  for (size_t e = 0; e < old_keys.size(); ++e) {
    bool inserted =
        old_by_key.emplace(old_keys[e], static_cast<int>(e)).second;
    AHNTP_CHECK(inserted) << "duplicate identity key in old branch";
  }

  BranchDiff diff;
  diff.new_from_old.assign(new_hg.num_edges(), -1);
  for (size_t e = 0; e < new_hg.num_edges(); ++e) {
    auto it = old_by_key.find(new_keys[e]);
    if (it == old_by_key.end()) {
      diff.changed_edges.push_back(static_cast<int>(e));
      continue;
    }
    diff.new_from_old[e] = it->second;
    const size_t old_e = static_cast<size_t>(it->second);
    if (new_hg.EdgeVertices(e) != old_hg.EdgeVertices(old_e) ||
        new_hg.EdgeWeight(e) != old_hg.EdgeWeight(old_e)) {
      diff.changed_edges.push_back(static_cast<int>(e));
    }
  }

  // A vertex's convolution row depends on the *ordered contents* of its
  // incident hyperedges (the attention softmax runs over its incidence
  // pairs in edge-major order). Vertices whose ordered identity-key
  // sequence moved — including members of removed edges, whose key
  // disappears — must be recomputed even when every surviving edge kept
  // its members.
  std::vector<std::vector<int64_t>> old_seq(n), new_seq(n);
  for (size_t e = 0; e < old_hg.num_edges(); ++e) {
    for (int v : old_hg.EdgeVertices(e)) old_seq[v].push_back(old_keys[e]);
  }
  for (size_t e = 0; e < new_hg.num_edges(); ++e) {
    for (int v : new_hg.EdgeVertices(e)) new_seq[v].push_back(new_keys[e]);
  }
  for (size_t v = 0; v < n; ++v) {
    if (old_seq[v] != new_seq[v]) {
      diff.reorder_dirty.push_back(static_cast<int>(v));
    }
  }

  diff.any_change =
      !diff.changed_edges.empty() || !diff.reorder_dirty.empty() ||
      old_hg.num_edges() != new_hg.num_edges();
  return diff;
}

}  // namespace ahntp::hypergraph
