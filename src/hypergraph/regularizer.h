#ifndef AHNTP_HYPERGRAPH_REGULARIZER_H_
#define AHNTP_HYPERGRAPH_REGULARIZER_H_

#include "autograd/ops.h"
#include "hypergraph/hypergraph.h"

namespace ahntp::hypergraph {

/// Hypergraph smoothness R(f) = f^T (I - D_v^{-1/2} H W D_e^{-1} H^T
/// D_v^{-1/2}) f (Eq. 24), computed in factored form without materializing
/// the n x n Laplacian:
///   R(f) = ||f||_F^2 - sum_e (w_e / delta_e) * ||H^T D_v^{-1/2} f||_e^2.
/// Equivalent (up to float round-off) to
/// nn::HypergraphRegularizer(f, hg.Laplacian()) but O(incidences * dim)
/// instead of O(nnz(Laplacian) * dim). Returns a 1x1 scalar variable.
autograd::Variable HypergraphSmoothness(const autograd::Variable& f,
                                        const Hypergraph& hg);

}  // namespace ahntp::hypergraph

#endif  // AHNTP_HYPERGRAPH_REGULARIZER_H_
