#ifndef AHNTP_HYPERGRAPH_DYNAMIC_H_
#define AHNTP_HYPERGRAPH_DYNAMIC_H_

#include <cstdint>
#include <vector>

#include "graph/delta.h"
#include "graph/digraph.h"
#include "hypergraph/builders.h"
#include "hypergraph/hypergraph.h"

namespace ahntp::hypergraph {

// ---------------------------------------------------------------------------
// Incremental hypergroup maintenance (DESIGN.md §17). After a graph delta,
// only hypergroups whose membership keys changed are re-derived, and those
// only partially: untouched hyperedges are retained verbatim as fragments
// and merged with freshly built fragments for the dirty anchors through the
// PR 6 MergeFragments machinery, whose canonical keys reproduce the
// monolithic builders' edge order bit-for-bit. Per group:
//
//   social     influence is a global fixed point, so any structural delta
//              may reorder any anchor's top-K — rebuilt whole (still cheap
//              next to re-encoding); rating-only deltas skip it entirely.
//   attribute  static attributes never change under edge/rating deltas —
//              never rebuilt.
//   pairwise   retained pairs + recomputed entries for pairs touched by the
//              delta. Keys pack the representative orientation, matching
//              the first-appearance order over the (sorted) edge list.
//   multi-hop  balls can only change within num_hops of a touched endpoint
//              (BFS reads adjacency only of vertices strictly inside the
//              ball); anchors outside that radius in both the old and new
//              graph are retained.
// ---------------------------------------------------------------------------

/// Incrementally updates the pairwise hypergroup. `old_hg` must be the
/// pairwise hypergroup of the pre-delta graph, `new_view` the post-delta
/// graph, and the applied lists the receipt's real changes. Bit-identical
/// to BuildPairwiseHypergroup(new_view).
Hypergraph UpdatePairwiseHypergroup(
    const Hypergraph& old_hg, const graph::Digraph& new_view,
    const std::vector<graph::Edge>& applied_adds,
    const std::vector<graph::Edge>& applied_removes);

/// Incrementally updates the multi-hop hypergroup: anchors within
/// options.num_hops of a touched vertex in either the old or new graph are
/// rebuilt against `new_view`; everything else is retained from `old_hg`.
/// Bit-identical to BuildMultiHopHypergroup(new_view, options).
Hypergraph UpdateMultiHopHypergroup(const Hypergraph& old_hg,
                                    const graph::Digraph& old_view,
                                    const graph::Digraph& new_view,
                                    const MultiHopOptions& options,
                                    const std::vector<int>& touched_vertices);

// ---------------------------------------------------------------------------
// Branch diffing. The adaptive convolutions consume a branch hypergraph
// (concatenation of two hypergroups); after an update the model needs to
// know which hyperedges are new or changed, how surviving edges map to old
// edge ids (edge-weight remapping), and which vertices saw their *ordered*
// incident-edge sequence change (their attention segments reorder even when
// every member set survives — e.g. a pairwise representative flip). Edges
// are matched across generations by a stable int64 identity key, namespaced
// per hypergroup so concatenated branches can be diffed in one pass.
// ---------------------------------------------------------------------------

/// Stable identity keys (one per edge, build order) for each hypergroup.
/// The tag in the top byte keeps groups disjoint inside a branch.
std::vector<int64_t> SocialEdgeKeys(size_t num_users);
std::vector<int64_t> AttributeEdgeKeys(
    size_t num_users, const std::vector<std::vector<int>>& attributes,
    size_t min_size = 2);
std::vector<int64_t> PairwiseEdgeKeys(const Hypergraph& pairwise,
                                      const graph::Digraph& view);
std::vector<int64_t> MultiHopEdgeKeys(size_t num_users,
                                      const MultiHopOptions& options);

/// Concatenates two key vectors (the Hypergraph::Concat of identities).
std::vector<int64_t> ConcatKeys(const std::vector<int64_t>& a,
                                const std::vector<int64_t>& b);

/// What changed between two generations of one branch hypergraph.
struct BranchDiff {
  /// Per new edge id: matching old edge id (same identity key) or -1.
  std::vector<int> new_from_old;
  /// New edge ids that are brand new or whose member set / weight changed.
  std::vector<int> changed_edges;
  /// Vertices whose ordered sequence of incident identity keys changed —
  /// including members of removed edges. Their attention segments are laid
  /// out differently even if each surviving edge is unchanged.
  std::vector<int> reorder_dirty;
  bool any_change = false;
};

/// Diffs `old_hg` against `new_hg` using the per-edge identity keys (which
/// must be parallel to the respective edge lists, and unique within each).
BranchDiff DiffBranch(const Hypergraph& old_hg,
                      const std::vector<int64_t>& old_keys,
                      const Hypergraph& new_hg,
                      const std::vector<int64_t>& new_keys);

}  // namespace ahntp::hypergraph

#endif  // AHNTP_HYPERGRAPH_DYNAMIC_H_
