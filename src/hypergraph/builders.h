#ifndef AHNTP_HYPERGRAPH_BUILDERS_H_
#define AHNTP_HYPERGRAPH_BUILDERS_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/pagerank.h"
#include "graph/sharding.h"
#include "hypergraph/hypergraph.h"

namespace ahntp::hypergraph {

// ---------------------------------------------------------------------------
// The four hypergroup constructions of Section IV-B. Node-level hypergroups
// (social influence, attributes) capture who a user is; structure-level
// hypergroups (pairwise, multi-hop) capture how users connect. AHNTP
// processes the two levels in separate adaptive-convolution branches.
// ---------------------------------------------------------------------------

/// Options for the high-social-influence hypergroup (Section IV-B.1).
struct SocialInfluenceOptions {
  /// Hyperedge size cap: the K highest-influence neighbours joined with the
  /// anchor user (Eq. 6).
  int top_k = 5;
  /// When false, plain PageRank scores replace Motif-based PageRank — this
  /// is the AHNTP_nompr ablation of Table V.
  bool use_motif_pagerank = true;
  graph::MotifPageRankOptions mpr;
};

/// Builds one hyperedge per user: {u} ∪ top-K of u's neighbours ranked by
/// the (motif-)PageRank influence score s' (Eqs. 5-6). Users without
/// neighbours contribute a singleton hyperedge so isolated nodes still
/// receive embeddings — one of the paper's motivations for hypergraphs.
Hypergraph BuildSocialInfluenceHypergroup(const graph::Digraph& graph,
                                          const SocialInfluenceOptions& options);

/// Same, but with externally supplied influence scores (one per user).
Hypergraph BuildSocialInfluenceHypergroup(
    const graph::Digraph& graph, const std::vector<double>& influence,
    int top_k);

/// Builds the attribute hypergroup (Section IV-B.2, Eq. 7): for each
/// categorical attribute column, one hyperedge per distinct value, linking
/// all users sharing it. `attributes[a][u]` is user u's value id for
/// attribute a; negative ids mean "missing" and join no hyperedge.
/// Hyperedges with fewer than `min_size` members are dropped (they carry no
/// correlation).
Hypergraph BuildAttributeHypergroup(
    size_t num_users, const std::vector<std::vector<int>>& attributes,
    size_t min_size = 2);

/// Builds the pairwise hypergroup (Section IV-B.3, Eq. 8): one 2-uniform
/// hyperedge per undirected social connection.
Hypergraph BuildPairwiseHypergroup(const graph::Digraph& graph);

/// Options for the multi-hop hypergroup (Section IV-B.4).
struct MultiHopOptions {
  /// Builds hypergroups H_hop1 .. H_hopN and concatenates them (Eq. 9).
  int num_hops = 1;
  /// Caps each hyperedge at this many members (nearest first, determined by
  /// BFS order); 0 disables the cap. Large balls otherwise dominate cost.
  size_t max_edge_size = 128;
};

/// Builds one hyperedge per user and hop level h: the ball of users within
/// h (undirected) hops of u, including u.
Hypergraph BuildMultiHopHypergroup(const graph::Digraph& graph,
                                   const MultiHopOptions& options);

// ---------------------------------------------------------------------------
// Sharded construction (DESIGN.md §14). Each shard builds the hyperedges
// anchored at its owned users against its halo subgraph; fragments carry
// global member ids plus a canonical int64 sort key that reproduces the
// monolithic builder's edge-append order, so merging fragments yields a
// hypergraph bit-identical to the monolithic build — at any combination of
// shard count, sharding mode, and thread count. K=1 is the parity oracle.
//
// Canonical keys per builder:
//   social influence  anchor user u                (append order: ascending u)
//   attribute         column << 32 | value         (column-major, value asc;
//                                                   equal keys merge members)
//   pairwise          min global edge index of either orientation of {lo,hi}
//                     (= first-appearance order over graph.edges())
//   multi-hop         (hop - 1) * num_users + u    (hop-major, then u)
// ---------------------------------------------------------------------------

/// One shard's hyperedges: global member ids plus the canonical merge key.
struct HypergroupFragment {
  struct Edge {
    int64_t key = 0;
    std::vector<int> members;  // global user ids
  };
  std::vector<Edge> edges;
};

/// Social-influence hyperedges for the subgraph's owned users. `influence`
/// is the *global* score vector (one per user); the 1-hop halo guarantees
/// every anchor sees its full neighbour list, and monotone local ids keep
/// the stable_sort input order identical to the monolithic builder's.
HypergroupFragment BuildSocialInfluenceFragment(
    const graph::ShardSubgraph& subgraph, const std::vector<double>& influence,
    int top_k);

/// Attribute hyperedge fragments over the users shard `shard` owns. The
/// min_size filter is applied after the merge (a value's members span
/// shards), not here.
HypergroupFragment BuildAttributeFragment(
    const graph::UserSharding& sharding, int shard,
    const std::vector<std::vector<int>>& attributes);

/// Pairwise hyperedges owned by this shard: the shard owning min(src, dst)
/// emits the pair, keyed by the smallest global edge index of either
/// orientation. Both orientations are incident to the owned min endpoint,
/// so a 1-hop halo sees them all.
HypergroupFragment BuildPairwiseFragment(const graph::ShardSubgraph& subgraph,
                                         const graph::UserSharding& sharding);

/// Multi-hop ball hyperedges for owned users. The subgraph must have been
/// built with halo_hops >= options.num_hops so every ball (and the BFS
/// order the size cap truncates by) is exact.
HypergroupFragment BuildMultiHopFragment(const graph::ShardSubgraph& subgraph,
                                         const MultiHopOptions& options,
                                         size_t num_users);

/// Merges fragments into one hypergraph over `num_users` vertices: edges
/// sorted by key, equal keys merged into a single hyperedge (the attribute
/// case; owned-user member lists are disjoint across shards), merged edges
/// below `min_size` members dropped.
Hypergraph MergeFragments(size_t num_users,
                          std::vector<HypergroupFragment> fragments,
                          size_t min_size = 1);

/// Convenience drivers: partition, build fragments per shard, merge.
/// Each is bit-identical to its monolithic counterpart.
Hypergraph BuildSocialInfluenceHypergroupSharded(
    const graph::Digraph& graph, const graph::UserSharding& sharding,
    const SocialInfluenceOptions& options);
Hypergraph BuildAttributeHypergroupSharded(
    const graph::UserSharding& sharding,
    const std::vector<std::vector<int>>& attributes, size_t min_size = 2);
Hypergraph BuildPairwiseHypergroupSharded(const graph::Digraph& graph,
                                          const graph::UserSharding& sharding);
Hypergraph BuildMultiHopHypergroupSharded(const graph::Digraph& graph,
                                          const graph::UserSharding& sharding,
                                          const MultiHopOptions& options);

}  // namespace ahntp::hypergraph

#endif  // AHNTP_HYPERGRAPH_BUILDERS_H_
