#ifndef AHNTP_HYPERGRAPH_BUILDERS_H_
#define AHNTP_HYPERGRAPH_BUILDERS_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/pagerank.h"
#include "hypergraph/hypergraph.h"

namespace ahntp::hypergraph {

// ---------------------------------------------------------------------------
// The four hypergroup constructions of Section IV-B. Node-level hypergroups
// (social influence, attributes) capture who a user is; structure-level
// hypergroups (pairwise, multi-hop) capture how users connect. AHNTP
// processes the two levels in separate adaptive-convolution branches.
// ---------------------------------------------------------------------------

/// Options for the high-social-influence hypergroup (Section IV-B.1).
struct SocialInfluenceOptions {
  /// Hyperedge size cap: the K highest-influence neighbours joined with the
  /// anchor user (Eq. 6).
  int top_k = 5;
  /// When false, plain PageRank scores replace Motif-based PageRank — this
  /// is the AHNTP_nompr ablation of Table V.
  bool use_motif_pagerank = true;
  graph::MotifPageRankOptions mpr;
};

/// Builds one hyperedge per user: {u} ∪ top-K of u's neighbours ranked by
/// the (motif-)PageRank influence score s' (Eqs. 5-6). Users without
/// neighbours contribute a singleton hyperedge so isolated nodes still
/// receive embeddings — one of the paper's motivations for hypergraphs.
Hypergraph BuildSocialInfluenceHypergroup(const graph::Digraph& graph,
                                          const SocialInfluenceOptions& options);

/// Same, but with externally supplied influence scores (one per user).
Hypergraph BuildSocialInfluenceHypergroup(
    const graph::Digraph& graph, const std::vector<double>& influence,
    int top_k);

/// Builds the attribute hypergroup (Section IV-B.2, Eq. 7): for each
/// categorical attribute column, one hyperedge per distinct value, linking
/// all users sharing it. `attributes[a][u]` is user u's value id for
/// attribute a; negative ids mean "missing" and join no hyperedge.
/// Hyperedges with fewer than `min_size` members are dropped (they carry no
/// correlation).
Hypergraph BuildAttributeHypergroup(
    size_t num_users, const std::vector<std::vector<int>>& attributes,
    size_t min_size = 2);

/// Builds the pairwise hypergroup (Section IV-B.3, Eq. 8): one 2-uniform
/// hyperedge per undirected social connection.
Hypergraph BuildPairwiseHypergroup(const graph::Digraph& graph);

/// Options for the multi-hop hypergroup (Section IV-B.4).
struct MultiHopOptions {
  /// Builds hypergroups H_hop1 .. H_hopN and concatenates them (Eq. 9).
  int num_hops = 1;
  /// Caps each hyperedge at this many members (nearest first, determined by
  /// BFS order); 0 disables the cap. Large balls otherwise dominate cost.
  size_t max_edge_size = 128;
};

/// Builds one hyperedge per user and hop level h: the ball of users within
/// h (undirected) hops of u, including u.
Hypergraph BuildMultiHopHypergroup(const graph::Digraph& graph,
                                   const MultiHopOptions& options);

}  // namespace ahntp::hypergraph

#endif  // AHNTP_HYPERGRAPH_BUILDERS_H_
