#include "hypergraph/builders.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace ahntp::hypergraph {

namespace {

/// Grain for the per-vertex builder loops (neighbor sort / BFS ball per
/// item, so a few hundred vertices per chunk amortize dispatch).
constexpr size_t kVertexGrain = 256;

/// Counts the edges a builder just produced.
void CountEdgesBuilt(const Hypergraph& hg) {
  AHNTP_METRIC_COUNT("hypergraph.edges_built",
                     static_cast<int64_t>(hg.num_edges()));
}

}  // namespace

Hypergraph BuildSocialInfluenceHypergroup(
    const graph::Digraph& graph, const std::vector<double>& influence,
    int top_k) {
  trace::TraceSpan span("hypergraph.build.social_influence");
  AHNTP_CHECK_EQ(influence.size(), graph.num_nodes());
  AHNTP_CHECK_GT(top_k, 0);
  Hypergraph hg(graph.num_nodes());
  // Member selection (gather + sort) is the hot part and is independent per
  // vertex; edges are then inserted serially in vertex order so the edge
  // ids match the serial build exactly.
  std::vector<std::vector<int>> members(graph.num_nodes());
  ParallelFor(0, graph.num_nodes(), kVertexGrain, [&](size_t u0, size_t u1) {
    for (size_t u = u0; u < u1; ++u) {
      std::vector<int> neighbors =
          graph.UndirectedNeighbors(static_cast<int>(u));
      // Highest-influence neighbours first; ties broken by id for
      // determinism.
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&influence](int a, int b) {
                         return influence[static_cast<size_t>(a)] >
                                influence[static_cast<size_t>(b)];
                       });
      if (neighbors.size() > static_cast<size_t>(top_k)) {
        neighbors.resize(static_cast<size_t>(top_k));
      }
      neighbors.push_back(static_cast<int>(u));
      members[u] = std::move(neighbors);
    }
  });
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    AHNTP_CHECK_OK(hg.AddEdge(std::move(members[u])));
  }
  CountEdgesBuilt(hg);
  return hg;
}

Hypergraph BuildSocialInfluenceHypergroup(
    const graph::Digraph& graph, const SocialInfluenceOptions& options) {
  std::vector<double> influence;
  if (options.use_motif_pagerank) {
    influence = graph::MotifPageRank(graph.Adjacency(), options.mpr).scores;
  } else {
    influence = graph::PageRank(graph.Adjacency(), options.mpr.pagerank);
  }
  return BuildSocialInfluenceHypergroup(graph, influence, options.top_k);
}

Hypergraph BuildAttributeHypergroup(
    size_t num_users, const std::vector<std::vector<int>>& attributes,
    size_t min_size) {
  trace::TraceSpan span("hypergraph.build.attribute");
  Hypergraph hg(num_users);
  // Group each attribute column in parallel (columns are independent), then
  // insert edges serially in column order / ascending attribute value, the
  // same order the serial build produced.
  std::vector<std::map<int, std::vector<int>>> grouped(attributes.size());
  ParallelFor(0, attributes.size(), 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const auto& column = attributes[c];
      AHNTP_CHECK_EQ(column.size(), num_users)
          << "every attribute column must cover all users";
      for (size_t u = 0; u < num_users; ++u) {
        if (column[u] >= 0) {
          grouped[c][column[u]].push_back(static_cast<int>(u));
        }
      }
    }
  });
  for (auto& groups : grouped) {
    for (auto& [value, members] : groups) {
      if (members.size() >= min_size) {
        AHNTP_CHECK_OK(hg.AddEdge(std::move(members)));
      }
    }
  }
  CountEdgesBuilt(hg);
  return hg;
}

Hypergraph BuildPairwiseHypergroup(const graph::Digraph& graph) {
  trace::TraceSpan span("hypergraph.build.pairwise");
  Hypergraph hg(graph.num_nodes());
  std::set<std::pair<int, int>> seen;
  for (const graph::Edge& e : graph.edges()) {
    int lo = std::min(e.src, e.dst);
    int hi = std::max(e.src, e.dst);
    if (seen.insert({lo, hi}).second) {
      AHNTP_CHECK_OK(hg.AddEdge({lo, hi}));
    }
  }
  CountEdgesBuilt(hg);
  return hg;
}

Hypergraph BuildMultiHopHypergroup(const graph::Digraph& graph,
                                   const MultiHopOptions& options) {
  trace::TraceSpan span("hypergraph.build.multi_hop");
  AHNTP_CHECK_GE(options.num_hops, 1);
  Hypergraph hg(graph.num_nodes());
  for (int hop = 1; hop <= options.num_hops; ++hop) {
    // The BFS balls are independent per vertex; compute them in parallel
    // and append edges serially in vertex order (edge ids as in the serial
    // build).
    std::vector<std::vector<int>> per_vertex(graph.num_nodes());
    ParallelFor(0, graph.num_nodes(), kVertexGrain, [&](size_t u0, size_t u1) {
      for (size_t u = u0; u < u1; ++u) {
        // NeighborhoodBall returns BFS order, so the size cap keeps the
        // nearest neighbours.
        std::vector<int> members;
        members.push_back(static_cast<int>(u));
        std::vector<int> ball =
            graph.NeighborhoodBall(static_cast<int>(u), hop);
        for (int v : ball) {
          if (options.max_edge_size > 0 &&
              members.size() >= options.max_edge_size) {
            break;
          }
          members.push_back(v);
        }
        per_vertex[u] = std::move(members);
      }
    });
    for (size_t u = 0; u < graph.num_nodes(); ++u) {
      AHNTP_CHECK_OK(hg.AddEdge(std::move(per_vertex[u])));
    }
  }
  CountEdgesBuilt(hg);
  return hg;
}

HypergroupFragment BuildSocialInfluenceFragment(
    const graph::ShardSubgraph& subgraph, const std::vector<double>& influence,
    int top_k) {
  trace::TraceSpan span("hypergraph.build.social_influence_fragment");
  AHNTP_CHECK_GT(top_k, 0);
  const size_t local_n = subgraph.graph.num_nodes();
  HypergroupFragment fragment;
  // Per-local-vertex member selection runs on the execution substrate, as in
  // the monolithic builder; owned anchors are then collected in local order
  // (= ascending global order, the monolithic append order).
  std::vector<std::vector<int>> members(local_n);
  ParallelFor(0, local_n, kVertexGrain, [&](size_t l0, size_t l1) {
    for (size_t l = l0; l < l1; ++l) {
      if (!subgraph.is_owned[l]) continue;
      std::vector<int> neighbors =
          subgraph.graph.UndirectedNeighbors(static_cast<int>(l));
      // Map to global ids first: monotone local ids keep the sorted order,
      // and the comparator must read the global influence vector.
      for (int& v : neighbors) v = subgraph.GlobalId(v);
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&influence](int a, int b) {
                         return influence[static_cast<size_t>(a)] >
                                influence[static_cast<size_t>(b)];
                       });
      if (neighbors.size() > static_cast<size_t>(top_k)) {
        neighbors.resize(static_cast<size_t>(top_k));
      }
      neighbors.push_back(subgraph.GlobalId(static_cast<int>(l)));
      members[l] = std::move(neighbors);
    }
  });
  for (size_t l = 0; l < local_n; ++l) {
    if (!subgraph.is_owned[l]) continue;
    fragment.edges.push_back({static_cast<int64_t>(
                                  subgraph.GlobalId(static_cast<int>(l))),
                              std::move(members[l])});
  }
  return fragment;
}

HypergroupFragment BuildAttributeFragment(
    const graph::UserSharding& sharding, int shard,
    const std::vector<std::vector<int>>& attributes) {
  trace::TraceSpan span("hypergraph.build.attribute_fragment");
  const std::vector<int>& owned = sharding.UsersOf(shard);
  HypergroupFragment fragment;
  for (size_t c = 0; c < attributes.size(); ++c) {
    const auto& column = attributes[c];
    AHNTP_CHECK_EQ(column.size(), sharding.num_users())
        << "every attribute column must cover all users";
    // Owned users ascend, so each value's member list ascends — matching
    // the monolithic per-value append order after the merge concatenates
    // the (disjoint, interleaved-by-id) shard lists.
    std::map<int, std::vector<int>> grouped;
    for (int u : owned) {
      int value = column[static_cast<size_t>(u)];
      if (value >= 0) grouped[value].push_back(u);
    }
    for (auto& [value, members] : grouped) {
      int64_t key = (static_cast<int64_t>(c) << 32) | static_cast<int64_t>(value);
      fragment.edges.push_back({key, std::move(members)});
    }
  }
  return fragment;
}

HypergroupFragment BuildPairwiseFragment(const graph::ShardSubgraph& subgraph,
                                         const graph::UserSharding& sharding) {
  trace::TraceSpan span("hypergraph.build.pairwise_fragment");
  HypergroupFragment fragment;
  // Local edges ascend by global edge index, so the first time a pair is
  // seen here is also its global first appearance (both orientations of an
  // owned pair are incident to the owned min endpoint, hence present).
  std::map<std::pair<int, int>, int64_t> first_seen;
  const std::vector<graph::Edge>& edges = subgraph.graph.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    int gsrc = subgraph.GlobalId(edges[i].src);
    int gdst = subgraph.GlobalId(edges[i].dst);
    int lo = std::min(gsrc, gdst);
    int hi = std::max(gsrc, gdst);
    if (sharding.ShardOf(lo) != subgraph.shard) continue;
    first_seen.try_emplace({lo, hi}, subgraph.global_edge_index[i]);
  }
  for (const auto& [pair, key] : first_seen) {
    fragment.edges.push_back({key, {pair.first, pair.second}});
  }
  return fragment;
}

HypergroupFragment BuildMultiHopFragment(const graph::ShardSubgraph& subgraph,
                                         const MultiHopOptions& options,
                                         size_t num_users) {
  trace::TraceSpan span("hypergraph.build.multi_hop_fragment");
  AHNTP_CHECK_GE(options.num_hops, 1);
  const size_t local_n = subgraph.graph.num_nodes();
  HypergroupFragment fragment;
  for (int hop = 1; hop <= options.num_hops; ++hop) {
    std::vector<std::vector<int>> per_vertex(local_n);
    ParallelFor(0, local_n, kVertexGrain, [&](size_t l0, size_t l1) {
      for (size_t l = l0; l < l1; ++l) {
        if (!subgraph.is_owned[l]) continue;
        // The halo covers radius >= num_hops around every owned vertex, so
        // the local BFS visits exactly the global ball, in the same order
        // (monotone ids keep sorted adjacency positions aligned) — which
        // makes the size cap truncate identically.
        std::vector<int> members;
        members.push_back(subgraph.GlobalId(static_cast<int>(l)));
        std::vector<int> ball =
            subgraph.graph.NeighborhoodBall(static_cast<int>(l), hop);
        for (int v : ball) {
          if (options.max_edge_size > 0 &&
              members.size() >= options.max_edge_size) {
            break;
          }
          members.push_back(subgraph.GlobalId(v));
        }
        per_vertex[l] = std::move(members);
      }
    });
    for (size_t l = 0; l < local_n; ++l) {
      if (!subgraph.is_owned[l]) continue;
      int64_t key = static_cast<int64_t>(hop - 1) *
                        static_cast<int64_t>(num_users) +
                    static_cast<int64_t>(subgraph.GlobalId(static_cast<int>(l)));
      fragment.edges.push_back({key, std::move(per_vertex[l])});
    }
  }
  return fragment;
}

Hypergraph MergeFragments(size_t num_users,
                          std::vector<HypergroupFragment> fragments,
                          size_t min_size) {
  trace::TraceSpan span("hypergraph.build.merge_fragments");
  std::vector<HypergroupFragment::Edge> all;
  size_t total = 0;
  for (const HypergroupFragment& f : fragments) total += f.edges.size();
  all.reserve(total);
  for (HypergroupFragment& f : fragments) {
    for (HypergroupFragment::Edge& e : f.edges) all.push_back(std::move(e));
    f.edges.clear();
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const HypergroupFragment::Edge& a,
                      const HypergroupFragment::Edge& b) { return a.key < b.key; });
  Hypergraph hg(num_users);
  size_t i = 0;
  while (i < all.size()) {
    std::vector<int> members = std::move(all[i].members);
    size_t j = i + 1;
    // Equal keys (attribute values spanning shards) merge into one edge;
    // member lists are disjoint, so the size check matches the monolithic
    // group size. AddEdge re-sorts, so concatenation order is immaterial.
    for (; j < all.size() && all[j].key == all[i].key; ++j) {
      members.insert(members.end(), all[j].members.begin(),
                     all[j].members.end());
    }
    if (members.size() >= min_size) {
      AHNTP_CHECK_OK(hg.AddEdge(std::move(members)));
    }
    i = j;
  }
  AHNTP_METRIC_COUNT("hypergraph.shard.fragments_merged",
                     static_cast<int64_t>(total));
  CountEdgesBuilt(hg);
  return hg;
}

namespace {

std::vector<graph::ShardSubgraph> SubgraphsForAllShards(
    const graph::Digraph& graph, const graph::UserSharding& sharding,
    int halo_hops) {
  std::vector<graph::ShardSubgraph> subs;
  subs.reserve(static_cast<size_t>(sharding.num_shards()));
  for (int s = 0; s < sharding.num_shards(); ++s) {
    auto sub = graph::BuildShardSubgraph(graph, sharding, s, halo_hops);
    AHNTP_CHECK_OK(sub.status());
    subs.push_back(std::move(sub).value());
  }
  return subs;
}

}  // namespace

Hypergraph BuildSocialInfluenceHypergroupSharded(
    const graph::Digraph& graph, const graph::UserSharding& sharding,
    const SocialInfluenceOptions& options) {
  std::vector<double> influence;
  if (options.use_motif_pagerank) {
    influence = graph::ShardedMotifPageRank(graph, sharding, options.mpr).scores;
  } else {
    influence = graph::ShardedPageRank(graph, sharding, options.mpr.pagerank);
  }
  std::vector<HypergroupFragment> fragments;
  for (const graph::ShardSubgraph& sub :
       SubgraphsForAllShards(graph, sharding, 1)) {
    fragments.push_back(
        BuildSocialInfluenceFragment(sub, influence, options.top_k));
  }
  return MergeFragments(graph.num_nodes(), std::move(fragments));
}

Hypergraph BuildAttributeHypergroupSharded(
    const graph::UserSharding& sharding,
    const std::vector<std::vector<int>>& attributes, size_t min_size) {
  std::vector<HypergroupFragment> fragments;
  for (int s = 0; s < sharding.num_shards(); ++s) {
    fragments.push_back(BuildAttributeFragment(sharding, s, attributes));
  }
  return MergeFragments(sharding.num_users(), std::move(fragments), min_size);
}

Hypergraph BuildPairwiseHypergroupSharded(const graph::Digraph& graph,
                                          const graph::UserSharding& sharding) {
  std::vector<HypergroupFragment> fragments;
  for (const graph::ShardSubgraph& sub :
       SubgraphsForAllShards(graph, sharding, 1)) {
    fragments.push_back(BuildPairwiseFragment(sub, sharding));
  }
  return MergeFragments(graph.num_nodes(), std::move(fragments));
}

Hypergraph BuildMultiHopHypergroupSharded(const graph::Digraph& graph,
                                          const graph::UserSharding& sharding,
                                          const MultiHopOptions& options) {
  std::vector<HypergroupFragment> fragments;
  for (const graph::ShardSubgraph& sub :
       SubgraphsForAllShards(graph, sharding, options.num_hops)) {
    fragments.push_back(
        BuildMultiHopFragment(sub, options, graph.num_nodes()));
  }
  return MergeFragments(graph.num_nodes(), std::move(fragments));
}

}  // namespace ahntp::hypergraph
