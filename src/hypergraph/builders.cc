#include "hypergraph/builders.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace ahntp::hypergraph {

namespace {

/// Grain for the per-vertex builder loops (neighbor sort / BFS ball per
/// item, so a few hundred vertices per chunk amortize dispatch).
constexpr size_t kVertexGrain = 256;

/// Counts the edges a builder just produced.
void CountEdgesBuilt(const Hypergraph& hg) {
  AHNTP_METRIC_COUNT("hypergraph.edges_built",
                     static_cast<int64_t>(hg.num_edges()));
}

}  // namespace

Hypergraph BuildSocialInfluenceHypergroup(
    const graph::Digraph& graph, const std::vector<double>& influence,
    int top_k) {
  trace::TraceSpan span("hypergraph.build.social_influence");
  AHNTP_CHECK_EQ(influence.size(), graph.num_nodes());
  AHNTP_CHECK_GT(top_k, 0);
  Hypergraph hg(graph.num_nodes());
  // Member selection (gather + sort) is the hot part and is independent per
  // vertex; edges are then inserted serially in vertex order so the edge
  // ids match the serial build exactly.
  std::vector<std::vector<int>> members(graph.num_nodes());
  ParallelFor(0, graph.num_nodes(), kVertexGrain, [&](size_t u0, size_t u1) {
    for (size_t u = u0; u < u1; ++u) {
      std::vector<int> neighbors =
          graph.UndirectedNeighbors(static_cast<int>(u));
      // Highest-influence neighbours first; ties broken by id for
      // determinism.
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&influence](int a, int b) {
                         return influence[static_cast<size_t>(a)] >
                                influence[static_cast<size_t>(b)];
                       });
      if (neighbors.size() > static_cast<size_t>(top_k)) {
        neighbors.resize(static_cast<size_t>(top_k));
      }
      neighbors.push_back(static_cast<int>(u));
      members[u] = std::move(neighbors);
    }
  });
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    AHNTP_CHECK_OK(hg.AddEdge(std::move(members[u])));
  }
  CountEdgesBuilt(hg);
  return hg;
}

Hypergraph BuildSocialInfluenceHypergroup(
    const graph::Digraph& graph, const SocialInfluenceOptions& options) {
  std::vector<double> influence;
  if (options.use_motif_pagerank) {
    influence = graph::MotifPageRank(graph.Adjacency(), options.mpr).scores;
  } else {
    influence = graph::PageRank(graph.Adjacency(), options.mpr.pagerank);
  }
  return BuildSocialInfluenceHypergroup(graph, influence, options.top_k);
}

Hypergraph BuildAttributeHypergroup(
    size_t num_users, const std::vector<std::vector<int>>& attributes,
    size_t min_size) {
  trace::TraceSpan span("hypergraph.build.attribute");
  Hypergraph hg(num_users);
  // Group each attribute column in parallel (columns are independent), then
  // insert edges serially in column order / ascending attribute value, the
  // same order the serial build produced.
  std::vector<std::map<int, std::vector<int>>> grouped(attributes.size());
  ParallelFor(0, attributes.size(), 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const auto& column = attributes[c];
      AHNTP_CHECK_EQ(column.size(), num_users)
          << "every attribute column must cover all users";
      for (size_t u = 0; u < num_users; ++u) {
        if (column[u] >= 0) {
          grouped[c][column[u]].push_back(static_cast<int>(u));
        }
      }
    }
  });
  for (auto& groups : grouped) {
    for (auto& [value, members] : groups) {
      if (members.size() >= min_size) {
        AHNTP_CHECK_OK(hg.AddEdge(std::move(members)));
      }
    }
  }
  CountEdgesBuilt(hg);
  return hg;
}

Hypergraph BuildPairwiseHypergroup(const graph::Digraph& graph) {
  trace::TraceSpan span("hypergraph.build.pairwise");
  Hypergraph hg(graph.num_nodes());
  std::set<std::pair<int, int>> seen;
  for (const graph::Edge& e : graph.edges()) {
    int lo = std::min(e.src, e.dst);
    int hi = std::max(e.src, e.dst);
    if (seen.insert({lo, hi}).second) {
      AHNTP_CHECK_OK(hg.AddEdge({lo, hi}));
    }
  }
  CountEdgesBuilt(hg);
  return hg;
}

Hypergraph BuildMultiHopHypergroup(const graph::Digraph& graph,
                                   const MultiHopOptions& options) {
  trace::TraceSpan span("hypergraph.build.multi_hop");
  AHNTP_CHECK_GE(options.num_hops, 1);
  Hypergraph hg(graph.num_nodes());
  for (int hop = 1; hop <= options.num_hops; ++hop) {
    // The BFS balls are independent per vertex; compute them in parallel
    // and append edges serially in vertex order (edge ids as in the serial
    // build).
    std::vector<std::vector<int>> per_vertex(graph.num_nodes());
    ParallelFor(0, graph.num_nodes(), kVertexGrain, [&](size_t u0, size_t u1) {
      for (size_t u = u0; u < u1; ++u) {
        // NeighborhoodBall returns BFS order, so the size cap keeps the
        // nearest neighbours.
        std::vector<int> members;
        members.push_back(static_cast<int>(u));
        std::vector<int> ball =
            graph.NeighborhoodBall(static_cast<int>(u), hop);
        for (int v : ball) {
          if (options.max_edge_size > 0 &&
              members.size() >= options.max_edge_size) {
            break;
          }
          members.push_back(v);
        }
        per_vertex[u] = std::move(members);
      }
    });
    for (size_t u = 0; u < graph.num_nodes(); ++u) {
      AHNTP_CHECK_OK(hg.AddEdge(std::move(per_vertex[u])));
    }
  }
  CountEdgesBuilt(hg);
  return hg;
}

}  // namespace ahntp::hypergraph
