#include "hypergraph/expansions.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/strings.h"

namespace ahntp::hypergraph {

tensor::CsrMatrix CliqueExpansion(const Hypergraph& hg) {
  // An edge of size k contributes k*(k-1) ordered pairs at a precomputed
  // offset, so the expansion parallelizes over edges while emitting the
  // exact serial triplet sequence.
  std::vector<size_t> offsets(hg.num_edges() + 1, 0);
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    const size_t k = hg.EdgeVertices(e).size();
    offsets[e + 1] = offsets[e] + k * (k - 1);
  }
  std::vector<tensor::Triplet> triplets(offsets.back());
  ParallelFor(0, hg.num_edges(), 256, [&](size_t e0, size_t e1) {
    for (size_t e = e0; e < e1; ++e) {
      const std::vector<int>& members = hg.EdgeVertices(e);
      float w = hg.EdgeWeight(e);
      size_t at = offsets[e];
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          triplets[at++] = {members[i], members[j], w};
          triplets[at++] = {members[j], members[i], w};
        }
      }
    }
  });
  return tensor::CsrMatrix::FromTriplets(hg.num_vertices(), hg.num_vertices(),
                                         std::move(triplets));
}

Result<graph::Digraph> StarExpansion(const Hypergraph& hg) {
  std::vector<graph::Edge> edges;
  edges.reserve(2 * hg.TotalIncidences());
  const int n = static_cast<int>(hg.num_vertices());
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    int edge_node = n + static_cast<int>(e);
    for (int v : hg.EdgeVertices(e)) {
      edges.push_back({v, edge_node});
      edges.push_back({edge_node, v});
    }
  }
  return graph::Digraph::FromEdges(hg.num_vertices() + hg.num_edges(), edges);
}

HypergraphStats ComputeHypergraphStats(const Hypergraph& hg) {
  HypergraphStats stats;
  stats.num_vertices = hg.num_vertices();
  stats.num_edges = hg.num_edges();
  stats.num_incidences = hg.TotalIncidences();
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    stats.max_edge_size = std::max(stats.max_edge_size, hg.EdgeDegree(e));
  }
  stats.mean_edge_size =
      hg.num_edges() == 0
          ? 0.0
          : static_cast<double>(stats.num_incidences) /
                static_cast<double>(hg.num_edges());
  std::vector<int> counts = hg.VertexEdgeCounts();
  for (int c : counts) {
    if (c == 0) ++stats.isolated_vertices;
    stats.max_vertex_degree =
        std::max(stats.max_vertex_degree, static_cast<size_t>(c));
  }
  stats.mean_vertex_degree =
      hg.num_vertices() == 0
          ? 0.0
          : static_cast<double>(stats.num_incidences) /
                static_cast<double>(hg.num_vertices());
  return stats;
}

std::string StatsToString(const HypergraphStats& stats) {
  return StrFormat(
      "n=%zu m=%zu incidences=%zu isolated=%zu edge_size(mean=%.2f max=%zu) "
      "vertex_degree(mean=%.2f max=%zu)",
      stats.num_vertices, stats.num_edges, stats.num_incidences,
      stats.isolated_vertices, stats.mean_edge_size, stats.max_edge_size,
      stats.mean_vertex_degree, stats.max_vertex_degree);
}

}  // namespace ahntp::hypergraph
