#include "hypergraph/regularizer.h"

#include <cmath>

#include "common/check.h"

namespace ahntp::hypergraph {

using autograd::Variable;
using tensor::CsrMatrix;
using tensor::Matrix;
using tensor::Triplet;

Variable HypergraphSmoothness(const Variable& f, const Hypergraph& hg) {
  AHNTP_CHECK_EQ(f.rows(), hg.num_vertices());
  const size_t n = hg.num_vertices();
  const size_t m = hg.num_edges();
  std::vector<float> dv = hg.VertexDegrees();

  // S = D_v^{-1/2} H as a constant sparse matrix (n x m).
  std::vector<Triplet> triplets;
  triplets.reserve(hg.TotalIncidences());
  for (size_t e = 0; e < m; ++e) {
    for (int v : hg.EdgeVertices(e)) {
      float d = dv[static_cast<size_t>(v)];
      if (d > 0.0f) {
        triplets.push_back({v, static_cast<int>(e),
                            1.0f / std::sqrt(d)});
      }
    }
  }
  CsrMatrix s = CsrMatrix::FromTriplets(n, m, std::move(triplets));

  // Y = S^T f (m x d); per-edge scale matrix sqrt(w_e / delta_e) broadcast
  // across the feature dimension.
  Variable y = autograd::SpMMTransposedConst(s, f);
  Matrix edge_scale(m, f.cols());
  for (size_t e = 0; e < m; ++e) {
    float delta = static_cast<float>(hg.EdgeDegree(e));
    float scale = delta > 0.0f ? std::sqrt(hg.EdgeWeight(e) / delta) : 0.0f;
    float* row = edge_scale.RowPtr(e);
    for (size_t c = 0; c < f.cols(); ++c) row[c] = scale;
  }
  Variable scaled = autograd::MulConst(y, edge_scale);
  Variable quadratic = autograd::ReduceSum(autograd::Mul(scaled, scaled));

  // ||f||_F^2 for the identity term of Eq. 24.
  Variable norm = autograd::ReduceSum(autograd::Mul(f, f));
  return autograd::Sub(norm, quadratic);
}

}  // namespace ahntp::hypergraph
