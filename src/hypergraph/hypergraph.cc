#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"

namespace ahntp::hypergraph {

using tensor::CsrMatrix;
using tensor::Triplet;

Status Hypergraph::AddEdge(std::vector<int> vertices, float weight) {
  if (vertices.empty()) {
    return Status::InvalidArgument("hyperedge must contain a vertex");
  }
  if (weight <= 0.0f) {
    return Status::InvalidArgument("hyperedge weight must be positive");
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  for (int v : vertices) {
    if (v < 0 || static_cast<size_t>(v) >= num_vertices_) {
      return Status::InvalidArgument(
          StrFormat("vertex %d out of range for %zu vertices", v,
                    num_vertices_));
    }
  }
  edges_.push_back(std::move(vertices));
  weights_.push_back(weight);
  return Status::Ok();
}

Result<Hypergraph> Hypergraph::FromEdges(
    size_t num_vertices, const std::vector<std::vector<int>>& edges,
    const std::vector<float>& weights) {
  if (!weights.empty() && weights.size() != edges.size()) {
    return Status::InvalidArgument("weights size must match edges size");
  }
  Hypergraph hg(num_vertices);
  for (size_t e = 0; e < edges.size(); ++e) {
    float w = weights.empty() ? 1.0f : weights[e];
    AHNTP_RETURN_IF_ERROR(hg.AddEdge(edges[e], w));
  }
  return hg;
}

const std::vector<int>& Hypergraph::EdgeVertices(size_t e) const {
  AHNTP_CHECK_LT(e, edges_.size());
  return edges_[e];
}

float Hypergraph::EdgeWeight(size_t e) const {
  AHNTP_CHECK_LT(e, weights_.size());
  return weights_[e];
}

size_t Hypergraph::TotalIncidences() const {
  size_t total = 0;
  for (const auto& edge : edges_) total += edge.size();
  return total;
}

CsrMatrix Hypergraph::Incidence() const {
  std::vector<Triplet> triplets;
  triplets.reserve(TotalIncidences());
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (int v : edges_[e]) {
      triplets.push_back({v, static_cast<int>(e), 1.0f});
    }
  }
  return CsrMatrix::FromTriplets(num_vertices_, edges_.size(),
                                 std::move(triplets));
}

std::vector<float> Hypergraph::VertexDegrees() const {
  std::vector<float> degrees(num_vertices_, 0.0f);
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (int v : edges_[e]) degrees[static_cast<size_t>(v)] += weights_[e];
  }
  return degrees;
}

std::vector<float> Hypergraph::EdgeDegrees() const {
  std::vector<float> degrees(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) {
    degrees[e] = static_cast<float>(edges_[e].size());
  }
  return degrees;
}

std::vector<int> Hypergraph::VertexEdgeCounts() const {
  std::vector<int> counts(num_vertices_, 0);
  for (const auto& edge : edges_) {
    for (int v : edge) ++counts[static_cast<size_t>(v)];
  }
  return counts;
}

CsrMatrix Hypergraph::NormalizedAdjacency() const {
  // A = Dv^{-1/2} H (W De^{-1}) H^T Dv^{-1/2}, assembled as S * S_w^T where
  // S = Dv^{-1/2} H and S_w = Dv^{-1/2} H (W De^{-1}).
  std::vector<float> dv = VertexDegrees();
  std::vector<float> inv_sqrt_dv(num_vertices_, 0.0f);
  for (size_t v = 0; v < num_vertices_; ++v) {
    if (dv[v] > 0.0f) inv_sqrt_dv[v] = 1.0f / std::sqrt(dv[v]);
  }
  // Each edge's incidence entries land at a precomputed offset, so the fill
  // is parallel over edges yet produces the serial triplet order.
  std::vector<size_t> offsets(edges_.size() + 1, 0);
  for (size_t e = 0; e < edges_.size(); ++e) {
    offsets[e + 1] = offsets[e] + edges_[e].size();
  }
  std::vector<Triplet> left(offsets.back());   // Dv^{-1/2} H
  std::vector<Triplet> right(offsets.back());  // Dv^{-1/2} H W De^{-1},
                                               // transposed below
  ParallelFor(0, edges_.size(), 512, [&](size_t e0, size_t e1) {
    for (size_t e = e0; e < e1; ++e) {
      float edge_scale = weights_[e] / static_cast<float>(
                                           std::max<size_t>(edges_[e].size(), 1));
      size_t at = offsets[e];
      for (int v : edges_[e]) {
        float s = inv_sqrt_dv[static_cast<size_t>(v)];
        left[at] = {v, static_cast<int>(e), s};
        right[at] = {static_cast<int>(e), v, s * edge_scale};
        ++at;
      }
    }
  });
  CsrMatrix l = CsrMatrix::FromTriplets(num_vertices_, edges_.size(),
                                        std::move(left));
  CsrMatrix r = CsrMatrix::FromTriplets(edges_.size(), num_vertices_,
                                        std::move(right));
  return tensor::SpGemm(l, r);
}

CsrMatrix Hypergraph::Laplacian() const {
  return tensor::SparseSub(CsrMatrix::Identity(num_vertices_),
                           NormalizedAdjacency());
}

Hypergraph::IncidencePairs Hypergraph::Pairs() const {
  IncidencePairs pairs;
  pairs.vertex.reserve(TotalIncidences());
  pairs.edge.reserve(TotalIncidences());
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (int v : edges_[e]) {
      pairs.vertex.push_back(v);
      pairs.edge.push_back(static_cast<int>(e));
    }
  }
  return pairs;
}

Hypergraph Hypergraph::Concat(const Hypergraph& a, const Hypergraph& b) {
  AHNTP_CHECK_EQ(a.num_vertices(), b.num_vertices())
      << "hypergroup concatenation requires a shared vertex set";
  Hypergraph out(a.num_vertices());
  out.edges_ = a.edges_;
  out.weights_ = a.weights_;
  out.edges_.insert(out.edges_.end(), b.edges_.begin(), b.edges_.end());
  out.weights_.insert(out.weights_.end(), b.weights_.begin(),
                      b.weights_.end());
  return out;
}

Status Hypergraph::Validate() const {
  if (edges_.size() != weights_.size()) {
    return Status::Internal("edge/weight size mismatch");
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].empty()) {
      return Status::Corruption(StrFormat("hyperedge %zu is empty", e));
    }
    if (weights_[e] <= 0.0f) {
      return Status::Corruption(
          StrFormat("hyperedge %zu has non-positive weight", e));
    }
    int prev = -1;
    for (int v : edges_[e]) {
      if (v < 0 || static_cast<size_t>(v) >= num_vertices_) {
        return Status::Corruption(
            StrFormat("hyperedge %zu has out-of-range vertex %d", e, v));
      }
      if (v <= prev) {
        return Status::Corruption(
            StrFormat("hyperedge %zu is not sorted/unique", e));
      }
      prev = v;
    }
  }
  return Status::Ok();
}

std::string Hypergraph::DebugString() const {
  return StrFormat("Hypergraph n=%zu m=%zu incidences=%zu", num_vertices_,
                   edges_.size(), TotalIncidences());
}

}  // namespace ahntp::hypergraph
