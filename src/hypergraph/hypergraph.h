#ifndef AHNTP_HYPERGRAPH_HYPERGRAPH_H_
#define AHNTP_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/csr.h"

namespace ahntp::hypergraph {

/// A weighted hypergraph G = (V, E, W) over vertices [0, n): each hyperedge
/// links an arbitrary vertex subset (Section III-A of the paper). Incidence
/// and degree structures are derived on demand.
class Hypergraph {
 public:
  /// Empty hypergraph over `num_vertices` vertices.
  explicit Hypergraph(size_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  /// Adds a hyperedge over `vertices` (deduplicated, sorted). Returns
  /// InvalidArgument for empty edges or out-of-range vertices.
  Status AddEdge(std::vector<int> vertices, float weight = 1.0f);

  /// Builds from explicit edge lists; fails like AddEdge on bad input.
  static Result<Hypergraph> FromEdges(
      size_t num_vertices, const std::vector<std::vector<int>>& edges,
      const std::vector<float>& weights = {});

  size_t num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Sorted, deduplicated vertex list of hyperedge e.
  const std::vector<int>& EdgeVertices(size_t e) const;
  float EdgeWeight(size_t e) const;

  /// Hyperedge degree delta(e) = |e|.
  size_t EdgeDegree(size_t e) const { return EdgeVertices(e).size(); }

  /// Total stored incidences (sum of edge sizes).
  size_t TotalIncidences() const;

  /// The incidence matrix H (num_vertices x num_edges), binary.
  tensor::CsrMatrix Incidence() const;

  /// Weighted vertex degrees d(v) = sum_e w_e H(v, e).
  std::vector<float> VertexDegrees() const;

  /// Edge degrees delta(e) = |e| as floats.
  std::vector<float> EdgeDegrees() const;

  /// Number of hyperedges containing vertex v.
  std::vector<int> VertexEdgeCounts() const;

  /// Spectral normalized adjacency
  ///   A = D_v^{-1/2} H W D_e^{-1} H^T D_v^{-1/2}
  /// (the propagation operator of HGNN/HGNN+ and the paper's Eq. 24 inner
  /// term). Isolated vertices yield zero rows. Note: materializes vertex
  /// pairs sharing a hyperedge; intended for small/medium hypergraphs.
  tensor::CsrMatrix NormalizedAdjacency() const;

  /// Normalized hypergraph Laplacian L = I - NormalizedAdjacency() (Eq. 24).
  tensor::CsrMatrix Laplacian() const;

  /// Flattened (vertex, edge) incidence pairs, edge-major order. These are
  /// the segments used by the adaptive convolution's attention.
  struct IncidencePairs {
    std::vector<int> vertex;  // pair p touches vertex[p]
    std::vector<int> edge;    // ... within hyperedge edge[p]
  };
  IncidencePairs Pairs() const;

  /// Hypergroup concatenation H_a || H_b of Eqs. (6)-(9): the union of edge
  /// sets over a shared vertex set.
  static Hypergraph Concat(const Hypergraph& a, const Hypergraph& b);

  /// Structural invariants: nonempty in-range edges, positive weights.
  Status Validate() const;

  /// "Hypergraph n=... m=... incidences=..." summary.
  std::string DebugString() const;

 private:
  size_t num_vertices_;
  std::vector<std::vector<int>> edges_;
  std::vector<float> weights_;
};

}  // namespace ahntp::hypergraph

#endif  // AHNTP_HYPERGRAPH_HYPERGRAPH_H_
