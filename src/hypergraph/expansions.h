#ifndef AHNTP_HYPERGRAPH_EXPANSIONS_H_
#define AHNTP_HYPERGRAPH_EXPANSIONS_H_

#include <string>

#include "graph/digraph.h"
#include "hypergraph/hypergraph.h"

namespace ahntp::hypergraph {

/// Clique expansion: the weighted vertex-vertex graph where W(u, v) sums
/// w_e over hyperedges containing both u and v (u != v). This is the lossy
/// reduction the paper argues hypergraph methods avoid — exposed so that
/// the loss is measurable (see tests and the hypergraph_tour example).
tensor::CsrMatrix CliqueExpansion(const Hypergraph& hg);

/// Star expansion: the bipartite digraph over (vertices, hyperedge nodes)
/// with edges v -> (n + e) and (n + e) -> v for each incidence. Node ids
/// [0, n) are the original vertices; [n, n + m) are hyperedges.
Result<graph::Digraph> StarExpansion(const Hypergraph& hg);

/// Summary statistics of a hypergraph.
struct HypergraphStats {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  size_t num_incidences = 0;
  size_t isolated_vertices = 0;
  double mean_edge_size = 0.0;
  size_t max_edge_size = 0;
  double mean_vertex_degree = 0.0;  // unweighted: #edges per vertex
  size_t max_vertex_degree = 0;
};
HypergraphStats ComputeHypergraphStats(const Hypergraph& hg);

/// Human-readable one-line summary of the stats.
std::string StatsToString(const HypergraphStats& stats);

}  // namespace ahntp::hypergraph

#endif  // AHNTP_HYPERGRAPH_EXPANSIONS_H_
