#include "models/uncertainty.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"

namespace ahntp::models {

SeedEnsemble::SeedEnsemble(
    std::vector<std::shared_ptr<TrustPredictor>> members,
    EnsembleOptions options)
    : members_(std::move(members)), options_(options) {
  AHNTP_CHECK(!members_.empty()) << "SeedEnsemble needs at least one member";
  for (const auto& member : members_) {
    AHNTP_CHECK(member != nullptr) << "SeedEnsemble member is null";
  }
  AHNTP_CHECK_GT(options_.tau, 0.0) << "ensemble tau must be positive";
  AHNTP_CHECK_GE(options_.mc_dropout_samples, 0);
  if (options_.mc_dropout_samples > 0) {
    AHNTP_CHECK(options_.mc_dropout_rate > 0.0f &&
                options_.mc_dropout_rate < 1.0f)
        << "mc_dropout_rate must lie in (0, 1), got "
        << options_.mc_dropout_rate;
  }
}

SeedEnsemble::Scored SeedEnsemble::Score(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_CHECK(!pairs.empty());
  AHNTP_METRIC_COUNT("uncertainty.ensemble_batches", 1);
  const size_t n = pairs.size();

  // Vote matrix in fixed order: seed members first (member 0 = canonical),
  // then MC-dropout samples of member 0. The order is part of the
  // determinism contract — the stddev below is a serial double reduction
  // over it.
  std::vector<std::vector<float>> votes;
  votes.reserve(num_votes());
  for (const auto& member : members_) {
    votes.push_back(member->PredictProbabilities(pairs));
    AHNTP_CHECK_EQ(votes.back().size(), n);
  }
  for (int s = 0; s < options_.mc_dropout_samples; ++s) {
    votes.push_back(members_[0]->PredictProbabilitiesWithInputDropout(
        pairs, options_.mc_dropout_rate,
        options_.mc_seed + static_cast<uint64_t>(s)));
    AHNTP_CHECK_EQ(votes.back().size(), n);
  }

  Scored out;
  out.scores = votes[0];
  out.confidence.resize(n);
  const size_t v = votes.size();
  if (v == 1) {
    // A singleton ensemble cannot disagree with itself.
    std::fill(out.confidence.begin(), out.confidence.end(), 1.0f);
    return out;
  }
  const double inv_v = 1.0 / static_cast<double>(v);
  for (size_t i = 0; i < n; ++i) {
    double mean = 0.0;
    for (size_t k = 0; k < v; ++k) mean += double{votes[k][i]};
    mean *= inv_v;
    double var = 0.0;
    for (size_t k = 0; k < v; ++k) {
      const double d = double{votes[k][i]} - mean;
      var += d * d;
    }
    // Population variance: the votes are the whole ensemble, not a sample
    // from a larger one. max() guards the tiny negative round-off sqrt.
    const double stddev = std::sqrt(std::max(0.0, var * inv_v));
    out.confidence[i] =
        static_cast<float>(std::exp(-stddev / options_.tau));
  }
  return out;
}

}  // namespace ahntp::models
