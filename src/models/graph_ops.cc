#include "models/graph_ops.h"

#include <cmath>

namespace ahntp::models {

using tensor::CsrMatrix;
using tensor::Triplet;

CsrMatrix SymmetricNormalizedAdjacency(const graph::Digraph& graph) {
  const size_t n = graph.num_nodes();
  std::vector<Triplet> triplets;
  for (const graph::Edge& e : graph.edges()) {
    triplets.push_back({e.src, e.dst, 1.0f});
    triplets.push_back({e.dst, e.src, 1.0f});
  }
  for (size_t i = 0; i < n; ++i) {
    triplets.push_back({static_cast<int>(i), static_cast<int>(i), 1.0f});
  }
  CsrMatrix a = CsrMatrix::FromTriplets(n, n, std::move(triplets)).Binarized();
  std::vector<float> degree = a.RowSums();
  // Scale rows and columns by D^{-1/2}.
  std::vector<Triplet> scaled;
  scaled.reserve(a.nnz());
  for (size_t r = 0; r < n; ++r) {
    float dr = degree[r] > 0.0f ? 1.0f / std::sqrt(degree[r]) : 0.0f;
    for (int i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      size_t c = static_cast<size_t>(a.col_idx()[i]);
      float dc = degree[c] > 0.0f ? 1.0f / std::sqrt(degree[c]) : 0.0f;
      scaled.push_back({static_cast<int>(r), static_cast<int>(c),
                        a.values()[i] * dr * dc});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(scaled));
}

CsrMatrix DirectedNormalizedAdjacency(const graph::Digraph& graph,
                                      bool incoming) {
  const size_t n = graph.num_nodes();
  std::vector<Triplet> triplets;
  for (const graph::Edge& e : graph.edges()) {
    if (incoming) {
      triplets.push_back({e.dst, e.src, 1.0f});
    } else {
      triplets.push_back({e.src, e.dst, 1.0f});
    }
  }
  for (size_t i = 0; i < n; ++i) {
    triplets.push_back({static_cast<int>(i), static_cast<int>(i), 1.0f});
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets))
      .Binarized()
      .RowNormalized();
}

AttentionEdges BuildAttentionEdges(const graph::Digraph& graph) {
  AttentionEdges edges;
  const size_t n = graph.num_nodes();
  for (size_t u = 0; u < n; ++u) {
    edges.dst.push_back(static_cast<int>(u));  // self-loop
    edges.src.push_back(static_cast<int>(u));
    for (int v : graph.UndirectedNeighbors(static_cast<int>(u))) {
      edges.dst.push_back(static_cast<int>(u));
      edges.src.push_back(v);
    }
  }
  return edges;
}

}  // namespace ahntp::models
