#ifndef AHNTP_MODELS_TRUST_PREDICTOR_H_
#define AHNTP_MODELS_TRUST_PREDICTOR_H_

#include <memory>

#include "common/status.h"
#include "data/split.h"
#include "models/encoder.h"
#include "nn/mlp.h"

namespace ahntp::models {

class InferencePlan;
class ShardedInferencePlan;
struct ShardedPlanOptions;
enum class PlanPrecision;  // models/inference_plan.h

/// Configuration of the pairwise head shared by all models.
struct TrustPredictorConfig {
  /// Tower widths appended after the encoder output (Eqs. 17-18); the last
  /// width is the similarity space dimension.
  std::vector<size_t> tower_dims = {32};
  float dropout = 0.0f;
};

/// Encoder + pairwise deep network + cosine head (Eqs. 17-19).
///
/// Trustor and trustee pass through separate MLP towers (W_a / W_b in the
/// paper), then cosine similarity scores the pair. The paper reads the
/// cosine as a probability in [0, 1]; cosine lives in [-1, 1], so the
/// probability head maps p = (1 + cos) / 2 — a fixed monotone rescaling that
/// preserves the paper's ranking semantics (documented in DESIGN.md). The
/// raw cosine feeds the contrastive loss (Eq. 20).
class TrustPredictor : public nn::Module {
 public:
  TrustPredictor(std::shared_ptr<Encoder> encoder,
                 const TrustPredictorConfig& config, Rng* rng);
  ~TrustPredictor() override;

  /// Outputs for a batch of user pairs.
  struct PairOutput {
    autograd::Variable cosine;      // (batch x 1) in [-1, 1]
    autograd::Variable probability;  // (batch x 1) in [0, 1]
    autograd::Variable embeddings;   // (n x d) encoder output, shared tape
  };

  /// Encodes all users and scores the given pairs. Respects training().
  PairOutput Forward(const std::vector<data::TrustPair>& pairs);

  /// Inference helper: probabilities for pairs. Routes through the compiled
  /// InferencePlan (tape-free, cached embeddings, workspace arena); results
  /// are bit-identical to Forward() in eval mode at any thread count. Saves
  /// and restores the module training flag around the call.
  std::vector<float> PredictProbabilities(
      const std::vector<data::TrustPair>& pairs);

  /// PredictProbabilities with deterministic MC-dropout on the gathered
  /// embedding rows (InferencePlan::ScoreWithInputDropout) — one stochastic
  /// forward sample of the uncertainty ensemble (models/uncertainty.h).
  /// Masks are keyed on (seed, user, tower side, element), so a pair's
  /// perturbed score is independent of batch composition, thread count,
  /// and sharded-vs-monolithic plan. `rate` in (0, 1) (CHECK).
  std::vector<float> PredictProbabilitiesWithInputDropout(
      const std::vector<data::TrustPair>& pairs, float rate, uint64_t seed);

  /// Builds the inference plan eagerly (encodes all users) so the first
  /// PredictProbabilities call is cheap. serve::ModelBackend calls this
  /// before publishing a predictor. When sharded inference is enabled this
  /// warms the sharded plan (encode + spill) instead.
  void WarmInferencePlan();

  /// Switches PredictProbabilities to the shard-aware out-of-core plan
  /// (models/inference_plan.h): per-shard embedding blocks on disk behind a
  /// bounded resident-set LRU, bit-identical scores to the monolithic plan.
  /// Takes effect at the next prediction; the plan spills lazily. Invalid
  /// options (num_shards < 1, empty spill_dir) abort via CHECK.
  void EnableShardedInference(const ShardedPlanOptions& options);

  /// Reverts PredictProbabilities to the monolithic in-RAM plan.
  void DisableShardedInference();

  /// Selects the embedding-table precision for whichever inference plan
  /// serves PredictProbabilities (monolithic and sharded alike, including
  /// plans created later). kInt8 stores the table quantized (4x smaller,
  /// tolerance-equal scores); kFloat32 is the bit-exact default. A change
  /// invalidates existing plans.
  void SetInferencePrecision(models::PlanPrecision precision);
  models::PlanPrecision inference_precision() const { return precision_; }

  /// The sharded plan, or null when sharded inference is disabled.
  const ShardedInferencePlan* sharded_plan() const {
    return sharded_plan_.get();
  }

  /// Delta-invalidation (DESIGN.md §17): patches only the given users'
  /// embedding rows in whichever inference plans exist (monolithic and/or
  /// sharded) WITHOUT invalidating them — the clean rows of the cached
  /// tables keep serving. `users` ascending/deduplicated, `rows` their new
  /// (|users| x d) embeddings. Plans not yet created or not built are left
  /// alone; they encode the post-delta model from scratch on first use.
  Status RefreshPlanRows(const std::vector<int>& users,
                         const tensor::Matrix& rows);

  /// Drops the cached embeddings/plan in addition to the recursive module
  /// default. Called after parameter loads and restores.
  void InvalidateCaches() override;

  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

  Encoder& encoder() { return *encoder_; }
  const Encoder& encoder() const { return *encoder_; }
  const nn::Mlp& tower_src() const { return *tower_src_; }
  const nn::Mlp& tower_dst() const { return *tower_dst_; }
  /// The compiled plan (created lazily); for tests and diagnostics.
  const InferencePlan* inference_plan() const { return plan_.get(); }

 private:
  InferencePlan& Plan();

  std::shared_ptr<Encoder> encoder_;
  std::unique_ptr<nn::Mlp> tower_src_;
  std::unique_ptr<nn::Mlp> tower_dst_;
  std::unique_ptr<InferencePlan> plan_;
  std::unique_ptr<ShardedInferencePlan> sharded_plan_;
  PlanPrecision precision_ = PlanPrecision{};  // kFloat32
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_TRUST_PREDICTOR_H_
