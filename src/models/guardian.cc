#include "models/guardian.h"

#include "common/check.h"
#include "models/graph_ops.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::models {

Guardian::Guardian(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      out_op_(DirectedNormalizedAdjacency(*inputs.graph, /*incoming=*/false)),
      in_op_(DirectedNormalizedAdjacency(*inputs.graph, /*incoming=*/true)),
      out_dim_(inputs.hidden_dims.back()),
      dropout_(inputs.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr &&
              inputs.rng != nullptr);
  size_t in_dim = inputs.features->cols();
  for (size_t out : inputs.hidden_dims) {
    out_weights_.push_back(
        std::make_unique<nn::Linear>(in_dim, out, inputs.rng));
    in_weights_.push_back(std::make_unique<nn::Linear>(in_dim, out,
                                                       inputs.rng,
                                                       /*use_bias=*/false));
    in_dim = out;
  }
}

autograd::Variable Guardian::EncodeUsers() {
  autograd::Variable h = features_;
  for (size_t i = 0; i < out_weights_.size(); ++i) {
    autograd::Variable forward =
        out_weights_[i]->Forward(autograd::SpMMConst(out_op_, h));
    autograd::Variable backward =
        in_weights_[i]->Forward(autograd::SpMMConst(in_op_, h));
    h = autograd::Relu(autograd::Add(forward, backward));
    if (i + 1 < out_weights_.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

tensor::Matrix Guardian::InferUsers(tensor::Workspace* ws) {
  using tensor::Matrix;
  const Matrix* h = &features_.value();
  Matrix* out = nullptr;
  for (size_t i = 0; i < out_weights_.size(); ++i) {
    Matrix* prop_out = ws->Acquire(out_op_.rows(), h->cols());
    tensor::SpMMInto(prop_out, out_op_, *h);
    Matrix& forward = nn::InferLinear(*out_weights_[i], *prop_out, ws);
    Matrix* prop_in = ws->Acquire(in_op_.rows(), h->cols());
    tensor::SpMMInto(prop_in, in_op_, *h);
    Matrix& backward = nn::InferLinear(*in_weights_[i], *prop_in, ws);
    tensor::AddInto(&forward, forward, backward);
    tensor::ReluInto(&forward, forward);
    out = &forward;
    h = out;
  }
  return *out;
}

std::vector<autograd::Variable> Guardian::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& layer : out_weights_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  for (const auto& layer : in_weights_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Module*> Guardian::Submodules() {
  std::vector<nn::Module*> subs;
  for (const auto& layer : out_weights_) subs.push_back(layer.get());
  for (const auto& layer : in_weights_) subs.push_back(layer.get());
  return subs;
}

}  // namespace ahntp::models
