#ifndef AHNTP_MODELS_MATRIX_FACTORIZATION_H_
#define AHNTP_MODELS_MATRIX_FACTORIZATION_H_

#include "models/encoder.h"

namespace ahntp::models {

/// Matrix-factorization trust embedding — the paper's "matrix-based"
/// related-work category (Section II-A.2), following Meo et al.: every user
/// carries two low-rank latent vectors, a trustor profile p_u (how the user
/// gives trust) and a trustee profile q_u (how the user receives it),
/// learned end-to-end from the observed trust pairs. The encoder emits
/// [P || Q]; the shared pairwise head scores pairs, so the comparison
/// protocol matches all other models. Pure ID embeddings — no features, no
/// structure operator — which is exactly the cold-start weakness the paper
/// ascribes to this category.
class MatrixFactorization : public Encoder {
 public:
  explicit MatrixFactorization(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return 2 * rank_; }
  std::string name() const override { return "MF"; }
  std::vector<autograd::Variable> Parameters() const override {
    return {trustor_, trustee_};
  }

 private:
  size_t rank_;
  autograd::Variable trustor_;  // P: n x rank
  autograd::Variable trustee_;  // Q: n x rank
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_MATRIX_FACTORIZATION_H_
