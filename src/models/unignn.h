#ifndef AHNTP_MODELS_UNIGNN_H_
#define AHNTP_MODELS_UNIGNN_H_

#include <memory>

#include "models/encoder.h"
#include "nn/init.h"
#include "nn/linear.h"

namespace ahntp::models {

/// Shared UniGNN plumbing: mean aggregation operators between vertices and
/// hyperedges, built once from the incidence structure.
struct UniOperators {
  tensor::CsrMatrix edge_mean;    // (m x n): D_e^{-1} H^T  — vertex -> edge
  tensor::CsrMatrix vertex_mean;  // (n x m): degree-normalized edge->vertex operator
  hypergraph::Hypergraph::IncidencePairs pairs;
  size_t num_vertices = 0;
  size_t num_edges = 0;
};
UniOperators BuildUniOperators(const hypergraph::Hypergraph& hg);

/// UniGCN baseline (Huang & Yang, IJCAI'21): per layer
///   h_e = mean_{v in e} x_v;  x_v' = ReLU(mean_{e ∋ v} h_e W).
class UniGcn : public Encoder {
 public:
  explicit UniGcn(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "UniGCN"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

 private:
  autograd::Variable features_;
  UniOperators ops_;
  std::vector<std::unique_ptr<nn::Linear>> layers_;
  size_t out_dim_;
  float dropout_;
  Rng* rng_;
};

/// UniGAT baseline: UniGCN's aggregation with attention over the
/// (vertex, hyperedge) incidence pairs replacing the plain vertex-side mean.
class UniGat : public Encoder {
 public:
  explicit UniGat(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "UniGAT"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

 private:
  autograd::Variable features_;
  UniOperators ops_;
  std::vector<std::unique_ptr<nn::Linear>> transforms_;
  std::vector<autograd::Variable> attn_vertex_;  // per layer, d x 1
  std::vector<autograd::Variable> attn_edge_;    // per layer, d x 1
  size_t out_dim_;
  float dropout_;
  float leaky_slope_ = 0.2f;
  Rng* rng_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_UNIGNN_H_
