#ifndef AHNTP_MODELS_GUARDIAN_H_
#define AHNTP_MODELS_GUARDIAN_H_

#include <memory>

#include "models/encoder.h"
#include "nn/linear.h"

namespace ahntp::models {

/// Guardian baseline (Lin et al., INFOCOM'20): GCN layers that model trust
/// propagation along edge direction and trust aggregation against it. Each
/// layer combines an outgoing-normalized and an incoming-normalized
/// propagation with separate weights:
///   H' = ReLU(D_out^{-1} A H W_out + D_in^{-1} A^T H W_in).
class Guardian : public Encoder {
 public:
  explicit Guardian(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "Guardian"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

 private:
  autograd::Variable features_;
  tensor::CsrMatrix out_op_;
  tensor::CsrMatrix in_op_;
  std::vector<std::unique_ptr<nn::Linear>> out_weights_;
  std::vector<std::unique_ptr<nn::Linear>> in_weights_;
  size_t out_dim_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_GUARDIAN_H_
