#ifndef AHNTP_MODELS_ATNE_TRUST_H_
#define AHNTP_MODELS_ATNE_TRUST_H_

#include <memory>

#include "models/encoder.h"
#include "nn/mlp.h"

namespace ahntp::models {

/// AtNE-Trust baseline (Wang et al., ICDM'20): an attribute auto-encoder and
/// a structure embedding whose outputs a fusion layer combines. Pairwise
/// only — no high-order correlation, which is exactly why the paper expects
/// it to trail the graph/hypergraph methods.
///
/// Faithfulness notes (see DESIGN.md): the attribute branch is a proper
/// auto-encoder whose reconstruction error is exposed via AuxLoss(); the
/// structure branch embeds each user by propagating a trainable embedding
/// table one step over the (symmetric-normalized) adjacency, standing in for
/// the original's network-structure auto-encoder.
class AtneTrust : public Encoder {
 public:
  explicit AtneTrust(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "AtNE-Trust"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override {
    return {attr_encoder_.get(), attr_decoder_.get(), fusion_.get()};
  }

  bool HasAuxLoss() const override { return true; }
  autograd::Variable AuxLoss() const override { return last_reconstruction_; }

 private:
  autograd::Variable features_;
  tensor::CsrMatrix adjacency_op_;
  std::unique_ptr<nn::Mlp> attr_encoder_;
  std::unique_ptr<nn::Mlp> attr_decoder_;
  autograd::Variable structure_table_;  // n x d_struct trainable
  std::unique_ptr<nn::Linear> fusion_;
  size_t out_dim_;
  autograd::Variable last_reconstruction_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_ATNE_TRUST_H_
