#include "models/inference_plan.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/fileio.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "models/trust_predictor.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::models {

namespace {

/// The tape-equivalent scoring chain from gathered tower inputs. Shared by
/// InferencePlan and ShardedInferencePlan so their kernel sequences cannot
/// drift: identical inputs give bit-identical probabilities on both paths.
std::vector<float> RunScoringChain(const TrustPredictor& predictor,
                                   tensor::Workspace* ws,
                                   const tensor::Matrix& src_emb,
                                   const tensor::Matrix& dst_emb) {
  using tensor::Matrix;
  const size_t n = src_emb.rows();
  Matrix& t_src = nn::InferMlp(predictor.tower_src(), src_emb, ws);
  Matrix& t_dst = nn::InferMlp(predictor.tower_dst(), dst_emb, ws);

  // PairwiseCosine: row-L2-normalize both sides (epsilon matches the tape
  // default), then row-wise dot.
  Matrix* norms = ws->Acquire(n, 1);
  tensor::RowNormsInto(norms, t_src, 1e-12f);
  Matrix* n_src = ws->Acquire(n, t_src.cols());
  tensor::DivRowsByNormsInto(n_src, t_src, *norms);
  tensor::RowNormsInto(norms, t_dst, 1e-12f);
  Matrix* n_dst = ws->Acquire(n, t_dst.cols());
  tensor::DivRowsByNormsInto(n_dst, t_dst, *norms);
  Matrix* cosine = ws->Acquire(n, 1);
  tensor::RowwiseDotInto(cosine, *n_src, *n_dst);

  // p = (1 + cos) / 2 as the tape computes it: Scale then AddScalar, two
  // separately rounded kernel passes.
  Matrix* prob = ws->Acquire(n, 1);
  tensor::ScaleInto(prob, *cosine, 0.5f);
  tensor::AddScalarInto(prob, *prob, 0.5f);

  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = prob->At(i, 0);
  return out;
}

void RecordWorkspaceBytes(const tensor::Workspace& ws) {
  if (metrics::Enabled()) {
    static metrics::Gauge& ws_bytes =
        metrics::GetGauge("infer.workspace_bytes");
    ws_bytes.Set(static_cast<double>(ws.bytes()));
  }
}

}  // namespace

InferencePlan::InferencePlan(TrustPredictor* predictor)
    : predictor_(predictor) {
  AHNTP_CHECK(predictor_ != nullptr);
}

void InferencePlan::EnsureBuilt() {
  if (built_) {
    AHNTP_METRIC_COUNT("infer.cache_hits", 1);
    return;
  }
  AHNTP_METRIC_COUNT("infer.cache_misses", 1);
  AHNTP_METRIC_COUNT("infer.plan_builds", 1);
  // The all-user encode needs per-layer buffers far larger than the scoring
  // chain; a throwaway arena keeps that storage from lingering in ws_.
  tensor::Workspace encode_ws;
  embeddings_ = predictor_->encoder().InferUsers(&encode_ws);
  built_ = true;
}

std::vector<float> InferencePlan::Score(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_CHECK(!pairs.empty());
  EnsureBuilt();
  ws_.Reset();
  const size_t n = pairs.size();
  src_idx_.clear();
  dst_idx_.clear();
  src_idx_.reserve(n);
  dst_idx_.reserve(n);
  for (const data::TrustPair& p : pairs) {
    src_idx_.push_back(p.src);
    dst_idx_.push_back(p.dst);
  }

  using tensor::Matrix;
  Matrix* src_emb = ws_.Acquire(n, embeddings_.cols());
  tensor::GatherRowsInto(src_emb, embeddings_, src_idx_);
  Matrix* dst_emb = ws_.Acquire(n, embeddings_.cols());
  tensor::GatherRowsInto(dst_emb, embeddings_, dst_idx_);
  std::vector<float> out = RunScoringChain(*predictor_, &ws_, *src_emb, *dst_emb);
  ws_.Reset();
  RecordWorkspaceBytes(ws_);
  return out;
}

// ---------------------------------------------------------------------------
// ShardEmbeddingStore
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kBlockMagic = 0x42534841u;  // "AHSB" little-endian

void AppendU32(std::string* buf, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  buf->append(bytes, sizeof(v));
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

ShardEmbeddingStore::ShardEmbeddingStore(graph::UserSharding sharding,
                                         size_t dim, std::string spill_dir,
                                         int max_resident)
    : sharding_(std::move(sharding)),
      dim_(dim),
      spill_dir_(std::move(spill_dir)),
      max_resident_(max_resident) {
  AHNTP_CHECK_GE(max_resident_, 1) << "resident-shard cap must be positive";
  AHNTP_CHECK_GT(dim_, 0u);
  AHNTP_CHECK(!spill_dir_.empty()) << "shard store needs a spill directory";
}

std::string ShardEmbeddingStore::BlockPath(int shard) const {
  return spill_dir_ + "/shard_" + std::to_string(shard) + ".emb";
}

Status ShardEmbeddingStore::SpillShard(int shard, const tensor::Matrix& rows) {
  trace::TraceSpan span("infer.shard.spill");
  if (shard < 0 || shard >= sharding_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding_.num_shards()));
  }
  const std::vector<int>& owned = sharding_.UsersOf(shard);
  if (rows.rows() != owned.size() || rows.cols() != dim_) {
    return Status::InvalidArgument(StrFormat(
        "shard %d block must be %zux%zu, got %zux%zu", shard, owned.size(),
        dim_, rows.rows(), rows.cols()));
  }
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  if (ec) {
    return Status::IoError("cannot create spill directory " + spill_dir_ +
                           ": " + ec.message());
  }
  const size_t payload_bytes = rows.size() * sizeof(float);
  std::string buf;
  buf.reserve(16 + payload_bytes + 4);
  AppendU32(&buf, kBlockMagic);
  AppendU32(&buf, static_cast<uint32_t>(shard));
  AppendU32(&buf, static_cast<uint32_t>(rows.rows()));
  AppendU32(&buf, static_cast<uint32_t>(rows.cols()));
  buf.append(reinterpret_cast<const char*>(rows.data()), payload_bytes);
  AppendU32(&buf, Crc32(rows.data(), payload_bytes));
  AHNTP_RETURN_IF_ERROR(WriteFileAtomic(BlockPath(shard), buf));
  // The on-disk block is now the truth; a resident copy of the old
  // generation must not serve.
  auto it = resident_.find(shard);
  if (it != resident_.end()) {
    resident_.erase(it);
    lru_.remove(shard);
  }
  return Status::Ok();
}

Status ShardEmbeddingStore::SpillAll(const tensor::Matrix& embeddings) {
  if (embeddings.rows() != sharding_.num_users() || embeddings.cols() != dim_) {
    return Status::InvalidArgument(StrFormat(
        "embedding table must be %zux%zu, got %zux%zu", sharding_.num_users(),
        dim_, embeddings.rows(), embeddings.cols()));
  }
  for (int s = 0; s < sharding_.num_shards(); ++s) {
    const std::vector<int>& owned = sharding_.UsersOf(s);
    tensor::Matrix block(owned.size(), dim_);
    for (size_t r = 0; r < owned.size(); ++r) {
      std::memcpy(block.RowPtr(r),
                  embeddings.RowPtr(static_cast<size_t>(owned[r])),
                  dim_ * sizeof(float));
    }
    AHNTP_RETURN_IF_ERROR(SpillShard(s, block));
  }
  resident_.clear();
  lru_.clear();
  if (metrics::Enabled()) {
    metrics::GetGauge("infer.shard_resident_bytes").Set(0.0);
  }
  return Status::Ok();
}

void ShardEmbeddingStore::Touch(int shard) {
  lru_.remove(shard);
  lru_.push_front(shard);
}

size_t ShardEmbeddingStore::resident_bytes() const {
  size_t bytes = 0;
  for (const auto& [shard, block] : resident_) {
    bytes += block.size() * sizeof(float);
  }
  return bytes;
}

Result<const tensor::Matrix*> ShardEmbeddingStore::Block(int shard) {
  if (shard < 0 || shard >= sharding_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding_.num_shards()));
  }
  auto it = resident_.find(shard);
  if (it != resident_.end()) {
    AHNTP_METRIC_COUNT("infer.shard_hits", 1);
    Touch(shard);
    return &it->second;
  }

  trace::TraceSpan span("infer.shard.fault");
  AHNTP_METRIC_COUNT("infer.shard_faults", 1);
  std::string buf;
  AHNTP_RETURN_IF_ERROR(ReadFileToString(BlockPath(shard), &buf));
  const size_t rows = sharding_.UsersOf(shard).size();
  const size_t payload_bytes = rows * dim_ * sizeof(float);
  if (buf.size() != 16 + payload_bytes + 4 ||
      ReadU32(buf.data()) != kBlockMagic ||
      ReadU32(buf.data() + 4) != static_cast<uint32_t>(shard) ||
      ReadU32(buf.data() + 8) != static_cast<uint32_t>(rows) ||
      ReadU32(buf.data() + 12) != static_cast<uint32_t>(dim_)) {
    return Status::Corruption("bad shard block header: " + BlockPath(shard));
  }
  if (ReadU32(buf.data() + 16 + payload_bytes) !=
      Crc32(buf.data() + 16, payload_bytes)) {
    return Status::Corruption("shard block CRC mismatch: " + BlockPath(shard));
  }
  tensor::Matrix block(rows, dim_);
  std::memcpy(block.data(), buf.data() + 16, payload_bytes);

  while (static_cast<int>(resident_.size()) >= max_resident_) {
    int victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
    AHNTP_METRIC_COUNT("infer.shard_evictions", 1);
  }
  auto [inserted, ok] = resident_.emplace(shard, std::move(block));
  AHNTP_CHECK(ok);
  lru_.push_front(shard);
  if (metrics::Enabled()) {
    metrics::GetGauge("infer.shard_resident_bytes")
        .Set(static_cast<double>(resident_bytes()));
  }
  return &inserted->second;
}

Status ShardEmbeddingStore::CopyUserRow(int user, float* out) {
  const int shard = sharding_.ShardOf(user);
  auto block = Block(shard);
  AHNTP_RETURN_IF_ERROR(block.status());
  const std::vector<int>& owned = sharding_.UsersOf(shard);
  auto it = std::lower_bound(owned.begin(), owned.end(), user);
  AHNTP_CHECK(it != owned.end() && *it == user);
  const size_t row = static_cast<size_t>(it - owned.begin());
  std::memcpy(out, block.value()->RowPtr(row), dim_ * sizeof(float));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ShardedInferencePlan
// ---------------------------------------------------------------------------

ShardedInferencePlan::ShardedInferencePlan(TrustPredictor* predictor,
                                           ShardedPlanOptions options)
    : predictor_(predictor), options_(std::move(options)) {
  AHNTP_CHECK(predictor_ != nullptr);
  AHNTP_CHECK_GE(options_.num_shards, 1);
  AHNTP_CHECK(!options_.spill_dir.empty())
      << "sharded inference needs a spill directory";
  // A process-unique subdirectory per plan instance: a staged reload's
  // freshly spilled blocks must never be faulted in by the still-serving
  // plan of the previous generation.
  static std::atomic<uint64_t> plan_counter{0};
  plan_spill_dir_ =
      options_.spill_dir + "/plan_" +
      std::to_string(plan_counter.fetch_add(1, std::memory_order_relaxed));
}

Status ShardedInferencePlan::EnsureBuilt() {
  if (built_) {
    AHNTP_METRIC_COUNT("infer.cache_hits", 1);
    return Status::Ok();
  }
  trace::TraceSpan span("infer.shard.plan_build");
  AHNTP_METRIC_COUNT("infer.cache_misses", 1);
  AHNTP_METRIC_COUNT("infer.shard_plan_builds", 1);
  // Encode into a throwaway arena (as InferencePlan does), then spill the
  // table and let it die with this scope — steady state holds at most
  // max_resident_shards blocks.
  tensor::Matrix embeddings;
  {
    tensor::Workspace encode_ws;
    embeddings = predictor_->encoder().InferUsers(&encode_ws);
  }
  auto sharding = graph::UserSharding::Create(
      embeddings.rows(),
      {.num_shards = options_.num_shards, .mode = options_.mode});
  AHNTP_RETURN_IF_ERROR(sharding.status());
  const int max_resident = options_.max_resident_shards > 0
                               ? options_.max_resident_shards
                               : MaxResidentShards();
  store_ = std::make_unique<ShardEmbeddingStore>(
      std::move(sharding).value(), embeddings.cols(), plan_spill_dir_,
      max_resident);
  AHNTP_RETURN_IF_ERROR(store_->SpillAll(embeddings));
  built_ = true;
  return Status::Ok();
}

Result<std::vector<float>> ShardedInferencePlan::Score(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_CHECK(!pairs.empty());
  AHNTP_RETURN_IF_ERROR(EnsureBuilt());
  ws_.Reset();
  const size_t n = pairs.size();
  const size_t d = store_->dim();
  using tensor::Matrix;
  // Same arena discipline as InferencePlan::Score: the gathered inputs are
  // filled row-by-row from the resident blocks instead of GatherRowsInto,
  // which copies the identical float32 values.
  Matrix* src_emb = ws_.Acquire(n, d);
  Matrix* dst_emb = ws_.Acquire(n, d);
  for (size_t i = 0; i < n; ++i) {
    AHNTP_RETURN_IF_ERROR(store_->CopyUserRow(pairs[i].src, src_emb->RowPtr(i)));
    AHNTP_RETURN_IF_ERROR(store_->CopyUserRow(pairs[i].dst, dst_emb->RowPtr(i)));
  }
  std::vector<float> out = RunScoringChain(*predictor_, &ws_, *src_emb, *dst_emb);
  ws_.Reset();
  RecordWorkspaceBytes(ws_);
  return out;
}

}  // namespace ahntp::models
