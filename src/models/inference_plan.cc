#include "models/inference_plan.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/fileio.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "models/trust_predictor.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::models {

namespace {

/// The tape-equivalent scoring chain from gathered tower inputs. Shared by
/// InferencePlan and ShardedInferencePlan so their kernel sequences cannot
/// drift: identical inputs give bit-identical probabilities on both paths.
std::vector<float> RunScoringChain(const TrustPredictor& predictor,
                                   tensor::Workspace* ws,
                                   const tensor::Matrix& src_emb,
                                   const tensor::Matrix& dst_emb) {
  using tensor::Matrix;
  const size_t n = src_emb.rows();
  Matrix& t_src = nn::InferMlp(predictor.tower_src(), src_emb, ws);
  Matrix& t_dst = nn::InferMlp(predictor.tower_dst(), dst_emb, ws);

  // PairwiseCosine: row-L2-normalize both sides (epsilon matches the tape
  // default), then row-wise dot.
  Matrix* norms = ws->Acquire(n, 1);
  tensor::RowNormsInto(norms, t_src, 1e-12f);
  Matrix* n_src = ws->Acquire(n, t_src.cols());
  tensor::DivRowsByNormsInto(n_src, t_src, *norms);
  tensor::RowNormsInto(norms, t_dst, 1e-12f);
  Matrix* n_dst = ws->Acquire(n, t_dst.cols());
  tensor::DivRowsByNormsInto(n_dst, t_dst, *norms);
  Matrix* cosine = ws->Acquire(n, 1);
  tensor::RowwiseDotInto(cosine, *n_src, *n_dst);

  // p = (1 + cos) / 2 as the tape computes it: Scale then AddScalar, two
  // separately rounded kernel passes.
  Matrix* prob = ws->Acquire(n, 1);
  tensor::ScaleInto(prob, *cosine, 0.5f);
  tensor::AddScalarInto(prob, *prob, 0.5f);

  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = prob->At(i, 0);
  return out;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic inverted dropout over gathered embedding rows. The mask
/// for element j of user u on tower side `role` is a pure function of
/// (seed, u, role, j): batch position, duplicate occurrences of a user,
/// and shard layout all see the same mask, which is what makes the
/// MC-dropout scores identical across the monolithic and sharded plans.
void ApplyInputDropout(tensor::Matrix* emb, const std::vector<int>& users,
                       int role, float rate, uint64_t seed) {
  AHNTP_CHECK(rate > 0.0f && rate < 1.0f)
      << "dropout rate must lie in (0, 1), got " << rate;
  const float inv_keep = 1.0f / (1.0f - rate);
  const double rate_d = static_cast<double>(rate);
  for (size_t i = 0; i < emb->rows(); ++i) {
    const uint64_t user_key = SplitMix64(
        seed ^ (static_cast<uint64_t>(static_cast<uint32_t>(users[i])) * 2 +
                static_cast<uint64_t>(role)));
    float* row = emb->RowPtr(i);
    for (size_t j = 0; j < emb->cols(); ++j) {
      const uint64_t h = SplitMix64(user_key + j);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      row[j] = u < rate_d ? 0.0f : row[j] * inv_keep;
    }
  }
}

void RecordWorkspaceBytes(const tensor::Workspace& ws) {
  if (metrics::Enabled()) {
    static metrics::Gauge& ws_bytes =
        metrics::GetGauge("infer.workspace_bytes");
    ws_bytes.Set(static_cast<double>(ws.bytes()));
  }
}

}  // namespace

const char* PlanPrecisionName(PlanPrecision precision) {
  switch (precision) {
    case PlanPrecision::kFloat32:
      return "fp32";
    case PlanPrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

InferencePlan::InferencePlan(TrustPredictor* predictor)
    : predictor_(predictor) {
  AHNTP_CHECK(predictor_ != nullptr);
}

void InferencePlan::EnsureBuilt() {
  if (built_) {
    AHNTP_METRIC_COUNT("infer.cache_hits", 1);
    return;
  }
  AHNTP_METRIC_COUNT("infer.cache_misses", 1);
  AHNTP_METRIC_COUNT("infer.plan_builds", 1);
  // The all-user encode needs per-layer buffers far larger than the scoring
  // chain; a throwaway arena keeps that storage from lingering in ws_.
  tensor::Workspace encode_ws;
  embeddings_ = predictor_->encoder().InferUsers(&encode_ws);
  if (precision_ == PlanPrecision::kInt8) {
    if (has_external_calib_) {
      Status st = tensor::ValidateCalibration(calib_, embeddings_.rows());
      AHNTP_CHECK(st.ok()) << st.ToString();
    } else {
      // Self-calibration over the encoder's own activations (the embedding
      // table is exactly what flows into the scoring towers).
      auto calib = tensor::CalibrateRowAbsmax(embeddings_);
      AHNTP_CHECK(calib.ok())
          << "int8 calibration failed: " << calib.status().ToString();
      calib_ = std::move(calib).value();
    }
    qembeddings_ = tensor::QuantizedMatrix::Quantize(embeddings_, calib_);
    embeddings_ = tensor::Matrix();  // the fp32 table is dead weight now
    AHNTP_METRIC_COUNT("infer.quantized_builds", 1);
  } else {
    qembeddings_ = tensor::QuantizedMatrix();
  }
  built_ = true;
}

namespace {

/// Absmax of one fresh embedding row for self-calibrated int8 patching —
/// the per-row slice of CalibrateRowAbsmax, same finiteness contract.
Result<float> RowAbsmax(const float* row, size_t cols, int user) {
  float best = 0.0f;
  for (size_t c = 0; c < cols; ++c) {
    if (!std::isfinite(row[c])) {
      return Status::InvalidArgument(
          "non-finite embedding for user " + std::to_string(user) +
          " during int8 row refresh");
    }
    best = std::max(best, std::fabs(row[c]));
  }
  return best;
}

}  // namespace

Status InferencePlan::RefreshRows(const std::vector<int>& users,
                                  const tensor::Matrix& rows) {
  AHNTP_CHECK_EQ(users.size(), rows.rows());
  if (users.empty() || !built_) return Status::Ok();
  trace::TraceSpan span("infer.plan_refresh");
  const bool int8 = precision_ == PlanPrecision::kInt8;
  const size_t table_rows = int8 ? qembeddings_.rows() : embeddings_.rows();
  const size_t d = int8 ? qembeddings_.cols() : embeddings_.cols();
  AHNTP_CHECK_EQ(rows.cols(), d);
  for (size_t i = 0; i < users.size(); ++i) {
    const int u = users[i];
    AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < table_rows);
    if (i > 0) {
      AHNTP_CHECK_GT(u, users[i - 1]);
    }
  }
  for (size_t i = 0; i < users.size(); ++i) {
    const size_t u = static_cast<size_t>(users[i]);
    const float* src = rows.RowPtr(i);
    if (int8) {
      float absmax = calib_.absmax[u];
      if (!has_external_calib_) {
        auto fresh = RowAbsmax(src, d, users[i]);
        AHNTP_RETURN_IF_ERROR(fresh.status());
        absmax = fresh.value();
        calib_.absmax[u] = absmax;
      }
      qembeddings_.UpdateRow(u, src, absmax);
    } else {
      std::memcpy(embeddings_.RowPtr(u), src, d * sizeof(float));
    }
  }
  AHNTP_METRIC_COUNT("infer.row_refreshes", users.size());
  return Status::Ok();
}

void InferencePlan::SetPrecision(PlanPrecision precision) {
  if (precision_ == precision) return;
  precision_ = precision;
  Invalidate();
}

Status InferencePlan::SetCalibration(tensor::RowCalibration calib) {
  // Build first so the live table's row count is known for validation.
  EnsureBuilt();
  const size_t rows = precision_ == PlanPrecision::kInt8
                          ? qembeddings_.rows()
                          : embeddings_.rows();
  AHNTP_RETURN_IF_ERROR(tensor::ValidateCalibration(calib, rows));
  calib_ = std::move(calib);
  has_external_calib_ = true;
  Invalidate();  // recalibration requantizes at the next Score()
  return Status::Ok();
}

size_t InferencePlan::embedding_bytes() const {
  return precision_ == PlanPrecision::kInt8
             ? qembeddings_.bytes()
             : embeddings_.size() * sizeof(float);
}

std::vector<float> InferencePlan::Score(
    const std::vector<data::TrustPair>& pairs) {
  return ScoreImpl(pairs, -1.0f, 0);
}

std::vector<float> InferencePlan::ScoreWithInputDropout(
    const std::vector<data::TrustPair>& pairs, float rate, uint64_t seed) {
  AHNTP_CHECK(rate > 0.0f && rate < 1.0f)
      << "dropout rate must lie in (0, 1), got " << rate;
  return ScoreImpl(pairs, rate, seed);
}

std::vector<float> InferencePlan::ScoreImpl(
    const std::vector<data::TrustPair>& pairs, float dropout_rate,
    uint64_t dropout_seed) {
  AHNTP_CHECK(!pairs.empty());
  EnsureBuilt();
  ws_.Reset();
  const size_t n = pairs.size();
  src_idx_.clear();
  dst_idx_.clear();
  src_idx_.reserve(n);
  dst_idx_.reserve(n);
  for (const data::TrustPair& p : pairs) {
    src_idx_.push_back(p.src);
    dst_idx_.push_back(p.dst);
  }

  using tensor::Matrix;
  const size_t d = precision_ == PlanPrecision::kInt8 ? qembeddings_.cols()
                                                      : embeddings_.cols();
  Matrix* src_emb = ws_.Acquire(n, d);
  Matrix* dst_emb = ws_.Acquire(n, d);
  if (precision_ == PlanPrecision::kInt8) {
    qembeddings_.GatherDequantizeInto(src_emb, src_idx_);
    qembeddings_.GatherDequantizeInto(dst_emb, dst_idx_);
  } else {
    tensor::GatherRowsInto(src_emb, embeddings_, src_idx_);
    tensor::GatherRowsInto(dst_emb, embeddings_, dst_idx_);
  }
  if (dropout_rate > 0.0f) {
    ApplyInputDropout(src_emb, src_idx_, /*role=*/0, dropout_rate,
                      dropout_seed);
    ApplyInputDropout(dst_emb, dst_idx_, /*role=*/1, dropout_rate,
                      dropout_seed);
  }
  std::vector<float> out = RunScoringChain(*predictor_, &ws_, *src_emb, *dst_emb);
  ws_.Reset();
  RecordWorkspaceBytes(ws_);
  return out;
}

// ---------------------------------------------------------------------------
// ShardEmbeddingStore
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kBlockMagic = 0x42534841u;       // "AHSB" little-endian
constexpr uint32_t kQuantBlockMagic = 0x51534841u;  // "AHSQ" little-endian

void AppendU32(std::string* buf, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  buf->append(bytes, sizeof(v));
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

ShardEmbeddingStore::ShardEmbeddingStore(graph::UserSharding sharding,
                                         size_t dim, std::string spill_dir,
                                         int max_resident,
                                         PlanPrecision precision)
    : sharding_(std::move(sharding)),
      dim_(dim),
      spill_dir_(std::move(spill_dir)),
      max_resident_(max_resident),
      precision_(precision) {
  AHNTP_CHECK_GE(max_resident_, 1) << "resident-shard cap must be positive";
  AHNTP_CHECK_GT(dim_, 0u);
  AHNTP_CHECK(!spill_dir_.empty()) << "shard store needs a spill directory";
}

std::string ShardEmbeddingStore::BlockPath(int shard) const {
  return spill_dir_ + "/shard_" + std::to_string(shard) + ".emb";
}

Status ShardEmbeddingStore::SpillShard(int shard, const tensor::Matrix& rows) {
  trace::TraceSpan span("infer.shard.spill");
  AHNTP_CHECK(precision_ == PlanPrecision::kFloat32)
      << "float spill into an int8 store";
  if (shard < 0 || shard >= sharding_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding_.num_shards()));
  }
  const std::vector<int>& owned = sharding_.UsersOf(shard);
  if (rows.rows() != owned.size() || rows.cols() != dim_) {
    return Status::InvalidArgument(StrFormat(
        "shard %d block must be %zux%zu, got %zux%zu", shard, owned.size(),
        dim_, rows.rows(), rows.cols()));
  }
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  if (ec) {
    return Status::IoError("cannot create spill directory " + spill_dir_ +
                           ": " + ec.message());
  }
  const size_t payload_bytes = rows.size() * sizeof(float);
  std::string buf;
  buf.reserve(16 + payload_bytes + 4);
  AppendU32(&buf, kBlockMagic);
  AppendU32(&buf, static_cast<uint32_t>(shard));
  AppendU32(&buf, static_cast<uint32_t>(rows.rows()));
  AppendU32(&buf, static_cast<uint32_t>(rows.cols()));
  buf.append(reinterpret_cast<const char*>(rows.data()), payload_bytes);
  AppendU32(&buf, Crc32(rows.data(), payload_bytes));
  AHNTP_RETURN_IF_ERROR(WriteFileAtomic(BlockPath(shard), buf));
  // The on-disk block is now the truth; a resident copy of the old
  // generation must not serve.
  auto it = resident_.find(shard);
  if (it != resident_.end()) {
    resident_.erase(it);
    lru_.remove(shard);
  }
  return Status::Ok();
}

Status ShardEmbeddingStore::SpillAll(const tensor::Matrix& embeddings) {
  if (embeddings.rows() != sharding_.num_users() || embeddings.cols() != dim_) {
    return Status::InvalidArgument(StrFormat(
        "embedding table must be %zux%zu, got %zux%zu", sharding_.num_users(),
        dim_, embeddings.rows(), embeddings.cols()));
  }
  for (int s = 0; s < sharding_.num_shards(); ++s) {
    const std::vector<int>& owned = sharding_.UsersOf(s);
    tensor::Matrix block(owned.size(), dim_);
    for (size_t r = 0; r < owned.size(); ++r) {
      std::memcpy(block.RowPtr(r),
                  embeddings.RowPtr(static_cast<size_t>(owned[r])),
                  dim_ * sizeof(float));
    }
    AHNTP_RETURN_IF_ERROR(SpillShard(s, block));
  }
  resident_.clear();
  lru_.clear();
  if (metrics::Enabled()) {
    metrics::GetGauge("infer.shard_resident_bytes").Set(0.0);
  }
  return Status::Ok();
}

Status ShardEmbeddingStore::SpillQuantShard(int shard,
                                            const tensor::QuantizedMatrix& rows) {
  trace::TraceSpan span("infer.shard.spill");
  AHNTP_CHECK(precision_ == PlanPrecision::kInt8)
      << "int8 spill into a float store";
  if (shard < 0 || shard >= sharding_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding_.num_shards()));
  }
  const std::vector<int>& owned = sharding_.UsersOf(shard);
  if (rows.rows() != owned.size() || rows.cols() != dim_) {
    return Status::InvalidArgument(StrFormat(
        "shard %d block must be %zux%zu, got %zux%zu", shard, owned.size(),
        dim_, rows.rows(), rows.cols()));
  }
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  if (ec) {
    return Status::IoError("cannot create spill directory " + spill_dir_ +
                           ": " + ec.message());
  }
  // Layout: header | scales (rows x f32) | payload (rows x cols x i8) | CRC
  // over scales + payload, so a flipped scale bit is caught exactly like a
  // flipped payload bit.
  const size_t scales_bytes = rows.rows() * sizeof(float);
  const size_t payload_bytes = rows.rows() * rows.cols() * sizeof(int8_t);
  std::string buf;
  buf.reserve(16 + scales_bytes + payload_bytes + 4);
  AppendU32(&buf, kQuantBlockMagic);
  AppendU32(&buf, static_cast<uint32_t>(shard));
  AppendU32(&buf, static_cast<uint32_t>(rows.rows()));
  AppendU32(&buf, static_cast<uint32_t>(rows.cols()));
  buf.append(reinterpret_cast<const char*>(rows.scales().data()),
             scales_bytes);
  buf.append(reinterpret_cast<const char*>(rows.data()), payload_bytes);
  AppendU32(&buf, Crc32(buf.data() + 16, scales_bytes + payload_bytes));
  AHNTP_RETURN_IF_ERROR(WriteFileAtomic(BlockPath(shard), buf));
  auto it = qresident_.find(shard);
  if (it != qresident_.end()) {
    qresident_.erase(it);
    lru_.remove(shard);
  }
  return Status::Ok();
}

Status ShardEmbeddingStore::SpillAllQuantized(
    const tensor::Matrix& embeddings, const tensor::RowCalibration& calib) {
  if (embeddings.rows() != sharding_.num_users() || embeddings.cols() != dim_) {
    return Status::InvalidArgument(StrFormat(
        "embedding table must be %zux%zu, got %zux%zu", sharding_.num_users(),
        dim_, embeddings.rows(), embeddings.cols()));
  }
  AHNTP_RETURN_IF_ERROR(
      tensor::ValidateCalibration(calib, embeddings.rows()));
  for (int s = 0; s < sharding_.num_shards(); ++s) {
    const std::vector<int>& owned = sharding_.UsersOf(s);
    tensor::Matrix block(owned.size(), dim_);
    tensor::RowCalibration block_calib;
    block_calib.absmax.resize(owned.size());
    for (size_t r = 0; r < owned.size(); ++r) {
      std::memcpy(block.RowPtr(r),
                  embeddings.RowPtr(static_cast<size_t>(owned[r])),
                  dim_ * sizeof(float));
      block_calib.absmax[r] = calib.absmax[static_cast<size_t>(owned[r])];
    }
    AHNTP_RETURN_IF_ERROR(SpillQuantShard(
        s, tensor::QuantizedMatrix::Quantize(block, block_calib)));
  }
  qresident_.clear();
  lru_.clear();
  if (metrics::Enabled()) {
    metrics::GetGauge("infer.shard_resident_bytes").Set(0.0);
  }
  return Status::Ok();
}

void ShardEmbeddingStore::Touch(int shard) {
  lru_.remove(shard);
  lru_.push_front(shard);
}

void ShardEmbeddingStore::EvictPastCap() {
  while (num_resident() >= max_resident_) {
    int victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
    qresident_.erase(victim);
    AHNTP_METRIC_COUNT("infer.shard_evictions", 1);
  }
}

size_t ShardEmbeddingStore::resident_bytes() const {
  size_t bytes = 0;
  for (const auto& [shard, block] : resident_) {
    bytes += block.size() * sizeof(float);
  }
  for (const auto& [shard, block] : qresident_) {
    bytes += block.bytes();
  }
  return bytes;
}

Result<const tensor::Matrix*> ShardEmbeddingStore::Block(int shard) {
  AHNTP_CHECK(precision_ == PlanPrecision::kFloat32)
      << "Block() on an int8 store; use QuantBlock()";
  if (shard < 0 || shard >= sharding_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding_.num_shards()));
  }
  auto it = resident_.find(shard);
  if (it != resident_.end()) {
    AHNTP_METRIC_COUNT("infer.shard_hits", 1);
    Touch(shard);
    return &it->second;
  }

  trace::TraceSpan span("infer.shard.fault");
  AHNTP_METRIC_COUNT("infer.shard_faults", 1);
  std::string buf;
  AHNTP_RETURN_IF_ERROR(ReadFileToString(BlockPath(shard), &buf));
  const size_t rows = sharding_.UsersOf(shard).size();
  const size_t payload_bytes = rows * dim_ * sizeof(float);
  if (buf.size() != 16 + payload_bytes + 4 ||
      ReadU32(buf.data()) != kBlockMagic ||
      ReadU32(buf.data() + 4) != static_cast<uint32_t>(shard) ||
      ReadU32(buf.data() + 8) != static_cast<uint32_t>(rows) ||
      ReadU32(buf.data() + 12) != static_cast<uint32_t>(dim_)) {
    return Status::Corruption("bad shard block header: " + BlockPath(shard));
  }
  if (ReadU32(buf.data() + 16 + payload_bytes) !=
      Crc32(buf.data() + 16, payload_bytes)) {
    return Status::Corruption("shard block CRC mismatch: " + BlockPath(shard));
  }
  tensor::Matrix block(rows, dim_);
  std::memcpy(block.data(), buf.data() + 16, payload_bytes);

  EvictPastCap();
  auto [inserted, ok] = resident_.emplace(shard, std::move(block));
  AHNTP_CHECK(ok);
  lru_.push_front(shard);
  if (metrics::Enabled()) {
    metrics::GetGauge("infer.shard_resident_bytes")
        .Set(static_cast<double>(resident_bytes()));
  }
  return &inserted->second;
}

Result<const tensor::QuantizedMatrix*> ShardEmbeddingStore::QuantBlock(
    int shard) {
  AHNTP_CHECK(precision_ == PlanPrecision::kInt8)
      << "QuantBlock() on a float store; use Block()";
  if (shard < 0 || shard >= sharding_.num_shards()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range for %d shards", shard,
                  sharding_.num_shards()));
  }
  auto it = qresident_.find(shard);
  if (it != qresident_.end()) {
    AHNTP_METRIC_COUNT("infer.shard_hits", 1);
    Touch(shard);
    return &it->second;
  }

  trace::TraceSpan span("infer.shard.fault");
  AHNTP_METRIC_COUNT("infer.shard_faults", 1);
  std::string buf;
  AHNTP_RETURN_IF_ERROR(ReadFileToString(BlockPath(shard), &buf));
  const size_t rows = sharding_.UsersOf(shard).size();
  const size_t scales_bytes = rows * sizeof(float);
  const size_t payload_bytes = rows * dim_ * sizeof(int8_t);
  if (buf.size() != 16 + scales_bytes + payload_bytes + 4 ||
      ReadU32(buf.data()) != kQuantBlockMagic ||
      ReadU32(buf.data() + 4) != static_cast<uint32_t>(shard) ||
      ReadU32(buf.data() + 8) != static_cast<uint32_t>(rows) ||
      ReadU32(buf.data() + 12) != static_cast<uint32_t>(dim_)) {
    return Status::Corruption("bad quant block header: " + BlockPath(shard));
  }
  if (ReadU32(buf.data() + 16 + scales_bytes + payload_bytes) !=
      Crc32(buf.data() + 16, scales_bytes + payload_bytes)) {
    return Status::Corruption("quant block CRC mismatch: " +
                              BlockPath(shard));
  }
  std::vector<float> scales(rows);
  std::memcpy(scales.data(), buf.data() + 16, scales_bytes);
  std::vector<int8_t> data(rows * dim_);
  std::memcpy(data.data(), buf.data() + 16 + scales_bytes, payload_bytes);
  tensor::QuantizedMatrix block = tensor::QuantizedMatrix::FromParts(
      rows, dim_, std::move(data), std::move(scales));

  EvictPastCap();
  auto [inserted, ok] = qresident_.emplace(shard, std::move(block));
  AHNTP_CHECK(ok);
  lru_.push_front(shard);
  if (metrics::Enabled()) {
    metrics::GetGauge("infer.shard_resident_bytes")
        .Set(static_cast<double>(resident_bytes()));
  }
  return &inserted->second;
}

Status ShardEmbeddingStore::CopyUserRow(int user, float* out) {
  const int shard = sharding_.ShardOf(user);
  const std::vector<int>& owned = sharding_.UsersOf(shard);
  auto it = std::lower_bound(owned.begin(), owned.end(), user);
  AHNTP_CHECK(it != owned.end() && *it == user);
  const size_t row = static_cast<size_t>(it - owned.begin());
  if (precision_ == PlanPrecision::kInt8) {
    auto block = QuantBlock(shard);
    AHNTP_RETURN_IF_ERROR(block.status());
    // Same q * scale product a monolithic int8 plan computes, so the
    // sharded and monolithic int8 paths stay bitwise-identical.
    block.value()->DequantizeRowInto(row, out);
    return Status::Ok();
  }
  auto block = Block(shard);
  AHNTP_RETURN_IF_ERROR(block.status());
  std::memcpy(out, block.value()->RowPtr(row), dim_ * sizeof(float));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ShardedInferencePlan
// ---------------------------------------------------------------------------

ShardedInferencePlan::ShardedInferencePlan(TrustPredictor* predictor,
                                           ShardedPlanOptions options)
    : predictor_(predictor), options_(std::move(options)) {
  AHNTP_CHECK(predictor_ != nullptr);
  AHNTP_CHECK_GE(options_.num_shards, 1);
  AHNTP_CHECK(!options_.spill_dir.empty())
      << "sharded inference needs a spill directory";
  // A unique subdirectory per plan instance: a staged reload's freshly
  // spilled blocks must never be faulted in by the still-serving plan of
  // the previous generation. The pid keeps concurrent processes sharing a
  // spill_dir (parallel test runners) from colliding on plan_0.
  static std::atomic<uint64_t> plan_counter{0};
  plan_spill_dir_ =
      options_.spill_dir + "/plan_" + std::to_string(::getpid()) + "_" +
      std::to_string(plan_counter.fetch_add(1, std::memory_order_relaxed));
}

Status ShardedInferencePlan::EnsureBuilt() {
  if (built_) {
    AHNTP_METRIC_COUNT("infer.cache_hits", 1);
    return Status::Ok();
  }
  trace::TraceSpan span("infer.shard.plan_build");
  AHNTP_METRIC_COUNT("infer.cache_misses", 1);
  AHNTP_METRIC_COUNT("infer.shard_plan_builds", 1);
  // Encode into a throwaway arena (as InferencePlan does), then spill the
  // table and let it die with this scope — steady state holds at most
  // max_resident_shards blocks.
  tensor::Matrix embeddings;
  {
    tensor::Workspace encode_ws;
    embeddings = predictor_->encoder().InferUsers(&encode_ws);
  }
  auto sharding = graph::UserSharding::Create(
      embeddings.rows(),
      {.num_shards = options_.num_shards, .mode = options_.mode});
  AHNTP_RETURN_IF_ERROR(sharding.status());
  const int max_resident = options_.max_resident_shards > 0
                               ? options_.max_resident_shards
                               : MaxResidentShards();
  store_ = std::make_unique<ShardEmbeddingStore>(
      std::move(sharding).value(), embeddings.cols(), plan_spill_dir_,
      max_resident, options_.precision);
  if (options_.precision == PlanPrecision::kInt8) {
    if (has_external_calib_) {
      AHNTP_RETURN_IF_ERROR(
          tensor::ValidateCalibration(calib_, embeddings.rows()));
    } else {
      auto calib = tensor::CalibrateRowAbsmax(embeddings);
      AHNTP_RETURN_IF_ERROR(calib.status());
      calib_ = std::move(calib).value();
    }
    AHNTP_RETURN_IF_ERROR(store_->SpillAllQuantized(embeddings, calib_));
    AHNTP_METRIC_COUNT("infer.quantized_builds", 1);
  } else {
    AHNTP_RETURN_IF_ERROR(store_->SpillAll(embeddings));
  }
  built_ = true;
  return Status::Ok();
}

Status ShardedInferencePlan::RefreshRows(const std::vector<int>& users,
                                         const tensor::Matrix& rows) {
  AHNTP_CHECK_EQ(users.size(), rows.rows());
  if (users.empty() || !built_) return Status::Ok();
  trace::TraceSpan span("infer.shard.plan_refresh");
  const graph::UserSharding& sharding = store_->sharding();
  AHNTP_CHECK_EQ(rows.cols(), store_->dim());
  std::map<int, std::vector<size_t>> by_shard;  // shard -> indices into rows
  for (size_t i = 0; i < users.size(); ++i) {
    const int u = users[i];
    AHNTP_CHECK(u >= 0 && static_cast<size_t>(u) < sharding.num_users());
    if (i > 0) {
      AHNTP_CHECK_GT(u, users[i - 1]);
    }
    by_shard[sharding.ShardOf(u)].push_back(i);
  }
  for (const auto& [shard, indices] : by_shard) {
    const std::vector<int>& owned = sharding.UsersOf(shard);
    if (options_.precision == PlanPrecision::kInt8) {
      auto block = store_->QuantBlock(shard);
      AHNTP_RETURN_IF_ERROR(block.status());
      tensor::QuantizedMatrix patched = *block.value();
      for (size_t i : indices) {
        const int u = users[i];
        auto it = std::lower_bound(owned.begin(), owned.end(), u);
        AHNTP_CHECK(it != owned.end() && *it == u);
        const float* src = rows.RowPtr(i);
        float absmax = calib_.absmax[static_cast<size_t>(u)];
        if (!has_external_calib_) {
          auto fresh = RowAbsmax(src, store_->dim(), u);
          AHNTP_RETURN_IF_ERROR(fresh.status());
          absmax = fresh.value();
          calib_.absmax[static_cast<size_t>(u)] = absmax;
        }
        patched.UpdateRow(static_cast<size_t>(it - owned.begin()), src,
                          absmax);
      }
      AHNTP_RETURN_IF_ERROR(store_->SpillQuantShard(shard, patched));
    } else {
      auto block = store_->Block(shard);
      AHNTP_RETURN_IF_ERROR(block.status());
      tensor::Matrix patched = *block.value();
      for (size_t i : indices) {
        auto it = std::lower_bound(owned.begin(), owned.end(), users[i]);
        AHNTP_CHECK(it != owned.end() && *it == users[i]);
        std::memcpy(patched.RowPtr(static_cast<size_t>(it - owned.begin())),
                    rows.RowPtr(i), store_->dim() * sizeof(float));
      }
      AHNTP_RETURN_IF_ERROR(store_->SpillShard(shard, patched));
    }
    AHNTP_METRIC_COUNT("infer.shard_refreshes", 1);
  }
  AHNTP_METRIC_COUNT("infer.row_refreshes", users.size());
  return Status::Ok();
}

void ShardedInferencePlan::SetPrecision(PlanPrecision precision) {
  if (options_.precision == precision) return;
  options_.precision = precision;
  Invalidate();
}

Status ShardedInferencePlan::SetCalibration(tensor::RowCalibration calib) {
  AHNTP_RETURN_IF_ERROR(EnsureBuilt());
  AHNTP_RETURN_IF_ERROR(tensor::ValidateCalibration(
      calib, static_cast<size_t>(store_->sharding().num_users())));
  calib_ = std::move(calib);
  has_external_calib_ = true;
  Invalidate();
  return Status::Ok();
}

Result<std::vector<float>> ShardedInferencePlan::Score(
    const std::vector<data::TrustPair>& pairs) {
  return ScoreImpl(pairs, -1.0f, 0);
}

Result<std::vector<float>> ShardedInferencePlan::ScoreWithInputDropout(
    const std::vector<data::TrustPair>& pairs, float rate, uint64_t seed) {
  AHNTP_CHECK(rate > 0.0f && rate < 1.0f)
      << "dropout rate must lie in (0, 1), got " << rate;
  return ScoreImpl(pairs, rate, seed);
}

Result<std::vector<float>> ShardedInferencePlan::ScoreImpl(
    const std::vector<data::TrustPair>& pairs, float dropout_rate,
    uint64_t dropout_seed) {
  AHNTP_CHECK(!pairs.empty());
  AHNTP_RETURN_IF_ERROR(EnsureBuilt());
  ws_.Reset();
  const size_t n = pairs.size();
  const size_t d = store_->dim();
  using tensor::Matrix;
  // Same arena discipline as InferencePlan::Score: the gathered inputs are
  // filled row-by-row from the resident blocks instead of GatherRowsInto,
  // which copies the identical float32 values.
  Matrix* src_emb = ws_.Acquire(n, d);
  Matrix* dst_emb = ws_.Acquire(n, d);
  std::vector<int> src_users(n), dst_users(n);
  for (size_t i = 0; i < n; ++i) {
    src_users[i] = pairs[i].src;
    dst_users[i] = pairs[i].dst;
    AHNTP_RETURN_IF_ERROR(store_->CopyUserRow(pairs[i].src, src_emb->RowPtr(i)));
    AHNTP_RETURN_IF_ERROR(store_->CopyUserRow(pairs[i].dst, dst_emb->RowPtr(i)));
  }
  if (dropout_rate > 0.0f) {
    ApplyInputDropout(src_emb, src_users, /*role=*/0, dropout_rate,
                      dropout_seed);
    ApplyInputDropout(dst_emb, dst_users, /*role=*/1, dropout_rate,
                      dropout_seed);
  }
  std::vector<float> out = RunScoringChain(*predictor_, &ws_, *src_emb, *dst_emb);
  ws_.Reset();
  RecordWorkspaceBytes(ws_);
  return out;
}

}  // namespace ahntp::models
