#include "models/inference_plan.h"

#include "common/check.h"
#include "common/metrics.h"
#include "models/trust_predictor.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::models {

InferencePlan::InferencePlan(TrustPredictor* predictor)
    : predictor_(predictor) {
  AHNTP_CHECK(predictor_ != nullptr);
}

void InferencePlan::EnsureBuilt() {
  if (built_) {
    AHNTP_METRIC_COUNT("infer.cache_hits", 1);
    return;
  }
  AHNTP_METRIC_COUNT("infer.cache_misses", 1);
  AHNTP_METRIC_COUNT("infer.plan_builds", 1);
  // The all-user encode needs per-layer buffers far larger than the scoring
  // chain; a throwaway arena keeps that storage from lingering in ws_.
  tensor::Workspace encode_ws;
  embeddings_ = predictor_->encoder().InferUsers(&encode_ws);
  built_ = true;
}

std::vector<float> InferencePlan::Score(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_CHECK(!pairs.empty());
  EnsureBuilt();
  ws_.Reset();
  const size_t n = pairs.size();
  src_idx_.clear();
  dst_idx_.clear();
  src_idx_.reserve(n);
  dst_idx_.reserve(n);
  for (const data::TrustPair& p : pairs) {
    src_idx_.push_back(p.src);
    dst_idx_.push_back(p.dst);
  }

  using tensor::Matrix;
  Matrix* src_emb = ws_.Acquire(n, embeddings_.cols());
  tensor::GatherRowsInto(src_emb, embeddings_, src_idx_);
  Matrix* dst_emb = ws_.Acquire(n, embeddings_.cols());
  tensor::GatherRowsInto(dst_emb, embeddings_, dst_idx_);
  Matrix& t_src = nn::InferMlp(predictor_->tower_src(), *src_emb, &ws_);
  Matrix& t_dst = nn::InferMlp(predictor_->tower_dst(), *dst_emb, &ws_);

  // PairwiseCosine: row-L2-normalize both sides (epsilon matches the tape
  // default), then row-wise dot.
  Matrix* norms = ws_.Acquire(n, 1);
  tensor::RowNormsInto(norms, t_src, 1e-12f);
  Matrix* n_src = ws_.Acquire(n, t_src.cols());
  tensor::DivRowsByNormsInto(n_src, t_src, *norms);
  tensor::RowNormsInto(norms, t_dst, 1e-12f);
  Matrix* n_dst = ws_.Acquire(n, t_dst.cols());
  tensor::DivRowsByNormsInto(n_dst, t_dst, *norms);
  Matrix* cosine = ws_.Acquire(n, 1);
  tensor::RowwiseDotInto(cosine, *n_src, *n_dst);

  // p = (1 + cos) / 2 as the tape computes it: Scale then AddScalar, two
  // separately rounded kernel passes.
  Matrix* prob = ws_.Acquire(n, 1);
  tensor::ScaleInto(prob, *cosine, 0.5f);
  tensor::AddScalarInto(prob, *prob, 0.5f);

  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = prob->At(i, 0);
  ws_.Reset();
  if (metrics::Enabled()) {
    static metrics::Gauge& ws_bytes =
        metrics::GetGauge("infer.workspace_bytes");
    ws_bytes.Set(static_cast<double>(ws_.bytes()));
  }
  return out;
}

}  // namespace ahntp::models
