#include "models/matrix_factorization.h"

#include "common/check.h"
#include "nn/init.h"

namespace ahntp::models {

MatrixFactorization::MatrixFactorization(const ModelInputs& inputs)
    : rank_(inputs.hidden_dims.back()) {
  AHNTP_CHECK(inputs.graph != nullptr && inputs.rng != nullptr);
  const size_t n = inputs.graph->num_nodes();
  trustor_ = autograd::Parameter(nn::XavierUniform(n, rank_, inputs.rng));
  trustee_ = autograd::Parameter(nn::XavierUniform(n, rank_, inputs.rng));
}

autograd::Variable MatrixFactorization::EncodeUsers() {
  return autograd::ConcatCols({trustor_, trustee_});
}

tensor::Matrix MatrixFactorization::InferUsers(tensor::Workspace* ws) {
  tensor::Matrix* out =
      ws->Acquire(trustor_.rows(), trustor_.cols() + trustee_.cols());
  tensor::ConcatColsInto(out, {&trustor_.value(), &trustee_.value()});
  return *out;
}

}  // namespace ahntp::models
