#include "models/conv_layers.h"

#include "nn/infer.h"
#include "nn/init.h"
#include "tensor/kernels.h"

namespace ahntp::models {

using autograd::Variable;

SparseConvLayer::SparseConvLayer(tensor::CsrMatrix op, size_t in_features,
                                 size_t out_features, Rng* rng)
    : op_(std::move(op)), linear_(in_features, out_features, rng) {}

Variable SparseConvLayer::Forward(const Variable& x) const {
  return linear_.Forward(autograd::SpMMConst(op_, x));
}

tensor::Matrix& SparseConvLayer::Infer(const tensor::Matrix& x,
                                       tensor::Workspace* ws) const {
  tensor::Matrix* prop = ws->Acquire(op_.rows(), x.cols());
  tensor::SpMMInto(prop, op_, x);
  return nn::InferLinear(linear_, *prop, ws);
}

GatLayer::GatLayer(AttentionEdges edges, size_t num_nodes, size_t in_features,
                   size_t out_features, Rng* rng, float leaky_slope)
    : edges_(std::move(edges)),
      num_nodes_(num_nodes),
      transform_(in_features, out_features, rng, /*use_bias=*/false),
      attn_src_(autograd::Parameter(nn::XavierUniform(out_features, 1, rng))),
      attn_dst_(autograd::Parameter(nn::XavierUniform(out_features, 1, rng))),
      leaky_slope_(leaky_slope) {}

Variable GatLayer::Forward(const Variable& x) const {
  Variable h = transform_.Forward(x);  // n x out
  Variable h_src = autograd::GatherRows(h, edges_.src);
  Variable h_dst = autograd::GatherRows(h, edges_.dst);
  Variable score = autograd::LeakyRelu(
      autograd::Add(autograd::MatMul(h_src, attn_src_),
                    autograd::MatMul(h_dst, attn_dst_)),
      leaky_slope_);
  Variable alpha = autograd::SegmentSoftmax(score, edges_.dst, num_nodes_);
  Variable weighted = autograd::MulColBroadcast(h_src, alpha);
  return autograd::SegmentSum(weighted, edges_.dst, num_nodes_);
}

tensor::Matrix& GatLayer::Infer(const tensor::Matrix& x,
                                tensor::Workspace* ws) const {
  using tensor::Matrix;
  const size_t e = edges_.src.size();
  Matrix& h = nn::InferLinear(transform_, x, ws);
  Matrix* h_src = ws->Acquire(e, h.cols());
  tensor::GatherRowsInto(h_src, h, edges_.src);
  Matrix* h_dst = ws->Acquire(e, h.cols());
  tensor::GatherRowsInto(h_dst, h, edges_.dst);
  Matrix* score = ws->Acquire(e, 1);
  tensor::MatMulInto(score, *h_src, attn_src_.value());
  Matrix* score_dst = ws->Acquire(e, 1);
  tensor::MatMulInto(score_dst, *h_dst, attn_dst_.value());
  tensor::AddInto(score, *score, *score_dst);
  tensor::LeakyReluInto(score, *score, leaky_slope_);
  Matrix* alpha = ws->Acquire(e, 1);
  tensor::SegmentSoftmaxInto(alpha, *score, edges_.dst, num_nodes_);
  tensor::MulColBroadcastInto(h_src, *h_src, *alpha);
  Matrix* out = ws->Acquire(num_nodes_, h.cols());
  tensor::SegmentSumInto(out, *h_src, edges_.dst, num_nodes_);
  return *out;
}

std::vector<Variable> GatLayer::Parameters() const {
  std::vector<Variable> params = transform_.Parameters();
  params.push_back(attn_src_);
  params.push_back(attn_dst_);
  return params;
}

}  // namespace ahntp::models
