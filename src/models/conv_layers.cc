#include "models/conv_layers.h"

#include "nn/init.h"

namespace ahntp::models {

using autograd::Variable;

SparseConvLayer::SparseConvLayer(tensor::CsrMatrix op, size_t in_features,
                                 size_t out_features, Rng* rng)
    : op_(std::move(op)), linear_(in_features, out_features, rng) {}

Variable SparseConvLayer::Forward(const Variable& x) const {
  return linear_.Forward(autograd::SpMMConst(op_, x));
}

GatLayer::GatLayer(AttentionEdges edges, size_t num_nodes, size_t in_features,
                   size_t out_features, Rng* rng, float leaky_slope)
    : edges_(std::move(edges)),
      num_nodes_(num_nodes),
      transform_(in_features, out_features, rng, /*use_bias=*/false),
      attn_src_(autograd::Parameter(nn::XavierUniform(out_features, 1, rng))),
      attn_dst_(autograd::Parameter(nn::XavierUniform(out_features, 1, rng))),
      leaky_slope_(leaky_slope) {}

Variable GatLayer::Forward(const Variable& x) const {
  Variable h = transform_.Forward(x);  // n x out
  Variable h_src = autograd::GatherRows(h, edges_.src);
  Variable h_dst = autograd::GatherRows(h, edges_.dst);
  Variable score = autograd::LeakyRelu(
      autograd::Add(autograd::MatMul(h_src, attn_src_),
                    autograd::MatMul(h_dst, attn_dst_)),
      leaky_slope_);
  Variable alpha = autograd::SegmentSoftmax(score, edges_.dst, num_nodes_);
  Variable weighted = autograd::MulColBroadcast(h_src, alpha);
  return autograd::SegmentSum(weighted, edges_.dst, num_nodes_);
}

std::vector<Variable> GatLayer::Parameters() const {
  std::vector<Variable> params = transform_.Parameters();
  params.push_back(attn_src_);
  params.push_back(attn_dst_);
  return params;
}

}  // namespace ahntp::models
