#ifndef AHNTP_MODELS_KGTRUST_H_
#define AHNTP_MODELS_KGTRUST_H_

#include <memory>

#include "models/encoder.h"
#include "nn/linear.h"

namespace ahntp::models {

/// KGTrust baseline (Yu et al., WWW'23): a knowledge-augmented GNN with a
/// discriminative convolution. The knowledge branch embeds each user's
/// item-interaction profile (category-level purchase histogram weighted by
/// ratings, learned projection); the discriminative convolution keeps
/// separate self and neighbour weights per layer:
///   H' = ReLU(H W_self + A_hat H W_nbr).
class KgTrust : public Encoder {
 public:
  explicit KgTrust(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "KGTrust"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

 private:
  autograd::Variable features_;
  autograd::Variable knowledge_;  // n x num_categories (ratings-weighted)
  tensor::CsrMatrix adjacency_op_;
  std::unique_ptr<nn::Linear> knowledge_proj_;
  std::vector<std::unique_ptr<nn::Linear>> self_weights_;
  std::vector<std::unique_ptr<nn::Linear>> nbr_weights_;
  size_t out_dim_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_KGTRUST_H_
