#include "models/hgnn_plus.h"

#include "common/check.h"
#include "tensor/kernels.h"

namespace ahntp::models {

HgnnPlus::HgnnPlus(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      out_dim_(inputs.hidden_dims.back()),
      dropout_(inputs.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.hypergraph != nullptr &&
              inputs.rng != nullptr);
  tensor::CsrMatrix op = inputs.hypergraph->NormalizedAdjacency();
  size_t in_dim = inputs.features->cols();
  for (size_t out : inputs.hidden_dims) {
    layers_.push_back(
        std::make_unique<SparseConvLayer>(op, in_dim, out, inputs.rng));
    in_dim = out;
  }
}

autograd::Variable HgnnPlus::EncodeUsers() {
  autograd::Variable h = features_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = autograd::Relu(layers_[i]->Forward(h));
    if (i + 1 < layers_.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

tensor::Matrix HgnnPlus::InferUsers(tensor::Workspace* ws) {
  const tensor::Matrix* h = &features_.value();
  tensor::Matrix* out = nullptr;
  for (const auto& layer : layers_) {
    out = &layer->Infer(*h, ws);
    tensor::ReluInto(out, *out);
    h = out;
  }
  return *out;
}

std::vector<autograd::Variable> HgnnPlus::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& layer : layers_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Module*> HgnnPlus::Submodules() {
  std::vector<nn::Module*> subs;
  for (const auto& layer : layers_) subs.push_back(layer.get());
  return subs;
}

}  // namespace ahntp::models
