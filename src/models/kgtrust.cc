#include "models/kgtrust.h"

#include "common/check.h"
#include "models/graph_ops.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::models {

namespace {

/// Ratings-weighted, L1-normalized purchase histogram over item categories:
/// the user-item "knowledge" profile.
tensor::Matrix BuildKnowledgeProfile(const data::SocialDataset& dataset) {
  tensor::Matrix profile(dataset.num_users,
                         static_cast<size_t>(dataset.num_item_categories));
  for (const data::Purchase& p : dataset.purchases) {
    int cat = dataset.item_categories[static_cast<size_t>(p.item)];
    profile.At(static_cast<size_t>(p.user), static_cast<size_t>(cat)) +=
        p.rating / 5.0f;
  }
  for (size_t u = 0; u < profile.rows(); ++u) {
    float total = 0.0f;
    for (size_t c = 0; c < profile.cols(); ++c) total += profile.At(u, c);
    if (total > 0.0f) {
      for (size_t c = 0; c < profile.cols(); ++c) profile.At(u, c) /= total;
    }
  }
  return profile;
}

}  // namespace

KgTrust::KgTrust(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      knowledge_(autograd::Constant(tensor::Matrix())),
      adjacency_op_(SymmetricNormalizedAdjacency(*inputs.graph)),
      out_dim_(inputs.hidden_dims.back()),
      dropout_(inputs.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr &&
              inputs.dataset != nullptr && inputs.rng != nullptr);
  knowledge_ = autograd::Constant(BuildKnowledgeProfile(*inputs.dataset));
  const size_t knowledge_dim = inputs.hidden_dims.back() / 2;
  knowledge_proj_ = std::make_unique<nn::Linear>(
      knowledge_.cols(), knowledge_dim, inputs.rng);
  size_t in_dim = inputs.features->cols() + knowledge_dim;
  for (size_t out : inputs.hidden_dims) {
    self_weights_.push_back(
        std::make_unique<nn::Linear>(in_dim, out, inputs.rng));
    nbr_weights_.push_back(std::make_unique<nn::Linear>(in_dim, out,
                                                        inputs.rng,
                                                        /*use_bias=*/false));
    in_dim = out;
  }
}

autograd::Variable KgTrust::EncodeUsers() {
  autograd::Variable knowledge =
      autograd::Relu(knowledge_proj_->Forward(knowledge_));
  autograd::Variable h = autograd::ConcatCols({features_, knowledge});
  for (size_t i = 0; i < self_weights_.size(); ++i) {
    autograd::Variable self_term = self_weights_[i]->Forward(h);
    autograd::Variable nbr_term =
        nbr_weights_[i]->Forward(autograd::SpMMConst(adjacency_op_, h));
    h = autograd::Relu(autograd::Add(self_term, nbr_term));
    if (i + 1 < self_weights_.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

tensor::Matrix KgTrust::InferUsers(tensor::Workspace* ws) {
  using tensor::Matrix;
  Matrix& knowledge = nn::InferLinear(*knowledge_proj_, knowledge_.value(), ws);
  tensor::ReluInto(&knowledge, knowledge);
  Matrix* h = ws->Acquire(features_.rows(),
                          features_.cols() + knowledge.cols());
  tensor::ConcatColsInto(h, {&features_.value(), &knowledge});
  Matrix* out = nullptr;
  for (size_t i = 0; i < self_weights_.size(); ++i) {
    Matrix& self_term = nn::InferLinear(*self_weights_[i], *h, ws);
    Matrix* prop = ws->Acquire(adjacency_op_.rows(), h->cols());
    tensor::SpMMInto(prop, adjacency_op_, *h);
    Matrix& nbr_term = nn::InferLinear(*nbr_weights_[i], *prop, ws);
    tensor::AddInto(&self_term, self_term, nbr_term);
    tensor::ReluInto(&self_term, self_term);
    out = &self_term;
    h = out;
  }
  return *out;
}

std::vector<autograd::Variable> KgTrust::Parameters() const {
  std::vector<autograd::Variable> params = knowledge_proj_->Parameters();
  for (const auto& layer : self_weights_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  for (const auto& layer : nbr_weights_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Module*> KgTrust::Submodules() {
  std::vector<nn::Module*> subs = {knowledge_proj_.get()};
  for (const auto& layer : self_weights_) subs.push_back(layer.get());
  for (const auto& layer : nbr_weights_) subs.push_back(layer.get());
  return subs;
}

}  // namespace ahntp::models
