#ifndef AHNTP_MODELS_INFERENCE_PLAN_H_
#define AHNTP_MODELS_INFERENCE_PLAN_H_

#include <vector>

#include "data/split.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"

namespace ahntp::models {

class TrustPredictor;

/// Compiled inference state for one TrustPredictor: the all-user embedding
/// table (encoded once, reused across every batch until invalidated) plus a
/// Workspace arena for the per-batch scoring chain. Score() is bit-identical
/// to the tape path (Forward() in eval mode) at any --threads=N because both
/// run the exact same tensor kernels in the same order.
///
/// Lifecycle: parameters changed (training step, checkpoint load, reload)
/// => Invalidate(); the next Score() re-encodes. TrustPredictor owns one
/// plan and invalidates it from InvalidateCaches() and training forwards;
/// serve::ModelBackend additionally warms the plan before publishing a
/// predictor so the first live request never pays the encode.
///
/// Not thread-safe: one plan (like one Workspace) per scoring thread.
class InferencePlan {
 public:
  /// `predictor` must outlive the plan; the plan holds no ownership.
  explicit InferencePlan(TrustPredictor* predictor);

  /// Encodes all users through the tape-free path if the cache is stale.
  /// Counts infer.plan_builds / infer.cache_misses; a fresh cache counts
  /// infer.cache_hits instead. Encoding uses a throwaway arena so the
  /// steady-state workspace only holds the (small) scoring buffers.
  void EnsureBuilt();

  /// Marks the embedding cache stale. Cheap; storage is kept.
  void Invalidate() { built_ = false; }

  bool built() const { return built_; }

  /// Probabilities for a batch of pairs, read from the cached embedding
  /// table. Steady state performs zero heap allocations: every intermediate
  /// lives in the arena and the index buffers reuse their capacity.
  std::vector<float> Score(const std::vector<data::TrustPair>& pairs);

  /// Cached (num_users x d) embeddings; valid after EnsureBuilt().
  const tensor::Matrix& embeddings() const { return embeddings_; }

  /// The scoring arena (exposed for the allocation regression tests).
  const tensor::Workspace& workspace() const { return ws_; }

 private:
  TrustPredictor* predictor_;
  tensor::Workspace ws_;        // scoring arena, reset per batch
  tensor::Matrix embeddings_;   // all-user embedding cache
  std::vector<int> src_idx_;    // reused per batch
  std::vector<int> dst_idx_;
  bool built_ = false;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_INFERENCE_PLAN_H_
