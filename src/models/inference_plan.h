#ifndef AHNTP_MODELS_INFERENCE_PLAN_H_
#define AHNTP_MODELS_INFERENCE_PLAN_H_

#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/split.h"
#include "graph/sharding.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "tensor/workspace.h"

namespace ahntp::models {

class TrustPredictor;

/// Numeric format of the cached embedding table inside an inference plan.
///
/// kFloat32 is the reference: scores are bit-identical to the tape path.
/// kInt8 stores the table as per-row symmetric int8 (tensor/quant.h) —
/// 4x smaller resident/spilled bytes — and dequantizes rows on gather, so
/// the scoring chain itself still runs in float32. Scores agree with
/// kFloat32 to quantization tolerance; the AUC-delta guard in
/// scripts/check_inference.sh bounds the ranking impact (<= 0.002).
enum class PlanPrecision {
  kFloat32 = 0,
  kInt8 = 1,
};

/// "fp32" / "int8".
const char* PlanPrecisionName(PlanPrecision precision);

/// Compiled inference state for one TrustPredictor: the all-user embedding
/// table (encoded once, reused across every batch until invalidated) plus a
/// Workspace arena for the per-batch scoring chain. Score() is bit-identical
/// to the tape path (Forward() in eval mode) at any --threads=N because both
/// run the exact same tensor kernels in the same order.
///
/// Lifecycle: parameters changed (training step, checkpoint load, reload)
/// => Invalidate(); the next Score() re-encodes. TrustPredictor owns one
/// plan and invalidates it from InvalidateCaches() and training forwards;
/// serve::ModelBackend additionally warms the plan before publishing a
/// predictor so the first live request never pays the encode.
///
/// Not thread-safe: one plan (like one Workspace) per scoring thread.
class InferencePlan {
 public:
  /// `predictor` must outlive the plan; the plan holds no ownership.
  explicit InferencePlan(TrustPredictor* predictor);

  /// Encodes all users through the tape-free path if the cache is stale.
  /// Counts infer.plan_builds / infer.cache_misses; a fresh cache counts
  /// infer.cache_hits instead. Encoding uses a throwaway arena so the
  /// steady-state workspace only holds the (small) scoring buffers.
  void EnsureBuilt();

  /// Marks the embedding cache stale. Cheap; storage is kept.
  void Invalidate() { built_ = false; }

  bool built() const { return built_; }

  /// Delta-invalidation (DESIGN.md §17): patches only the given users' rows
  /// of the cached table instead of re-encoding everyone. `users` ascending
  /// and deduplicated; `rows` is (|users| x d) with their new embeddings.
  /// Under kFloat32 the rows are copied; under kInt8 each dirty row is
  /// requantized in place (self-calibration refreshes its absmax from the
  /// new row; external calibration keeps the installed stats), which is
  /// bitwise-identical to a fresh build over the patched table. A plan that
  /// is not built is left untouched — the next Score() encodes from scratch
  /// and sees the post-delta model anyway. InvalidArgument on a non-finite
  /// row under self-calibrated int8.
  Status RefreshRows(const std::vector<int>& users,
                     const tensor::Matrix& rows);

  /// Probabilities for a batch of pairs, read from the cached embedding
  /// table. Steady state performs zero heap allocations: every intermediate
  /// lives in the arena and the index buffers reuse their capacity.
  std::vector<float> Score(const std::vector<data::TrustPair>& pairs);

  /// Score() with deterministic inverted dropout applied to the gathered
  /// embedding rows before the scoring chain — the MC-dropout perturbation
  /// of the uncertainty ensemble (models/uncertainty.h, DESIGN.md §16).
  /// Masks are keyed on (seed, user id, tower side, element), never on
  /// batch position or shard layout, so a pair's perturbed score is
  /// invariant to batch composition and bit-identical between the
  /// monolithic and sharded plans. `rate` must lie in (0, 1) (CHECK).
  std::vector<float> ScoreWithInputDropout(
      const std::vector<data::TrustPair>& pairs, float rate, uint64_t seed);

  /// Switches the table format; a change invalidates the plan (the next
  /// Score() re-encodes and, for kInt8, requantizes).
  void SetPrecision(PlanPrecision precision);
  PlanPrecision precision() const { return precision_; }

  /// Installs externally captured calibration stats (e.g. from a training
  /// activation sweep) instead of the default self-calibration over the
  /// encoder's own activations. Validates the stats against the live table
  /// (row count, finite non-negative absmax) and returns InvalidArgument on
  /// bad input — fuzzed stats must never crash. On success the plan is
  /// invalidated: recalibration requantizes at the next Score().
  Status SetCalibration(tensor::RowCalibration calib);

  /// The calibration in effect for the current int8 table (empty before the
  /// first int8 build).
  const tensor::RowCalibration& calibration() const { return calib_; }

  /// Cached (num_users x d) embeddings; valid after EnsureBuilt() under
  /// kFloat32 (empty under kInt8 — the float table is freed after
  /// quantization).
  const tensor::Matrix& embeddings() const { return embeddings_; }

  /// The int8 table; valid after EnsureBuilt() under kInt8.
  const tensor::QuantizedMatrix& quantized_embeddings() const {
    return qembeddings_;
  }

  /// Resident bytes of the cached table in its current precision.
  size_t embedding_bytes() const;

  /// The scoring arena (exposed for the allocation regression tests).
  const tensor::Workspace& workspace() const { return ws_; }

 private:
  /// Shared body of Score / ScoreWithInputDropout; rate < 0 = no dropout.
  std::vector<float> ScoreImpl(const std::vector<data::TrustPair>& pairs,
                               float dropout_rate, uint64_t dropout_seed);

  TrustPredictor* predictor_;
  tensor::Workspace ws_;        // scoring arena, reset per batch
  tensor::Matrix embeddings_;   // all-user embedding cache (kFloat32)
  tensor::QuantizedMatrix qembeddings_;  // int8 table (kInt8)
  tensor::RowCalibration calib_;
  bool has_external_calib_ = false;
  PlanPrecision precision_ = PlanPrecision::kFloat32;
  std::vector<int> src_idx_;    // reused per batch
  std::vector<int> dst_idx_;
  bool built_ = false;
};

// ---------------------------------------------------------------------------
// The shard-aware inference path (DESIGN.md §14): the embedding table is
// split by UserSharding into per-shard blocks spilled to disk, and a
// bounded LRU keeps at most max_resident_shards blocks in RAM. A score
// request faults in only the shards of its (src, dst) users. Because a
// float32 survives the disk round-trip bit-exactly and the scoring kernels
// are shared with InferencePlan, scores are bit-identical to the monolithic
// plan at any (shard count, residency cap, thread count) combination.
// ---------------------------------------------------------------------------

/// Options for ShardedInferencePlan.
struct ShardedPlanOptions {
  int num_shards = 1;
  /// RAM residency cap in shards; 0 = use the process-wide
  /// MaxResidentShards() value (--max_resident_shards /
  /// AHNTP_MAX_RESIDENT_SHARDS, default 2).
  int max_resident_shards = 0;
  graph::ShardingMode mode = graph::ShardingMode::kContiguous;
  /// Directory for the per-shard block files; created if missing. Each plan
  /// instance spills into its own subdirectory, so a staged reload never
  /// clobbers the live plan's blocks.
  std::string spill_dir;
  /// Block format. kInt8 spills quantized blocks (4x smaller, "AHSQ"
  /// format); scores are bitwise-identical to a monolithic kInt8 plan built
  /// from the same calibration, and tolerance-close to kFloat32.
  PlanPrecision precision = PlanPrecision::kFloat32;
};

/// Disk-backed per-shard embedding blocks behind a bounded LRU.
///
/// kFloat32 blocks are raw float32 rows (one per owned user, ascending user
/// order) with a small header and a CRC32 footer ("AHSB"); kInt8 blocks
/// store per-row scales followed by the int8 payload, CRC over both
/// ("AHSQ"). Fault-in validates header and CRC.
/// Counters: infer.shard_faults (disk loads), infer.shard_hits (already
/// resident), infer.shard_evictions; gauge infer.shard_resident_bytes.
/// Not thread-safe (same contract as InferencePlan).
class ShardEmbeddingStore {
 public:
  /// `max_resident` >= 1 (CHECK). The directory is created on first spill.
  ShardEmbeddingStore(graph::UserSharding sharding, size_t dim,
                      std::string spill_dir, int max_resident,
                      PlanPrecision precision = PlanPrecision::kFloat32);

  /// Writes every shard's block from the full (num_users x dim) table and
  /// drops all residency (the table is the caller's to free). Atomic per
  /// block file. kFloat32 stores only.
  Status SpillAll(const tensor::Matrix& embeddings);

  /// Writes one shard's block; `rows` must be (owned-count x dim) in
  /// ascending owned-user order. Lets builders stream blocks without ever
  /// materializing the full table. kFloat32 stores only.
  Status SpillShard(int shard, const tensor::Matrix& rows);

  /// kInt8 analogue of SpillAll: slices `calib` (full-table row
  /// calibration, already validated) per shard and spills quantized blocks.
  /// Because every user keeps its full-table absmax, the dequantized rows
  /// are bitwise-identical to a monolithic int8 plan's.
  Status SpillAllQuantized(const tensor::Matrix& embeddings,
                           const tensor::RowCalibration& calib);

  /// Writes one quantized shard block (rows in ascending owned-user order).
  Status SpillQuantShard(int shard, const tensor::QuantizedMatrix& rows);

  /// The resident block for `shard` (rows in ascending owned-user order),
  /// faulting it in from disk — and evicting the least recently used block
  /// past the cap — as needed. kFloat32 stores only (CHECK).
  Result<const tensor::Matrix*> Block(int shard);

  /// kInt8 counterpart of Block() (CHECK on a kFloat32 store).
  Result<const tensor::QuantizedMatrix*> QuantBlock(int shard);

  /// Copies `user`'s embedding row into out[0..dim), dequantizing on a
  /// kInt8 store. Faults like Block().
  Status CopyUserRow(int user, float* out);

  const graph::UserSharding& sharding() const { return sharding_; }
  size_t dim() const { return dim_; }
  PlanPrecision precision() const { return precision_; }
  int num_resident() const {
    return static_cast<int>(resident_.size() + qresident_.size());
  }
  int max_resident() const { return max_resident_; }
  size_t resident_bytes() const;

 private:
  std::string BlockPath(int shard) const;
  void Touch(int shard);
  void EvictPastCap();

  graph::UserSharding sharding_;
  size_t dim_;
  std::string spill_dir_;
  int max_resident_;
  PlanPrecision precision_;
  /// shard -> resident block; lru_ front is most recently used. Exactly one
  /// of the two maps is populated, per `precision_`.
  std::map<int, tensor::Matrix> resident_;
  std::map<int, tensor::QuantizedMatrix> qresident_;
  std::list<int> lru_;
};

/// Shard-aware analogue of InferencePlan. EnsureBuilt() encodes all users,
/// spills the table into per-shard blocks, and frees the full table; each
/// Score() then touches only the shards its pairs live in, with RAM bounded
/// by max_resident_shards blocks. Scores are bit-identical to
/// InferencePlan::Score at any configuration. Not thread-safe.
class ShardedInferencePlan {
 public:
  /// `predictor` must outlive the plan. options.num_shards >= 1 and
  /// options.spill_dir non-empty (CHECK).
  ShardedInferencePlan(TrustPredictor* predictor, ShardedPlanOptions options);

  /// Encode + spill when stale. InvalidArgument propagates from a bad
  /// shard/user combination; IoError from spill failures.
  Status EnsureBuilt();

  void Invalidate() { built_ = false; }
  bool built() const { return built_; }

  /// Sharded counterpart of InferencePlan::RefreshRows: groups the dirty
  /// users by shard, faults in each dirty shard's block, patches the owned
  /// rows, and re-spills ONLY those blocks — clean shards keep their files
  /// untouched. Same precision semantics as the monolithic patch. A plan
  /// that is not built is left untouched.
  Status RefreshRows(const std::vector<int>& users,
                     const tensor::Matrix& rows);
  Result<std::vector<float>> Score(const std::vector<data::TrustPair>& pairs);

  /// Sharded counterpart of InferencePlan::ScoreWithInputDropout: identical
  /// masks (keyed on user id, not shard/row), so the perturbed scores match
  /// the monolithic plan's bit-for-bit at any shard count.
  Result<std::vector<float>> ScoreWithInputDropout(
      const std::vector<data::TrustPair>& pairs, float rate, uint64_t seed);

  /// Switches the block format; a change invalidates the plan (the next
  /// Score() re-encodes and re-spills).
  void SetPrecision(PlanPrecision precision);
  PlanPrecision precision() const { return options_.precision; }

  /// External calibration stats, same validation contract as
  /// InferencePlan::SetCalibration. Invalidates on success.
  Status SetCalibration(tensor::RowCalibration calib);

  /// The block store; valid after EnsureBuilt() (null before).
  const ShardEmbeddingStore* store() const { return store_.get(); }
  ShardEmbeddingStore* mutable_store() { return store_.get(); }

  const ShardedPlanOptions& options() const { return options_; }

 private:
  /// Shared body of Score / ScoreWithInputDropout; rate < 0 = no dropout.
  Result<std::vector<float>> ScoreImpl(
      const std::vector<data::TrustPair>& pairs, float dropout_rate,
      uint64_t dropout_seed);

  TrustPredictor* predictor_;
  ShardedPlanOptions options_;
  std::string plan_spill_dir_;  // per-instance subdirectory of spill_dir
  std::unique_ptr<ShardEmbeddingStore> store_;
  tensor::Workspace ws_;
  tensor::RowCalibration calib_;
  bool has_external_calib_ = false;
  bool built_ = false;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_INFERENCE_PLAN_H_
