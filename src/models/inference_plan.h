#ifndef AHNTP_MODELS_INFERENCE_PLAN_H_
#define AHNTP_MODELS_INFERENCE_PLAN_H_

#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/split.h"
#include "graph/sharding.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"

namespace ahntp::models {

class TrustPredictor;

/// Compiled inference state for one TrustPredictor: the all-user embedding
/// table (encoded once, reused across every batch until invalidated) plus a
/// Workspace arena for the per-batch scoring chain. Score() is bit-identical
/// to the tape path (Forward() in eval mode) at any --threads=N because both
/// run the exact same tensor kernels in the same order.
///
/// Lifecycle: parameters changed (training step, checkpoint load, reload)
/// => Invalidate(); the next Score() re-encodes. TrustPredictor owns one
/// plan and invalidates it from InvalidateCaches() and training forwards;
/// serve::ModelBackend additionally warms the plan before publishing a
/// predictor so the first live request never pays the encode.
///
/// Not thread-safe: one plan (like one Workspace) per scoring thread.
class InferencePlan {
 public:
  /// `predictor` must outlive the plan; the plan holds no ownership.
  explicit InferencePlan(TrustPredictor* predictor);

  /// Encodes all users through the tape-free path if the cache is stale.
  /// Counts infer.plan_builds / infer.cache_misses; a fresh cache counts
  /// infer.cache_hits instead. Encoding uses a throwaway arena so the
  /// steady-state workspace only holds the (small) scoring buffers.
  void EnsureBuilt();

  /// Marks the embedding cache stale. Cheap; storage is kept.
  void Invalidate() { built_ = false; }

  bool built() const { return built_; }

  /// Probabilities for a batch of pairs, read from the cached embedding
  /// table. Steady state performs zero heap allocations: every intermediate
  /// lives in the arena and the index buffers reuse their capacity.
  std::vector<float> Score(const std::vector<data::TrustPair>& pairs);

  /// Cached (num_users x d) embeddings; valid after EnsureBuilt().
  const tensor::Matrix& embeddings() const { return embeddings_; }

  /// The scoring arena (exposed for the allocation regression tests).
  const tensor::Workspace& workspace() const { return ws_; }

 private:
  TrustPredictor* predictor_;
  tensor::Workspace ws_;        // scoring arena, reset per batch
  tensor::Matrix embeddings_;   // all-user embedding cache
  std::vector<int> src_idx_;    // reused per batch
  std::vector<int> dst_idx_;
  bool built_ = false;
};

// ---------------------------------------------------------------------------
// The shard-aware inference path (DESIGN.md §14): the embedding table is
// split by UserSharding into per-shard blocks spilled to disk, and a
// bounded LRU keeps at most max_resident_shards blocks in RAM. A score
// request faults in only the shards of its (src, dst) users. Because a
// float32 survives the disk round-trip bit-exactly and the scoring kernels
// are shared with InferencePlan, scores are bit-identical to the monolithic
// plan at any (shard count, residency cap, thread count) combination.
// ---------------------------------------------------------------------------

/// Options for ShardedInferencePlan.
struct ShardedPlanOptions {
  int num_shards = 1;
  /// RAM residency cap in shards; 0 = use the process-wide
  /// MaxResidentShards() value (--max_resident_shards /
  /// AHNTP_MAX_RESIDENT_SHARDS, default 2).
  int max_resident_shards = 0;
  graph::ShardingMode mode = graph::ShardingMode::kContiguous;
  /// Directory for the per-shard block files; created if missing. Each plan
  /// instance spills into its own subdirectory, so a staged reload never
  /// clobbers the live plan's blocks.
  std::string spill_dir;
};

/// Disk-backed per-shard embedding blocks behind a bounded LRU.
///
/// Blocks are raw float32 rows (one per owned user, ascending user order)
/// with a small header and a CRC32 footer; Fault-in validates both.
/// Counters: infer.shard_faults (disk loads), infer.shard_hits (already
/// resident), infer.shard_evictions; gauge infer.shard_resident_bytes.
/// Not thread-safe (same contract as InferencePlan).
class ShardEmbeddingStore {
 public:
  /// `max_resident` >= 1 (CHECK). The directory is created on first spill.
  ShardEmbeddingStore(graph::UserSharding sharding, size_t dim,
                      std::string spill_dir, int max_resident);

  /// Writes every shard's block from the full (num_users x dim) table and
  /// drops all residency (the table is the caller's to free). Atomic per
  /// block file.
  Status SpillAll(const tensor::Matrix& embeddings);

  /// Writes one shard's block; `rows` must be (owned-count x dim) in
  /// ascending owned-user order. Lets builders stream blocks without ever
  /// materializing the full table.
  Status SpillShard(int shard, const tensor::Matrix& rows);

  /// The resident block for `shard` (rows in ascending owned-user order),
  /// faulting it in from disk — and evicting the least recently used block
  /// past the cap — as needed.
  Result<const tensor::Matrix*> Block(int shard);

  /// Copies `user`'s embedding row into out[0..dim). Faults like Block().
  Status CopyUserRow(int user, float* out);

  const graph::UserSharding& sharding() const { return sharding_; }
  size_t dim() const { return dim_; }
  int num_resident() const { return static_cast<int>(resident_.size()); }
  int max_resident() const { return max_resident_; }
  size_t resident_bytes() const;

 private:
  std::string BlockPath(int shard) const;
  void Touch(int shard);

  graph::UserSharding sharding_;
  size_t dim_;
  std::string spill_dir_;
  int max_resident_;
  /// shard -> resident block; lru_ front is most recently used.
  std::map<int, tensor::Matrix> resident_;
  std::list<int> lru_;
};

/// Shard-aware analogue of InferencePlan. EnsureBuilt() encodes all users,
/// spills the table into per-shard blocks, and frees the full table; each
/// Score() then touches only the shards its pairs live in, with RAM bounded
/// by max_resident_shards blocks. Scores are bit-identical to
/// InferencePlan::Score at any configuration. Not thread-safe.
class ShardedInferencePlan {
 public:
  /// `predictor` must outlive the plan. options.num_shards >= 1 and
  /// options.spill_dir non-empty (CHECK).
  ShardedInferencePlan(TrustPredictor* predictor, ShardedPlanOptions options);

  /// Encode + spill when stale. InvalidArgument propagates from a bad
  /// shard/user combination; IoError from spill failures.
  Status EnsureBuilt();

  void Invalidate() { built_ = false; }
  bool built() const { return built_; }

  /// Probabilities for a batch, faulting in only the shards of the pairs'
  /// endpoints.
  Result<std::vector<float>> Score(const std::vector<data::TrustPair>& pairs);

  /// The block store; valid after EnsureBuilt() (null before).
  const ShardEmbeddingStore* store() const { return store_.get(); }
  ShardEmbeddingStore* mutable_store() { return store_.get(); }

  const ShardedPlanOptions& options() const { return options_; }

 private:
  TrustPredictor* predictor_;
  ShardedPlanOptions options_;
  std::string plan_spill_dir_;  // per-instance subdirectory of spill_dir
  std::unique_ptr<ShardEmbeddingStore> store_;
  tensor::Workspace ws_;
  bool built_ = false;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_INFERENCE_PLAN_H_
