#include "models/sgc.h"

#include "common/check.h"
#include "models/graph_ops.h"
#include "nn/infer.h"

namespace ahntp::models {

namespace {

tensor::Matrix Propagate(const ModelInputs& inputs, int steps) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr);
  AHNTP_CHECK_GE(steps, 1);
  tensor::CsrMatrix op = SymmetricNormalizedAdjacency(*inputs.graph);
  tensor::Matrix x = *inputs.features;
  for (int k = 0; k < steps; ++k) x = tensor::SpMM(op, x);
  return x;
}

}  // namespace

Sgc::Sgc(const ModelInputs& inputs, int propagation_steps)
    : propagated_(autograd::Constant(Propagate(inputs, propagation_steps))),
      linear_(inputs.features->cols(), inputs.hidden_dims.back(),
              inputs.rng) {}

autograd::Variable Sgc::EncodeUsers() {
  return linear_.Forward(propagated_);
}

tensor::Matrix Sgc::InferUsers(tensor::Workspace* ws) {
  return nn::InferLinear(linear_, propagated_.value(), ws);
}

}  // namespace ahntp::models
