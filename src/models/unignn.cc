#include "models/unignn.h"

#include <cmath>

#include "common/check.h"
#include "nn/infer.h"
#include "tensor/kernels.h"

namespace ahntp::models {

using autograd::Variable;

UniOperators BuildUniOperators(const hypergraph::Hypergraph& hg) {
  UniOperators ops;
  ops.num_vertices = hg.num_vertices();
  ops.num_edges = hg.num_edges();
  tensor::CsrMatrix incidence = hg.Incidence();
  ops.edge_mean = incidence.Transposed().RowNormalized();
  // UniGCN's vertex-side aggregation uses GCN-style degree normalization:
  //   x_i' = (1/sqrt(d_i)) sum_{e ∋ i} (1/sqrt(dbar_e)) W h_e,
  // where d_i = #edges of vertex i and dbar_e = average vertex degree over
  // the members of e (Huang & Yang, Eq. UniGCN).
  std::vector<int> vertex_edge_counts = hg.VertexEdgeCounts();
  std::vector<float> avg_edge_degree(hg.num_edges(), 0.0f);
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    double acc = 0.0;
    for (int v : hg.EdgeVertices(e)) {
      acc += vertex_edge_counts[static_cast<size_t>(v)];
    }
    avg_edge_degree[e] =
        static_cast<float>(acc / static_cast<double>(hg.EdgeDegree(e)));
  }
  std::vector<tensor::Triplet> triplets;
  triplets.reserve(hg.TotalIncidences());
  for (size_t e = 0; e < hg.num_edges(); ++e) {
    float edge_scale = avg_edge_degree[e] > 0.0f
                           ? 1.0f / std::sqrt(avg_edge_degree[e])
                           : 0.0f;
    for (int v : hg.EdgeVertices(e)) {
      int d = vertex_edge_counts[static_cast<size_t>(v)];
      float vertex_scale =
          d > 0 ? 1.0f / std::sqrt(static_cast<float>(d)) : 0.0f;
      triplets.push_back({v, static_cast<int>(e), vertex_scale * edge_scale});
    }
  }
  ops.vertex_mean = tensor::CsrMatrix::FromTriplets(
      hg.num_vertices(), hg.num_edges(), std::move(triplets));
  ops.pairs = hg.Pairs();
  return ops;
}

UniGcn::UniGcn(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      ops_(BuildUniOperators(*inputs.hypergraph)),
      out_dim_(inputs.hidden_dims.back()),
      dropout_(inputs.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.hypergraph != nullptr &&
              inputs.rng != nullptr);
  size_t in_dim = inputs.features->cols();
  for (size_t out : inputs.hidden_dims) {
    layers_.push_back(std::make_unique<nn::Linear>(in_dim, out, inputs.rng));
    in_dim = out;
  }
}

Variable UniGcn::EncodeUsers() {
  Variable h = features_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Variable edge_feat = autograd::SpMMConst(ops_.edge_mean, h);
    Variable vertex_feat = autograd::SpMMConst(
        ops_.vertex_mean, layers_[i]->Forward(edge_feat));
    h = autograd::Relu(vertex_feat);
    if (i + 1 < layers_.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

tensor::Matrix UniGcn::InferUsers(tensor::Workspace* ws) {
  using tensor::Matrix;
  const Matrix* h = &features_.value();
  Matrix* out = nullptr;
  for (const auto& layer : layers_) {
    Matrix* edge_feat = ws->Acquire(ops_.edge_mean.rows(), h->cols());
    tensor::SpMMInto(edge_feat, ops_.edge_mean, *h);
    Matrix& transformed = nn::InferLinear(*layer, *edge_feat, ws);
    Matrix* vertex_feat =
        ws->Acquire(ops_.vertex_mean.rows(), transformed.cols());
    tensor::SpMMInto(vertex_feat, ops_.vertex_mean, transformed);
    tensor::ReluInto(vertex_feat, *vertex_feat);
    out = vertex_feat;
    h = out;
  }
  return *out;
}

std::vector<Variable> UniGcn::Parameters() const {
  std::vector<Variable> params;
  for (const auto& layer : layers_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Module*> UniGcn::Submodules() {
  std::vector<nn::Module*> subs;
  for (const auto& layer : layers_) subs.push_back(layer.get());
  return subs;
}

UniGat::UniGat(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      ops_(BuildUniOperators(*inputs.hypergraph)),
      out_dim_(inputs.hidden_dims.back()),
      dropout_(inputs.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.hypergraph != nullptr &&
              inputs.rng != nullptr);
  size_t in_dim = inputs.features->cols();
  for (size_t out : inputs.hidden_dims) {
    transforms_.push_back(std::make_unique<nn::Linear>(in_dim, out, inputs.rng,
                                                       /*use_bias=*/false));
    attn_vertex_.push_back(
        autograd::Parameter(nn::XavierUniform(out, 1, inputs.rng)));
    attn_edge_.push_back(
        autograd::Parameter(nn::XavierUniform(out, 1, inputs.rng)));
    in_dim = out;
  }
}

Variable UniGat::EncodeUsers() {
  Variable h = features_;
  for (size_t i = 0; i < transforms_.size(); ++i) {
    Variable hx = transforms_[i]->Forward(h);  // n x d
    Variable he = autograd::SpMMConst(ops_.edge_mean, hx);  // m x d
    Variable hx_pairs = autograd::GatherRows(hx, ops_.pairs.vertex);
    Variable he_pairs = autograd::GatherRows(he, ops_.pairs.edge);
    Variable score = autograd::LeakyRelu(
        autograd::Add(autograd::MatMul(hx_pairs, attn_vertex_[i]),
                      autograd::MatMul(he_pairs, attn_edge_[i])),
        leaky_slope_);
    Variable alpha =
        autograd::SegmentSoftmax(score, ops_.pairs.vertex, ops_.num_vertices);
    Variable weighted = autograd::MulColBroadcast(he_pairs, alpha);
    h = autograd::Relu(
        autograd::SegmentSum(weighted, ops_.pairs.vertex, ops_.num_vertices));
    if (i + 1 < transforms_.size()) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

tensor::Matrix UniGat::InferUsers(tensor::Workspace* ws) {
  using tensor::Matrix;
  const Matrix* h = &features_.value();
  Matrix* out = nullptr;
  const size_t p = ops_.pairs.vertex.size();
  for (size_t i = 0; i < transforms_.size(); ++i) {
    Matrix& hx = nn::InferLinear(*transforms_[i], *h, ws);
    Matrix* he = ws->Acquire(ops_.edge_mean.rows(), hx.cols());
    tensor::SpMMInto(he, ops_.edge_mean, hx);
    Matrix* hx_pairs = ws->Acquire(p, hx.cols());
    tensor::GatherRowsInto(hx_pairs, hx, ops_.pairs.vertex);
    Matrix* he_pairs = ws->Acquire(p, he->cols());
    tensor::GatherRowsInto(he_pairs, *he, ops_.pairs.edge);
    Matrix* score = ws->Acquire(p, 1);
    tensor::MatMulInto(score, *hx_pairs, attn_vertex_[i].value());
    Matrix* score_edge = ws->Acquire(p, 1);
    tensor::MatMulInto(score_edge, *he_pairs, attn_edge_[i].value());
    tensor::AddInto(score, *score, *score_edge);
    tensor::LeakyReluInto(score, *score, leaky_slope_);
    Matrix* alpha = ws->Acquire(p, 1);
    tensor::SegmentSoftmaxInto(alpha, *score, ops_.pairs.vertex,
                               ops_.num_vertices);
    tensor::MulColBroadcastInto(he_pairs, *he_pairs, *alpha);
    Matrix* agg = ws->Acquire(ops_.num_vertices, he_pairs->cols());
    tensor::SegmentSumInto(agg, *he_pairs, ops_.pairs.vertex,
                           ops_.num_vertices);
    tensor::ReluInto(agg, *agg);
    out = agg;
    h = out;
  }
  return *out;
}

std::vector<Variable> UniGat::Parameters() const {
  std::vector<Variable> params;
  for (size_t i = 0; i < transforms_.size(); ++i) {
    for (auto& p : transforms_[i]->Parameters()) params.push_back(p);
    params.push_back(attn_vertex_[i]);
    params.push_back(attn_edge_[i]);
  }
  return params;
}

std::vector<nn::Module*> UniGat::Submodules() {
  std::vector<nn::Module*> subs;
  for (const auto& transform : transforms_) subs.push_back(transform.get());
  return subs;
}

}  // namespace ahntp::models
