#include "models/atne_trust.h"

#include "common/check.h"
#include "models/graph_ops.h"
#include "nn/infer.h"
#include "nn/init.h"
#include "tensor/kernels.h"

namespace ahntp::models {

AtneTrust::AtneTrust(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      adjacency_op_(SymmetricNormalizedAdjacency(*inputs.graph)),
      out_dim_(inputs.hidden_dims.back()),
      last_reconstruction_(autograd::Constant(tensor::Matrix(1, 1))) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr &&
              inputs.rng != nullptr);
  const size_t c = inputs.features->cols();
  const size_t mid = inputs.hidden_dims.size() >= 2
                         ? inputs.hidden_dims[inputs.hidden_dims.size() - 2]
                         : inputs.hidden_dims.back() * 2;
  const size_t d = inputs.hidden_dims.back();
  attr_encoder_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{c, mid, d}, inputs.rng, nn::Activation::kRelu);
  attr_decoder_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{d, mid, c}, inputs.rng, nn::Activation::kRelu);
  structure_table_ = autograd::Parameter(
      nn::XavierUniform(inputs.graph->num_nodes(), d, inputs.rng));
  fusion_ = std::make_unique<nn::Linear>(2 * d, out_dim_, inputs.rng);
}

autograd::Variable AtneTrust::EncodeUsers() {
  autograd::Variable latent = attr_encoder_->Forward(features_);
  autograd::Variable reconstructed = attr_decoder_->Forward(latent);
  autograd::Variable err = autograd::Sub(reconstructed, features_);
  last_reconstruction_ = autograd::ReduceMean(autograd::Mul(err, err));
  autograd::Variable structure =
      autograd::SpMMConst(adjacency_op_, structure_table_);
  autograd::Variable fused =
      fusion_->Forward(autograd::ConcatCols({latent, structure}));
  return autograd::Relu(fused);
}

tensor::Matrix AtneTrust::InferUsers(tensor::Workspace* ws) {
  using tensor::Matrix;
  // The decoder/reconstruction branch only feeds AuxLoss (a training-time
  // objective) and does not influence the embeddings, so it is skipped.
  Matrix& latent = nn::InferMlp(*attr_encoder_, features_.value(), ws);
  Matrix* structure =
      ws->Acquire(adjacency_op_.rows(), structure_table_.cols());
  tensor::SpMMInto(structure, adjacency_op_, structure_table_.value());
  Matrix* concat = ws->Acquire(latent.rows(), latent.cols() + structure->cols());
  tensor::ConcatColsInto(concat, {&latent, structure});
  Matrix& fused = nn::InferLinear(*fusion_, *concat, ws);
  tensor::ReluInto(&fused, fused);
  return fused;
}

std::vector<autograd::Variable> AtneTrust::Parameters() const {
  std::vector<autograd::Variable> params;
  for (auto& p : attr_encoder_->Parameters()) params.push_back(p);
  for (auto& p : attr_decoder_->Parameters()) params.push_back(p);
  params.push_back(structure_table_);
  for (auto& p : fusion_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace ahntp::models
