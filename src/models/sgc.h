#ifndef AHNTP_MODELS_SGC_H_
#define AHNTP_MODELS_SGC_H_

#include "models/encoder.h"
#include "nn/linear.h"

namespace ahntp::models {

/// SGC baseline (Wu et al.): collapses GCN into one linear map over the
/// k-step propagated features A_hat^k X, which are precomputed once at
/// construction.
class Sgc : public Encoder {
 public:
  /// `propagation_steps` is SGC's k (default 2, the paper's common choice).
  explicit Sgc(const ModelInputs& inputs, int propagation_steps = 2);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return linear_.out_features(); }
  std::string name() const override { return "SGC"; }
  std::vector<autograd::Variable> Parameters() const override {
    return linear_.Parameters();
  }
  std::vector<nn::Module*> Submodules() override { return {&linear_}; }

 private:
  autograd::Variable propagated_;  // A_hat^k X, constant
  nn::Linear linear_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_SGC_H_
