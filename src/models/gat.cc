#include "models/gat.h"

#include "common/check.h"
#include "tensor/kernels.h"

namespace ahntp::models {

Gat::Gat(const ModelInputs& inputs)
    : features_(autograd::Constant(*inputs.features)),
      out_dim_(inputs.hidden_dims.back()),
      dropout_(inputs.dropout),
      rng_(inputs.rng) {
  AHNTP_CHECK(inputs.features != nullptr && inputs.graph != nullptr &&
              inputs.rng != nullptr);
  AHNTP_CHECK(!inputs.hidden_dims.empty());
  AttentionEdges edges = BuildAttentionEdges(*inputs.graph);
  size_t in_dim = inputs.features->cols();
  for (size_t out : inputs.hidden_dims) {
    layers_.push_back(std::make_unique<GatLayer>(
        edges, inputs.graph->num_nodes(), in_dim, out, inputs.rng));
    in_dim = out;
  }
}

autograd::Variable Gat::EncodeUsers() {
  autograd::Variable h = features_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = autograd::Relu(h);
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

tensor::Matrix Gat::InferUsers(tensor::Workspace* ws) {
  const tensor::Matrix* h = &features_.value();
  tensor::Matrix* out = nullptr;
  for (size_t i = 0; i < layers_.size(); ++i) {
    out = &layers_[i]->Infer(*h, ws);
    if (i + 1 < layers_.size()) tensor::ReluInto(out, *out);
    h = out;
  }
  return *out;
}

std::vector<autograd::Variable> Gat::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& layer : layers_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Module*> Gat::Submodules() {
  std::vector<nn::Module*> subs;
  for (const auto& layer : layers_) subs.push_back(layer.get());
  return subs;
}

}  // namespace ahntp::models
