#ifndef AHNTP_MODELS_HGNN_PLUS_H_
#define AHNTP_MODELS_HGNN_PLUS_H_

#include <memory>

#include "models/conv_layers.h"
#include "models/encoder.h"

namespace ahntp::models {

/// HGNN+ baseline (Gao et al., TPAMI'23): spectral hypergraph convolution
///   H' = ReLU(D_v^{-1/2} H W D_e^{-1} H^T D_v^{-1/2} H Theta)
/// stacked over the configured dims; the hyperedge-group weights W are fixed
/// to the hypergraph's edge weights (the trainable modality-mixing weights
/// of the original collapse to this in the single-modality setting here).
class HgnnPlus : public Encoder {
 public:
  explicit HgnnPlus(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "HGNN+"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

 private:
  autograd::Variable features_;
  std::vector<std::unique_ptr<SparseConvLayer>> layers_;
  size_t out_dim_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_HGNN_PLUS_H_
