#ifndef AHNTP_MODELS_GRAPH_OPS_H_
#define AHNTP_MODELS_GRAPH_OPS_H_

#include <vector>

#include "graph/digraph.h"
#include "tensor/csr.h"

namespace ahntp::models {

/// GCN propagation operator: A_hat = D^{-1/2} (A_sym + I) D^{-1/2}, where
/// A_sym is the symmetrized binary adjacency.
tensor::CsrMatrix SymmetricNormalizedAdjacency(const graph::Digraph& graph);

/// Row-normalized directed operator D_out^{-1} A (trust propagation) or
/// D_in^{-1} A^T when `incoming`, both with self-loops.
tensor::CsrMatrix DirectedNormalizedAdjacency(const graph::Digraph& graph,
                                              bool incoming);

/// Edge pair list for attention layers: undirected neighbourhood plus
/// self-loops, flattened as (dst, src) pairs grouped (segmented) by dst.
struct AttentionEdges {
  std::vector<int> dst;  // segment ids (the aggregating node)
  std::vector<int> src;  // the neighbour providing the message
};
AttentionEdges BuildAttentionEdges(const graph::Digraph& graph);

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_GRAPH_OPS_H_
