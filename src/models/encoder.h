#ifndef AHNTP_MODELS_ENCODER_H_
#define AHNTP_MODELS_ENCODER_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "data/dataset.h"
#include "graph/digraph.h"
#include "hypergraph/hypergraph.h"
#include "nn/module.h"
#include "tensor/workspace.h"

namespace ahntp::models {

/// Everything an encoder may consume. All models share the same `features`
/// (the paper's controlled-comparison protocol); graph models read `graph`
/// (the *training* trust graph — test edges are hidden), hypergraph models
/// read `hypergraph`, and KGTrust additionally reads `dataset` for its
/// user-item knowledge.
struct ModelInputs {
  const tensor::Matrix* features = nullptr;
  const graph::Digraph* graph = nullptr;
  const hypergraph::Hypergraph* hypergraph = nullptr;
  const data::SocialDataset* dataset = nullptr;
  /// Widths of the stacked conv layers; the paper's setting is 256-128-64.
  std::vector<size_t> hidden_dims = {256, 128, 64};
  float dropout = 0.1f;
  Rng* rng = nullptr;
};

/// A user encoder: produces an (num_users x d) embedding matrix on the
/// autograd tape. Implementations precompute their propagation operators at
/// construction and rebuild the tape on every EncodeUsers() call.
class Encoder : public nn::Module {
 public:
  /// Embeds all users. Respects Module::training() for dropout.
  virtual autograd::Variable EncodeUsers() = 0;

  /// Tape-free eval-mode embedding of all users, bit-identical to
  /// EncodeUsers() with training off. Intermediates live in `ws`; the
  /// returned matrix is an owned copy (it outlives the workspace reset —
  /// InferencePlan caches it across batches). The default falls back to
  /// running the tape in eval mode, so new encoders are correct before
  /// they are fast; encoders override it with a kernel-level pass.
  virtual tensor::Matrix InferUsers(tensor::Workspace* ws) {
    (void)ws;
    bool was_training = training();
    SetTraining(false);
    tensor::Matrix out = EncodeUsers().value();
    SetTraining(was_training);
    return out;
  }

  /// Output embedding width.
  virtual size_t embedding_dim() const = 0;

  virtual std::string name() const = 0;

  /// Encoders with an auxiliary training objective (e.g. AtNE-Trust's
  /// reconstruction loss) override these; AuxLoss() is valid after the
  /// latest EncodeUsers() call and shares its tape.
  virtual bool HasAuxLoss() const { return false; }
  virtual autograd::Variable AuxLoss() const {
    return autograd::Constant(tensor::Matrix(1, 1));
  }
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_ENCODER_H_
