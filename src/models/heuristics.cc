#include "models/heuristics.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace ahntp::models {

std::string HeuristicName(Heuristic heuristic) {
  switch (heuristic) {
    case Heuristic::kCommonNeighbors:
      return "CommonNeighbors";
    case Heuristic::kJaccard:
      return "Jaccard";
    case Heuristic::kAdamicAdar:
      return "AdamicAdar";
    case Heuristic::kKatz:
      return "Katz";
    case Heuristic::kPropagation:
      return "Propagation";
  }
  return "Unknown";
}

Result<Heuristic> ParseHeuristic(const std::string& name) {
  for (Heuristic h :
       {Heuristic::kCommonNeighbors, Heuristic::kJaccard,
        Heuristic::kAdamicAdar, Heuristic::kKatz, Heuristic::kPropagation}) {
    if (HeuristicName(h) == name) return h;
  }
  return Status::NotFound("unknown heuristic: " + name);
}

namespace {

/// Sorted intersection of two sorted vectors.
std::vector<int> Intersect(const std::vector<int>& a,
                           const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

double CommonNeighborsScore(const graph::Digraph& g, int src, int dst) {
  return static_cast<double>(
      Intersect(g.UndirectedNeighbors(src), g.UndirectedNeighbors(dst))
          .size());
}

double JaccardScore(const graph::Digraph& g, int src, int dst) {
  std::vector<int> nu = g.UndirectedNeighbors(src);
  std::vector<int> nv = g.UndirectedNeighbors(dst);
  size_t common = Intersect(nu, nv).size();
  size_t unions = nu.size() + nv.size() - common;
  return unions == 0 ? 0.0
                     : static_cast<double>(common) /
                           static_cast<double>(unions);
}

double AdamicAdarScore(const graph::Digraph& g, int src, int dst) {
  double score = 0.0;
  for (int w : Intersect(g.UndirectedNeighbors(src),
                         g.UndirectedNeighbors(dst))) {
    double degree = static_cast<double>(g.UndirectedNeighbors(w).size());
    score += 1.0 / std::log(1.0 + std::max(degree, 1.0));
  }
  return score;
}

/// Counts directed paths src -> dst up to max_len hops (BFS level counts).
/// The direct edge src -> dst itself is EXCLUDED: the score answers "how
/// connected would the pair be without the observed edge", the standard
/// link-prediction semantics (otherwise every observed training edge scores
/// trivially high and threshold calibration leaks).
double KatzScore(const graph::Digraph& g, int src, int dst, double beta,
                 int max_len) {
  // paths[l][v] = number of directed length-l paths src -> v. Path counts
  // explode on dense graphs, so the per-level map stays sparse.
  std::vector<std::pair<int, double>> frontier = {{src, 1.0}};
  double score = 0.0;
  double beta_l = 1.0;
  for (int level = 1; level <= max_len && !frontier.empty(); ++level) {
    beta_l *= beta;
    std::vector<double> counts(g.num_nodes(), 0.0);
    std::vector<int> touched;
    for (const auto& [v, count] : frontier) {
      for (int w : g.OutNeighbors(v)) {
        if (v == src && w == dst) continue;  // exclude the direct edge
        if (counts[static_cast<size_t>(w)] == 0.0) touched.push_back(w);
        counts[static_cast<size_t>(w)] += count;
      }
    }
    frontier.clear();
    for (int w : touched) {
      double c = counts[static_cast<size_t>(w)];
      if (w == dst) score += beta_l * c;
      frontier.push_back({w, c});
    }
  }
  return score;
}

/// Max-product trust propagation over directed paths of bounded length:
/// score = max over paths of prod(decay per hop). Equivalent to
/// decay^(shortest directed path length), 0 when unreachable. Like
/// KatzScore, the direct edge src -> dst is excluded.
double PropagationScore(const graph::Digraph& g, int src, int dst,
                        double decay, int max_len) {
  if (src == dst) return 1.0;
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<int> frontier;
  dist[static_cast<size_t>(src)] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    int d = dist[static_cast<size_t>(v)];
    if (d >= max_len) continue;
    for (int w : g.OutNeighbors(v)) {
      if (v == src && w == dst) continue;  // exclude the direct edge
      if (dist[static_cast<size_t>(w)] == -1) {
        dist[static_cast<size_t>(w)] = d + 1;
        if (w == dst) return std::pow(decay, d + 1);
        frontier.push(w);
      }
    }
  }
  return 0.0;
}

}  // namespace

double HeuristicScore(const graph::Digraph& graph, Heuristic heuristic,
                      int src, int dst, const HeuristicOptions& options) {
  AHNTP_CHECK(src >= 0 && static_cast<size_t>(src) < graph.num_nodes());
  AHNTP_CHECK(dst >= 0 && static_cast<size_t>(dst) < graph.num_nodes());
  switch (heuristic) {
    case Heuristic::kCommonNeighbors:
      return CommonNeighborsScore(graph, src, dst);
    case Heuristic::kJaccard:
      return JaccardScore(graph, src, dst);
    case Heuristic::kAdamicAdar:
      return AdamicAdarScore(graph, src, dst);
    case Heuristic::kKatz:
      return KatzScore(graph, src, dst, options.katz_beta,
                       options.max_path_length);
    case Heuristic::kPropagation:
      return PropagationScore(graph, src, dst, options.propagation_decay,
                              options.max_path_length);
  }
  return 0.0;
}

std::vector<float> HeuristicProbabilities(
    const graph::Digraph& graph, Heuristic heuristic,
    const std::vector<data::TrustPair>& pairs,
    const HeuristicOptions& options) {
  // Scores are mapped through the fixed monotone squash p = s / (1 + s)
  // (scores are non-negative). Using a batch-independent map keeps a
  // threshold calibrated on training pairs valid on test pairs.
  std::vector<float> probs(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    double s =
        HeuristicScore(graph, heuristic, pairs[i].src, pairs[i].dst, options);
    probs[i] = static_cast<float>(s / (1.0 + s));
  }
  return probs;
}

}  // namespace ahntp::models
