#ifndef AHNTP_MODELS_CONV_LAYERS_H_
#define AHNTP_MODELS_CONV_LAYERS_H_

#include <vector>

#include "autograd/ops.h"
#include "models/graph_ops.h"
#include "nn/linear.h"
#include "tensor/workspace.h"

namespace ahntp::models {

/// Generic propagation layer Y = act(Op * X * W + b) for a fixed sparse
/// operator Op (GCN's A_hat, a directed transition, a hypergraph spectral
/// adjacency, ...).
class SparseConvLayer : public nn::Module {
 public:
  SparseConvLayer(tensor::CsrMatrix op, size_t in_features,
                  size_t out_features, Rng* rng);

  autograd::Variable Forward(const autograd::Variable& x) const;

  /// Tape-free forward; bit-identical to Forward(). Returns a `ws` buffer.
  tensor::Matrix& Infer(const tensor::Matrix& x, tensor::Workspace* ws) const;

  std::vector<autograd::Variable> Parameters() const override {
    return linear_.Parameters();
  }
  std::vector<nn::Module*> Submodules() override { return {&linear_}; }

 private:
  tensor::CsrMatrix op_;
  nn::Linear linear_;
};

/// Single-head graph attention layer (Velickovic et al.), built on segment
/// ops over an edge-pair list: score(i <- j) = LeakyReLU(a_d^T Wh_i +
/// a_s^T Wh_j), softmax over j per destination i, output = sum_j alpha Wh_j.
class GatLayer : public nn::Module {
 public:
  GatLayer(AttentionEdges edges, size_t num_nodes, size_t in_features,
           size_t out_features, Rng* rng, float leaky_slope = 0.2f);

  autograd::Variable Forward(const autograd::Variable& x) const;

  /// Tape-free forward; bit-identical to Forward(). Returns a `ws` buffer.
  tensor::Matrix& Infer(const tensor::Matrix& x, tensor::Workspace* ws) const;

  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override { return {&transform_}; }

 private:
  AttentionEdges edges_;
  size_t num_nodes_;
  nn::Linear transform_;
  autograd::Variable attn_src_;  // out x 1
  autograd::Variable attn_dst_;  // out x 1
  float leaky_slope_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_CONV_LAYERS_H_
