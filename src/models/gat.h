#ifndef AHNTP_MODELS_GAT_H_
#define AHNTP_MODELS_GAT_H_

#include <memory>

#include "models/conv_layers.h"
#include "models/encoder.h"

namespace ahntp::models {

/// GAT baseline (Section V-A.2(1)): stacked single-head graph attention
/// layers over the (undirected view of the) training trust graph.
class Gat : public Encoder {
 public:
  explicit Gat(const ModelInputs& inputs);

  autograd::Variable EncodeUsers() override;
  tensor::Matrix InferUsers(tensor::Workspace* ws) override;
  size_t embedding_dim() const override { return out_dim_; }
  std::string name() const override { return "GAT"; }
  std::vector<autograd::Variable> Parameters() const override;
  std::vector<nn::Module*> Submodules() override;

 private:
  autograd::Variable features_;
  std::vector<std::unique_ptr<GatLayer>> layers_;
  size_t out_dim_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_GAT_H_
