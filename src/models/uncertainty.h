#ifndef AHNTP_MODELS_UNCERTAINTY_H_
#define AHNTP_MODELS_UNCERTAINTY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/split.h"
#include "models/trust_predictor.h"

namespace ahntp::models {

/// Knobs for SeedEnsemble's disagreement-based confidence (DESIGN.md §16).
struct EnsembleOptions {
  /// Disagreement temperature: confidence = exp(-stddev / tau). Smaller tau
  /// punishes disagreement harder (confidence falls faster); tau must be
  /// positive (CHECK at ensemble construction).
  double tau = 0.05;

  /// Extra stochastic forward samples of the canonical member with
  /// deterministic input dropout on the gathered embedding rows
  /// (TrustPredictor::PredictProbabilitiesWithInputDropout). 0 disables —
  /// disagreement then comes from the seed members alone. Each sample s
  /// draws its masks from `mc_seed + s`.
  int mc_dropout_samples = 0;
  /// Dropout rate for those samples; must lie in (0, 1) when samples > 0.
  float mc_dropout_rate = 0.1f;
  uint64_t mc_seed = 0x5EEDBA5Eull;
};

/// A seed ensemble over trained TrustPredictors: member 0 is the canonical
/// model whose probabilities are returned as the scores — bit-identical to
/// calling member 0's PredictProbabilities directly, so wrapping a model in
/// an ensemble never moves an existing score digest. The remaining members
/// (models trained from different init seeds) plus optional MC-dropout
/// samples of member 0 only feed the *confidence* channel: per pair,
/// confidence = exp(-stddev / tau) over all member/sample probabilities, a
/// deterministic fixed-order double reduction, so confidence is identical
/// at any --threads=N and across sharded vs monolithic inference plans.
class SeedEnsemble {
 public:
  /// `members` must be non-empty; all members score the same user
  /// population. Members are shared_ptr so a serve backend, a bench, and
  /// the ensemble can co-own the same trained models.
  SeedEnsemble(std::vector<std::shared_ptr<TrustPredictor>> members,
               EnsembleOptions options = {});

  struct Scored {
    /// Canonical (member 0) probabilities.
    std::vector<float> scores;
    /// Per-pair confidence in (0, 1]; 1.0 = the members fully agree.
    std::vector<float> confidence;
  };

  /// Scores `pairs` through every member's compiled inference plan and
  /// folds the spread into confidence.
  Scored Score(const std::vector<data::TrustPair>& pairs);

  TrustPredictor& canonical() { return *members_[0]; }
  size_t num_members() const { return members_.size(); }
  /// Seed members plus MC-dropout samples — the disagreement sample count.
  size_t num_votes() const {
    return members_.size() +
           static_cast<size_t>(options_.mc_dropout_samples);
  }
  const EnsembleOptions& options() const { return options_; }

 private:
  std::vector<std::shared_ptr<TrustPredictor>> members_;
  EnsembleOptions options_;
};

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_UNCERTAINTY_H_
