#include "models/trust_predictor.h"

#include "common/check.h"

namespace ahntp::models {

using autograd::Variable;

TrustPredictor::TrustPredictor(std::shared_ptr<Encoder> encoder,
                               const TrustPredictorConfig& config, Rng* rng)
    : encoder_(std::move(encoder)) {
  AHNTP_CHECK(encoder_ != nullptr && rng != nullptr);
  std::vector<size_t> dims;
  dims.push_back(encoder_->embedding_dim());
  dims.insert(dims.end(), config.tower_dims.begin(), config.tower_dims.end());
  AHNTP_CHECK_GE(dims.size(), 2u) << "tower needs at least one layer";
  tower_src_ = std::make_unique<nn::Mlp>(dims, rng, nn::Activation::kRelu,
                                         nn::Activation::kNone,
                                         config.dropout);
  tower_dst_ = std::make_unique<nn::Mlp>(dims, rng, nn::Activation::kRelu,
                                         nn::Activation::kNone,
                                         config.dropout);
}

TrustPredictor::PairOutput TrustPredictor::Forward(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_CHECK(!pairs.empty());
  encoder_->SetTraining(training_);
  tower_src_->SetTraining(training_);
  tower_dst_->SetTraining(training_);
  Variable embeddings = encoder_->EncodeUsers();
  std::vector<int> src_idx;
  std::vector<int> dst_idx;
  src_idx.reserve(pairs.size());
  dst_idx.reserve(pairs.size());
  for (const data::TrustPair& p : pairs) {
    src_idx.push_back(p.src);
    dst_idx.push_back(p.dst);
  }
  Variable t_src =
      tower_src_->Forward(autograd::GatherRows(embeddings, src_idx));
  Variable t_dst =
      tower_dst_->Forward(autograd::GatherRows(embeddings, dst_idx));
  PairOutput out;
  out.cosine = autograd::PairwiseCosine(t_src, t_dst);
  // p = (1 + cos) / 2, the fixed rescaling discussed in the class comment.
  out.probability =
      autograd::AddScalar(autograd::Scale(out.cosine, 0.5f), 0.5f);
  out.embeddings = embeddings;
  return out;
}

std::vector<float> TrustPredictor::PredictProbabilities(
    const std::vector<data::TrustPair>& pairs) {
  bool was_training = training();
  SetTraining(false);
  PairOutput out = Forward(pairs);
  SetTraining(was_training);
  std::vector<float> probs(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    probs[i] = out.probability.value().At(i, 0);
  }
  return probs;
}

std::vector<Variable> TrustPredictor::Parameters() const {
  std::vector<Variable> params = encoder_->Parameters();
  for (auto& p : tower_src_->Parameters()) params.push_back(p);
  for (auto& p : tower_dst_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace ahntp::models
