#include "models/trust_predictor.h"

#include "common/check.h"
#include "models/inference_plan.h"

namespace ahntp::models {

using autograd::Variable;

TrustPredictor::TrustPredictor(std::shared_ptr<Encoder> encoder,
                               const TrustPredictorConfig& config, Rng* rng)
    : encoder_(std::move(encoder)) {
  AHNTP_CHECK(encoder_ != nullptr && rng != nullptr);
  std::vector<size_t> dims;
  dims.push_back(encoder_->embedding_dim());
  dims.insert(dims.end(), config.tower_dims.begin(), config.tower_dims.end());
  AHNTP_CHECK_GE(dims.size(), 2u) << "tower needs at least one layer";
  tower_src_ = std::make_unique<nn::Mlp>(dims, rng, nn::Activation::kRelu,
                                         nn::Activation::kNone,
                                         config.dropout);
  tower_dst_ = std::make_unique<nn::Mlp>(dims, rng, nn::Activation::kRelu,
                                         nn::Activation::kNone,
                                         config.dropout);
}

TrustPredictor::~TrustPredictor() = default;

TrustPredictor::PairOutput TrustPredictor::Forward(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_CHECK(!pairs.empty());
  // A training forward precedes a parameter update, so any cached
  // embeddings are about to go stale. (SetTraining now recurses through
  // Submodules(), so the per-call flag pushes are gone.)
  if (training_ && plan_) plan_->Invalidate();
  if (training_ && sharded_plan_) sharded_plan_->Invalidate();
  Variable embeddings = encoder_->EncodeUsers();
  std::vector<int> src_idx;
  std::vector<int> dst_idx;
  src_idx.reserve(pairs.size());
  dst_idx.reserve(pairs.size());
  for (const data::TrustPair& p : pairs) {
    src_idx.push_back(p.src);
    dst_idx.push_back(p.dst);
  }
  Variable t_src =
      tower_src_->Forward(autograd::GatherRows(embeddings, src_idx));
  Variable t_dst =
      tower_dst_->Forward(autograd::GatherRows(embeddings, dst_idx));
  PairOutput out;
  out.cosine = autograd::PairwiseCosine(t_src, t_dst);
  // p = (1 + cos) / 2, the fixed rescaling discussed in the class comment.
  out.probability =
      autograd::AddScalar(autograd::Scale(out.cosine, 0.5f), 0.5f);
  out.embeddings = embeddings;
  return out;
}

std::vector<float> TrustPredictor::PredictProbabilities(
    const std::vector<data::TrustPair>& pairs) {
  bool was_training = training();
  SetTraining(false);
  std::vector<float> probs;
  if (sharded_plan_) {
    // Spill-file I/O errors are environment failures, not model state; fail
    // loudly rather than serve from a half-resident store.
    auto result = sharded_plan_->Score(pairs);
    AHNTP_CHECK_OK(result.status());
    probs = std::move(result).value();
  } else {
    probs = Plan().Score(pairs);
  }
  SetTraining(was_training);
  return probs;
}

std::vector<float> TrustPredictor::PredictProbabilitiesWithInputDropout(
    const std::vector<data::TrustPair>& pairs, float rate, uint64_t seed) {
  bool was_training = training();
  SetTraining(false);
  std::vector<float> probs;
  if (sharded_plan_) {
    auto result = sharded_plan_->ScoreWithInputDropout(pairs, rate, seed);
    AHNTP_CHECK_OK(result.status());
    probs = std::move(result).value();
  } else {
    probs = Plan().ScoreWithInputDropout(pairs, rate, seed);
  }
  SetTraining(was_training);
  return probs;
}

void TrustPredictor::WarmInferencePlan() {
  if (sharded_plan_) {
    AHNTP_CHECK_OK(sharded_plan_->EnsureBuilt());
    return;
  }
  Plan().EnsureBuilt();
}

void TrustPredictor::EnableShardedInference(const ShardedPlanOptions& options) {
  // The predictor-level precision wins over whatever the options carry, so
  // SetInferencePrecision + EnableShardedInference compose in either order.
  ShardedPlanOptions opts = options;
  opts.precision = precision_;
  sharded_plan_ = std::make_unique<ShardedInferencePlan>(this, opts);
}

void TrustPredictor::DisableShardedInference() { sharded_plan_.reset(); }

void TrustPredictor::SetInferencePrecision(PlanPrecision precision) {
  precision_ = precision;
  if (plan_) plan_->SetPrecision(precision);
  if (sharded_plan_) sharded_plan_->SetPrecision(precision);
}

Status TrustPredictor::RefreshPlanRows(const std::vector<int>& users,
                                       const tensor::Matrix& rows) {
  if (plan_) {
    AHNTP_RETURN_IF_ERROR(plan_->RefreshRows(users, rows));
  }
  if (sharded_plan_) {
    AHNTP_RETURN_IF_ERROR(sharded_plan_->RefreshRows(users, rows));
  }
  return Status::Ok();
}

void TrustPredictor::InvalidateCaches() {
  nn::Module::InvalidateCaches();
  if (plan_) plan_->Invalidate();
  if (sharded_plan_) sharded_plan_->Invalidate();
}

InferencePlan& TrustPredictor::Plan() {
  if (!plan_) {
    plan_ = std::make_unique<InferencePlan>(this);
    plan_->SetPrecision(precision_);
  }
  return *plan_;
}

std::vector<Variable> TrustPredictor::Parameters() const {
  std::vector<Variable> params = encoder_->Parameters();
  for (auto& p : tower_src_->Parameters()) params.push_back(p);
  for (auto& p : tower_dst_->Parameters()) params.push_back(p);
  return params;
}

std::vector<nn::Module*> TrustPredictor::Submodules() {
  return {encoder_.get(), tower_src_.get(), tower_dst_.get()};
}

}  // namespace ahntp::models
