#ifndef AHNTP_MODELS_HEURISTICS_H_
#define AHNTP_MODELS_HEURISTICS_H_

#include <string>
#include <vector>

#include "data/split.h"
#include "graph/digraph.h"

namespace ahntp::models {

/// Classic non-learned link/trust prediction scores — the paper's
/// "propagation-based" related-work category (Section II-A.1). These need
/// no training; the experiment harness calibrates a decision threshold on
/// the training pairs exactly as for the learned models.
enum class Heuristic {
  /// |N(u) ∩ N(v)| over undirected neighbourhoods.
  kCommonNeighbors,
  /// |N(u) ∩ N(v)| / |N(u) ∪ N(v)|.
  kJaccard,
  /// sum_{w in N(u) ∩ N(v)} 1 / log(1 + |N(w)|).
  kAdamicAdar,
  /// Truncated Katz index: sum_l beta^l * (#paths of length l), l <= 3.
  kKatz,
  /// Trust propagation a la TidalTrust/MoleTrust: max over bounded-length
  /// directed paths of the product of per-hop attenuation.
  kPropagation,
};

/// Human-readable name ("Jaccard").
std::string HeuristicName(Heuristic heuristic);

/// Parses a name; returns NotFound for unknown ones.
Result<Heuristic> ParseHeuristic(const std::string& name);

/// Options for the path-based scores.
struct HeuristicOptions {
  /// Katz damping per hop.
  double katz_beta = 0.05;
  /// Maximum path length explored by Katz and Propagation.
  int max_path_length = 3;
  /// Per-hop attenuation of the Propagation score.
  double propagation_decay = 0.6;
};

/// Scores one ordered user pair on `graph`. Higher = more likely trust.
double HeuristicScore(const graph::Digraph& graph, Heuristic heuristic,
                      int src, int dst, const HeuristicOptions& options = {});

/// Scores a batch of pairs; probabilities are min-max normalized into
/// [0, 1] over the batch so they compose with the shared metric tooling.
std::vector<float> HeuristicProbabilities(
    const graph::Digraph& graph, Heuristic heuristic,
    const std::vector<data::TrustPair>& pairs,
    const HeuristicOptions& options = {});

}  // namespace ahntp::models

#endif  // AHNTP_MODELS_HEURISTICS_H_
