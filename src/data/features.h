#ifndef AHNTP_DATA_FEATURES_H_
#define AHNTP_DATA_FEATURES_H_

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace ahntp::data {

/// Options for assembling the initial user feature matrix X (Section III-C
/// input). All models in the evaluation share the same X, as the paper's
/// experimental protocol prescribes.
struct FeatureOptions {
  /// One-hot encode categorical attribute columns.
  bool include_attributes = true;
  /// Append log-scaled purchase count and mean rating.
  bool include_behavior = true;
  /// Append the L1-normalized item-category histogram of purchases.
  bool include_category_histogram = true;
};

/// Builds the (num_users x C) feature matrix. Trust edges are deliberately
/// NOT encoded here — structure reaches the models only through their graph
/// or hypergraph operators, keeping the comparison fair.
tensor::Matrix BuildFeatureMatrix(const SocialDataset& dataset,
                                  const FeatureOptions& options = {});

/// Dimension the matrix returned by BuildFeatureMatrix will have.
size_t FeatureDimension(const SocialDataset& dataset,
                        const FeatureOptions& options = {});

}  // namespace ahntp::data

#endif  // AHNTP_DATA_FEATURES_H_
