#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace ahntp::data {

GeneratorConfig GeneratorConfig::EpinionsLike(double scale) {
  // scale > 1.0 upscales for out-of-core sweeps; density knobs stay fixed so
  // the graph keeps its Epinions-like per-user shape at any population.
  AHNTP_CHECK_GT(scale, 0.0);
  GeneratorConfig config;
  config.name = "epinions";
  config.num_users = static_cast<size_t>(std::lround(8935 * scale));
  config.num_items = static_cast<size_t>(std::lround(21335 * scale));
  config.avg_trust_out_degree = 65948.0 / 8935.0;   // ~7.38
  config.avg_purchases_per_user = 220673.0 / 8935.0;  // ~24.7
  config.num_communities = std::max<size_t>(
      6, static_cast<size_t>(std::lround(20 * std::sqrt(scale))));
  config.num_item_categories = 25;
  config.seed = 42;
  return config;
}

GeneratorConfig GeneratorConfig::CiaoLike(double scale) {
  AHNTP_CHECK_GT(scale, 0.0);
  GeneratorConfig config;
  config.name = "ciao";
  config.num_users = static_cast<size_t>(std::lround(4104 * scale));
  config.num_items = static_cast<size_t>(std::lround(75071 * scale));
  config.avg_trust_out_degree = 41675.0 / 4104.0;     // ~10.2
  config.avg_purchases_per_user = 171405.0 / 4104.0;  // ~41.8
  config.num_communities = std::max<size_t>(
      6, static_cast<size_t>(std::lround(14 * std::sqrt(scale))));
  config.num_item_categories = 28;
  // Ciao's denser trust graph reciprocates more (observed in the original
  // data); keep a slightly higher closure rate as well.
  config.reciprocation_prob = 0.35;
  config.triadic_closure_prob = 0.5;
  config.seed = 4104;
  return config;
}

namespace {

/// Per-community sampling pool implementing preferential attachment: every
/// node appears once at construction and once more per received edge, so a
/// uniform draw from `slots` is proportional to in_degree + 1.
struct AttachmentPool {
  std::vector<int> slots;

  void Seed(const std::vector<int>& members) {
    slots.insert(slots.end(), members.begin(), members.end());
  }
  void Reward(int node) { slots.push_back(node); }
  int Sample(Rng* rng) const {
    AHNTP_CHECK(!slots.empty());
    return slots[static_cast<size_t>(rng->NextBounded(slots.size()))];
  }
};

/// State the purchase phase needs from the social phases.
struct SocialPhaseResult {
  std::vector<double> activity;  // heavy-tailed per-user source rate
  size_t num_edges = 0;
};

/// Runs the community, attribute, and trust-edge phases. Fills ds's
/// metadata fields (name, sizes, communities, attributes) and delivers each
/// accepted trust edge to `sink` in insertion order — the *only* edge
/// storage this function keeps is the out-adjacency (needed by the process
/// itself for triadic closure and duplicate rejection), never a flat edge
/// list. Generate() and StreamTrustEdges() both run through here, so their
/// RNG streams — and therefore their edge sequences — are identical by
/// construction.
SocialPhaseResult RunSocialPhases(const GeneratorConfig& cfg, Rng* rng,
                                  SocialDataset* ds, const EdgeSink& sink) {
  AHNTP_CHECK_GE(cfg.num_users, 4u);
  AHNTP_CHECK_GE(cfg.num_communities, 1u);

  ds->name = cfg.name;
  ds->num_users = cfg.num_users;
  ds->num_items = cfg.num_items;

  // --- Communities: multinomial with mildly uneven sizes. -----------------
  std::vector<double> community_weights(cfg.num_communities);
  for (auto& w : community_weights) w = 0.5 + rng->NextDouble();
  // Prefix-sum sampling consumes the RNG stream identically to
  // rng->SampleDiscrete(community_weights) at O(log K) per draw.
  DiscreteDistribution community_dist(community_weights);
  ds->communities.resize(cfg.num_users);
  std::vector<std::vector<int>> community_members(cfg.num_communities);
  for (size_t u = 0; u < cfg.num_users; ++u) {
    int c = static_cast<int>(community_dist.Sample(rng));
    ds->communities[u] = c;
    community_members[static_cast<size_t>(c)].push_back(static_cast<int>(u));
  }

  // --- Attributes: archetype per community, noisy adoption. ---------------
  struct AttrSpec {
    const char* name;
    size_t cardinality;
  };
  const AttrSpec specs[] = {
      {"hobby", cfg.hobby_cardinality},
      {"school", cfg.school_cardinality},
      {"city", cfg.city_cardinality},
      {"age_band", cfg.age_bands},
  };
  for (const AttrSpec& spec : specs) {
    ds->attribute_names.emplace_back(spec.name);
    ds->attribute_cardinalities.push_back(static_cast<int>(spec.cardinality));
    std::vector<int> archetype(cfg.num_communities);
    for (auto& v : archetype) {
      v = static_cast<int>(rng->NextBounded(spec.cardinality));
    }
    std::vector<int> column(cfg.num_users);
    for (size_t u = 0; u < cfg.num_users; ++u) {
      if (rng->Bernoulli(cfg.attribute_fidelity)) {
        column[u] = archetype[static_cast<size_t>(ds->communities[u])];
      } else {
        column[u] = static_cast<int>(rng->NextBounded(spec.cardinality));
      }
    }
    ds->attributes.push_back(std::move(column));
  }

  // --- Trust edges: homophily + preferential attachment + closure. --------
  const size_t target_edges = static_cast<size_t>(std::lround(
      cfg.avg_trust_out_degree * static_cast<double>(cfg.num_users)));
  std::vector<std::vector<int>> out_neighbors(cfg.num_users);
  AttachmentPool global_pool;
  std::vector<AttachmentPool> community_pools(cfg.num_communities);
  {
    std::vector<int> everyone(cfg.num_users);
    for (size_t u = 0; u < cfg.num_users; ++u) everyone[u] = static_cast<int>(u);
    global_pool.Seed(everyone);
    for (size_t c = 0; c < cfg.num_communities; ++c) {
      community_pools[c].Seed(community_members[c]);
    }
  }
  // Heavy-tailed activity so some users are much more prolific sources.
  std::vector<double> activity(cfg.num_users);
  for (auto& a : activity) a = std::exp(rng->Normal(0.0, 1.0));
  DiscreteDistribution activity_dist(activity);

  size_t emitted = 0;
  // Duplicate rejection scans the source's out-list directly (out-degrees
  // are small — mean ~cfg.avg_trust_out_degree): the decision is identical
  // to a (src, dst)-set lookup, without the set's per-edge node overhead.
  auto add_edge = [&](int src, int dst) -> bool {
    if (src == dst) return false;
    auto& src_out = out_neighbors[static_cast<size_t>(src)];
    if (std::find(src_out.begin(), src_out.end(), dst) != src_out.end()) {
      return false;
    }
    sink({src, dst, static_cast<int64_t>(emitted)});
    ++emitted;
    src_out.push_back(dst);
    global_pool.Reward(dst);
    community_pools[static_cast<size_t>(
                        ds->communities[static_cast<size_t>(dst)])]
        .Reward(dst);
    return true;
  };

  size_t attempts = 0;
  const size_t max_attempts = target_edges * 50;
  while (emitted < target_edges && attempts < max_attempts) {
    ++attempts;
    int src = static_cast<int>(activity_dist.Sample(rng));
    int dst = -1;
    const auto& src_out = out_neighbors[static_cast<size_t>(src)];
    if (rng->Bernoulli(cfg.triadic_closure_prob) && !src_out.empty()) {
      // Friend-of-friend: pick a neighbour w, then one of w's neighbours.
      int w = src_out[static_cast<size_t>(rng->NextBounded(src_out.size()))];
      const auto& w_out = out_neighbors[static_cast<size_t>(w)];
      if (!w_out.empty()) {
        dst = w_out[static_cast<size_t>(rng->NextBounded(w_out.size()))];
      }
    }
    if (dst < 0) {
      bool intra = rng->Bernoulli(cfg.intra_community_prob);
      const AttachmentPool& pool =
          intra ? community_pools[static_cast<size_t>(
                      ds->communities[static_cast<size_t>(src)])]
                : global_pool;
      if (rng->Bernoulli(cfg.preferential_attachment)) {
        dst = pool.Sample(rng);
      } else if (intra) {
        const auto& members = community_members[static_cast<size_t>(
            ds->communities[static_cast<size_t>(src)])];
        dst = members[static_cast<size_t>(rng->NextBounded(members.size()))];
      } else {
        dst = static_cast<int>(rng->NextBounded(cfg.num_users));
      }
    }
    if (!add_edge(src, dst)) continue;
    if (emitted < target_edges && rng->Bernoulli(cfg.reciprocation_prob)) {
      add_edge(dst, src);
    }
  }

  SocialPhaseResult result;
  result.activity = std::move(activity);
  result.num_edges = emitted;
  return result;
}

}  // namespace

namespace {

/// The full clean generation pipeline on an externally owned RNG, so the
/// adversarial path can keep drawing from the same stream afterwards.
SocialDataset GenerateClean(const GeneratorConfig& cfg, Rng* rng_ptr) {
  Rng& rng = *rng_ptr;
  SocialDataset ds;
  SocialPhaseResult social = RunSocialPhases(
      cfg, &rng, &ds,
      [&ds](const StreamedEdge& e) { ds.trust_edges.push_back({e.src, e.dst}); });
  const std::vector<double>& activity = social.activity;

  // Normalized insertion order doubles as the edge creation time (the
  // preferential-attachment process is itself temporal).
  ds.trust_edge_times.resize(ds.trust_edges.size());
  if (!ds.trust_edges.empty()) {
    double denom = static_cast<double>(
        std::max<size_t>(ds.trust_edges.size() - 1, 1));
    for (size_t i = 0; i < ds.trust_edges.size(); ++i) {
      ds.trust_edge_times[i] = static_cast<double>(i) / denom;
    }
  }

  // --- Items & purchases. --------------------------------------------------
  ds.num_item_categories = static_cast<int>(cfg.num_item_categories);
  ds.item_categories.resize(cfg.num_items);
  std::vector<std::vector<int>> items_by_category(cfg.num_item_categories);
  for (size_t i = 0; i < cfg.num_items; ++i) {
    int c = static_cast<int>(rng.NextBounded(cfg.num_item_categories));
    ds.item_categories[i] = c;
    items_by_category[static_cast<size_t>(c)].push_back(static_cast<int>(i));
  }
  // Each community prefers a small bundle of categories.
  std::vector<std::vector<int>> preferred(cfg.num_communities);
  for (size_t c = 0; c < cfg.num_communities; ++c) {
    size_t bundle = std::min<size_t>(3, cfg.num_item_categories);
    auto picks = rng.SampleWithoutReplacement(cfg.num_item_categories, bundle);
    for (size_t p : picks) preferred[c].push_back(static_cast<int>(p));
  }
  if (cfg.num_items > 0) {
    for (size_t u = 0; u < cfg.num_users; ++u) {
      double expected = cfg.avg_purchases_per_user * activity[u] /
                        std::exp(0.5);  // lognormal mean correction
      size_t count = static_cast<size_t>(
          std::max(1.0, rng.Normal(expected, expected * 0.3)));
      const auto& prefs = preferred[static_cast<size_t>(ds.communities[u])];
      for (size_t k = 0; k < count; ++k) {
        int item = -1;
        bool preferred_draw =
            rng.Bernoulli(cfg.category_affinity) && !prefs.empty();
        if (preferred_draw) {
          const auto& bucket = items_by_category[static_cast<size_t>(
              prefs[static_cast<size_t>(rng.NextBounded(prefs.size()))])];
          if (!bucket.empty()) {
            item = bucket[static_cast<size_t>(rng.NextBounded(bucket.size()))];
          }
        }
        if (item < 0) {
          item = static_cast<int>(rng.NextBounded(cfg.num_items));
        }
        float base = preferred_draw ? 4.2f : 3.6f;
        float rating = static_cast<float>(rng.Normal(base, 0.7));
        rating = std::min(5.0f, std::max(1.0f, rating));
        // Snap to the half-star scale review sites use.
        rating = std::round(rating * 2.0f) / 2.0f;
        ds.purchases.push_back({static_cast<int>(u), item, rating});
      }
    }
  }

  AHNTP_CHECK_OK(ds.Validate());
  return ds;
}

/// Packed (src, dst) key for O(1) duplicate-edge rejection during the
/// attack overlay (the clean phases use out-list scans; the overlay probes
/// arbitrary pairs, so a set is the right shape here).
int64_t EdgeKey(size_t num_users, int src, int dst) {
  return static_cast<int64_t>(src) * static_cast<int64_t>(num_users) + dst;
}

/// Applies the (already validated) attack overlay, continuing `rng`'s
/// stream where the clean phases left off.
void ApplyAttacks(const GeneratorConfig& cfg, const AttackSpec& attack,
                  Rng* rng, SocialDataset* ds, AttackReport* report) {
  report->clean_edges = ds->trust_edges.size();

  std::unordered_set<int64_t> existing;
  existing.reserve(ds->trust_edges.size() * 2);
  for (const graph::Edge& e : ds->trust_edges) {
    existing.insert(EdgeKey(cfg.num_users, e.src, e.dst));
  }
  auto add_edge = [&](int src, int dst) -> bool {
    if (src == dst) return false;
    if (!existing.insert(EdgeKey(cfg.num_users, src, dst)).second) {
      return false;
    }
    ds->trust_edges.push_back({src, dst});
    return true;
  };

  // --- Distribution shift first: it rewrites *clean* tail edges, so it
  // must run before attack edges are appended (the attack edges are part
  // of the hostile regime already). ---------------------------------------
  if (attack.shift_fraction > 0.0) {
    const size_t clean = ds->trust_edges.size();
    const size_t window_start = clean - clean / 4;
    for (size_t i = window_start; i < clean; ++i) {
      if (!rng->Bernoulli(attack.shift_fraction)) continue;
      graph::Edge& edge = ds->trust_edges[i];
      const int src_comm =
          ds->communities[static_cast<size_t>(edge.src)];
      // Bounded re-target search: a cross-community, non-duplicate, non-self
      // destination; a full probe run failing leaves the edge clean.
      for (int probe = 0; probe < 8; ++probe) {
        int dst = static_cast<int>(rng->NextBounded(cfg.num_users));
        if (dst == edge.src || dst == edge.dst) continue;
        if (ds->communities[static_cast<size_t>(dst)] == src_comm) continue;
        if (existing.count(EdgeKey(cfg.num_users, edge.src, dst)) > 0) {
          continue;
        }
        existing.erase(EdgeKey(cfg.num_users, edge.src, edge.dst));
        existing.insert(EdgeKey(cfg.num_users, edge.src, dst));
        edge.dst = dst;
        ++report->shifted_edges;
        break;
      }
    }
  }

  // --- Attacker roster: disjoint sybil-ring members, then spam hubs. ------
  const size_t num_sybils = attack.sybil_rings * attack.sybil_ring_size;
  const size_t num_attackers = num_sybils + attack.spam_hubs;
  std::vector<size_t> roster;
  if (num_attackers > 0) {
    roster = rng->SampleWithoutReplacement(cfg.num_users, num_attackers);
  }

  // --- Sybil rings: mutual cycle + chords, plus influencer-targeted
  // attack edges (in-degree-proportional victim sampling). -----------------
  if (num_sybils > 0) {
    std::vector<double> indegree(cfg.num_users, 1.0);
    for (const graph::Edge& e : ds->trust_edges) {
      indegree[static_cast<size_t>(e.dst)] += 1.0;
    }
    DiscreteDistribution victim_dist(indegree);
    for (size_t r = 0; r < attack.sybil_rings; ++r) {
      const size_t* members = roster.data() + r * attack.sybil_ring_size;
      const size_t m = attack.sybil_ring_size;
      for (size_t i = 0; i < m; ++i) {
        const int a = static_cast<int>(members[i]);
        const int next = static_cast<int>(members[(i + 1) % m]);
        if (add_edge(a, next)) ++report->sybil_edges;
        if (add_edge(next, a)) ++report->sybil_edges;
        if (m > 3) {
          const int chord = static_cast<int>(members[(i + 2) % m]);
          if (add_edge(a, chord)) ++report->sybil_edges;
        }
      }
      for (size_t i = 0; i < m; ++i) {
        const int a = static_cast<int>(members[i]);
        for (size_t t = 0; t < attack.sybil_targets_per_member; ++t) {
          // The draw always happens (stream shape is data-independent);
          // duplicates are simply dropped.
          const int victim = static_cast<int>(victim_dist.Sample(rng));
          if (add_edge(a, victim)) ++report->sybil_edges;
        }
      }
    }
  }

  // --- Trust-spam hubs: indiscriminate mass out-edges. --------------------
  for (size_t h = 0; h < attack.spam_hubs; ++h) {
    const int hub = static_cast<int>(roster[num_sybils + h]);
    for (size_t e = 0; e < attack.spam_edges_per_hub; ++e) {
      const int dst = static_cast<int>(rng->NextBounded(cfg.num_users));
      if (add_edge(hub, dst)) ++report->spam_edges;
    }
  }

  // --- Camouflage: attackers adopt an honest role model's attributes and
  // a slice of their purchase history. -------------------------------------
  report->attackers.assign(roster.begin(), roster.end());
  std::sort(report->attackers.begin(), report->attackers.end());
  if (attack.camouflage_fraction > 0.0 && !roster.empty()) {
    std::vector<std::vector<size_t>> purchases_by_user(cfg.num_users);
    for (size_t p = 0; p < ds->purchases.size(); ++p) {
      purchases_by_user[static_cast<size_t>(ds->purchases[p].user)]
          .push_back(p);
    }
    std::unordered_set<size_t> attacker_set(roster.begin(), roster.end());
    for (int attacker : report->attackers) {
      if (!rng->Bernoulli(attack.camouflage_fraction)) continue;
      // One draw, never self: an offset into the other num_users - 1 ids.
      size_t role = (static_cast<size_t>(attacker) + 1 +
                     rng->NextBounded(cfg.num_users - 1)) %
                    cfg.num_users;
      if (attacker_set.count(role) > 0) {
        // A fellow attacker makes a useless disguise; take the next honest
        // user in id order (deterministic, no extra draw).
        do {
          role = (role + 1) % cfg.num_users;
        } while (attacker_set.count(role) > 0);
      }
      for (auto& column : ds->attributes) {
        column[static_cast<size_t>(attacker)] = column[role];
      }
      const auto& basket = purchases_by_user[role];
      const size_t copies = std::min<size_t>(basket.size(), 20);
      for (size_t k = 0; k < copies; ++k) {
        Purchase copy = ds->purchases[basket[k]];
        copy.user = attacker;
        ds->purchases.push_back(copy);
        ++report->camouflage_purchases;
      }
      ++report->camouflaged_users;
    }
  }

  // Re-normalize edge times over the final list: ordering is preserved and
  // attack edges (appended last) land in the latest-time regime, which is
  // exactly where a temporal train/serve split puts hostile traffic.
  ds->trust_edge_times.resize(ds->trust_edges.size());
  const double denom = static_cast<double>(
      std::max<size_t>(ds->trust_edges.size() - 1, 1));
  for (size_t i = 0; i < ds->trust_edges.size(); ++i) {
    ds->trust_edge_times[i] = static_cast<double>(i) / denom;
  }
}

}  // namespace

SocialDataset SocialNetworkGenerator::Generate() const {
  Rng rng(config_.seed);
  return GenerateClean(config_, &rng);
}

bool AttackSpec::any() const {
  return sybil_rings > 0 || sybil_ring_size > 0 || spam_hubs > 0 ||
         spam_edges_per_hub > 0 || camouflage_fraction >= 0.0 ||
         shift_fraction >= 0.0;
}

Status AttackSpec::Validate(const GeneratorConfig& config) const {
  auto invalid = [](const std::string& what) {
    return Status::InvalidArgument("AttackSpec: " + what);
  };
  if (std::isnan(camouflage_fraction) || std::isnan(shift_fraction)) {
    return invalid("fractions must not be NaN");
  }
  if (config.num_users < 4) {
    return invalid("target config needs >= 4 users");
  }
  if ((sybil_rings > 0) != (sybil_ring_size > 0)) {
    return invalid("sybil_rings and sybil_ring_size must be set together "
                   "(zero-size rings are degenerate)");
  }
  if (sybil_rings > 0 && sybil_ring_size < 2) {
    return invalid("a sybil ring needs at least 2 members");
  }
  if (sybil_rings > config.num_users || sybil_ring_size > config.num_users ||
      sybil_rings * sybil_ring_size + spam_hubs > config.num_users) {
    return invalid("attacker roster exceeds the population");
  }
  if (sybil_rings > 0 && sybil_targets_per_member > config.num_users) {
    return invalid("sybil_targets_per_member exceeds the population");
  }
  if ((spam_hubs > 0) != (spam_edges_per_hub > 0)) {
    return invalid("spam_hubs and spam_edges_per_hub must be set together");
  }
  if (spam_hubs > 0 && spam_edges_per_hub > config.num_users) {
    return invalid("spam_edges_per_hub exceeds the population");
  }
  if (camouflage_fraction >= 0.0 &&
      !(camouflage_fraction > 0.0 && camouflage_fraction < 1.0)) {
    return invalid("camouflage_fraction must lie strictly in (0, 1)");
  }
  if (camouflage_fraction > 0.0 && sybil_rings == 0 && spam_hubs == 0) {
    return invalid("camouflage needs sybil or spam attackers to disguise");
  }
  if (shift_fraction >= 0.0 &&
      !(shift_fraction > 0.0 && shift_fraction < 1.0)) {
    return invalid("shift_fraction must lie strictly in (0, 1)");
  }
  if (shift_fraction > 0.0) {
    if (!std::isfinite(config.avg_trust_out_degree) ||
        std::lround(config.avg_trust_out_degree *
                    static_cast<double>(config.num_users)) <= 0) {
      return invalid("distribution shift needs a non-empty trust graph");
    }
    if (config.num_communities < 2) {
      return invalid("cross-community shift needs >= 2 communities");
    }
  }
  return Status::Ok();
}

AttackSpec AttackSpec::SybilRing(size_t rings, size_t ring_size) {
  AttackSpec spec;
  spec.sybil_rings = rings;
  spec.sybil_ring_size = ring_size;
  return spec;
}

AttackSpec AttackSpec::SpamHubs(size_t hubs, size_t edges_per_hub) {
  AttackSpec spec;
  spec.spam_hubs = hubs;
  spec.spam_edges_per_hub = edges_per_hub;
  return spec;
}

AttackSpec AttackSpec::Camouflaged(size_t rings, size_t ring_size,
                                   double fraction) {
  AttackSpec spec = SybilRing(rings, ring_size);
  spec.camouflage_fraction = fraction;
  return spec;
}

AttackSpec AttackSpec::Shift(double fraction) {
  AttackSpec spec;
  spec.shift_fraction = fraction;
  return spec;
}

Result<SocialDataset> SocialNetworkGenerator::GenerateWithAttacks(
    const AttackSpec& attack, AttackReport* report) const {
  AHNTP_RETURN_IF_ERROR(attack.Validate(config_));
  Rng rng(config_.seed);
  SocialDataset ds = GenerateClean(config_, &rng);
  AttackReport local;
  AttackReport* out = report != nullptr ? report : &local;
  *out = AttackReport();
  if (attack.any()) {
    ApplyAttacks(config_, attack, &rng, &ds, out);
    AHNTP_RETURN_IF_ERROR(ds.Validate());
  }
  return ds;
}

size_t SocialNetworkGenerator::StreamTrustEdges(
    const EdgeSink& sink, std::vector<int>* communities_out) const {
  AHNTP_CHECK(sink != nullptr);
  Rng rng(config_.seed);
  // The scratch dataset holds only the O(N) metadata columns the social
  // phases must materialize anyway (communities, attributes) — no edges.
  SocialDataset scratch;
  SocialPhaseResult social = RunSocialPhases(config_, &rng, &scratch, sink);
  if (communities_out != nullptr) {
    *communities_out = std::move(scratch.communities);
  }
  return social.num_edges;
}

ShardedEdgeBuffer::ShardedEdgeBuffer(int num_shards, size_t capacity,
                                     FlushFn flush)
    : capacity_(std::max<size_t>(1, capacity)), flush_(std::move(flush)) {
  AHNTP_CHECK_GE(num_shards, 1);
  AHNTP_CHECK(flush_ != nullptr);
  buffers_.resize(static_cast<size_t>(num_shards));
  for (auto& buf : buffers_) buf.reserve(capacity_);
}

void ShardedEdgeBuffer::Route(const StreamedEdge& edge, int src_shard,
                              int dst_shard) {
  Append(src_shard, edge);
  if (dst_shard != src_shard) Append(dst_shard, edge);
}

void ShardedEdgeBuffer::Append(int shard, const StreamedEdge& edge) {
  AHNTP_CHECK(shard >= 0 && static_cast<size_t>(shard) < buffers_.size());
  auto& buf = buffers_[static_cast<size_t>(shard)];
  buf.push_back(edge);
  if (buf.size() >= capacity_) {
    flush_(shard, buf);
    buf.clear();
  }
}

void ShardedEdgeBuffer::FlushAll() {
  for (size_t s = 0; s < buffers_.size(); ++s) {
    if (!buffers_[s].empty()) {
      flush_(static_cast<int>(s), buffers_[s]);
      buffers_[s].clear();
    }
  }
}

std::vector<graph::GraphDelta> GenerateTrustDeltas(
    const SocialDataset& dataset, const DeltaStreamConfig& config) {
  AHNTP_CHECK_GT(dataset.num_users, 1);
  AHNTP_CHECK_GT(dataset.num_items, 0);
  Rng rng(config.seed);
  const int n = dataset.num_users;

  // The live edge set, replayed with the store's applied semantics
  // (removes before adds, duplicates ignored) so removes in later deltas
  // target edges that actually exist at that point in the stream.
  std::vector<graph::Edge> live = dataset.trust_edges;
  std::unordered_set<int64_t> member;
  member.reserve(live.size() * 2);
  auto key = [n](int src, int dst) {
    return static_cast<int64_t>(src) * n + dst;
  };
  for (const graph::Edge& e : live) member.insert(key(e.src, e.dst));

  std::vector<graph::GraphDelta> deltas;
  deltas.reserve(config.num_deltas);
  for (size_t d = 0; d < config.num_deltas; ++d) {
    graph::GraphDelta delta;
    for (size_t r = 0; r < config.removes_per_delta && !live.empty(); ++r) {
      const size_t pick =
          static_cast<size_t>(rng.NextBounded(live.size()));
      graph::Edge victim = live[pick];
      delta.remove_edges.push_back(victim);
      if (member.erase(key(victim.src, victim.dst)) > 0) {
        live[pick] = live.back();
        live.pop_back();
      }
    }
    for (size_t a = 0; a < config.adds_per_delta; ++a) {
      const int src = static_cast<int>(rng.NextBounded(n));
      int dst = static_cast<int>(rng.NextBounded(n - 1));
      if (dst >= src) ++dst;  // uniform over dst != src
      delta.add_edges.push_back({src, dst});
      if (member.insert(key(src, dst)).second) {
        live.push_back({src, dst});
      }
    }
    for (size_t p = 0; p < config.ratings_per_delta; ++p) {
      graph::RatingDelta rating;
      rating.user = static_cast<int>(rng.NextBounded(n));
      rating.item = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(dataset.num_items)));
      rating.rating = static_cast<float>(rng.UniformInt(1, 5));
      delta.add_ratings.push_back(rating);
    }
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace ahntp::data
