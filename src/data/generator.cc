#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ahntp::data {

GeneratorConfig GeneratorConfig::EpinionsLike(double scale) {
  // scale > 1.0 upscales for out-of-core sweeps; density knobs stay fixed so
  // the graph keeps its Epinions-like per-user shape at any population.
  AHNTP_CHECK_GT(scale, 0.0);
  GeneratorConfig config;
  config.name = "epinions";
  config.num_users = static_cast<size_t>(std::lround(8935 * scale));
  config.num_items = static_cast<size_t>(std::lround(21335 * scale));
  config.avg_trust_out_degree = 65948.0 / 8935.0;   // ~7.38
  config.avg_purchases_per_user = 220673.0 / 8935.0;  // ~24.7
  config.num_communities = std::max<size_t>(
      6, static_cast<size_t>(std::lround(20 * std::sqrt(scale))));
  config.num_item_categories = 25;
  config.seed = 42;
  return config;
}

GeneratorConfig GeneratorConfig::CiaoLike(double scale) {
  AHNTP_CHECK_GT(scale, 0.0);
  GeneratorConfig config;
  config.name = "ciao";
  config.num_users = static_cast<size_t>(std::lround(4104 * scale));
  config.num_items = static_cast<size_t>(std::lround(75071 * scale));
  config.avg_trust_out_degree = 41675.0 / 4104.0;     // ~10.2
  config.avg_purchases_per_user = 171405.0 / 4104.0;  // ~41.8
  config.num_communities = std::max<size_t>(
      6, static_cast<size_t>(std::lround(14 * std::sqrt(scale))));
  config.num_item_categories = 28;
  // Ciao's denser trust graph reciprocates more (observed in the original
  // data); keep a slightly higher closure rate as well.
  config.reciprocation_prob = 0.35;
  config.triadic_closure_prob = 0.5;
  config.seed = 4104;
  return config;
}

namespace {

/// Per-community sampling pool implementing preferential attachment: every
/// node appears once at construction and once more per received edge, so a
/// uniform draw from `slots` is proportional to in_degree + 1.
struct AttachmentPool {
  std::vector<int> slots;

  void Seed(const std::vector<int>& members) {
    slots.insert(slots.end(), members.begin(), members.end());
  }
  void Reward(int node) { slots.push_back(node); }
  int Sample(Rng* rng) const {
    AHNTP_CHECK(!slots.empty());
    return slots[static_cast<size_t>(rng->NextBounded(slots.size()))];
  }
};

/// State the purchase phase needs from the social phases.
struct SocialPhaseResult {
  std::vector<double> activity;  // heavy-tailed per-user source rate
  size_t num_edges = 0;
};

/// Runs the community, attribute, and trust-edge phases. Fills ds's
/// metadata fields (name, sizes, communities, attributes) and delivers each
/// accepted trust edge to `sink` in insertion order — the *only* edge
/// storage this function keeps is the out-adjacency (needed by the process
/// itself for triadic closure and duplicate rejection), never a flat edge
/// list. Generate() and StreamTrustEdges() both run through here, so their
/// RNG streams — and therefore their edge sequences — are identical by
/// construction.
SocialPhaseResult RunSocialPhases(const GeneratorConfig& cfg, Rng* rng,
                                  SocialDataset* ds, const EdgeSink& sink) {
  AHNTP_CHECK_GE(cfg.num_users, 4u);
  AHNTP_CHECK_GE(cfg.num_communities, 1u);

  ds->name = cfg.name;
  ds->num_users = cfg.num_users;
  ds->num_items = cfg.num_items;

  // --- Communities: multinomial with mildly uneven sizes. -----------------
  std::vector<double> community_weights(cfg.num_communities);
  for (auto& w : community_weights) w = 0.5 + rng->NextDouble();
  // Prefix-sum sampling consumes the RNG stream identically to
  // rng->SampleDiscrete(community_weights) at O(log K) per draw.
  DiscreteDistribution community_dist(community_weights);
  ds->communities.resize(cfg.num_users);
  std::vector<std::vector<int>> community_members(cfg.num_communities);
  for (size_t u = 0; u < cfg.num_users; ++u) {
    int c = static_cast<int>(community_dist.Sample(rng));
    ds->communities[u] = c;
    community_members[static_cast<size_t>(c)].push_back(static_cast<int>(u));
  }

  // --- Attributes: archetype per community, noisy adoption. ---------------
  struct AttrSpec {
    const char* name;
    size_t cardinality;
  };
  const AttrSpec specs[] = {
      {"hobby", cfg.hobby_cardinality},
      {"school", cfg.school_cardinality},
      {"city", cfg.city_cardinality},
      {"age_band", cfg.age_bands},
  };
  for (const AttrSpec& spec : specs) {
    ds->attribute_names.emplace_back(spec.name);
    ds->attribute_cardinalities.push_back(static_cast<int>(spec.cardinality));
    std::vector<int> archetype(cfg.num_communities);
    for (auto& v : archetype) {
      v = static_cast<int>(rng->NextBounded(spec.cardinality));
    }
    std::vector<int> column(cfg.num_users);
    for (size_t u = 0; u < cfg.num_users; ++u) {
      if (rng->Bernoulli(cfg.attribute_fidelity)) {
        column[u] = archetype[static_cast<size_t>(ds->communities[u])];
      } else {
        column[u] = static_cast<int>(rng->NextBounded(spec.cardinality));
      }
    }
    ds->attributes.push_back(std::move(column));
  }

  // --- Trust edges: homophily + preferential attachment + closure. --------
  const size_t target_edges = static_cast<size_t>(std::lround(
      cfg.avg_trust_out_degree * static_cast<double>(cfg.num_users)));
  std::vector<std::vector<int>> out_neighbors(cfg.num_users);
  AttachmentPool global_pool;
  std::vector<AttachmentPool> community_pools(cfg.num_communities);
  {
    std::vector<int> everyone(cfg.num_users);
    for (size_t u = 0; u < cfg.num_users; ++u) everyone[u] = static_cast<int>(u);
    global_pool.Seed(everyone);
    for (size_t c = 0; c < cfg.num_communities; ++c) {
      community_pools[c].Seed(community_members[c]);
    }
  }
  // Heavy-tailed activity so some users are much more prolific sources.
  std::vector<double> activity(cfg.num_users);
  for (auto& a : activity) a = std::exp(rng->Normal(0.0, 1.0));
  DiscreteDistribution activity_dist(activity);

  size_t emitted = 0;
  // Duplicate rejection scans the source's out-list directly (out-degrees
  // are small — mean ~cfg.avg_trust_out_degree): the decision is identical
  // to a (src, dst)-set lookup, without the set's per-edge node overhead.
  auto add_edge = [&](int src, int dst) -> bool {
    if (src == dst) return false;
    auto& src_out = out_neighbors[static_cast<size_t>(src)];
    if (std::find(src_out.begin(), src_out.end(), dst) != src_out.end()) {
      return false;
    }
    sink({src, dst, static_cast<int64_t>(emitted)});
    ++emitted;
    src_out.push_back(dst);
    global_pool.Reward(dst);
    community_pools[static_cast<size_t>(
                        ds->communities[static_cast<size_t>(dst)])]
        .Reward(dst);
    return true;
  };

  size_t attempts = 0;
  const size_t max_attempts = target_edges * 50;
  while (emitted < target_edges && attempts < max_attempts) {
    ++attempts;
    int src = static_cast<int>(activity_dist.Sample(rng));
    int dst = -1;
    const auto& src_out = out_neighbors[static_cast<size_t>(src)];
    if (rng->Bernoulli(cfg.triadic_closure_prob) && !src_out.empty()) {
      // Friend-of-friend: pick a neighbour w, then one of w's neighbours.
      int w = src_out[static_cast<size_t>(rng->NextBounded(src_out.size()))];
      const auto& w_out = out_neighbors[static_cast<size_t>(w)];
      if (!w_out.empty()) {
        dst = w_out[static_cast<size_t>(rng->NextBounded(w_out.size()))];
      }
    }
    if (dst < 0) {
      bool intra = rng->Bernoulli(cfg.intra_community_prob);
      const AttachmentPool& pool =
          intra ? community_pools[static_cast<size_t>(
                      ds->communities[static_cast<size_t>(src)])]
                : global_pool;
      if (rng->Bernoulli(cfg.preferential_attachment)) {
        dst = pool.Sample(rng);
      } else if (intra) {
        const auto& members = community_members[static_cast<size_t>(
            ds->communities[static_cast<size_t>(src)])];
        dst = members[static_cast<size_t>(rng->NextBounded(members.size()))];
      } else {
        dst = static_cast<int>(rng->NextBounded(cfg.num_users));
      }
    }
    if (!add_edge(src, dst)) continue;
    if (emitted < target_edges && rng->Bernoulli(cfg.reciprocation_prob)) {
      add_edge(dst, src);
    }
  }

  SocialPhaseResult result;
  result.activity = std::move(activity);
  result.num_edges = emitted;
  return result;
}

}  // namespace

SocialDataset SocialNetworkGenerator::Generate() const {
  const GeneratorConfig& cfg = config_;
  Rng rng(cfg.seed);

  SocialDataset ds;
  SocialPhaseResult social = RunSocialPhases(
      cfg, &rng, &ds,
      [&ds](const StreamedEdge& e) { ds.trust_edges.push_back({e.src, e.dst}); });
  const std::vector<double>& activity = social.activity;

  // Normalized insertion order doubles as the edge creation time (the
  // preferential-attachment process is itself temporal).
  ds.trust_edge_times.resize(ds.trust_edges.size());
  if (!ds.trust_edges.empty()) {
    double denom = static_cast<double>(
        std::max<size_t>(ds.trust_edges.size() - 1, 1));
    for (size_t i = 0; i < ds.trust_edges.size(); ++i) {
      ds.trust_edge_times[i] = static_cast<double>(i) / denom;
    }
  }

  // --- Items & purchases. --------------------------------------------------
  ds.num_item_categories = static_cast<int>(cfg.num_item_categories);
  ds.item_categories.resize(cfg.num_items);
  std::vector<std::vector<int>> items_by_category(cfg.num_item_categories);
  for (size_t i = 0; i < cfg.num_items; ++i) {
    int c = static_cast<int>(rng.NextBounded(cfg.num_item_categories));
    ds.item_categories[i] = c;
    items_by_category[static_cast<size_t>(c)].push_back(static_cast<int>(i));
  }
  // Each community prefers a small bundle of categories.
  std::vector<std::vector<int>> preferred(cfg.num_communities);
  for (size_t c = 0; c < cfg.num_communities; ++c) {
    size_t bundle = std::min<size_t>(3, cfg.num_item_categories);
    auto picks = rng.SampleWithoutReplacement(cfg.num_item_categories, bundle);
    for (size_t p : picks) preferred[c].push_back(static_cast<int>(p));
  }
  if (cfg.num_items > 0) {
    for (size_t u = 0; u < cfg.num_users; ++u) {
      double expected = cfg.avg_purchases_per_user * activity[u] /
                        std::exp(0.5);  // lognormal mean correction
      size_t count = static_cast<size_t>(
          std::max(1.0, rng.Normal(expected, expected * 0.3)));
      const auto& prefs = preferred[static_cast<size_t>(ds.communities[u])];
      for (size_t k = 0; k < count; ++k) {
        int item = -1;
        bool preferred_draw =
            rng.Bernoulli(cfg.category_affinity) && !prefs.empty();
        if (preferred_draw) {
          const auto& bucket = items_by_category[static_cast<size_t>(
              prefs[static_cast<size_t>(rng.NextBounded(prefs.size()))])];
          if (!bucket.empty()) {
            item = bucket[static_cast<size_t>(rng.NextBounded(bucket.size()))];
          }
        }
        if (item < 0) {
          item = static_cast<int>(rng.NextBounded(cfg.num_items));
        }
        float base = preferred_draw ? 4.2f : 3.6f;
        float rating = static_cast<float>(rng.Normal(base, 0.7));
        rating = std::min(5.0f, std::max(1.0f, rating));
        // Snap to the half-star scale review sites use.
        rating = std::round(rating * 2.0f) / 2.0f;
        ds.purchases.push_back({static_cast<int>(u), item, rating});
      }
    }
  }

  AHNTP_CHECK_OK(ds.Validate());
  return ds;
}

size_t SocialNetworkGenerator::StreamTrustEdges(
    const EdgeSink& sink, std::vector<int>* communities_out) const {
  AHNTP_CHECK(sink != nullptr);
  Rng rng(config_.seed);
  // The scratch dataset holds only the O(N) metadata columns the social
  // phases must materialize anyway (communities, attributes) — no edges.
  SocialDataset scratch;
  SocialPhaseResult social = RunSocialPhases(config_, &rng, &scratch, sink);
  if (communities_out != nullptr) {
    *communities_out = std::move(scratch.communities);
  }
  return social.num_edges;
}

ShardedEdgeBuffer::ShardedEdgeBuffer(int num_shards, size_t capacity,
                                     FlushFn flush)
    : capacity_(std::max<size_t>(1, capacity)), flush_(std::move(flush)) {
  AHNTP_CHECK_GE(num_shards, 1);
  AHNTP_CHECK(flush_ != nullptr);
  buffers_.resize(static_cast<size_t>(num_shards));
  for (auto& buf : buffers_) buf.reserve(capacity_);
}

void ShardedEdgeBuffer::Route(const StreamedEdge& edge, int src_shard,
                              int dst_shard) {
  Append(src_shard, edge);
  if (dst_shard != src_shard) Append(dst_shard, edge);
}

void ShardedEdgeBuffer::Append(int shard, const StreamedEdge& edge) {
  AHNTP_CHECK(shard >= 0 && static_cast<size_t>(shard) < buffers_.size());
  auto& buf = buffers_[static_cast<size_t>(shard)];
  buf.push_back(edge);
  if (buf.size() >= capacity_) {
    flush_(shard, buf);
    buf.clear();
  }
}

void ShardedEdgeBuffer::FlushAll() {
  for (size_t s = 0; s < buffers_.size(); ++s) {
    if (!buffers_[s].empty()) {
      flush_(static_cast<int>(s), buffers_[s]);
      buffers_[s].clear();
    }
  }
}

}  // namespace ahntp::data
