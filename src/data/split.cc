#include "data/split.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.h"
#include "common/rng.h"

namespace ahntp::data {

namespace {

/// Samples `count` ordered pairs absent from `forbidden` (and non-self).
/// A `hard_fraction` of them are drawn from within 3 undirected hops of
/// their source in `graph` (falling back to uniform when a source has no
/// eligible nearby target).
std::vector<TrustPair> SampleNegatives(
    size_t num_users, size_t count,
    const std::set<std::pair<int, int>>& forbidden,
    const graph::Digraph& graph, double hard_fraction, Rng* rng) {
  AHNTP_CHECK_GE(num_users, 2u);
  std::vector<TrustPair> negatives;
  negatives.reserve(count);
  std::set<std::pair<int, int>> used;
  size_t hard_target = static_cast<size_t>(
      static_cast<double>(count) * hard_fraction);
  size_t attempts = 0;
  const size_t max_attempts = count * 400 + 2000;
  while (negatives.size() < count && attempts < max_attempts) {
    ++attempts;
    int src = static_cast<int>(rng->NextBounded(num_users));
    int dst = -1;
    if (negatives.size() < hard_target) {
      std::vector<int> ball = graph.NeighborhoodBall(src, 3);
      if (!ball.empty()) {
        dst = ball[static_cast<size_t>(rng->NextBounded(ball.size()))];
      }
    }
    if (dst < 0) {
      dst = static_cast<int>(rng->NextBounded(num_users));
    }
    if (src == dst) continue;
    auto key = std::make_pair(src, dst);
    if (forbidden.count(key) > 0) continue;
    if (!used.insert(key).second) continue;
    negatives.push_back({src, dst, 0.0f});
  }
  AHNTP_CHECK_EQ(negatives.size(), count)
      << "could not sample enough negative pairs (graph too dense?)";
  return negatives;
}

}  // namespace

namespace {

/// Shared split assembly: takes positives in their final order (shuffled or
/// chronological), slices train/test, samples negatives, and builds the
/// labelled pair lists.
TrustSplit BuildSplit(const SocialDataset& dataset,
                      std::vector<graph::Edge> positives,
                      const SplitOptions& options, Rng* rng_ptr) {
  Rng& rng = *rng_ptr;
  const size_t total = positives.size();
  const size_t num_test = static_cast<size_t>(total * options.test_fraction);
  const size_t num_train = std::min(
      total - num_test, static_cast<size_t>(total * options.train_fraction));
  AHNTP_CHECK_GT(num_test, 0u);
  AHNTP_CHECK_GT(num_train, 0u);

  TrustSplit split;
  split.train_positive.assign(positives.begin(),
                              positives.begin() + static_cast<long>(num_train));
  split.test_positive.assign(positives.end() - static_cast<long>(num_test),
                             positives.end());

  std::set<std::pair<int, int>> all_edges;
  for (const graph::Edge& e : dataset.trust_edges) {
    all_edges.insert({e.src, e.dst});
  }
  // Hard negatives are sampled from the *full* trust graph's neighbourhood
  // structure so train and test use the same notion of "nearby non-edge".
  graph::Digraph full_graph = dataset.TrustGraph().value();

  for (const graph::Edge& e : split.train_positive) {
    split.train_pairs.push_back({e.src, e.dst, 1.0f});
  }
  auto train_neg = SampleNegatives(
      dataset.num_users,
      split.train_positive.size() *
          static_cast<size_t>(options.train_negatives_per_positive),
      all_edges, full_graph, options.hard_negative_fraction, &rng);
  split.train_pairs.insert(split.train_pairs.end(), train_neg.begin(),
                           train_neg.end());
  rng.Shuffle(&split.train_pairs);

  for (const graph::Edge& e : split.test_positive) {
    split.test_pairs.push_back({e.src, e.dst, 1.0f});
  }
  auto test_neg = SampleNegatives(
      dataset.num_users,
      split.test_positive.size() *
          static_cast<size_t>(options.test_negatives_per_positive),
      all_edges, full_graph, options.hard_negative_fraction, &rng);
  split.test_pairs.insert(split.test_pairs.end(), test_neg.begin(),
                          test_neg.end());
  rng.Shuffle(&split.test_pairs);
  return split;
}

void CheckSplitOptions(const SocialDataset& dataset,
                       const SplitOptions& options) {
  AHNTP_CHECK(options.train_fraction > 0.0 && options.train_fraction <= 1.0);
  AHNTP_CHECK(options.test_fraction > 0.0 && options.test_fraction < 1.0);
  AHNTP_CHECK_LE(options.train_fraction + options.test_fraction, 1.0 + 1e-9);
  AHNTP_CHECK_GE(options.train_negatives_per_positive, 1);
  AHNTP_CHECK_GE(options.test_negatives_per_positive, 1);
  AHNTP_CHECK(options.hard_negative_fraction >= 0.0 &&
              options.hard_negative_fraction <= 1.0);
  AHNTP_CHECK_GT(dataset.trust_edges.size(), 4u);
}

}  // namespace

TrustSplit MakeSplit(const SocialDataset& dataset,
                     const SplitOptions& options) {
  CheckSplitOptions(dataset, options);
  Rng rng(options.seed);
  std::vector<graph::Edge> positives = dataset.trust_edges;
  rng.Shuffle(&positives);
  return BuildSplit(dataset, std::move(positives), options, &rng);
}

TrustSplit MakeTemporalSplit(const SocialDataset& dataset,
                             const SplitOptions& options) {
  CheckSplitOptions(dataset, options);
  AHNTP_CHECK_EQ(dataset.trust_edge_times.size(), dataset.trust_edges.size())
      << "temporal split needs trust_edge_times";
  Rng rng(options.seed);
  std::vector<size_t> order(dataset.trust_edges.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&dataset](size_t a, size_t b) {
    return dataset.trust_edge_times[a] < dataset.trust_edge_times[b];
  });
  std::vector<graph::Edge> positives;
  positives.reserve(order.size());
  for (size_t i : order) positives.push_back(dataset.trust_edges[i]);
  return BuildSplit(dataset, std::move(positives), options, &rng);
}

}  // namespace ahntp::data
