#include "data/io.h"

#include <filesystem>

#include "common/csv.h"
#include "common/fault.h"
#include "common/strings.h"

namespace ahntp::data {

namespace fs = std::filesystem;

Status SaveDataset(const SocialDataset& dataset,
                   const std::string& directory) {
  AHNTP_RETURN_IF_ERROR(dataset.Validate());
  AHNTP_RETURN_IF_ERROR(
      fault::FaultPoint("dataset.save", StatusCode::kIoError));
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create " + directory);

  {
    CsvTable meta;
    meta.header = {"key", "value"};
    meta.rows.push_back({"name", dataset.name});
    meta.rows.push_back({"num_users", std::to_string(dataset.num_users)});
    meta.rows.push_back({"num_items", std::to_string(dataset.num_items)});
    meta.rows.push_back(
        {"num_item_categories", std::to_string(dataset.num_item_categories)});
    for (size_t a = 0; a < dataset.attribute_names.size(); ++a) {
      meta.rows.push_back(
          {"attribute:" + dataset.attribute_names[a],
           std::to_string(dataset.attribute_cardinalities[a])});
    }
    AHNTP_RETURN_IF_ERROR(WriteCsvAtomic(directory + "/meta.csv", meta));
  }
  {
    CsvTable users;
    users.header = {"user"};
    for (const auto& name : dataset.attribute_names) {
      users.header.push_back(name);
    }
    users.header.push_back("community");
    for (size_t u = 0; u < dataset.num_users; ++u) {
      std::vector<std::string> row = {std::to_string(u)};
      for (const auto& column : dataset.attributes) {
        row.push_back(std::to_string(column[u]));
      }
      row.push_back(dataset.communities.empty()
                        ? "-1"
                        : std::to_string(dataset.communities[u]));
      users.rows.push_back(std::move(row));
    }
    AHNTP_RETURN_IF_ERROR(WriteCsvAtomic(directory + "/users.csv", users));
  }
  {
    CsvTable items;
    items.header = {"item", "category"};
    for (size_t i = 0; i < dataset.num_items; ++i) {
      items.rows.push_back(
          {std::to_string(i), std::to_string(dataset.item_categories[i])});
    }
    AHNTP_RETURN_IF_ERROR(WriteCsvAtomic(directory + "/items.csv", items));
  }
  {
    CsvTable purchases;
    purchases.header = {"user", "item", "rating"};
    for (const Purchase& p : dataset.purchases) {
      purchases.rows.push_back({std::to_string(p.user), std::to_string(p.item),
                                StrFormat("%.1f", p.rating)});
    }
    AHNTP_RETURN_IF_ERROR(
        WriteCsvAtomic(directory + "/purchases.csv", purchases));
  }
  {
    CsvTable trust;
    bool timed = !dataset.trust_edge_times.empty();
    trust.header = timed ? std::vector<std::string>{"src", "dst", "time"}
                         : std::vector<std::string>{"src", "dst"};
    for (size_t i = 0; i < dataset.trust_edges.size(); ++i) {
      const graph::Edge& e = dataset.trust_edges[i];
      std::vector<std::string> row = {std::to_string(e.src),
                                      std::to_string(e.dst)};
      if (timed) {
        row.push_back(StrFormat("%.6f", dataset.trust_edge_times[i]));
      }
      trust.rows.push_back(std::move(row));
    }
    AHNTP_RETURN_IF_ERROR(WriteCsvAtomic(directory + "/trust.csv", trust));
  }
  return Status::Ok();
}

Result<SocialDataset> LoadDataset(const std::string& directory) {
  SocialDataset ds;
  AHNTP_ASSIGN_OR_RETURN(CsvTable meta, ReadCsv(directory + "/meta.csv"));
  for (const auto& row : meta.rows) {
    if (row.size() != 2) return Status::Corruption("bad meta.csv row");
    const std::string& key = row[0];
    const std::string& value = row[1];
    if (key == "name") {
      ds.name = value;
    } else if (key == "num_users") {
      AHNTP_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
      ds.num_users = static_cast<size_t>(v);
    } else if (key == "num_items") {
      AHNTP_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
      ds.num_items = static_cast<size_t>(v);
    } else if (key == "num_item_categories") {
      AHNTP_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
      ds.num_item_categories = static_cast<int>(v);
    } else if (StrStartsWith(key, "attribute:")) {
      ds.attribute_names.push_back(key.substr(10));
      AHNTP_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
      ds.attribute_cardinalities.push_back(static_cast<int>(v));
    }
  }

  AHNTP_ASSIGN_OR_RETURN(CsvTable users, ReadCsv(directory + "/users.csv"));
  const size_t num_attrs = ds.attribute_names.size();
  ds.attributes.assign(num_attrs, std::vector<int>(ds.num_users, -1));
  ds.communities.assign(ds.num_users, -1);
  if (users.rows.size() != ds.num_users) {
    return Status::Corruption("users.csv row count != num_users");
  }
  for (const auto& row : users.rows) {
    if (row.size() != num_attrs + 2) {
      return Status::Corruption("bad users.csv row width");
    }
    AHNTP_ASSIGN_OR_RETURN(int64_t u, ParseInt(row[0]));
    if (u < 0 || static_cast<size_t>(u) >= ds.num_users) {
      return Status::Corruption("user id out of range in users.csv");
    }
    for (size_t a = 0; a < num_attrs; ++a) {
      AHNTP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[a + 1]));
      ds.attributes[a][static_cast<size_t>(u)] = static_cast<int>(v);
    }
    AHNTP_ASSIGN_OR_RETURN(int64_t c, ParseInt(row[num_attrs + 1]));
    ds.communities[static_cast<size_t>(u)] = static_cast<int>(c);
  }
  if (!ds.communities.empty() && ds.communities[0] == -1) {
    // Dataset without community annotations.
    bool any = false;
    for (int c : ds.communities) any = any || c >= 0;
    if (!any) ds.communities.clear();
  }

  AHNTP_ASSIGN_OR_RETURN(CsvTable items, ReadCsv(directory + "/items.csv"));
  ds.item_categories.assign(ds.num_items, 0);
  if (items.rows.size() != ds.num_items) {
    return Status::Corruption("items.csv row count != num_items");
  }
  for (const auto& row : items.rows) {
    if (row.size() != 2) return Status::Corruption("bad items.csv row");
    AHNTP_ASSIGN_OR_RETURN(int64_t i, ParseInt(row[0]));
    AHNTP_ASSIGN_OR_RETURN(int64_t c, ParseInt(row[1]));
    if (i < 0 || static_cast<size_t>(i) >= ds.num_items) {
      return Status::Corruption("item id out of range");
    }
    ds.item_categories[static_cast<size_t>(i)] = static_cast<int>(c);
  }

  AHNTP_ASSIGN_OR_RETURN(CsvTable purchases,
                         ReadCsv(directory + "/purchases.csv"));
  for (const auto& row : purchases.rows) {
    if (row.size() != 3) return Status::Corruption("bad purchases.csv row");
    AHNTP_ASSIGN_OR_RETURN(int64_t u, ParseInt(row[0]));
    AHNTP_ASSIGN_OR_RETURN(int64_t i, ParseInt(row[1]));
    AHNTP_ASSIGN_OR_RETURN(double r, ParseDouble(row[2]));
    ds.purchases.push_back({static_cast<int>(u), static_cast<int>(i),
                            static_cast<float>(r)});
  }

  AHNTP_ASSIGN_OR_RETURN(CsvTable trust, ReadCsv(directory + "/trust.csv"));
  bool timed = trust.header.size() == 3 && trust.header[2] == "time";
  for (const auto& row : trust.rows) {
    if (row.size() != (timed ? 3u : 2u)) {
      return Status::Corruption("bad trust.csv row");
    }
    AHNTP_ASSIGN_OR_RETURN(int64_t s, ParseInt(row[0]));
    AHNTP_ASSIGN_OR_RETURN(int64_t d, ParseInt(row[1]));
    ds.trust_edges.push_back({static_cast<int>(s), static_cast<int>(d)});
    if (timed) {
      AHNTP_ASSIGN_OR_RETURN(double t, ParseDouble(row[2]));
      ds.trust_edge_times.push_back(t);
    }
  }

  AHNTP_RETURN_IF_ERROR(ds.Validate());
  return ds;
}

}  // namespace ahntp::data
