#ifndef AHNTP_DATA_IO_H_
#define AHNTP_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace ahntp::data {

/// Persists a dataset as CSV files under `directory` (created if missing):
/// meta.csv, users.csv, items.csv, purchases.csv, trust.csv. The format is
/// the library's interchange format; a real Epinions/Ciao dump converted to
/// these files is a drop-in replacement for the synthetic generator. Each
/// file is written atomically (temp + fsync + rename) with stream-failure
/// checks, so an interrupted save never leaves a truncated table behind.
/// Fault-injection site: "dataset.save" (common/fault.h).
Status SaveDataset(const SocialDataset& dataset, const std::string& directory);

/// Loads a dataset saved by SaveDataset. Validates on load.
Result<SocialDataset> LoadDataset(const std::string& directory);

}  // namespace ahntp::data

#endif  // AHNTP_DATA_IO_H_
