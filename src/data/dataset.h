#ifndef AHNTP_DATA_DATASET_H_
#define AHNTP_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"

namespace ahntp::data {

/// One user-item purchase/review interaction.
struct Purchase {
  int user = 0;
  int item = 0;
  float rating = 0.0f;  // 1..5 review scale
};

/// A product-review social dataset in the shape of Epinions/Ciao
/// (Table III): users with categorical attributes, items with categories,
/// purchase behaviours, and directed trust relations (the ground truth).
struct SocialDataset {
  std::string name;
  size_t num_users = 0;
  size_t num_items = 0;

  /// Categorical attribute columns: attributes[a][u] is user u's value id
  /// for attribute a (negative = missing). Parallel to attribute_names and
  /// attribute_cardinalities.
  std::vector<std::string> attribute_names;
  std::vector<int> attribute_cardinalities;
  std::vector<std::vector<int>> attributes;

  /// Item category ids (size num_items), in [0, num_item_categories).
  int num_item_categories = 0;
  std::vector<int> item_categories;

  std::vector<Purchase> purchases;

  /// Directed trust relations: (src trusts dst). The positive pairs.
  std::vector<graph::Edge> trust_edges;

  /// Optional per-edge creation times in [0, 1], parallel to trust_edges
  /// (empty = untimed dataset). Enables the temporal evaluation protocol of
  /// the paper's future-work direction (dynamic social networks); the
  /// generator records normalized edge insertion order here.
  std::vector<double> trust_edge_times;

  /// Latent generating community per user (kept for analysis/diagnostics;
  /// never exposed to models as a feature).
  std::vector<int> communities;

  /// Builds the trust digraph over all trust edges.
  Result<graph::Digraph> TrustGraph() const;

  /// Builds a digraph restricted to the given edge subset.
  Result<graph::Digraph> GraphFromEdges(
      const std::vector<graph::Edge>& edges) const;

  /// Trust density |E| / (n*(n-1)) — the "data sparsity" row of Table III.
  double TrustDensity() const;

  /// Structural sanity checks (index ranges, ratings in [1,5], ...).
  Status Validate() const;
};

/// Summary statistics mirroring Table III.
struct DatasetStatistics {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t num_purchases = 0;
  size_t num_trust_relations = 0;
  double trust_density = 0.0;   // percentage basis matches the paper
  double reciprocity = 0.0;
  double avg_out_degree = 0.0;
};

DatasetStatistics ComputeStatistics(const SocialDataset& dataset);

}  // namespace ahntp::data

#endif  // AHNTP_DATA_DATASET_H_
