#ifndef AHNTP_DATA_GENERATOR_H_
#define AHNTP_DATA_GENERATOR_H_

#include <string>

#include "data/dataset.h"

namespace ahntp::data {

/// Configuration for the synthetic social-network generator.
///
/// The generator plants exactly the signals AHNTP's evaluation depends on:
///   * community structure (attribute + trust homophily),
///   * influencers via preferential attachment (social-influence signal),
///   * triadic closure (triangular motifs, the MPR signal),
///   * correlated purchase behaviour (behavioural features),
/// so that the relative ordering of methods in the paper's tables is
/// reproducible without the proprietary Epinions/Ciao dumps. See DESIGN.md
/// for the substitution rationale.
struct GeneratorConfig {
  std::string name = "synthetic";
  size_t num_users = 1000;
  size_t num_items = 2500;
  size_t num_communities = 16;

  /// Expected trust edges = num_users * avg_trust_out_degree.
  double avg_trust_out_degree = 7.5;
  /// Expected purchases = num_users * avg_purchases_per_user.
  double avg_purchases_per_user = 25.0;

  /// Probability that a trust edge stays inside the source's community.
  double intra_community_prob = 0.80;
  /// Probability that a new edge closes a triangle (friend-of-friend).
  double triadic_closure_prob = 0.45;
  /// Probability that the reverse edge is added too.
  double reciprocation_prob = 0.30;
  /// Mixture weight on degree-proportional (influencer) target selection.
  double preferential_attachment = 0.65;

  /// Probability that an attribute follows the community archetype.
  double attribute_fidelity = 0.75;
  size_t hobby_cardinality = 12;
  size_t school_cardinality = 15;
  size_t city_cardinality = 10;
  size_t age_bands = 6;

  size_t num_item_categories = 25;
  /// Probability a purchase comes from the community's preferred categories.
  double category_affinity = 0.7;

  uint64_t seed = 42;

  /// Preset matching the Epinions row of Table III, scaled down by `scale`
  /// (1.0 = full size: 8935 users / 21335 items / 220673 purchases /
  /// 65948 trust relations).
  static GeneratorConfig EpinionsLike(double scale = 0.125);

  /// Preset matching the Ciao row of Table III (4104 users / 75071 items /
  /// 171405 purchases / 41675 trust relations). Ciao is denser in trust and
  /// has far more items per user.
  static GeneratorConfig CiaoLike(double scale = 0.125);
};

/// Deterministic synthetic social-network generator.
class SocialNetworkGenerator {
 public:
  explicit SocialNetworkGenerator(GeneratorConfig config)
      : config_(std::move(config)) {}

  /// Generates a full dataset; deterministic for a fixed config.
  SocialDataset Generate() const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace ahntp::data

#endif  // AHNTP_DATA_GENERATOR_H_
