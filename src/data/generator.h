#ifndef AHNTP_DATA_GENERATOR_H_
#define AHNTP_DATA_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ahntp::data {

/// Configuration for the synthetic social-network generator.
///
/// The generator plants exactly the signals AHNTP's evaluation depends on:
///   * community structure (attribute + trust homophily),
///   * influencers via preferential attachment (social-influence signal),
///   * triadic closure (triangular motifs, the MPR signal),
///   * correlated purchase behaviour (behavioural features),
/// so that the relative ordering of methods in the paper's tables is
/// reproducible without the proprietary Epinions/Ciao dumps. See DESIGN.md
/// for the substitution rationale.
struct GeneratorConfig {
  std::string name = "synthetic";
  size_t num_users = 1000;
  size_t num_items = 2500;
  size_t num_communities = 16;

  /// Expected trust edges = num_users * avg_trust_out_degree.
  double avg_trust_out_degree = 7.5;
  /// Expected purchases = num_users * avg_purchases_per_user.
  double avg_purchases_per_user = 25.0;

  /// Probability that a trust edge stays inside the source's community.
  double intra_community_prob = 0.80;
  /// Probability that a new edge closes a triangle (friend-of-friend).
  double triadic_closure_prob = 0.45;
  /// Probability that the reverse edge is added too.
  double reciprocation_prob = 0.30;
  /// Mixture weight on degree-proportional (influencer) target selection.
  double preferential_attachment = 0.65;

  /// Probability that an attribute follows the community archetype.
  double attribute_fidelity = 0.75;
  size_t hobby_cardinality = 12;
  size_t school_cardinality = 15;
  size_t city_cardinality = 10;
  size_t age_bands = 6;

  size_t num_item_categories = 25;
  /// Probability a purchase comes from the community's preferred categories.
  double category_affinity = 0.7;

  uint64_t seed = 42;

  /// Preset matching the Epinions row of Table III, scaled by `scale`
  /// (1.0 = full size: 8935 users / 21335 items / 220673 purchases /
  /// 65948 trust relations). scale > 1.0 upscales the population for
  /// out-of-core stress sweeps (bench_scale drives this past 1M users).
  static GeneratorConfig EpinionsLike(double scale = 0.125);

  /// Preset matching the Ciao row of Table III (4104 users / 75071 items /
  /// 171405 purchases / 41675 trust relations). Ciao is denser in trust and
  /// has far more items per user.
  static GeneratorConfig CiaoLike(double scale = 0.125);
};

/// One trust edge as delivered by the streaming generation path. `index` is
/// the edge's global insertion index in the generation sequence — it doubles
/// as the temporal key (Generate() derives trust_edge_times from it) and as
/// the dedup key when an edge is routed to both endpoint shards.
struct StreamedEdge {
  int src = 0;
  int dst = 0;
  int64_t index = 0;
};

/// Consumer of streamed edges, called once per accepted edge in insertion
/// order.
using EdgeSink = std::function<void(const StreamedEdge&)>;

/// Deterministic synthetic social-network generator.
class SocialNetworkGenerator {
 public:
  explicit SocialNetworkGenerator(GeneratorConfig config)
      : config_(std::move(config)) {}

  /// Generates a full dataset; deterministic for a fixed config.
  SocialDataset Generate() const;

  /// Streaming variant of the social phases: runs the community, attribute,
  /// and trust-edge phases on the *same RNG stream* as Generate(), but
  /// delivers each accepted edge through `sink` in insertion order instead
  /// of accumulating a full edge list. Only the generator's working state
  /// (adjacency-shaped, O(E) ints) stays in RAM, so the caller can spill
  /// edges to per-shard storage and build graphs out of core. The edge
  /// sequence is element-for-element identical to Generate()'s trust_edges
  /// (and `index` reproduces trust_edge_times via index / (count - 1)).
  /// Items and purchases are not generated. When `communities_out` is
  /// non-null it receives the per-user community assignment.
  /// Returns the number of edges emitted.
  size_t StreamTrustEdges(const EdgeSink& sink,
                          std::vector<int>* communities_out = nullptr) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

/// Bounded per-shard edge buffering for the streaming path: edges are routed
/// into per-shard buffers of at most `capacity` edges; a full buffer is
/// handed to `flush(shard, edges)` and cleared, so peak buffered memory is
/// num_shards * capacity edges regardless of graph size. An edge whose
/// endpoints fall in two different shards is delivered to both (each shard's
/// subgraph needs its halo edges); consumers deduplicate by StreamedEdge::
/// index where global uniqueness matters. Call FlushAll() once the stream
/// ends to drain partial buffers.
class ShardedEdgeBuffer {
 public:
  using FlushFn =
      std::function<void(int shard, const std::vector<StreamedEdge>& edges)>;

  /// capacity is clamped to >= 1; flush must be callable.
  ShardedEdgeBuffer(int num_shards, size_t capacity, FlushFn flush);

  /// Routes one edge to src_shard (and dst_shard when different).
  void Route(const StreamedEdge& edge, int src_shard, int dst_shard);

  /// Drains every non-empty buffer through flush, in shard order.
  void FlushAll();

 private:
  void Append(int shard, const StreamedEdge& edge);

  size_t capacity_ = 1;
  std::vector<std::vector<StreamedEdge>> buffers_;
  FlushFn flush_;
};

}  // namespace ahntp::data

#endif  // AHNTP_DATA_GENERATOR_H_
