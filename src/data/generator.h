#ifndef AHNTP_DATA_GENERATOR_H_
#define AHNTP_DATA_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/delta.h"

namespace ahntp::data {

/// Configuration for the synthetic social-network generator.
///
/// The generator plants exactly the signals AHNTP's evaluation depends on:
///   * community structure (attribute + trust homophily),
///   * influencers via preferential attachment (social-influence signal),
///   * triadic closure (triangular motifs, the MPR signal),
///   * correlated purchase behaviour (behavioural features),
/// so that the relative ordering of methods in the paper's tables is
/// reproducible without the proprietary Epinions/Ciao dumps. See DESIGN.md
/// for the substitution rationale.
struct GeneratorConfig {
  std::string name = "synthetic";
  size_t num_users = 1000;
  size_t num_items = 2500;
  size_t num_communities = 16;

  /// Expected trust edges = num_users * avg_trust_out_degree.
  double avg_trust_out_degree = 7.5;
  /// Expected purchases = num_users * avg_purchases_per_user.
  double avg_purchases_per_user = 25.0;

  /// Probability that a trust edge stays inside the source's community.
  double intra_community_prob = 0.80;
  /// Probability that a new edge closes a triangle (friend-of-friend).
  double triadic_closure_prob = 0.45;
  /// Probability that the reverse edge is added too.
  double reciprocation_prob = 0.30;
  /// Mixture weight on degree-proportional (influencer) target selection.
  double preferential_attachment = 0.65;

  /// Probability that an attribute follows the community archetype.
  double attribute_fidelity = 0.75;
  size_t hobby_cardinality = 12;
  size_t school_cardinality = 15;
  size_t city_cardinality = 10;
  size_t age_bands = 6;

  size_t num_item_categories = 25;
  /// Probability a purchase comes from the community's preferred categories.
  double category_affinity = 0.7;

  uint64_t seed = 42;

  /// Preset matching the Epinions row of Table III, scaled by `scale`
  /// (1.0 = full size: 8935 users / 21335 items / 220673 purchases /
  /// 65948 trust relations). scale > 1.0 upscales the population for
  /// out-of-core stress sweeps (bench_scale drives this past 1M users).
  static GeneratorConfig EpinionsLike(double scale = 0.125);

  /// Preset matching the Ciao row of Table III (4104 users / 75071 items /
  /// 171405 purchases / 41675 trust relations). Ciao is denser in trust and
  /// has far more items per user.
  static GeneratorConfig CiaoLike(double scale = 0.125);
};

/// Composable adversarial overlays applied *after* the clean generation
/// phases, on the continuation of the same RNG stream (DESIGN.md §16). The
/// clean prefix of the stream — and with it every golden-trace-pinned
/// artifact of Generate() — is untouched; an all-default spec is a no-op.
///
/// Fraction fields use a negative sentinel for "disabled". An enabled
/// fraction must lie strictly inside (0, 1): a 0-fraction attack is a
/// misconfigured no-op and a 1-fraction shift leaves no clean regime to
/// train on, so both are rejected as InvalidArgument rather than silently
/// producing a degenerate benchmark.
struct AttackSpec {
  /// Sybil rings: `sybil_rings` disjoint collusion rings of
  /// `sybil_ring_size` existing users each. Ring members exchange mutual
  /// trust (cycle + chords) to inflate each other, and each member attacks
  /// `sybil_targets_per_member` victims sampled preferentially by in-degree
  /// (latching onto influencers poisons the social-influence signal).
  size_t sybil_rings = 0;
  size_t sybil_ring_size = 0;
  size_t sybil_targets_per_member = 2;

  /// Trust-spam hubs: `spam_hubs` users each emitting `spam_edges_per_hub`
  /// trust edges to uniformly random targets — indiscriminate link spam
  /// that floods the preferential-attachment structure.
  size_t spam_hubs = 0;
  size_t spam_edges_per_hub = 0;

  /// Camouflage: each attacker (sybil member or spam hub) independently
  /// adopts, with this probability, the attributes and a slice of the
  /// purchase history of a deterministic honest "role model", so
  /// behavioural/attribute features cannot separate attackers from honest
  /// users. Requires at least one sybil ring or spam hub. < 0 = disabled.
  double camouflage_fraction = -1.0;

  /// Train/serve distribution shift: each trust edge in the latest quarter
  /// of the insertion order is, with this probability, re-targeted to a
  /// uniformly random user in a *different* community — the late regime
  /// stops obeying homophily and preferential attachment. Under the
  /// temporal split the model trains on the clean regime and is evaluated
  /// on the shifted one. < 0 = disabled.
  double shift_fraction = -1.0;

  /// True when any attack component is enabled.
  bool any() const;

  /// Full degenerate-parameter validation against the target config:
  /// zero-size rings, fraction 0/1 (see above), attacker counts exceeding
  /// the population, shift on a graph with no edges or a single community,
  /// and non-finite fractions are all InvalidArgument. Fuzzed specs must
  /// fail here, never crash the generator.
  Status Validate(const GeneratorConfig& config) const;

  // Named presets used by bench_robustness and the tests.
  static AttackSpec SybilRing(size_t rings, size_t ring_size);
  static AttackSpec SpamHubs(size_t hubs, size_t edges_per_hub);
  /// Sybil rings whose members all mimic honest users.
  static AttackSpec Camouflaged(size_t rings, size_t ring_size,
                                double fraction = 0.9);
  static AttackSpec Shift(double fraction);
};

/// What an attack application actually did (sizes are post-dedup).
struct AttackReport {
  /// Attacker user ids (sybil members then spam hubs), ascending.
  std::vector<int> attackers;
  /// Trust edges before the overlay; trust_edges[0..clean_edges) of the
  /// attacked dataset are element-for-element the clean dataset's edges
  /// (minus any shift re-targeting inside the tail window).
  size_t clean_edges = 0;
  size_t sybil_edges = 0;
  size_t spam_edges = 0;
  size_t shifted_edges = 0;
  size_t camouflaged_users = 0;
  size_t camouflage_purchases = 0;
};

/// One trust edge as delivered by the streaming generation path. `index` is
/// the edge's global insertion index in the generation sequence — it doubles
/// as the temporal key (Generate() derives trust_edge_times from it) and as
/// the dedup key when an edge is routed to both endpoint shards.
struct StreamedEdge {
  int src = 0;
  int dst = 0;
  int64_t index = 0;
};

/// Consumer of streamed edges, called once per accepted edge in insertion
/// order.
using EdgeSink = std::function<void(const StreamedEdge&)>;

/// Deterministic synthetic social-network generator.
class SocialNetworkGenerator {
 public:
  explicit SocialNetworkGenerator(GeneratorConfig config)
      : config_(std::move(config)) {}

  /// Generates a full dataset; deterministic for a fixed config.
  SocialDataset Generate() const;

  /// Generate() plus the adversarial overlay described by `attack`, drawn
  /// from the continuation of the same RNG stream — the clean phases are
  /// bit-identical to Generate()'s, so golden traces pinned to clean
  /// generation never move. Returns InvalidArgument (via
  /// AttackSpec::Validate) on degenerate parameters; `report` (optional)
  /// receives what was injected. Edge times are re-normalized over the
  /// final edge list, with attack edges appended last (latest times).
  Result<SocialDataset> GenerateWithAttacks(
      const AttackSpec& attack, AttackReport* report = nullptr) const;

  /// Streaming variant of the social phases: runs the community, attribute,
  /// and trust-edge phases on the *same RNG stream* as Generate(), but
  /// delivers each accepted edge through `sink` in insertion order instead
  /// of accumulating a full edge list. Only the generator's working state
  /// (adjacency-shaped, O(E) ints) stays in RAM, so the caller can spill
  /// edges to per-shard storage and build graphs out of core. The edge
  /// sequence is element-for-element identical to Generate()'s trust_edges
  /// (and `index` reproduces trust_edge_times via index / (count - 1)).
  /// Items and purchases are not generated. When `communities_out` is
  /// non-null it receives the per-user community assignment.
  /// Returns the number of edges emitted.
  size_t StreamTrustEdges(const EdgeSink& sink,
                          std::vector<int>* communities_out = nullptr) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

/// Configuration of the synthetic mutation stream (DESIGN.md §17). Like the
/// attack overlays, deltas are drawn on their *own* pinned RNG stream
/// (`seed`), so the clean generation artifacts — and every golden trace
/// pinned to them — never move when a workload adds mutation traffic.
struct DeltaStreamConfig {
  size_t num_deltas = 16;
  /// Edge adds per delta: endpoints drawn uniformly (src != dst). Adds may
  /// collide with live edges; the store's idempotent-apply semantics count
  /// them as ignored, which is part of what the stream exercises.
  size_t adds_per_delta = 4;
  /// Edge removes per delta, sampled uniformly from the edges live at that
  /// point in the stream (the generator replays applied semantics —
  /// removes before adds — so later deltas see earlier ones' effects).
  size_t removes_per_delta = 2;
  /// Rating rows per delta: uniform user/item, integer rating in 1..5.
  size_t ratings_per_delta = 2;
  uint64_t seed = 20240717;
};

/// Deterministic stream of graph deltas against `dataset`'s trust graph:
/// exactly `config.num_deltas` deltas, each mixing adds, removes of
/// then-live edges, and rating rows. Pure function of (dataset edge list,
/// num_users, num_items, config) — independent of thread count and of any
/// other RNG stream. Drives the dynamic tests, bench_dynamic, and the
/// serve_demo mutation phase.
std::vector<graph::GraphDelta> GenerateTrustDeltas(
    const SocialDataset& dataset, const DeltaStreamConfig& config);

/// Bounded per-shard edge buffering for the streaming path: edges are routed
/// into per-shard buffers of at most `capacity` edges; a full buffer is
/// handed to `flush(shard, edges)` and cleared, so peak buffered memory is
/// num_shards * capacity edges regardless of graph size. An edge whose
/// endpoints fall in two different shards is delivered to both (each shard's
/// subgraph needs its halo edges); consumers deduplicate by StreamedEdge::
/// index where global uniqueness matters. Call FlushAll() once the stream
/// ends to drain partial buffers.
class ShardedEdgeBuffer {
 public:
  using FlushFn =
      std::function<void(int shard, const std::vector<StreamedEdge>& edges)>;

  /// capacity is clamped to >= 1; flush must be callable.
  ShardedEdgeBuffer(int num_shards, size_t capacity, FlushFn flush);

  /// Routes one edge to src_shard (and dst_shard when different).
  void Route(const StreamedEdge& edge, int src_shard, int dst_shard);

  /// Drains every non-empty buffer through flush, in shard order.
  void FlushAll();

 private:
  void Append(int shard, const StreamedEdge& edge);

  size_t capacity_ = 1;
  std::vector<std::vector<StreamedEdge>> buffers_;
  FlushFn flush_;
};

}  // namespace ahntp::data

#endif  // AHNTP_DATA_GENERATOR_H_
