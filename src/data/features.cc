#include "data/features.h"

#include <cmath>

#include "common/check.h"

namespace ahntp::data {

size_t FeatureDimension(const SocialDataset& dataset,
                        const FeatureOptions& options) {
  size_t dim = 0;
  if (options.include_attributes) {
    for (int card : dataset.attribute_cardinalities) {
      dim += static_cast<size_t>(card);
    }
  }
  if (options.include_behavior) dim += 2;
  if (options.include_category_histogram) {
    dim += static_cast<size_t>(dataset.num_item_categories);
  }
  return dim;
}

tensor::Matrix BuildFeatureMatrix(const SocialDataset& dataset,
                                  const FeatureOptions& options) {
  const size_t n = dataset.num_users;
  const size_t dim = FeatureDimension(dataset, options);
  AHNTP_CHECK_GT(dim, 0u) << "feature options select no features";
  tensor::Matrix x(n, dim);

  size_t offset = 0;
  if (options.include_attributes) {
    for (size_t a = 0; a < dataset.attributes.size(); ++a) {
      size_t card = static_cast<size_t>(dataset.attribute_cardinalities[a]);
      for (size_t u = 0; u < n; ++u) {
        int value = dataset.attributes[a][u];
        if (value >= 0) {
          x.At(u, offset + static_cast<size_t>(value)) = 1.0f;
        }
      }
      offset += card;
    }
  }

  if (options.include_behavior || options.include_category_histogram) {
    std::vector<float> counts(n, 0.0f);
    std::vector<float> rating_sums(n, 0.0f);
    std::vector<std::vector<float>> hist;
    if (options.include_category_histogram) {
      hist.assign(n, std::vector<float>(
                         static_cast<size_t>(dataset.num_item_categories),
                         0.0f));
    }
    for (const Purchase& p : dataset.purchases) {
      size_t u = static_cast<size_t>(p.user);
      counts[u] += 1.0f;
      rating_sums[u] += p.rating;
      if (options.include_category_histogram) {
        int cat = dataset.item_categories[static_cast<size_t>(p.item)];
        hist[u][static_cast<size_t>(cat)] += 1.0f;
      }
    }
    if (options.include_behavior) {
      for (size_t u = 0; u < n; ++u) {
        x.At(u, offset) = std::log1p(counts[u]);
        // Mean rating scaled into [0,1]; users without purchases get 0.
        x.At(u, offset + 1) =
            counts[u] > 0.0f ? (rating_sums[u] / counts[u]) / 5.0f : 0.0f;
      }
      offset += 2;
    }
    if (options.include_category_histogram) {
      for (size_t u = 0; u < n; ++u) {
        float total = counts[u];
        for (size_t c = 0;
             c < static_cast<size_t>(dataset.num_item_categories); ++c) {
          x.At(u, offset + c) = total > 0.0f ? hist[u][c] / total : 0.0f;
        }
      }
      offset += static_cast<size_t>(dataset.num_item_categories);
    }
  }
  AHNTP_CHECK_EQ(offset, dim);
  return x;
}

}  // namespace ahntp::data
