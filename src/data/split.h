#ifndef AHNTP_DATA_SPLIT_H_
#define AHNTP_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"

namespace ahntp::data {

/// A labelled user pair: label 1 = trust, 0 = no observed trust.
struct TrustPair {
  int src = 0;
  int dst = 0;
  float label = 0.0f;
};

/// Split protocol of Section V-B: positives are shuffled once; the final
/// `test_fraction` forms a fixed test set, and the first `train_fraction`
/// forms the training set (so sweeping train_fraction in {0.5..0.8} keeps
/// the same test pairs, as the robustness study Q2 requires). Negative
/// pairs are sampled from unconnected user pairs — 2 per positive for
/// training, per Section V-A.4.
struct SplitOptions {
  double train_fraction = 0.8;
  double test_fraction = 0.2;
  int train_negatives_per_positive = 2;
  int test_negatives_per_positive = 1;
  /// Fraction of negatives drawn as *hard* negatives: unconnected pairs
  /// within 3 (undirected) hops of each other, instead of uniformly random
  /// pairs. Uniform negatives are usually separable by coarse community
  /// signals alone; hard negatives require the fine-grained high-order
  /// structure the paper's method targets. The same mix is used for train
  /// and test so every model faces the identical task.
  double hard_negative_fraction = 0.5;
  uint64_t seed = 7;
};

/// The materialized split.
struct TrustSplit {
  std::vector<graph::Edge> train_positive;
  std::vector<graph::Edge> test_positive;
  /// Positives + sampled negatives, shuffled.
  std::vector<TrustPair> train_pairs;
  std::vector<TrustPair> test_pairs;
};

/// Builds a train/test split. Negative samples avoid *all* trust edges
/// (train and test) so no negative is secretly positive.
TrustSplit MakeSplit(const SocialDataset& dataset,
                     const SplitOptions& options = {});

/// Temporal variant (the paper's future-work setting): positives are
/// ordered by trust_edge_times instead of shuffled, so the model trains on
/// the oldest `train_fraction` of edges and is tested on the newest
/// `test_fraction` — predicting *future* trust. Precondition: the dataset
/// carries trust_edge_times.
TrustSplit MakeTemporalSplit(const SocialDataset& dataset,
                             const SplitOptions& options = {});

}  // namespace ahntp::data

#endif  // AHNTP_DATA_SPLIT_H_
