#include "data/dataset.h"

#include "common/strings.h"

namespace ahntp::data {

Result<graph::Digraph> SocialDataset::TrustGraph() const {
  return graph::Digraph::FromEdges(num_users, trust_edges);
}

Result<graph::Digraph> SocialDataset::GraphFromEdges(
    const std::vector<graph::Edge>& edges) const {
  return graph::Digraph::FromEdges(num_users, edges);
}

double SocialDataset::TrustDensity() const {
  if (num_users < 2) return 0.0;
  return static_cast<double>(trust_edges.size()) /
         (static_cast<double>(num_users) *
          static_cast<double>(num_users - 1));
}

Status SocialDataset::Validate() const {
  if (attribute_names.size() != attributes.size() ||
      attribute_names.size() != attribute_cardinalities.size()) {
    return Status::Corruption("attribute metadata sizes disagree");
  }
  for (size_t a = 0; a < attributes.size(); ++a) {
    if (attributes[a].size() != num_users) {
      return Status::Corruption(
          StrFormat("attribute %zu has %zu entries for %zu users", a,
                    attributes[a].size(), num_users));
    }
    for (int v : attributes[a]) {
      if (v >= attribute_cardinalities[a]) {
        return Status::Corruption(
            StrFormat("attribute %zu value %d exceeds cardinality %d", a, v,
                      attribute_cardinalities[a]));
      }
    }
  }
  if (item_categories.size() != num_items) {
    return Status::Corruption("item_categories size != num_items");
  }
  for (int c : item_categories) {
    if (c < 0 || c >= num_item_categories) {
      return Status::Corruption(StrFormat("item category %d out of range", c));
    }
  }
  for (const Purchase& p : purchases) {
    if (p.user < 0 || static_cast<size_t>(p.user) >= num_users ||
        p.item < 0 || static_cast<size_t>(p.item) >= num_items) {
      return Status::Corruption("purchase references unknown user/item");
    }
    if (p.rating < 1.0f || p.rating > 5.0f) {
      return Status::Corruption(
          StrFormat("rating %.2f outside [1,5]", p.rating));
    }
  }
  for (const graph::Edge& e : trust_edges) {
    if (e.src < 0 || static_cast<size_t>(e.src) >= num_users || e.dst < 0 ||
        static_cast<size_t>(e.dst) >= num_users) {
      return Status::Corruption("trust edge endpoint out of range");
    }
    if (e.src == e.dst) {
      return Status::Corruption("self-trust edge");
    }
  }
  if (!communities.empty() && communities.size() != num_users) {
    return Status::Corruption("communities size != num_users");
  }
  if (!trust_edge_times.empty()) {
    if (trust_edge_times.size() != trust_edges.size()) {
      return Status::Corruption("trust_edge_times size != trust_edges size");
    }
    for (double t : trust_edge_times) {
      if (t < 0.0 || t > 1.0) {
        return Status::Corruption(
            StrFormat("trust edge time %.4f outside [0,1]", t));
      }
    }
  }
  return Status::Ok();
}

DatasetStatistics ComputeStatistics(const SocialDataset& dataset) {
  DatasetStatistics stats;
  stats.num_users = dataset.num_users;
  stats.num_items = dataset.num_items;
  stats.num_purchases = dataset.purchases.size();
  stats.num_trust_relations = dataset.trust_edges.size();
  stats.trust_density = dataset.TrustDensity();
  auto graph = dataset.TrustGraph();
  if (graph.ok()) {
    stats.reciprocity = graph->Reciprocity();
    stats.avg_out_degree =
        dataset.num_users == 0
            ? 0.0
            : static_cast<double>(graph->num_edges()) /
                  static_cast<double>(dataset.num_users);
  }
  return stats;
}

}  // namespace ahntp::data
