#include "serve/backend.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/serialization.h"

namespace ahntp::serve {

ModelBackend::ModelBackend(Factory factory,
                           std::unique_ptr<models::TrustPredictor> initial,
                           std::optional<models::ShardedPlanOptions> sharded,
                           models::PlanPrecision precision)
    : factory_(std::move(factory)),
      sharded_(std::move(sharded)),
      precision_(precision),
      model_(std::move(initial)) {
  AHNTP_CHECK(factory_ != nullptr) << "ModelBackend needs a model factory";
  AHNTP_CHECK(model_ != nullptr) << "ModelBackend needs an initial model";
  model_->SetInferencePrecision(precision_);
  if (sharded_) model_->EnableShardedInference(*sharded_);
  // Warm before the first request: encoding all users dominates cold-start
  // latency, and the dispatcher thread should only ever pay the cached
  // scoring path (for a sharded plan, encode + spill happen here and live
  // requests only fault blocks).
  model_->WarmInferencePlan();
}

Result<std::vector<float>> ModelBackend::ScoreBatch(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_RETURN_IF_ERROR(
      fault::FaultPoint("serve.infer", StatusCode::kUnavailable));
  std::shared_ptr<models::TrustPredictor> model;
  {
    std::lock_guard<std::mutex> lock(mu_);
    model = model_;
  }
  trace::TraceSpan span("serve.infer");
  std::vector<float> probs = model->PredictProbabilities(pairs);
  if (fault::ShouldInject("serve.nan")) {
    probs[0] = std::nanf("");
  }
  return probs;
}

Status ModelBackend::Reload(const std::string& checkpoint_path) {
  trace::TraceSpan span("serve.reload");
  Status status = fault::FaultPoint("serve.reload", StatusCode::kIoError);
  if (status.ok()) {
    std::unique_ptr<models::TrustPredictor> staged = factory_();
    AHNTP_CHECK(staged != nullptr) << "model factory returned null";
    // LoadModule validates magic, parameter count, shapes, and the CRC32
    // footer; the staged instance absorbs any partial state, never the
    // live model. A successful load also invalidates the staged instance's
    // caches, so the plan warmed below encodes the *loaded* weights.
    status = nn::LoadModule(staged.get(), checkpoint_path);
    if (status.ok()) {
      // The staged generation inherits the sharded configuration and the
      // table precision; its plan spills into a fresh per-plan
      // subdirectory, so the live model's blocks stay valid until the swap.
      staged->SetInferencePrecision(precision_);
      if (sharded_) staged->EnableShardedInference(*sharded_);
      // Warm outside the lock: the expensive all-user encode runs against
      // the staged instance while the old model keeps serving; the swap
      // itself stays O(1).
      staged->WarmInferencePlan();
      std::lock_guard<std::mutex> lock(mu_);
      model_ = std::move(staged);
      ++generation_;
    }
  }
  if (status.ok()) {
    AHNTP_METRIC_COUNT("serve.reload_success", 1);
  } else {
    AHNTP_METRIC_COUNT("serve.reload_failures", 1);
  }
  return status;
}

int64_t ModelBackend::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

EnsembleBackend::EnsembleBackend(
    std::shared_ptr<models::SeedEnsemble> ensemble)
    : ensemble_(std::move(ensemble)) {
  AHNTP_CHECK(ensemble_ != nullptr) << "EnsembleBackend needs an ensemble";
}

Result<std::vector<float>> EnsembleBackend::ScoreBatch(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_RETURN_IF_ERROR(
      fault::FaultPoint("serve.infer", StatusCode::kUnavailable));
  trace::TraceSpan span("serve.infer");
  std::vector<float> probs = ensemble_->canonical().PredictProbabilities(pairs);
  if (fault::ShouldInject("serve.nan")) {
    probs[0] = std::nanf("");
  }
  return probs;
}

Result<BatchScores> EnsembleBackend::ScoreBatchWithConfidence(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_RETURN_IF_ERROR(
      fault::FaultPoint("serve.infer", StatusCode::kUnavailable));
  trace::TraceSpan span("serve.infer");
  models::SeedEnsemble::Scored scored = ensemble_->Score(pairs);
  if (fault::ShouldInject("serve.nan")) {
    scored.scores[0] = std::nanf("");
  }
  BatchScores out;
  out.scores = std::move(scored.scores);
  out.confidence = std::move(scored.confidence);
  return out;
}

HeuristicBackend::HeuristicBackend(const graph::Digraph* graph,
                                   models::Heuristic heuristic,
                                   const models::HeuristicOptions& options)
    : graph_(graph), heuristic_(heuristic), options_(options) {
  AHNTP_CHECK(graph_ != nullptr) << "HeuristicBackend needs a graph";
}

Result<std::vector<float>> HeuristicBackend::ScoreBatch(
    const std::vector<data::TrustPair>& pairs) {
  trace::TraceSpan span("serve.fallback");
  return models::HeuristicProbabilities(*graph_, heuristic_, pairs, options_);
}

std::string HeuristicBackend::name() const {
  return "heuristic:" + models::HeuristicName(heuristic_);
}

}  // namespace ahntp::serve
