#ifndef AHNTP_SERVE_MUTATION_H_
#define AHNTP_SERVE_MUTATION_H_

#include <cstdint>

#include "common/status.h"
#include "graph/delta.h"

namespace ahntp::serve {

/// The terminal answer every submitted mutation eventually receives.
struct MutationResponse {
  /// Ok, or why the delta was not applied: ResourceExhausted (queue full),
  /// FailedPrecondition (no mutation sink configured / server shut down),
  /// or whatever the sink's apply cascade returned (e.g. an injected fault
  /// at "graph.delta.apply" or "plan.delta.refresh" — the store rolls back
  /// and the previous generation keeps serving).
  Status status;
  /// What the apply actually did (applied edge lists, ignored counts, the
  /// new generation). Default-constructed on failure.
  graph::DeltaReceipt receipt;
  /// The backend generation after this mutation; reads submitted after the
  /// response resolves and served from a later batch segment see at least
  /// this generation. 0 on failure.
  int64_t generation = 0;
  /// Submit-to-applied wall time (queue wait + apply cascade).
  double latency_ms = 0.0;
};

/// The write side of a servable backend: applies one graph delta through
/// whatever incremental maintenance the backend keeps (see DynamicBackend).
/// Only ever invoked from the server's dispatcher thread, between read
/// segments, so implementations need no internal locking against reads.
class MutationSink {
 public:
  virtual ~MutationSink() = default;

  /// Applies `delta`; on success the receipt reports the real membership
  /// changes and the new generation. On failure the sink must be unchanged
  /// (previous generation included) so cached scores stay sound.
  virtual Result<graph::DeltaReceipt> ApplyMutation(
      const graph::GraphDelta& delta) = 0;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_MUTATION_H_
