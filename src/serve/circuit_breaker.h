#ifndef AHNTP_SERVE_CIRCUIT_BREAKER_H_
#define AHNTP_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>

namespace ahntp::serve {

struct CircuitBreakerOptions {
  /// Consecutive batch failures (post-retry) that trip the breaker.
  int failure_threshold = 3;
  /// While open, every Nth admission is a probe through the primary
  /// backend; the rest go straight to the fallback.
  int probe_interval = 4;
};

/// Count-based circuit breaker guarding the primary inference backend.
///
/// Closed: every batch is admitted to the primary. After
/// `failure_threshold` *consecutive* failures the breaker opens and the
/// server degrades to its fallback backend. While open, every
/// `probe_interval`th admission is a probe: the batch is tried on the
/// primary, and one success closes the breaker again.
///
/// Deliberately counter-based rather than time-based: recovery depends on
/// the observed request sequence, not the wall clock, so a fixed fault
/// seed replays identical trip/probe/recover transitions at any thread
/// count. Not thread-safe by design — it is owned and driven by the
/// single dispatcher thread (see serve/server.h).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  enum class Decision {
    kPrimary,   // closed: use the primary backend
    kProbe,     // open, but this batch probes the primary
    kFallback,  // open: degrade without touching the primary
  };

  /// Coarse state for the `serve.breaker_state` gauge: the classic
  /// closed / open / half-open triple, where half-open means a probe has
  /// been admitted to the primary and its outcome is still pending.
  enum class State : int {
    kClosed = 0,
    kOpen = 1,
    kHalfOpen = 2,
  };

  /// Routing decision for the next batch. Advances the probe counter when
  /// open.
  Decision Admit();

  /// Reports the outcome of a batch that was sent to the primary
  /// (Decision::kPrimary or kProbe).
  void OnSuccess();
  void OnFailure();

  bool open() const { return open_; }
  /// Current gauge state; kHalfOpen between a kProbe admission and its
  /// OnSuccess/OnFailure report.
  State state() const;
  int consecutive_failures() const { return consecutive_failures_; }
  /// Lifetime transition counts (closed->open and open->closed).
  int64_t trips() const { return trips_; }
  int64_t recoveries() const { return recoveries_; }
  int64_t probes() const { return probes_; }

 private:
  CircuitBreakerOptions options_;
  bool open_ = false;
  bool probe_in_flight_ = false;
  int consecutive_failures_ = 0;
  int admissions_since_probe_ = 0;
  int64_t trips_ = 0;
  int64_t recoveries_ = 0;
  int64_t probes_ = 0;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_CIRCUIT_BREAKER_H_
