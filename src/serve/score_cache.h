#ifndef AHNTP_SERVE_SCORE_CACHE_H_
#define AHNTP_SERVE_SCORE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace ahntp::serve {

/// Cache key: one (src, dst) user pair under one model generation. The
/// generation is part of the key, not an invalidation side channel, so a
/// stale score is *unreachable* after a reload bumps the generation —
/// even before the owning server notices and flushes (score_cache.h is
/// flushed by TrustServer when it observes a generation change; the flush
/// is memory hygiene, never a correctness requirement).
struct ScoreKey {
  int src = 0;
  int dst = 0;
  int64_t generation = 0;

  bool operator==(const ScoreKey& other) const {
    return src == other.src && dst == other.dst &&
           generation == other.generation;
  }
};

struct ScoreKeyHash {
  size_t operator()(const ScoreKey& key) const {
    // SplitMix64 finalizer over the packed fields: cheap and well mixed.
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(key.src)) << 32) |
                 static_cast<uint64_t>(static_cast<uint32_t>(key.dst));
    x ^= static_cast<uint64_t>(key.generation) * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// What the cache stores per key: the primary score and the confidence the
/// backend attached to it (1.0 for backends without an uncertainty signal),
/// so a cache hit reproduces the full response — including the abstain
/// decision — of the original computation.
struct CachedScore {
  float score = 0.0f;
  float confidence = 1.0f;
};

/// Bounded LRU of model scores keyed on (src, dst, generation). Thread
/// safe: producers probe it at Submit time while the dispatcher fills and
/// flushes it. Only primary-model scores belong here — degraded
/// (heuristic) answers and abstained responses are never cached, so a
/// cache hit is always a real, confident model score for the generation
/// in its key.
class ScoreCache {
 public:
  /// `max_entries` must be positive; the cache never exceeds it.
  explicit ScoreCache(size_t max_entries);

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Returns the cached score and promotes the entry to most recent, or
  /// nullopt on a miss.
  std::optional<CachedScore> Get(const ScoreKey& key);

  /// Inserts or refreshes `key`, evicting the least recently used entry
  /// beyond capacity.
  void Put(const ScoreKey& key, float score, float confidence = 1.0f);

  /// Drops every entry; returns how many were dropped.
  size_t Flush();

  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  using Entry = std::pair<ScoreKey, CachedScore>;

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<ScoreKey, std::list<Entry>::iterator, ScoreKeyHash>
      index_;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_SCORE_CACHE_H_
