#ifndef AHNTP_SERVE_DYNAMIC_H_
#define AHNTP_SERVE_DYNAMIC_H_

#include <string>
#include <vector>

#include "core/dynamic_pipeline.h"
#include "serve/backend.h"
#include "serve/mutation.h"

namespace ahntp::serve {

/// A DynamicTrustPipeline (core/dynamic_pipeline.h) behind both serving
/// interfaces: reads score through the pipeline's predictor (compiled
/// inference plan, bit-identical to ModelBackend over the same weights),
/// and writes flow through ApplyMutation — the incremental delta cascade
/// that patches motif counts, influence, hypergroups, activation caches,
/// and plan rows instead of rebuilding.
///
/// generation() is the *graph* generation: every applied delta bumps it,
/// so the server's generation-keyed score cache and coalescing map drop
/// stale scores exactly at mutation boundaries. The store's generation is
/// an atomic, so the Submit fast path may probe it from any thread; the
/// apply itself happens only on the dispatcher thread (between batch
/// segments), which is the thread-model contract of MutationSink.
///
/// Shares ModelBackend's fault sites — "serve.infer" (transient
/// Unavailable, the retry path) and "serve.nan" (poisons the first score,
/// the non-finite breaker path) — so the retry/breaker machinery is
/// exercised identically behind either backend. The apply path keeps its
/// own sites ("graph.delta.apply", "plan.delta.refresh"); a fault there
/// rolls the store back and the response carries the error while reads
/// keep serving the previous generation.
class DynamicBackend : public ScoreBackend, public MutationSink {
 public:
  /// `pipeline` must outlive the backend (and the server in front of it).
  explicit DynamicBackend(core::DynamicTrustPipeline* pipeline);

  Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) override;

  std::string name() const override { return "dynamic"; }

  /// The mutable store's generation (atomic; callable from any thread).
  int64_t generation() const override;

  Result<graph::DeltaReceipt> ApplyMutation(
      const graph::GraphDelta& delta) override;

  core::DynamicTrustPipeline& pipeline() { return *pipeline_; }

 private:
  core::DynamicTrustPipeline* pipeline_;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_DYNAMIC_H_
