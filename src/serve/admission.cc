#include "serve/admission.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace ahntp::serve {

const char* LaneName(Lane lane) {
  switch (lane) {
    case Lane::kStrict:
      return "strict";
    case Lane::kDegradedEligible:
      return "degraded";
    case Lane::kBesteffort:
      return "besteffort";
  }
  return "unknown";
}

bool LaneFromString(const std::string& name, Lane* out) {
  if (name == "strict") {
    *out = Lane::kStrict;
  } else if (name == "degraded") {
    *out = Lane::kDegradedEligible;
  } else if (name == "besteffort") {
    *out = Lane::kBesteffort;
  } else {
    return false;
  }
  return true;
}

Lane DefaultLaneFromEnv() {
  static const Lane lane = [] {
    const char* value = std::getenv("AHNTP_SERVE_LANE");
    if (value == nullptr || value[0] == '\0') return Lane::kStrict;
    Lane parsed;
    AHNTP_CHECK(LaneFromString(value, &parsed))
        << "AHNTP_SERVE_LANE must be strict, degraded, or besteffort; got \""
        << value << "\"";
    return parsed;
  }();
  return lane;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : resolved_(options) {
  AHNTP_CHECK_GT(resolved_.queue_capacity, 0u)
      << "admission needs a positive queue capacity";
  resolved_.strict_reserve =
      std::min(resolved_.strict_reserve, resolved_.queue_capacity);
  const size_t shared = resolved_.queue_capacity - resolved_.strict_reserve;
  if (resolved_.besteffort_limit == 0) {
    resolved_.besteffort_limit = (shared + 1) / 2;
  }
  resolved_.besteffort_limit = std::min(resolved_.besteffort_limit, shared);
  if (resolved_.degrade_pressure == 0) {
    resolved_.degrade_pressure = resolved_.besteffort_limit;
  }
}

size_t AdmissionController::LimitFor(Lane lane) const {
  switch (lane) {
    case Lane::kStrict:
      return resolved_.queue_capacity;
    case Lane::kDegradedEligible:
      return resolved_.queue_capacity - resolved_.strict_reserve;
    case Lane::kBesteffort:
      return resolved_.besteffort_limit;
  }
  return 0;
}

bool AdmissionController::ShouldDowngrade(Lane lane, size_t depth) const {
  return lane == Lane::kDegradedEligible && depth >= resolved_.degrade_pressure;
}

}  // namespace ahntp::serve
