#include "serve/score_cache.h"

#include "common/check.h"

namespace ahntp::serve {

ScoreCache::ScoreCache(size_t max_entries) : max_entries_(max_entries) {
  AHNTP_CHECK_GT(max_entries, 0u) << "score cache capacity must be positive";
}

std::optional<CachedScore> ScoreCache::Get(const ScoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ScoreCache::Put(const ScoreKey& key, float score, float confidence) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = CachedScore{score, confidence};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, CachedScore{score, confidence});
  index_[key] = lru_.begin();
  if (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ScoreCache::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = lru_.size();
  index_.clear();
  lru_.clear();
  return dropped;
}

size_t ScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace ahntp::serve
