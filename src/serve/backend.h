#ifndef AHNTP_SERVE_BACKEND_H_
#define AHNTP_SERVE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/split.h"
#include "graph/digraph.h"
#include "models/heuristics.h"
#include "models/inference_plan.h"
#include "models/trust_predictor.h"
#include "models/uncertainty.h"

namespace ahntp::serve {

/// Scores plus the backend's per-pair confidence in them (DESIGN.md §16).
/// `confidence` is parallel to `scores`, each value in (0, 1]; backends
/// without an uncertainty signal report a constant 1.0.
struct BatchScores {
  std::vector<float> scores;
  std::vector<float> confidence;
};

/// A batch scorer behind the serving loop. Implementations must tolerate
/// concurrent control-plane calls (e.g. ModelBackend::Reload) against a
/// single scoring thread, but ScoreBatch itself is only ever invoked from
/// the server's dispatcher thread.
class ScoreBackend {
 public:
  virtual ~ScoreBackend() = default;

  /// Scores each (src, dst) pair in [0, 1]. A non-OK result is treated by
  /// the server as a failure of the whole batch (retryable when transient).
  virtual Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) = 0;

  /// ScoreBatch plus a per-pair confidence channel. The server's primary
  /// path always calls this; the default wraps ScoreBatch with constant
  /// confidence 1.0, so plain backends never abstain and behave exactly as
  /// before the uncertainty subsystem existed. Override alongside
  /// ScoreBatch when the backend has a real signal (EnsembleBackend).
  virtual Result<BatchScores> ScoreBatchWithConfidence(
      const std::vector<data::TrustPair>& pairs) {
    auto scores = ScoreBatch(pairs);
    AHNTP_RETURN_IF_ERROR(scores.status());
    BatchScores out;
    out.confidence.assign(scores.value().size(), 1.0f);
    out.scores = std::move(scores).value();
    return out;
  }

  virtual std::string name() const = 0;

  /// Monotonic model generation: bumps whenever the scores this backend
  /// would produce may have changed (hot reload, training, sharded-plan
  /// rebuild). The serving layer keys its score cache and request
  /// coalescing on it, so a bump makes every cached/in-flight score from
  /// the previous generation unreachable. Backends with immutable scores
  /// (e.g. HeuristicBackend) keep the default constant 0.
  virtual int64_t generation() const { return 0; }
};

/// The primary backend: a TrustPredictor behind an atomically swappable
/// slot, with checkpoint hot-reload.
///
/// Reload() stages a *fresh* model instance (built by the factory, so the
/// live model is never touched), loads the checkpoint into it — the v2
/// loader validates magic, shapes, and the CRC32 footer — and only then
/// swaps it in under the slot mutex. Any load failure (corrupt file,
/// shape mismatch, injected fault at site "serve.reload") leaves the old
/// model serving and increments the `serve.reload_failures` counter.
/// In-flight batches hold a shared_ptr snapshot, so a swap never pulls the
/// model out from under them.
///
/// Scoring goes through the predictor's compiled InferencePlan: the
/// all-user embedding table is encoded once per model generation (warmed at
/// construction and during reload staging, before the swap) and every batch
/// reuses it through a per-predictor workspace arena, so the steady-state
/// scoring loop never touches the heap. A reload publishes a fresh
/// predictor whose caches were invalidated by the checkpoint load and
/// re-warmed from the loaded weights — stale embeddings can never serve.
///
/// Fault sites: "serve.infer" (transient Unavailable before scoring, the
/// retry path), "serve.nan" (poisons the first score with a NaN, the
/// non-finite breaker path), "serve.reload" (I/O failure during reload).
class ModelBackend : public ScoreBackend {
 public:
  using Factory = std::function<std::unique_ptr<models::TrustPredictor>()>;

  /// `factory` builds architecture-identical instances for reload staging;
  /// `initial` is the model served until the first successful Reload().
  /// When `sharded` is set, the initial model and every staged reload run
  /// the shard-aware inference plan (models/inference_plan.h): embeddings
  /// live in per-shard disk blocks behind a bounded LRU, and a score
  /// request faults in only the shards of its (src, dst) users — scores
  /// stay bit-identical to the monolithic plan.
  /// `precision` selects the embedding-table format for the initial model
  /// and every staged reload (kInt8 = quantized tables, 4x smaller,
  /// tolerance-equal scores; see models::PlanPrecision).
  ModelBackend(Factory factory, std::unique_ptr<models::TrustPredictor> initial,
               std::optional<models::ShardedPlanOptions> sharded = std::nullopt,
               models::PlanPrecision precision = models::PlanPrecision::kFloat32);

  Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) override;

  std::string name() const override { return "model"; }

  /// Stage-validate-swap hot reload from a v2 checkpoint. On any failure
  /// the previous model keeps serving. Callable from any thread.
  Status Reload(const std::string& checkpoint_path);

  /// Number of successful reloads since construction; unchanged by failed
  /// ones (the hot-reload regression tests key on this).
  int64_t generation() const override;

 private:
  Factory factory_;
  std::optional<models::ShardedPlanOptions> sharded_;
  models::PlanPrecision precision_;
  mutable std::mutex mu_;
  std::shared_ptr<models::TrustPredictor> model_;
  int64_t generation_ = 0;
};

/// The degraded-mode fallback: a non-learned heuristic over the training
/// trust graph (models/heuristics.h). Orders of magnitude cheaper than
/// the model, never fails, and stays available when checkpoints are
/// corrupt or the model keeps erroring — stale-but-sane answers.
class HeuristicBackend : public ScoreBackend {
 public:
  /// `graph` must outlive the backend.
  HeuristicBackend(const graph::Digraph* graph, models::Heuristic heuristic,
                   const models::HeuristicOptions& options = {});

  Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) override;

  std::string name() const override;

 private:
  const graph::Digraph* graph_;
  models::Heuristic heuristic_;
  models::HeuristicOptions options_;
};

/// A SeedEnsemble (models/uncertainty.h) behind the ScoreBackend interface:
/// scores come from the canonical member — bit-identical to serving that
/// member through a ModelBackend — and ScoreBatchWithConfidence adds the
/// ensemble-disagreement confidence channel that drives the server's
/// abstain policy (ServeOptions::min_confidence).
///
/// Shares ModelBackend's "serve.infer" / "serve.nan" fault sites so the
/// retry and breaker machinery is exercised identically behind either
/// backend. Members are fixed at construction (no hot reload), so the
/// generation stays the ScoreBackend default of 0.
class EnsembleBackend : public ScoreBackend {
 public:
  /// `ensemble` must be non-null; co-owned so benches and demos can keep
  /// scoring through the same ensemble directly.
  explicit EnsembleBackend(std::shared_ptr<models::SeedEnsemble> ensemble);

  Result<std::vector<float>> ScoreBatch(
      const std::vector<data::TrustPair>& pairs) override;

  Result<BatchScores> ScoreBatchWithConfidence(
      const std::vector<data::TrustPair>& pairs) override;

  std::string name() const override { return "ensemble"; }

  models::SeedEnsemble& ensemble() { return *ensemble_; }

 private:
  std::shared_ptr<models::SeedEnsemble> ensemble_;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_BACKEND_H_
