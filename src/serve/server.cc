#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ahntp::serve {

namespace {

/// Failure codes worth retrying: transient outages and I/O hiccups. A
/// non-finite score (Internal) or a shape/config problem is deterministic
/// and retrying would only burn the deadline.
bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIoError;
}

bool AllFinite(const std::vector<float>& values) {
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

TrustServer::TrustServer(const ServeOptions& options, ScoreBackend* primary,
                         ScoreBackend* fallback)
    : options_(options),
      primary_(primary),
      fallback_(fallback),
      queue_(options.queue_capacity),
      breaker_(options.breaker) {
  AHNTP_CHECK(primary_ != nullptr) << "TrustServer needs a primary backend";
  AHNTP_CHECK_GT(options_.max_batch_size, 0u);
}

TrustServer::~TrustServer() { Shutdown(); }

std::future<TrustResponse> TrustServer::Submit(const TrustQuery& query) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  AHNTP_METRIC_COUNT("serve.submitted", 1);
  Request request;
  request.query = query;
  std::future<TrustResponse> future = request.promise.get_future();
  Status pushed = queue_.TryPush(request);
  if (!pushed.ok()) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.rejected", 1);
    TrustResponse response;
    response.status = pushed;
    request.promise.set_value(std::move(response));
  }
  return future;
}

void TrustServer::Start() {
  AHNTP_CHECK(!started_) << "TrustServer started twice";
  started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void TrustServer::Shutdown() {
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Never started: drain whatever sits in the queue so every future
  // completes.
  std::vector<Request> leftover;
  while (queue_.PopBatch(&leftover, options_.max_batch_size) > 0) {
    for (Request& request : leftover) {
      TrustResponse response;
      response.status = Status::FailedPrecondition("server shut down");
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
      Complete(&request, std::move(response));
    }
    leftover.clear();
  }
}

ServerStats TrustServer::Stats() const {
  ServerStats out;
  out.submitted = stats_.submitted.load(std::memory_order_relaxed);
  out.rejected = stats_.rejected.load(std::memory_order_relaxed);
  out.expired = stats_.expired.load(std::memory_order_relaxed);
  out.ok = stats_.ok.load(std::memory_order_relaxed);
  out.degraded = stats_.degraded.load(std::memory_order_relaxed);
  out.failed = stats_.failed.load(std::memory_order_relaxed);
  out.retries = stats_.retries.load(std::memory_order_relaxed);
  out.nonfinite = stats_.nonfinite.load(std::memory_order_relaxed);
  out.batches = stats_.batches.load(std::memory_order_relaxed);
  out.breaker_trips = stats_.trips.load(std::memory_order_relaxed);
  out.breaker_probes = stats_.probes.load(std::memory_order_relaxed);
  out.breaker_recoveries = stats_.recoveries.load(std::memory_order_relaxed);
  return out;
}

void TrustServer::DispatchLoop() {
  std::vector<Request> batch;
  while (queue_.PopBatch(&batch, options_.max_batch_size) > 0) {
    ProcessBatch(&batch);
    batch.clear();
  }
}

void TrustServer::Complete(Request* request, TrustResponse response) {
  response.latency_ms = request->queued.ElapsedMillis();
  if (metrics::Enabled()) {
    metrics::GetHistogram("serve.request_latency_seconds")
        .Observe(response.latency_ms * 1e-3);
  }
  request->promise.set_value(std::move(response));
}

void TrustServer::ProcessBatch(std::vector<Request>* batch) {
  trace::TraceSpan span("serve.batch");
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  AHNTP_METRIC_COUNT("serve.batches", 1);
  if (metrics::Enabled()) {
    metrics::GetGauge("serve.queue_depth")
        .Set(static_cast<double>(queue_.size()));
    metrics::GetHistogram("serve.batch_size")
        .Observe(static_cast<double>(batch->size()));
  }
  const uint64_t batch_key = batch_ordinal_++;

  // Deadlines are enforced here, at the batch boundary: expired requests
  // complete as DeadlineExceeded instead of being silently computed.
  std::vector<Request*> live;
  std::vector<data::TrustPair> pairs;
  live.reserve(batch->size());
  pairs.reserve(batch->size());
  for (Request& request : *batch) {
    if (request.query.deadline.Expired()) {
      stats_.expired.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.expired", 1);
      TrustResponse response;
      response.status =
          Status::DeadlineExceeded("deadline expired before inference");
      Complete(&request, std::move(response));
      continue;
    }
    live.push_back(&request);
    pairs.push_back({request.query.src, request.query.dst, 0.0f});
  }
  if (live.empty()) return;

  CircuitBreaker::Decision decision = breaker_.Admit();
  if (decision == CircuitBreaker::Decision::kProbe) {
    stats_.probes.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.breaker_probes", 1);
  }
  if (decision == CircuitBreaker::Decision::kFallback) {
    Degrade(live, pairs, Status::Unavailable("circuit breaker open"), 0);
    return;
  }

  // Primary path with deterministic retry/backoff for transient failures.
  const int max_attempts = std::max(options_.retry.max_attempts, 1);
  Status failure;
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.retries", 1);
      trace::TraceSpan retry_span("serve.retry");
      double delay_ms = options_.retry.DelayMillis(batch_key, attempt - 1);
      if (options_.sleep_on_backoff && delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    attempts = attempt + 1;
    Result<std::vector<float>> scores = primary_->ScoreBatch(pairs);
    if (!scores.ok()) {
      failure = scores.status();
      if (IsTransient(failure.code())) continue;
      break;
    }
    if (!AllFinite(*scores)) {
      stats_.nonfinite.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.nonfinite", 1);
      failure = Status::Internal("non-finite score from primary backend");
      break;  // deterministic corruption; retrying cannot help
    }
    breaker_.OnSuccess();
    if (decision == CircuitBreaker::Decision::kProbe) {
      stats_.recoveries.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.breaker_recoveries", 1);
      AHNTP_LOG(Info) << "serve: probe succeeded, circuit breaker closed";
    }
    for (size_t i = 0; i < live.size(); ++i) {
      stats_.ok.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.ok", 1);
      TrustResponse response;
      response.score = (*scores)[i];
      response.attempts = attempts;
      Complete(live[i], std::move(response));
    }
    return;
  }

  const bool was_open = breaker_.open();
  breaker_.OnFailure();
  if (breaker_.open() && !was_open) {
    stats_.trips.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.breaker_trips", 1);
    AHNTP_LOG(Warning) << "serve: circuit breaker tripped after "
                       << breaker_.consecutive_failures()
                       << " consecutive failures (" << failure.ToString()
                       << ")";
  }
  Degrade(live, pairs, failure, attempts);
}

void TrustServer::Degrade(const std::vector<Request*>& live,
                          const std::vector<data::TrustPair>& pairs,
                          const Status& reason, int attempts) {
  if (fallback_ != nullptr) {
    trace::TraceSpan span("serve.degraded");
    Result<std::vector<float>> scores = fallback_->ScoreBatch(pairs);
    if (scores.ok()) {
      for (size_t i = 0; i < live.size(); ++i) {
        stats_.degraded.fetch_add(1, std::memory_order_relaxed);
        AHNTP_METRIC_COUNT("serve.degraded", 1);
        TrustResponse response;
        response.score = (*scores)[i];
        response.degraded = true;
        response.attempts = attempts;
        Complete(live[i], std::move(response));
      }
      return;
    }
    AHNTP_LOG(Warning) << "serve: fallback backend failed too: "
                       << scores.status().ToString();
  }
  for (Request* request : live) {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.failed", 1);
    TrustResponse response;
    response.status = reason.ok()
                          ? Status::Unavailable("primary backend unavailable")
                          : reason;
    response.attempts = attempts;
    Complete(request, std::move(response));
  }
}

}  // namespace ahntp::serve
