#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ahntp::serve {

namespace {

/// Failure codes worth retrying: transient outages and I/O hiccups. A
/// non-finite score (Internal) or a shape/config problem is deterministic
/// and retrying would only burn the deadline.
bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIoError;
}

bool AllFinite(const std::vector<float>& values) {
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Per-lane admission counters carry the lane name, which varies at
/// runtime, so they go through the registry lookup instead of the
/// static-caching AHNTP_METRIC_COUNT macro.
void CountLaneMetric(Lane lane, const char* outcome) {
  if (metrics::Enabled()) {
    metrics::GetCounter(std::string("serve.lane.") + LaneName(lane) + "." +
                        outcome)
        .Increment();
  }
}

void ObserveLatency(double latency_ms) {
  if (metrics::Enabled()) {
    metrics::GetHistogram("serve.request_latency_seconds")
        .Observe(latency_ms * 1e-3);
  }
}

}  // namespace

TrustServer::TrustServer(const ServeOptions& options, ScoreBackend* primary,
                         ScoreBackend* fallback, MutationSink* mutations)
    : options_(options),
      primary_(primary),
      fallback_(fallback),
      mutations_(mutations),
      admission_([&options] {
        AdmissionOptions resolved = options.admission;
        resolved.queue_capacity = options.queue_capacity;
        return resolved;
      }()),
      queue_(options.queue_capacity),
      breaker_(options.breaker) {
  AHNTP_CHECK(primary_ != nullptr) << "TrustServer needs a primary backend";
  AHNTP_CHECK_GT(options_.max_batch_size, 0u);
  if (options_.shared_score_cache != nullptr) {
    cache_ = options_.shared_score_cache;
  } else if (options_.score_cache_entries > 0) {
    owned_cache_ = std::make_unique<ScoreCache>(options_.score_cache_entries);
    cache_ = owned_cache_.get();
  }
  cache_generation_ = primary_->generation();
}

TrustServer::~TrustServer() { Shutdown(); }

std::future<TrustResponse> TrustServer::Submit(const TrustQuery& query) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  AHNTP_METRIC_COUNT("serve.submitted", 1);
  const Lane lane = query.lane;
  const int lane_index = static_cast<int>(lane);
  AHNTP_CHECK(lane_index >= 0 && lane_index < kNumLanes)
      << "invalid lane " << lane_index;

  Request request;
  request.query = query;
  std::future<TrustResponse> future = request.promise.get_future();
  request.key = {query.src, query.dst, primary_->generation()};

  // Fast path: a repeat lookup for the live generation is answered from
  // the cache without occupying a queue slot or touching any backend. An
  // entry below the abstain threshold (possible only with a shared cache
  // filled by a laxer server) is treated as a miss, never served.
  if (cache_ != nullptr && !queue_.closed() && !query.deadline.Expired()) {
    std::optional<CachedScore> hit = cache_->Get(request.key);
    if (hit && hit->confidence >= options_.min_confidence) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.cache_hits", 1);
      stats_.lane_admitted[lane_index].fetch_add(1, std::memory_order_relaxed);
      CountLaneMetric(lane, "admitted");
      TrustResponse response;
      response.score = hit->score;
      response.confidence = hit->confidence;
      response.cached = true;
      CountOutcome(response);
      Complete(&request, std::move(response));
      return future;
    }
  }

  Status pushed;
  if (options_.coalesce) {
    // The map registration and the queue push form one critical section:
    // a follower can only attach to a leader that is (or will be)
    // enqueued. Lock order here and in Complete() is coalesce_mu_ before
    // the group mutex.
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    auto it = inflight_.find(request.key);
    if (it != inflight_.end()) {
      std::lock_guard<std::mutex> group_lock(it->second->mu);
      if (!it->second->done) {
        it->second->followers.push_back(
            Follower{query.deadline, std::move(request.promise), request.queued});
        stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
        AHNTP_METRIC_COUNT("serve.coalesced", 1);
        stats_.lane_admitted[lane_index].fetch_add(1,
                                                   std::memory_order_relaxed);
        CountLaneMetric(lane, "admitted");
        return future;
      }
    }
    request.group = std::make_shared<CoalesceGroup>();
    request.downgrade = fallback_ != nullptr &&
                        admission_.ShouldDowngrade(lane, queue_.size());
    std::shared_ptr<CoalesceGroup> group = request.group;
    const ScoreKey key = request.key;
    pushed = queue_.TryPushIfBelow(request, admission_.LimitFor(lane));
    if (pushed.ok()) inflight_[key] = std::move(group);
  } else {
    request.downgrade = fallback_ != nullptr &&
                        admission_.ShouldDowngrade(lane, queue_.size());
    pushed = queue_.TryPushIfBelow(request, admission_.LimitFor(lane));
  }

  if (!pushed.ok()) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.rejected", 1);
    stats_.lane_rejected[lane_index].fetch_add(1, std::memory_order_relaxed);
    CountLaneMetric(lane, "rejected");
    TrustResponse response;
    response.status = pushed;
    request.promise.set_value(std::move(response));
    return future;
  }
  stats_.lane_admitted[lane_index].fetch_add(1, std::memory_order_relaxed);
  CountLaneMetric(lane, "admitted");
  return future;
}

std::future<MutationResponse> TrustServer::SubmitMutation(
    graph::GraphDelta delta) {
  stats_.mutations_submitted.fetch_add(1, std::memory_order_relaxed);
  AHNTP_METRIC_COUNT("serve.mutations_submitted", 1);
  Request request;
  request.is_mutation = true;
  request.mutation = std::move(delta);
  std::future<MutationResponse> future =
      request.mutation_promise.get_future();
  if (mutations_ == nullptr) {
    stats_.mutations_rejected.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.mutations_rejected", 1);
    MutationResponse response;
    response.status =
        Status::FailedPrecondition("no mutation sink configured");
    request.mutation_promise.set_value(std::move(response));
    return future;
  }
  // The write lane is admitted at full queue capacity — mutations are
  // never shed by a read lane's limit, never coalesced, and never served
  // from the cache.
  Status pushed = queue_.TryPush(request);
  if (!pushed.ok()) {
    stats_.mutations_rejected.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.mutations_rejected", 1);
    MutationResponse response;
    response.status = pushed;
    request.mutation_promise.set_value(std::move(response));
  }
  return future;
}

void TrustServer::Start() {
  AHNTP_CHECK(!started_) << "TrustServer started twice";
  started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void TrustServer::Shutdown() {
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Never started: drain whatever sits in the queue so every future
  // completes (coalesced followers ride their leader's fan-out).
  std::vector<Request> leftover;
  while (queue_.PopBatch(&leftover, options_.max_batch_size) > 0) {
    for (Request& request : leftover) {
      if (request.is_mutation) {
        MutationResponse response;
        response.status = Status::FailedPrecondition("server shut down");
        response.latency_ms = request.queued.ElapsedMillis();
        stats_.mutations_failed.fetch_add(1, std::memory_order_relaxed);
        request.mutation_promise.set_value(std::move(response));
        continue;
      }
      TrustResponse response;
      response.status = Status::FailedPrecondition("server shut down");
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
      Complete(&request, std::move(response));
    }
    leftover.clear();
  }
}

ServerStats TrustServer::Stats() const {
  ServerStats out;
  out.submitted = stats_.submitted.load(std::memory_order_relaxed);
  out.rejected = stats_.rejected.load(std::memory_order_relaxed);
  out.expired = stats_.expired.load(std::memory_order_relaxed);
  out.ok = stats_.ok.load(std::memory_order_relaxed);
  out.degraded = stats_.degraded.load(std::memory_order_relaxed);
  out.failed = stats_.failed.load(std::memory_order_relaxed);
  out.retries = stats_.retries.load(std::memory_order_relaxed);
  out.nonfinite = stats_.nonfinite.load(std::memory_order_relaxed);
  out.batches = stats_.batches.load(std::memory_order_relaxed);
  out.breaker_trips = stats_.trips.load(std::memory_order_relaxed);
  out.breaker_probes = stats_.probes.load(std::memory_order_relaxed);
  out.breaker_recoveries = stats_.recoveries.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumLanes; ++i) {
    out.lane_admitted[i] = stats_.lane_admitted[i].load(std::memory_order_relaxed);
    out.lane_rejected[i] = stats_.lane_rejected[i].load(std::memory_order_relaxed);
  }
  out.downgraded = stats_.downgraded.load(std::memory_order_relaxed);
  out.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
  out.coalesced_expired =
      stats_.coalesced_expired.load(std::memory_order_relaxed);
  out.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = stats_.cache_misses.load(std::memory_order_relaxed);
  out.cache_flushes = stats_.cache_flushes.load(std::memory_order_relaxed);
  out.abstained = stats_.abstained.load(std::memory_order_relaxed);
  out.mutations_submitted =
      stats_.mutations_submitted.load(std::memory_order_relaxed);
  out.mutations_rejected =
      stats_.mutations_rejected.load(std::memory_order_relaxed);
  out.mutations_applied =
      stats_.mutations_applied.load(std::memory_order_relaxed);
  out.mutations_failed =
      stats_.mutations_failed.load(std::memory_order_relaxed);
  return out;
}

void TrustServer::DispatchLoop() {
  std::vector<Request> batch;
  while (queue_.PopBatch(&batch, options_.max_batch_size) > 0) {
    ProcessBatch(&batch);
    batch.clear();
  }
}

void TrustServer::CountOutcome(const TrustResponse& response) {
  if (response.abstained) {
    stats_.abstained.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.abstained", 1);
  }
  if (response.status.ok()) {
    if (response.degraded) {
      stats_.degraded.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.degraded", 1);
    } else {
      stats_.ok.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.ok", 1);
    }
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    stats_.expired.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.expired", 1);
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.failed", 1);
  }
}

void TrustServer::PublishBreakerState() {
  if (metrics::Enabled()) {
    metrics::GetGauge("serve.breaker_state")
        .Set(static_cast<double>(static_cast<int>(breaker_.state())));
  }
}

void TrustServer::Complete(Request* request, TrustResponse response) {
  std::vector<Follower> followers;
  if (request->group != nullptr) {
    {
      // Unregister first (same lock order as Submit: coalesce_mu_ before
      // the group mutex), so late duplicates start a fresh leader instead
      // of attaching to a completed one.
      std::lock_guard<std::mutex> lock(coalesce_mu_);
      auto it = inflight_.find(request->key);
      if (it != inflight_.end() && it->second == request->group) {
        inflight_.erase(it);
      }
    }
    std::lock_guard<std::mutex> group_lock(request->group->mu);
    request->group->done = true;
    followers = std::move(request->group->followers);
  }
  for (Follower& follower : followers) {
    TrustResponse fanned = response;
    if (follower.deadline.Expired()) {
      // The follower's own budget ran out while it rode the leader; it
      // resolves DeadlineExceeded without cancelling the leader.
      fanned = TrustResponse{};
      fanned.status =
          Status::DeadlineExceeded("deadline expired while coalesced");
      stats_.coalesced_expired.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.coalesced_expired", 1);
    }
    fanned.coalesced = true;
    fanned.latency_ms = follower.queued.ElapsedMillis();
    ObserveLatency(fanned.latency_ms);
    CountOutcome(fanned);
    follower.promise.set_value(std::move(fanned));
  }
  response.latency_ms = request->queued.ElapsedMillis();
  ObserveLatency(response.latency_ms);
  request->promise.set_value(std::move(response));
}

void TrustServer::ProcessBatch(std::vector<Request>* batch) {
  // Mutations partition the popped batch into read segments. Reads ahead
  // of a mutation score against the pre-delta generation, reads behind it
  // against the post-delta one — the interleaving is exactly the queue
  // order, so a fixed submission sequence yields a fixed read/write
  // schedule at any thread count. A mutation-free batch takes the
  // single-segment path, byte-identical to the pre-write-lane server.
  std::vector<Request*> segment;
  segment.reserve(batch->size());
  for (Request& request : *batch) {
    if (request.is_mutation) {
      if (!segment.empty()) {
        ProcessReadSegment(segment);
        segment.clear();
      }
      ApplyMutationRequest(&request);
      continue;
    }
    segment.push_back(&request);
  }
  if (!segment.empty()) ProcessReadSegment(segment);
}

void TrustServer::ApplyMutationRequest(Request* request) {
  trace::TraceSpan span("serve.mutation");
  MutationResponse response;
  Result<graph::DeltaReceipt> applied =
      mutations_->ApplyMutation(request->mutation);
  if (applied.ok()) {
    response.receipt = std::move(applied).value();
    // The backend generation, not the receipt's store generation: the
    // contract is "reads served after this response see at least this
    // generation", and the backend is what reads observe.
    response.generation = primary_->generation();
    stats_.mutations_applied.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.mutations_applied", 1);
  } else {
    response.status = applied.status();
    stats_.mutations_failed.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.mutations_failed", 1);
    AHNTP_LOG(Warning) << "serve: mutation failed: "
                       << response.status.ToString();
  }
  response.latency_ms = request->queued.ElapsedMillis();
  if (metrics::Enabled()) {
    metrics::GetHistogram("serve.mutation_latency_seconds")
        .Observe(response.latency_ms * 1e-3);
  }
  request->mutation_promise.set_value(std::move(response));
}

void TrustServer::ProcessReadSegment(const std::vector<Request*>& segment) {
  trace::TraceSpan span("serve.batch");
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  AHNTP_METRIC_COUNT("serve.batches", 1);
  if (metrics::Enabled()) {
    metrics::GetGauge("serve.queue_depth")
        .Set(static_cast<double>(queue_.size()));
    metrics::GetHistogram("serve.batch_size")
        .Observe(static_cast<double>(segment.size()));
  }
  const uint64_t batch_key = batch_ordinal_++;

  // One generation observation per segment: a bump since the last segment
  // (hot reload, training, sharded-plan rebuild, or a write-lane delta
  // applied at the previous mutation boundary) flushes the cache. The
  // flush is hygiene — stale entries are already unreachable because the
  // generation is part of every key.
  const int64_t generation = primary_->generation();
  if (cache_ != nullptr && generation != cache_generation_) {
    cache_->Flush();
    cache_generation_ = generation;
    stats_.cache_flushes.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.cache_flushes", 1);
  }

  // Deadlines are enforced here, at the batch boundary: expired requests
  // complete as DeadlineExceeded instead of being silently computed. The
  // survivors split into the admission-downgraded slice (fallback-bound),
  // batch-time cache hits, and the primary slice.
  std::vector<Request*> live;
  std::vector<data::TrustPair> pairs;
  std::vector<Request*> downgraded;
  std::vector<data::TrustPair> downgraded_pairs;
  live.reserve(segment.size());
  pairs.reserve(segment.size());
  for (Request* request : segment) {
    if (request->query.deadline.Expired()) {
      TrustResponse response;
      response.status =
          Status::DeadlineExceeded("deadline expired before inference");
      CountOutcome(response);
      Complete(request, std::move(response));
      continue;
    }
    if (request->downgrade && fallback_ != nullptr) {
      stats_.downgraded.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.downgraded", 1);
      downgraded.push_back(request);
      downgraded_pairs.push_back(
          {request->query.src, request->query.dst, 0.0f});
      continue;
    }
    if (cache_ != nullptr) {
      ScoreKey key{request->query.src, request->query.dst, generation};
      std::optional<CachedScore> hit = cache_->Get(key);
      if (hit && hit->confidence >= options_.min_confidence) {
        stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        AHNTP_METRIC_COUNT("serve.cache_hits", 1);
        TrustResponse response;
        response.score = hit->score;
        response.confidence = hit->confidence;
        response.cached = true;
        CountOutcome(response);
        Complete(request, std::move(response));
        continue;
      }
      stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.cache_misses", 1);
    }
    live.push_back(request);
    pairs.push_back({request->query.src, request->query.dst, 0.0f});
  }
  if (!downgraded.empty()) {
    Degrade(downgraded, downgraded_pairs,
            Status::Unavailable("downgraded by admission pressure"), 0);
  }
  if (live.empty()) return;

  CircuitBreaker::Decision decision = breaker_.Admit();
  PublishBreakerState();
  if (decision == CircuitBreaker::Decision::kProbe) {
    stats_.probes.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.breaker_probes", 1);
  }
  if (decision == CircuitBreaker::Decision::kFallback) {
    Degrade(live, pairs, Status::Unavailable("circuit breaker open"), 0);
    return;
  }

  // Primary path with deterministic retry/backoff for transient failures.
  const int max_attempts = std::max(options_.retry.max_attempts, 1);
  Status failure;
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.retries", 1);
      trace::TraceSpan retry_span("serve.retry");
      double delay_ms = options_.retry.DelayMillis(batch_key, attempt - 1);
      if (options_.sleep_on_backoff && delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    attempts = attempt + 1;
    Result<BatchScores> scored = primary_->ScoreBatchWithConfidence(pairs);
    if (!scored.ok()) {
      failure = scored.status();
      if (IsTransient(failure.code())) continue;
      break;
    }
    AHNTP_CHECK_EQ(scored->scores.size(), pairs.size());
    AHNTP_CHECK_EQ(scored->confidence.size(), pairs.size());
    if (!AllFinite(scored->scores) || !AllFinite(scored->confidence)) {
      stats_.nonfinite.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.nonfinite", 1);
      failure = Status::Internal("non-finite score from primary backend");
      break;  // deterministic corruption; retrying cannot help
    }
    breaker_.OnSuccess();
    PublishBreakerState();
    if (decision == CircuitBreaker::Decision::kProbe) {
      stats_.recoveries.fetch_add(1, std::memory_order_relaxed);
      AHNTP_METRIC_COUNT("serve.breaker_recoveries", 1);
      AHNTP_LOG(Info) << "serve: probe succeeded, circuit breaker closed";
    }
    // The abstain partition is a pure function of the batch contents (the
    // backend's scores and confidences are thread-count-invariant), so
    // which requests abstain is deterministic at any --threads=N.
    // Confident scores are served and cached; abstained ones reroute
    // through the degraded-fallback machinery and are never cached.
    std::vector<Request*> abstain;
    std::vector<data::TrustPair> abstain_pairs;
    std::vector<float> abstain_confidence;
    for (size_t i = 0; i < live.size(); ++i) {
      const float conf = scored->confidence[i];
      if (options_.min_confidence > 0.0f && conf < options_.min_confidence) {
        abstain.push_back(live[i]);
        abstain_pairs.push_back(pairs[i]);
        abstain_confidence.push_back(conf);
        continue;
      }
      if (cache_ != nullptr) {
        cache_->Put({pairs[i].src, pairs[i].dst, generation},
                    scored->scores[i], conf);
      }
      TrustResponse response;
      response.score = scored->scores[i];
      response.confidence = conf;
      response.attempts = attempts;
      CountOutcome(response);
      Complete(live[i], std::move(response));
    }
    if (!abstain.empty()) {
      Degrade(abstain, abstain_pairs,
              Status::FailedPrecondition(
                  "abstained: primary confidence below min_confidence"),
              attempts, &abstain_confidence);
    }
    return;
  }

  const bool was_open = breaker_.open();
  breaker_.OnFailure();
  PublishBreakerState();
  if (breaker_.open() && !was_open) {
    stats_.trips.fetch_add(1, std::memory_order_relaxed);
    AHNTP_METRIC_COUNT("serve.breaker_trips", 1);
    AHNTP_LOG(Warning) << "serve: circuit breaker tripped after "
                       << breaker_.consecutive_failures()
                       << " consecutive failures (" << failure.ToString()
                       << ")";
  }
  Degrade(live, pairs, failure, attempts);
}

void TrustServer::Degrade(const std::vector<Request*>& live,
                          const std::vector<data::TrustPair>& pairs,
                          const Status& reason, int attempts,
                          const std::vector<float>* abstain_confidence) {
  if (fallback_ != nullptr) {
    trace::TraceSpan span("serve.degraded");
    Result<std::vector<float>> scores = fallback_->ScoreBatch(pairs);
    if (scores.ok()) {
      for (size_t i = 0; i < live.size(); ++i) {
        TrustResponse response;
        response.score = (*scores)[i];
        response.degraded = true;
        response.attempts = attempts;
        if (abstain_confidence != nullptr) {
          response.abstained = true;
          response.confidence = (*abstain_confidence)[i];
        }
        CountOutcome(response);
        Complete(live[i], std::move(response));
      }
      return;
    }
    AHNTP_LOG(Warning) << "serve: fallback backend failed too: "
                       << scores.status().ToString();
  }
  for (size_t i = 0; i < live.size(); ++i) {
    TrustResponse response;
    response.status = reason.ok()
                          ? Status::Unavailable("primary backend unavailable")
                          : reason;
    response.attempts = attempts;
    if (abstain_confidence != nullptr) {
      response.abstained = true;
      response.confidence = (*abstain_confidence)[i];
    }
    CountOutcome(response);
    Complete(live[i], std::move(response));
  }
}

}  // namespace ahntp::serve
