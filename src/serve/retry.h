#ifndef AHNTP_SERVE_RETRY_H_
#define AHNTP_SERVE_RETRY_H_

#include <cstdint>
#include <vector>

namespace ahntp::serve {

/// Deterministic exponential backoff with seeded jitter.
///
/// The delay before retry `attempt` (0-based: the wait after the first
/// failure is attempt 0) of the work item identified by `key` is
///
///   min(max_delay_ms, base_delay_ms * 2^attempt) * (1 - jitter * u)
///
/// where u in [0, 1) is drawn by a splitmix64 hash of (seed, key, attempt).
/// The schedule is a pure function of (policy, key) — no global RNG state,
/// no clock — so a fixed `--fault_seed` replays bit-identical backoff
/// sequences at any thread count, which is what makes retry behaviour
/// testable (tests/serve_test.cc) and serve counters thread-invariant.
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retry.
  int max_attempts = 3;
  double base_delay_ms = 0.5;
  double max_delay_ms = 50.0;
  /// Fraction of the exponential delay randomized away, in [0, 1].
  /// 0 = pure exponential, 1 = full jitter.
  double jitter = 0.5;
  /// Seeds the jitter hash (wired to --fault_seed by the serving demo so
  /// one flag pins the whole failure schedule).
  uint64_t seed = 0;

  /// Backoff in milliseconds before retry `attempt` of item `key`.
  double DelayMillis(uint64_t key, int attempt) const;

  /// The full schedule for `key`: max_attempts - 1 delays.
  std::vector<double> Schedule(uint64_t key) const;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_RETRY_H_
