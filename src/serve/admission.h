#ifndef AHNTP_SERVE_ADMISSION_H_
#define AHNTP_SERVE_ADMISSION_H_

#include <cstddef>
#include <string>

namespace ahntp::serve {

/// Priority lane a request travels in. Overload control is lane-aware:
/// best-effort traffic is shed first, degraded-eligible traffic is
/// downgraded to the heuristic fallback under pressure, and strict
/// traffic is only rejected when the queue — including its strict-only
/// reservation — is exhausted (DESIGN.md §12).
enum class Lane : int {
  kStrict = 0,            // must be model-scored or rejected
  kDegradedEligible = 1,  // may be answered by the fallback under pressure
  kBesteffort = 2,        // first to shed; lowest admission limit
};

inline constexpr int kNumLanes = 3;

/// Stable lowercase lane name ("strict" / "degraded" / "besteffort"),
/// used in metric names, bench rows, and digests.
const char* LaneName(Lane lane);

/// Parses a lane name (as produced by LaneName). Returns true on success.
bool LaneFromString(const std::string& name, Lane* out);

/// Default lane for requests that do not carry one explicitly, resolved
/// once from the AHNTP_SERVE_LANE environment variable ("strict",
/// "degraded", or "besteffort"); kStrict when unset. An unparseable value
/// aborts via CHECK (operator error, same contract as malformed flags).
Lane DefaultLaneFromEnv();

/// Static admission policy over a bounded queue of `queue_capacity` slots.
///
/// The capacity splits into a strict-only reservation of `strict_reserve`
/// slots and a shared region of `queue_capacity - strict_reserve` slots:
///
///   depth <  besteffort_limit                 : every lane admitted
///   depth <  degrade_pressure                 : besteffort shed
///   depth <  shared (= capacity - reserve)    : degraded-eligible requests
///                                               admitted but *downgraded*
///                                               to the fallback backend
///   depth <  queue_capacity                   : only strict admitted
///   depth >= queue_capacity                   : everything shed
///
/// Unset (zero) tuning fields resolve to besteffort_limit = half the
/// shared region and degrade_pressure = besteffort_limit: the moment
/// best-effort traffic starts shedding, degraded-eligible traffic stops
/// costing model inference. All thresholds are pure functions of the
/// observed queue depth, so a closed-loop run admits an identical
/// request set at any thread count.
struct AdmissionOptions {
  size_t queue_capacity = 256;
  /// Slots only strict requests may occupy (clamped to queue_capacity).
  size_t strict_reserve = 0;
  /// Depth at and beyond which best-effort requests are shed.
  /// 0 = (queue_capacity - strict_reserve + 1) / 2.
  size_t besteffort_limit = 0;
  /// Depth at and beyond which degraded-eligible requests are downgraded
  /// to the fallback. 0 = the resolved besteffort_limit.
  size_t degrade_pressure = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Queue-depth limit for `lane`: a request is admitted iff the depth at
  /// push time is strictly below this.
  size_t LimitFor(Lane lane) const;

  /// True when a degraded-eligible request arriving at `depth` should be
  /// served by the fallback backend instead of the model. Always false
  /// for the other lanes.
  bool ShouldDowngrade(Lane lane, size_t depth) const;

  /// The policy with every zero field resolved to its default.
  const AdmissionOptions& resolved() const { return resolved_; }

 private:
  AdmissionOptions resolved_;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_ADMISSION_H_
