#ifndef AHNTP_SERVE_SERVER_H_
#define AHNTP_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "data/split.h"
#include "serve/admission.h"
#include "serve/backend.h"
#include "serve/bounded_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/mutation.h"
#include "serve/retry.h"
#include "serve/score_cache.h"

namespace ahntp::serve {

/// One trust query: does `src` trust `dst`?
struct TrustQuery {
  int src = 0;
  int dst = 0;
  /// Checked cooperatively at batch boundaries; expired requests complete
  /// as DeadlineExceeded instead of being silently computed.
  Deadline deadline;
  /// Priority lane for overload control (serve/admission.h). Strict by
  /// default, which preserves the pre-lane behaviour: admitted while any
  /// queue slot is free, never downgraded.
  Lane lane = Lane::kStrict;
};

/// The terminal answer every submitted query eventually receives.
struct TrustResponse {
  /// Ok, or why no score was computed: ResourceExhausted (queue full /
  /// lane shed), DeadlineExceeded, Unavailable / IoError (primary kept
  /// failing and no fallback was configured), FailedPrecondition (server
  /// shut down).
  Status status;
  float score = std::numeric_limits<float>::quiet_NaN();
  /// True when the score came from the degraded-mode fallback backend
  /// (stale-but-sane heuristic) instead of the model — whether via the
  /// circuit breaker, an admission downgrade under pressure, or an
  /// abstention (see `abstained`).
  bool degraded = false;
  /// The primary backend's confidence in its score (serve/backend.h), in
  /// (0, 1]; 1.0 for backends without an uncertainty signal, and for
  /// degraded/failed responses where no primary score was produced. Cache
  /// hits reproduce the confidence cached with the score.
  float confidence = 1.0f;
  /// True when the primary scored this pair but its confidence fell below
  /// ServeOptions::min_confidence: the response carries the fallback's
  /// score instead (degraded=true), or the abstention error when no
  /// fallback is configured. `confidence` then reports the rejected
  /// primary confidence.
  bool abstained = false;
  /// True when the score was served from the generation-keyed score cache
  /// without touching the backend.
  bool cached = false;
  /// True when this request rode another in-flight request for the same
  /// (src, dst, generation) instead of occupying a queue slot.
  bool coalesced = false;
  /// Primary inference attempts spent on this request's batch.
  int attempts = 0;
  /// Submit-to-completion wall time (queue wait + compute).
  double latency_ms = 0.0;
};

struct ServeOptions {
  /// Bounded request queue; Submit rejects with ResourceExhausted beyond
  /// this — explicit backpressure, never unbounded growth.
  size_t queue_capacity = 256;
  /// Requests scored per inference batch.
  size_t max_batch_size = 32;
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  /// Lane thresholds (serve/admission.h). `queue_capacity` above wins over
  /// the copy inside this struct. Defaults keep strict-lane-only traffic
  /// byte-identical to the pre-admission server.
  AdmissionOptions admission;
  /// Attach duplicate in-flight (src, dst, generation) requests to the
  /// first one's future instead of occupying queue slots.
  bool coalesce = false;
  /// LRU score cache entries keyed on (src, dst, generation); 0 disables.
  /// Ignored when `shared_score_cache` is set.
  size_t score_cache_entries = 0;
  /// Optional externally owned cache, shared across server instances (and
  /// so across closed-loop waves); must outlive the server.
  ScoreCache* shared_score_cache = nullptr;
  /// Sleep the computed backoff between retries. Tests that only assert
  /// on the deterministic schedule/counters can turn the actual sleeping
  /// off.
  bool sleep_on_backoff = true;
  /// Abstain policy (DESIGN.md §16): a primary score whose confidence is
  /// strictly below this threshold is not served — the request reroutes
  /// through the degraded-fallback machinery (TrustResponse::abstained).
  /// <= 0 disables (the default; plain backends report confidence 1.0 and
  /// would never abstain anyway). The comparison and the resulting
  /// partition are pure functions of the batch contents, so abstain
  /// decisions are deterministic at any --threads=N.
  float min_confidence = 0.0f;
};

/// Monotonic totals since construction. `submitted - rejected` accepted
/// requests partition into `expired + ok + degraded + failed` once the
/// server drains; coalesced followers and cache hits are accepted
/// requests like any other and land in the same partition.
struct ServerStats {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t expired = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  int64_t retries = 0;
  int64_t nonfinite = 0;
  int64_t batches = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_probes = 0;
  int64_t breaker_recoveries = 0;
  /// Per-lane admission outcomes, indexed by Lane. `admitted` includes
  /// queue slots, coalesced followers, and submit-time cache hits.
  int64_t lane_admitted[kNumLanes] = {0, 0, 0};
  int64_t lane_rejected[kNumLanes] = {0, 0, 0};
  /// Degraded-eligible requests admitted under pressure and routed to the
  /// fallback without touching the primary.
  int64_t downgraded = 0;
  /// Followers attached to an in-flight leader.
  int64_t coalesced = 0;
  /// Followers whose own deadline expired before the leader completed
  /// (they resolve DeadlineExceeded; the leader is unaffected).
  int64_t coalesced_expired = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_flushes = 0;
  /// Responses (leaders and coalesced followers alike) whose primary score
  /// was withheld by the min_confidence abstain policy. Each lands in the
  /// `degraded` partition (fallback served) or `failed` (no fallback).
  int64_t abstained = 0;
  /// Write-lane totals. `mutations_submitted - mutations_rejected`
  /// admitted mutations partition into `mutations_applied +
  /// mutations_failed` once the server drains (failed covers apply-cascade
  /// errors and shutdown drains alike).
  int64_t mutations_submitted = 0;
  int64_t mutations_rejected = 0;
  int64_t mutations_applied = 0;
  int64_t mutations_failed = 0;
};

/// The online inference substrate: a bounded MPMC queue feeding batched
/// TrustPredictor inference, with per-request deadlines, deterministic
/// retry/backoff for transient failures, a circuit breaker that degrades
/// to the heuristic fallback, and an overload-control layer — priority
/// admission lanes, duplicate-request coalescing, and a generation-keyed
/// score cache (DESIGN.md §12).
///
/// Thread model: any number of producer threads call Submit(); one
/// dispatcher thread (spawned by Start()) drains the queue in FIFO
/// batches and runs inference, which itself parallelizes on the common/
/// parallel pool. Admission decisions, coalescing leadership, and cache
/// fills are all pure functions of the submission sequence and the fault
/// seed, so a closed-loop run (enqueue everything, then Start) yields
/// bit-identical counters and scores at any --threads=N.
///
/// Writes ride the same FIFO through a dedicated lane: SubmitMutation()
/// enqueues a graph delta that the dispatcher applies *between* read
/// segments — a batch containing mutations is split at each mutation
/// boundary, reads before the boundary score against the pre-delta
/// generation and reads after it against the post-delta one. Each segment
/// re-observes the backend generation, so an applied delta flushes the
/// score cache through the existing generation key. With a fixed
/// submission order (closed-loop: enqueue everything, then Start) the
/// interleaving is part of the queue order, so mixed read/write runs stay
/// bit-identical at any --threads=N.
///
/// The server does not own its backends: `primary` (and optional
/// `fallback`/`mutations`) must outlive it, which lets a demo hot-reload
/// the ModelBackend or share backends across server instances.
class TrustServer {
 public:
  /// `mutations` is the write-lane sink (typically the same DynamicBackend
  /// instance as `primary`); null keeps the server read-only and makes
  /// SubmitMutation resolve FailedPrecondition immediately.
  TrustServer(const ServeOptions& options, ScoreBackend* primary,
              ScoreBackend* fallback, MutationSink* mutations = nullptr);
  ~TrustServer();

  TrustServer(const TrustServer&) = delete;
  TrustServer& operator=(const TrustServer&) = delete;

  /// Enqueues a query; never blocks. The future always completes: with a
  /// score once served (possibly immediately, from the score cache), or
  /// immediately with ResourceExhausted / FailedPrecondition when the
  /// lane's admission limit is exhausted / the server is shut down.
  std::future<TrustResponse> Submit(const TrustQuery& query);

  /// Enqueues a graph delta on the write lane; never blocks. Mutations are
  /// admitted up to full queue capacity (they are never shed by a read
  /// lane's limit), never coalesced, cached, or downgraded, and are applied
  /// in FIFO order on the dispatcher thread between read segments. The
  /// future always completes: with the apply receipt, or with
  /// ResourceExhausted (queue full) / FailedPrecondition (no sink, or the
  /// server shut down before the delta was applied).
  std::future<MutationResponse> SubmitMutation(graph::GraphDelta delta);

  /// Spawns the dispatcher. Submitting before Start() is allowed (the
  /// queue buffers up to capacity) and is how deterministic closed-loop
  /// runs pin their batch composition.
  void Start();

  /// Closes the queue, drains every pending request to a terminal
  /// response, and joins the dispatcher. Idempotent; called by the
  /// destructor.
  void Shutdown();

  size_t queue_depth() const { return queue_.size(); }
  ServerStats Stats() const;

 private:
  /// Followers share their leader's backend answer but keep their own
  /// promise, deadline, and latency clock.
  struct Follower {
    Deadline deadline;
    std::promise<TrustResponse> promise;
    Stopwatch queued;
  };
  struct CoalesceGroup {
    std::mutex mu;
    bool done = false;
    std::vector<Follower> followers;
  };

  struct Request {
    TrustQuery query;
    std::promise<TrustResponse> promise;
    Stopwatch queued;
    /// Admission decided this request is served by the fallback (degraded-
    /// eligible lane under pressure). Ignored when no fallback exists.
    bool downgrade = false;
    /// Coalescing identity at submit time; followers submitted later for
    /// the same key attach to `group`.
    ScoreKey key;
    std::shared_ptr<CoalesceGroup> group;  // null unless coalescing
    /// Write-lane payload: when set, `mutation`/`mutation_promise` carry
    /// the request and every read field above is ignored.
    bool is_mutation = false;
    graph::GraphDelta mutation;
    std::promise<MutationResponse> mutation_promise;
  };

  void DispatchLoop();
  /// Splits the popped batch into read segments at mutation boundaries:
  /// each segment runs the full read path (its own generation observation,
  /// breaker decision, retry loop), and each boundary applies its delta on
  /// this thread before the next segment starts.
  void ProcessBatch(std::vector<Request>* batch);
  /// The read path for one mutation-free segment (the entire batch when no
  /// mutations are queued — behaviour then is byte-identical to the
  /// pre-write-lane server).
  void ProcessReadSegment(const std::vector<Request*>& segment);
  void ApplyMutationRequest(Request* request);
  /// Scores `live` on the fallback (degraded=true) or, without one,
  /// completes everything with `reason`. The abstain path passes the
  /// rejected primary confidences (parallel to `live`; null otherwise) so
  /// responses report why the primary score was withheld, and marks every
  /// response abstained.
  void Degrade(const std::vector<Request*>& live,
               const std::vector<data::TrustPair>& pairs,
               const Status& reason, int attempts,
               const std::vector<float>* abstain_confidence = nullptr);
  void Complete(Request* request, TrustResponse response);
  /// Folds `response` into the ok/degraded/failed/expired counters (the
  /// terminal-outcome partition); used for leaders, followers, and
  /// submit-time cache hits alike.
  void CountOutcome(const TrustResponse& response);
  void PublishBreakerState();

  ServeOptions options_;
  ScoreBackend* primary_;
  ScoreBackend* fallback_;  // nullable
  MutationSink* mutations_;  // nullable; write lane disabled when null
  AdmissionController admission_;
  BoundedQueue<Request> queue_;
  CircuitBreaker breaker_;  // dispatcher-thread only
  std::unique_ptr<ScoreCache> owned_cache_;
  ScoreCache* cache_ = nullptr;  // nullable; owned_cache_ or shared
  int64_t cache_generation_ = 0;  // dispatcher-thread only
  std::mutex coalesce_mu_;
  std::unordered_map<ScoreKey, std::shared_ptr<CoalesceGroup>, ScoreKeyHash>
      inflight_;
  std::thread dispatcher_;
  bool started_ = false;
  uint64_t batch_ordinal_ = 0;  // dispatcher-thread only; retry jitter key

  /// Counters live in atomics (written by the dispatcher, except the
  /// submission-side ones by producers) so Stats() is readable from any
  /// thread while serving.
  struct AtomicStats {
    std::atomic<int64_t> submitted{0}, rejected{0}, expired{0}, ok{0},
        degraded{0}, failed{0}, retries{0}, nonfinite{0}, batches{0},
        trips{0}, probes{0}, recoveries{0};
    std::atomic<int64_t> lane_admitted[kNumLanes] = {};
    std::atomic<int64_t> lane_rejected[kNumLanes] = {};
    std::atomic<int64_t> downgraded{0}, coalesced{0}, coalesced_expired{0},
        cache_hits{0}, cache_misses{0}, cache_flushes{0}, abstained{0};
    std::atomic<int64_t> mutations_submitted{0}, mutations_rejected{0},
        mutations_applied{0}, mutations_failed{0};
  };
  AtomicStats stats_;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_SERVER_H_
