#ifndef AHNTP_SERVE_SERVER_H_
#define AHNTP_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "data/split.h"
#include "serve/backend.h"
#include "serve/bounded_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/retry.h"

namespace ahntp::serve {

/// One trust query: does `src` trust `dst`?
struct TrustQuery {
  int src = 0;
  int dst = 0;
  /// Checked cooperatively at batch boundaries; expired requests complete
  /// as DeadlineExceeded instead of being silently computed.
  Deadline deadline;
};

/// The terminal answer every submitted query eventually receives.
struct TrustResponse {
  /// Ok, or why no score was computed: ResourceExhausted (queue full),
  /// DeadlineExceeded, Unavailable / IoError (primary kept failing and no
  /// fallback was configured), FailedPrecondition (server shut down).
  Status status;
  float score = std::numeric_limits<float>::quiet_NaN();
  /// True when the score came from the degraded-mode fallback backend
  /// (stale-but-sane heuristic) instead of the model.
  bool degraded = false;
  /// Primary inference attempts spent on this request's batch.
  int attempts = 0;
  /// Submit-to-completion wall time (queue wait + compute).
  double latency_ms = 0.0;
};

struct ServeOptions {
  /// Bounded request queue; Submit rejects with ResourceExhausted beyond
  /// this — explicit backpressure, never unbounded growth.
  size_t queue_capacity = 256;
  /// Requests scored per inference batch.
  size_t max_batch_size = 32;
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  /// Sleep the computed backoff between retries. Tests that only assert
  /// on the deterministic schedule/counters can turn the actual sleeping
  /// off.
  bool sleep_on_backoff = true;
};

/// Monotonic totals since construction. `submitted - rejected` accepted
/// requests partition into `expired + ok + degraded + failed` once the
/// server drains.
struct ServerStats {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t expired = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  int64_t retries = 0;
  int64_t nonfinite = 0;
  int64_t batches = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_probes = 0;
  int64_t breaker_recoveries = 0;
};

/// The online inference substrate: a bounded MPMC queue feeding batched
/// TrustPredictor inference, with per-request deadlines, deterministic
/// retry/backoff for transient failures, and a circuit breaker that
/// degrades to the heuristic fallback (DESIGN.md §12).
///
/// Thread model: any number of producer threads call Submit(); one
/// dispatcher thread (spawned by Start()) drains the queue in FIFO
/// batches and runs inference, which itself parallelizes on the common/
/// parallel pool. All serve counters are updated on the dispatcher
/// thread, so a closed-loop run (enqueue everything, then Start) yields
/// bit-identical counters and scores at any --threads=N.
///
/// The server does not own its backends: `primary` (and optional
/// `fallback`) must outlive it, which lets a demo hot-reload the
/// ModelBackend or share backends across server instances.
class TrustServer {
 public:
  TrustServer(const ServeOptions& options, ScoreBackend* primary,
              ScoreBackend* fallback);
  ~TrustServer();

  TrustServer(const TrustServer&) = delete;
  TrustServer& operator=(const TrustServer&) = delete;

  /// Enqueues a query; never blocks. The future always completes: with a
  /// score once served, or immediately with ResourceExhausted /
  /// FailedPrecondition when the queue is full / the server is shut down.
  std::future<TrustResponse> Submit(const TrustQuery& query);

  /// Spawns the dispatcher. Submitting before Start() is allowed (the
  /// queue buffers up to capacity) and is how deterministic closed-loop
  /// runs pin their batch composition.
  void Start();

  /// Closes the queue, drains every pending request to a terminal
  /// response, and joins the dispatcher. Idempotent; called by the
  /// destructor.
  void Shutdown();

  size_t queue_depth() const { return queue_.size(); }
  ServerStats Stats() const;

 private:
  struct Request {
    TrustQuery query;
    std::promise<TrustResponse> promise;
    Stopwatch queued;
  };

  void DispatchLoop();
  void ProcessBatch(std::vector<Request>* batch);
  /// Scores `live` on the fallback (degraded=true) or, without one,
  /// completes everything with `reason`.
  void Degrade(const std::vector<Request*>& live,
               const std::vector<data::TrustPair>& pairs,
               const Status& reason, int attempts);
  void Complete(Request* request, TrustResponse response);

  ServeOptions options_;
  ScoreBackend* primary_;
  ScoreBackend* fallback_;  // nullable
  BoundedQueue<Request> queue_;
  CircuitBreaker breaker_;  // dispatcher-thread only
  std::thread dispatcher_;
  bool started_ = false;
  uint64_t batch_ordinal_ = 0;  // dispatcher-thread only; retry jitter key

  /// Counters live in atomics (written by the dispatcher, except
  /// submitted/rejected by producers) so Stats() is readable from any
  /// thread while serving.
  struct AtomicStats {
    std::atomic<int64_t> submitted{0}, rejected{0}, expired{0}, ok{0},
        degraded{0}, failed{0}, retries{0}, nonfinite{0}, batches{0},
        trips{0}, probes{0}, recoveries{0};
  };
  AtomicStats stats_;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_SERVER_H_
