#include "serve/circuit_breaker.h"

#include "common/check.h"

namespace ahntp::serve {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  AHNTP_CHECK_GE(options.failure_threshold, 1);
  AHNTP_CHECK_GE(options.probe_interval, 1);
}

CircuitBreaker::Decision CircuitBreaker::Admit() {
  if (!open_) return Decision::kPrimary;
  if (++admissions_since_probe_ >= options_.probe_interval) {
    admissions_since_probe_ = 0;
    ++probes_;
    probe_in_flight_ = true;
    return Decision::kProbe;
  }
  return Decision::kFallback;
}

CircuitBreaker::State CircuitBreaker::state() const {
  if (!open_) return State::kClosed;
  return probe_in_flight_ ? State::kHalfOpen : State::kOpen;
}

void CircuitBreaker::OnSuccess() {
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (open_) {
    open_ = false;
    admissions_since_probe_ = 0;
    ++recoveries_;
  }
}

void CircuitBreaker::OnFailure() {
  ++consecutive_failures_;
  probe_in_flight_ = false;
  if (!open_ && consecutive_failures_ >= options_.failure_threshold) {
    open_ = true;
    admissions_since_probe_ = 0;
    ++trips_;
  }
}

}  // namespace ahntp::serve
