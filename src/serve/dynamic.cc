#include "serve/dynamic.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ahntp::serve {

DynamicBackend::DynamicBackend(core::DynamicTrustPipeline* pipeline)
    : pipeline_(pipeline) {
  AHNTP_CHECK(pipeline_ != nullptr) << "DynamicBackend needs a pipeline";
  // Warm eagerly, like ModelBackend: the dispatcher thread should only
  // ever pay the cached scoring path, and ApplyMutation patches rows into
  // a *built* plan instead of forcing a full first-use encode.
  pipeline_->predictor().WarmInferencePlan();
}

Result<std::vector<float>> DynamicBackend::ScoreBatch(
    const std::vector<data::TrustPair>& pairs) {
  AHNTP_RETURN_IF_ERROR(
      fault::FaultPoint("serve.infer", StatusCode::kUnavailable));
  trace::TraceSpan span("serve.infer");
  std::vector<float> probs =
      pipeline_->predictor().PredictProbabilities(pairs);
  if (fault::ShouldInject("serve.nan")) {
    probs[0] = std::nanf("");
  }
  return probs;
}

int64_t DynamicBackend::generation() const { return pipeline_->generation(); }

Result<graph::DeltaReceipt> DynamicBackend::ApplyMutation(
    const graph::GraphDelta& delta) {
  trace::TraceSpan span("serve.mutation.apply");
  auto outcome = pipeline_->ApplyDelta(delta);
  AHNTP_RETURN_IF_ERROR(outcome.status());
  AHNTP_METRIC_COUNT("serve.mutation.refreshed_users",
                     outcome->refreshed_users.size());
  return std::move(outcome->receipt);
}

}  // namespace ahntp::serve
