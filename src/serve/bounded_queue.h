#ifndef AHNTP_SERVE_BOUNDED_QUEUE_H_
#define AHNTP_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace ahntp::serve {

/// Bounded MPMC FIFO with explicit backpressure: TryPush never blocks and
/// rejects with ResourceExhausted when the queue is full, so overload
/// surfaces as a Status the producer must handle instead of unbounded
/// memory growth or a stalled producer. Consumers block in PopBatch until
/// work arrives or the queue is closed.
///
/// Close() is the shutdown handshake: producers get FailedPrecondition,
/// consumers drain whatever is left and then see PopBatch return 0.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    AHNTP_CHECK_GT(capacity, 0u) << "queue capacity must be positive";
  }

  /// Enqueues `item` if there is room. ResourceExhausted when full,
  /// FailedPrecondition after Close(); the item is untouched on failure
  /// (callers can still complete it with the returned status).
  Status TryPush(T& item) { return TryPushIfBelow(item, capacity_); }

  /// Enqueues `item` only while the current depth is strictly below
  /// `limit` (clamped to capacity). The depth check and the push are one
  /// critical section, so a lane's admission limit (serve/admission.h)
  /// can never be overshot by concurrent producers.
  Status TryPushIfBelow(T& item, size_t limit) {
    const size_t effective = limit < capacity_ ? limit : capacity_;
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("queue is closed");
    }
    if (items_.size() >= effective) {
      if (effective < capacity_) {
        return Status::ResourceExhausted(
            "queue full (admission limit " + std::to_string(effective) +
            " of capacity " + std::to_string(capacity_) + ")");
      }
      return Status::ResourceExhausted("queue full (capacity " +
                                       std::to_string(capacity_) + ")");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    ready_.notify_one();
    return Status::Ok();
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and empty), then moves up to `max_items` into `*out` in FIFO order.
  /// Returns the number of items appended; 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    // A zero budget would return 0 — indistinguishable from
    // closed-and-drained — so it is operator error worth failing loudly on.
    AHNTP_CHECK_GT(max_items, 0u) << "PopBatch needs a positive batch size";
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    size_t taken = 0;
    while (taken < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  /// Rejects future pushes and wakes every blocked consumer. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ahntp::serve

#endif  // AHNTP_SERVE_BOUNDED_QUEUE_H_
