#include "serve/retry.h"

#include <algorithm>

namespace ahntp::serve {

namespace {

/// splitmix64 over (seed, key, attempt) -> uniform double in [0, 1). Same
/// finalizer family as common/fault.cc's HitUniform so the two schedules
/// share statistical quality without sharing state.
double JitterUniform(uint64_t seed, uint64_t key, int attempt) {
  uint64_t x = seed ^ (key * 0x9e3779b97f4a7c15ULL);
  x += (static_cast<uint64_t>(attempt) + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

double RetryPolicy::DelayMillis(uint64_t key, int attempt) const {
  double expo = base_delay_ms;
  for (int i = 0; i < attempt && expo < max_delay_ms; ++i) expo *= 2.0;
  expo = std::min(expo, max_delay_ms);
  double j = std::clamp(jitter, 0.0, 1.0);
  return expo * (1.0 - j * JitterUniform(seed, key, attempt));
}

std::vector<double> RetryPolicy::Schedule(uint64_t key) const {
  std::vector<double> delays;
  for (int attempt = 0; attempt + 1 < max_attempts; ++attempt) {
    delays.push_back(DelayMillis(key, attempt));
  }
  return delays;
}

}  // namespace ahntp::serve
