#ifndef AHNTP_NN_LOSSES_H_
#define AHNTP_NN_LOSSES_H_

#include <vector>

#include "autograd/ops.h"
#include "tensor/csr.h"

namespace ahntp::nn {

/// Binary cross-entropy on probabilities (Eq. 21 of the paper).
/// `probs` is (n x 1) with entries clamped internally into
/// [epsilon, 1-epsilon]; `targets` holds 0/1 labels.
autograd::Variable BinaryCrossEntropy(const autograd::Variable& probs,
                                      const std::vector<float>& targets,
                                      float epsilon = 1e-6f);

/// Supervised contrastive loss (Eq. 20 of the paper).
///
/// `sims` is an (P x 1) column of similarity scores, one per training pair.
/// `anchors[p]` groups pairs by their anchor user i; `is_positive[p]` marks
/// trusted (positive) pairs. For each anchor with at least one positive
/// pair the loss contributes
///   -log( sum_pos exp(s/t) / sum_all exp(s/t) )
/// and the result is averaged over such anchors. Anchors without a positive
/// pair in the batch are excluded (their term is undefined in Eq. 20).
autograd::Variable SupervisedContrastiveLoss(
    const autograd::Variable& sims, const std::vector<int>& anchors,
    size_t num_anchors, const std::vector<bool>& is_positive,
    float temperature);

/// Combined training loss (Eq. 22): lambda1 * contrastive + lambda2 * bce.
autograd::Variable CombinedLoss(const autograd::Variable& contrastive,
                                const autograd::Variable& bce, float lambda1,
                                float lambda2);

/// Hypergraph label-smoothing regularizer (Eqs. 23-24):
///   R(f) = trace(f^T (I - A_norm) f) = sum_i <f_i, (L f)_i>
/// where `laplacian` is the precomputed normalized hypergraph Laplacian
/// L = I - D_v^{-1/2} H W D_e^{-1} H^T D_v^{-1/2}. Returns a 1x1 scalar.
autograd::Variable HypergraphRegularizer(const autograd::Variable& f,
                                         const tensor::CsrMatrix& laplacian);

}  // namespace ahntp::nn

#endif  // AHNTP_NN_LOSSES_H_
