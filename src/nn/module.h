#ifndef AHNTP_NN_MODULE_H_
#define AHNTP_NN_MODULE_H_

#include <vector>

#include "autograd/variable.h"

namespace ahntp::nn {

/// Base class for trainable components. Parameters are autograd::Variable
/// handles (shared nodes), so optimizers can update them in place.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter handles of this module (and submodules).
  virtual std::vector<autograd::Variable> Parameters() const = 0;

  /// Switches train/eval behaviour (dropout etc.).
  void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Total number of scalar parameters.
  size_t NumParameters() const {
    size_t total = 0;
    for (const auto& p : Parameters()) total += p.value().size();
    return total;
  }

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

 protected:
  bool training_ = true;
};

}  // namespace ahntp::nn

#endif  // AHNTP_NN_MODULE_H_
