#ifndef AHNTP_NN_MODULE_H_
#define AHNTP_NN_MODULE_H_

#include <vector>

#include "autograd/variable.h"

namespace ahntp::nn {

/// Base class for trainable components. Parameters are autograd::Variable
/// handles (shared nodes), so optimizers can update them in place.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter handles of this module (and submodules).
  virtual std::vector<autograd::Variable> Parameters() const = 0;

  /// Direct child modules. Composite modules override this so that
  /// SetTraining and InvalidateCaches reach every layer without each
  /// composite re-implementing the recursion (and forgetting a child).
  virtual std::vector<Module*> Submodules() { return {}; }

  /// Switches train/eval behaviour (dropout etc.) for this module and,
  /// via Submodules(), everything beneath it.
  void SetTraining(bool training) {
    training_ = training;
    for (Module* sub : Submodules()) sub->SetTraining(training);
  }
  bool training() const { return training_; }

  /// Drops any derived state computed from the current parameter values
  /// (e.g. a compiled inference plan). Called after anything that mutates
  /// parameters outside the optimizer's view — deserialization, parameter
  /// restore — and recurses into Submodules(). Overrides must call the
  /// base (or recurse themselves).
  virtual void InvalidateCaches() {
    for (Module* sub : Submodules()) sub->InvalidateCaches();
  }

  /// Total number of scalar parameters.
  size_t NumParameters() const {
    size_t total = 0;
    for (const auto& p : Parameters()) total += p.value().size();
    return total;
  }

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

 protected:
  bool training_ = true;
};

}  // namespace ahntp::nn

#endif  // AHNTP_NN_MODULE_H_
