#ifndef AHNTP_NN_LAYER_NORM_H_
#define AHNTP_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace ahntp::nn {

/// Layer normalization over feature rows: y = gain ⊙ standardize(x) + bias,
/// with learnable per-feature gain (init 1) and bias (init 0). Stabilizes
/// deep conv stacks (the Fig. 9/10 depth sweep territory).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t features, float epsilon = 1e-5f);

  autograd::Variable Forward(const autograd::Variable& x) const;

  std::vector<autograd::Variable> Parameters() const override {
    return {gain_, bias_};
  }

  size_t features() const { return features_; }
  float epsilon() const { return epsilon_; }
  const autograd::Variable& gain() const { return gain_; }
  const autograd::Variable& bias() const { return bias_; }

 private:
  size_t features_;
  float epsilon_;
  autograd::Variable gain_;  // 1 x features
  autograd::Variable bias_;  // 1 x features
};

}  // namespace ahntp::nn

#endif  // AHNTP_NN_LAYER_NORM_H_
