#ifndef AHNTP_NN_SERIALIZATION_H_
#define AHNTP_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"
#include "nn/module.h"

namespace ahntp::nn {

/// Saves parameter values to a binary checkpoint ("AHNTPCK1" magic, then
/// count + per-parameter shape + float32 payload, little-endian). Parameter
/// *order* is the identity key: load into a module built with the same
/// architecture/configuration.
Status SaveParameters(const std::vector<autograd::Variable>& params,
                      const std::string& path);

/// Loads a checkpoint into existing parameters. Fails with InvalidArgument
/// on count/shape mismatch and Corruption on a malformed file; parameters
/// are untouched on failure.
Status LoadParameters(std::vector<autograd::Variable>* params,
                      const std::string& path);

/// Convenience overloads for modules.
inline Status SaveModule(const Module& module, const std::string& path) {
  return SaveParameters(module.Parameters(), path);
}
inline Status LoadModule(Module* module, const std::string& path) {
  std::vector<autograd::Variable> params = module->Parameters();
  return LoadParameters(&params, path);
}

}  // namespace ahntp::nn

#endif  // AHNTP_NN_SERIALIZATION_H_
