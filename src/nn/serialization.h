#ifndef AHNTP_NN_SERIALIZATION_H_
#define AHNTP_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"
#include "nn/module.h"

namespace ahntp::nn {

/// Saves parameter values to a v2 binary checkpoint: "AHNTPCK2" magic,
/// then count + per-parameter shape + float32 payload (little-endian),
/// then a CRC32 footer over everything after the magic. The file is
/// written to a temp path, fsynced, and atomically renamed over `path`, so
/// a crash or I/O failure mid-save never corrupts an existing checkpoint.
/// Parameter *order* is the identity key: load into a module built with
/// the same architecture/configuration.
/// Fault-injection site: "checkpoint.save" (common/fault.h).
Status SaveParameters(const std::vector<autograd::Variable>& params,
                      const std::string& path);

/// Loads a v2 or legacy v1 ("AHNTPCK1", no checksum) checkpoint into
/// existing parameters. Fails with InvalidArgument on count/shape mismatch
/// and Corruption on a malformed, truncated, or (v2) bit-flipped file;
/// parameters are untouched on failure.
Status LoadParameters(std::vector<autograd::Variable>* params,
                      const std::string& path);

/// Convenience overloads for modules.
inline Status SaveModule(const Module& module, const std::string& path) {
  return SaveParameters(module.Parameters(), path);
}
inline Status LoadModule(Module* module, const std::string& path) {
  std::vector<autograd::Variable> params = module->Parameters();
  Status status = LoadParameters(&params, path);
  // Loading rewrites parameter values in place, so any state derived from
  // the old values (compiled inference plans, embedding caches) is stale.
  if (status.ok()) module->InvalidateCaches();
  return status;
}

}  // namespace ahntp::nn

#endif  // AHNTP_NN_SERIALIZATION_H_
