#include "nn/mlp.h"

#include "common/check.h"

namespace ahntp::nn {

autograd::Variable Activate(const autograd::Variable& x, Activation act,
                            float leaky_slope) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return autograd::Relu(x);
    case Activation::kLeakyRelu:
      return autograd::LeakyRelu(x, leaky_slope);
    case Activation::kSigmoid:
      return autograd::Sigmoid(x);
    case Activation::kTanh:
      return autograd::Tanh(x);
  }
  return x;
}

Mlp::Mlp(const std::vector<size_t>& dims, Rng* rng,
         Activation hidden_activation, Activation output_activation,
         float dropout)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation),
      dropout_(dropout),
      rng_(rng) {
  AHNTP_CHECK_GE(dims.size(), 2u) << "Mlp needs at least input+output dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
}

autograd::Variable Mlp::Forward(const autograd::Variable& x) const {
  autograd::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    bool is_last = (i + 1 == layers_.size());
    h = Activate(h, is_last ? output_activation_ : hidden_activation_);
    if (!is_last && dropout_ > 0.0f) {
      h = autograd::Dropout(h, dropout_, rng_, training_);
    }
  }
  return h;
}

std::vector<autograd::Variable> Mlp::Parameters() const {
  std::vector<autograd::Variable> params;
  for (const auto& layer : layers_) {
    for (auto& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Module*> Mlp::Submodules() {
  std::vector<Module*> subs;
  for (const auto& layer : layers_) subs.push_back(layer.get());
  return subs;
}

}  // namespace ahntp::nn
