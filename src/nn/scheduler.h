#ifndef AHNTP_NN_SCHEDULER_H_
#define AHNTP_NN_SCHEDULER_H_

#include <cmath>

#include "common/check.h"

namespace ahntp::nn {

/// Learning-rate schedules. Stateless value objects: query the rate for an
/// epoch and hand it to the optimizer (which exposes set_learning_rate()).
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use for `epoch` (0-based).
  virtual float Rate(int epoch) const = 0;
};

/// Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float rate) : rate_(rate) {}
  float Rate(int /*epoch*/) const override { return rate_; }

 private:
  float rate_;
};

/// Multiplies the rate by `gamma` every `step_size` epochs.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float initial, int step_size, float gamma)
      : initial_(initial), step_size_(step_size), gamma_(gamma) {
    AHNTP_CHECK_GT(step_size, 0);
    AHNTP_CHECK_GT(gamma, 0.0f);
  }
  float Rate(int epoch) const override {
    return initial_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
  }

 private:
  float initial_;
  int step_size_;
  float gamma_;
};

/// Cosine annealing from `initial` to `floor` over `total_epochs`.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float initial, int total_epochs, float floor = 0.0f)
      : initial_(initial), total_epochs_(total_epochs), floor_(floor) {
    AHNTP_CHECK_GT(total_epochs, 0);
  }
  float Rate(int epoch) const override {
    if (epoch >= total_epochs_) return floor_;
    float progress = static_cast<float>(epoch) /
                     static_cast<float>(total_epochs_);
    return floor_ + 0.5f * (initial_ - floor_) *
                        (1.0f + std::cos(static_cast<float>(M_PI) * progress));
  }

 private:
  float initial_;
  int total_epochs_;
  float floor_;
};

/// Linear warmup to `peak` over `warmup_epochs`, then constant.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(float peak, int warmup_epochs)
      : peak_(peak), warmup_epochs_(warmup_epochs) {
    AHNTP_CHECK_GT(warmup_epochs, 0);
  }
  float Rate(int epoch) const override {
    if (epoch >= warmup_epochs_) return peak_;
    return peak_ * static_cast<float>(epoch + 1) /
           static_cast<float>(warmup_epochs_);
  }

 private:
  float peak_;
  int warmup_epochs_;
};

}  // namespace ahntp::nn

#endif  // AHNTP_NN_SCHEDULER_H_
