#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/strings.h"

namespace ahntp::nn {

namespace {
constexpr char kMagic[8] = {'A', 'H', 'N', 'T', 'P', 'C', 'K', '1'};
}  // namespace

Status SaveParameters(const std::vector<autograd::Variable>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    uint64_t rows = p.value().rows();
    uint64_t cols = p.value().cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.value().size() * sizeof(float)));
  }
  out.flush();
  if (!out) return Status::IoError("write error on " + path);
  return Status::Ok();
}

Status LoadParameters(std::vector<autograd::Variable>* params,
                      const std::string& path) {
  if (params == nullptr) return Status::InvalidArgument("params is null");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::Corruption("truncated checkpoint header");
  if (count != params->size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu parameters, module has %zu",
                  static_cast<unsigned long long>(count), params->size()));
  }
  // Stage all payloads first so a failure leaves the module untouched.
  std::vector<tensor::Matrix> staged;
  staged.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in) return Status::Corruption("truncated checkpoint shape");
    const auto& expected = (*params)[i].value();
    if (rows != expected.rows() || cols != expected.cols()) {
      return Status::InvalidArgument(StrFormat(
          "parameter %llu shape mismatch: checkpoint %llux%llu vs module "
          "%zux%zu",
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), expected.rows(),
          expected.cols()));
    }
    tensor::Matrix m(rows, cols);
    in.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!in) return Status::Corruption("truncated checkpoint payload");
    staged.push_back(std::move(m));
  }
  for (uint64_t i = 0; i < count; ++i) {
    (*params)[i].mutable_value() = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace ahntp::nn
