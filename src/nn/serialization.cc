#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "common/fault.h"
#include "common/fileio.h"
#include "common/strings.h"

namespace ahntp::nn {

namespace {

constexpr char kMagicV1[8] = {'A', 'H', 'N', 'T', 'P', 'C', 'K', '1'};
constexpr char kMagicV2[8] = {'A', 'H', 'N', 'T', 'P', 'C', 'K', '2'};
constexpr size_t kMagicSize = sizeof(kMagicV2);
constexpr size_t kFooterSize = sizeof(uint32_t);

/// Sequential reader over an in-memory checkpoint image; every read is
/// bounds-checked so truncated files surface as Corruption, never as an
/// out-of-bounds access.
class ByteCursor {
 public:
  ByteCursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool Read(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadU64(uint64_t* out) { return Read(out, sizeof(*out)); }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

/// Parses the body shared by both versions (count, then per-parameter
/// shape + float32 payload) into staged matrices; the module is only
/// touched after the whole image validates.
Status ParseBody(ByteCursor* cursor,
                 const std::vector<autograd::Variable>& params,
                 std::vector<tensor::Matrix>* staged,
                 const std::string& path) {
  uint64_t count = 0;
  if (!cursor->ReadU64(&count)) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu parameters, module has %zu",
                  static_cast<unsigned long long>(count), params.size()));
  }
  staged->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    if (!cursor->ReadU64(&rows) || !cursor->ReadU64(&cols)) {
      return Status::Corruption("truncated checkpoint shape in " + path);
    }
    const auto& expected = params[i].value();
    if (rows != expected.rows() || cols != expected.cols()) {
      return Status::InvalidArgument(StrFormat(
          "parameter %llu shape mismatch: checkpoint %llux%llu vs module "
          "%zux%zu",
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), expected.rows(),
          expected.cols()));
    }
    tensor::Matrix m(rows, cols);
    if (!cursor->Read(m.data(), m.size() * sizeof(float))) {
      return Status::Corruption("truncated checkpoint payload in " + path);
    }
    staged->push_back(std::move(m));
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const std::vector<autograd::Variable>& params,
                      const std::string& path) {
  AHNTP_RETURN_IF_ERROR(
      fault::FaultPoint("checkpoint.save", StatusCode::kIoError));
  // Serialize the v2 image in memory: magic, body, CRC32-of-body footer.
  std::string image;
  size_t payload = 0;
  for (const auto& p : params) payload += p.value().size() * sizeof(float);
  image.reserve(kMagicSize + sizeof(uint64_t) +
                params.size() * 2 * sizeof(uint64_t) + payload + kFooterSize);
  AppendRaw(&image, kMagicV2, kMagicSize);
  uint64_t count = params.size();
  AppendRaw(&image, &count, sizeof(count));
  for (const auto& p : params) {
    uint64_t rows = p.value().rows();
    uint64_t cols = p.value().cols();
    AppendRaw(&image, &rows, sizeof(rows));
    AppendRaw(&image, &cols, sizeof(cols));
    AppendRaw(&image, p.value().data(), p.value().size() * sizeof(float));
  }
  uint32_t crc =
      Crc32(image.data() + kMagicSize, image.size() - kMagicSize);
  AppendRaw(&image, &crc, sizeof(crc));
  // Temp file + fsync + rename: a crash or failure mid-save leaves any
  // previous checkpoint at `path` intact.
  return WriteFileAtomic(path, image);
}

Status LoadParameters(std::vector<autograd::Variable>* params,
                      const std::string& path) {
  if (params == nullptr) return Status::InvalidArgument("params is null");
  std::string image;
  AHNTP_RETURN_IF_ERROR(ReadFileToString(path, &image));
  if (image.size() < kMagicSize) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  const bool v2 = std::memcmp(image.data(), kMagicV2, kMagicSize) == 0;
  const bool v1 = std::memcmp(image.data(), kMagicV1, kMagicSize) == 0;
  if (!v1 && !v2) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  size_t body_size = image.size() - kMagicSize;
  if (v2) {
    // v2 appends a CRC32 of the body; verify before trusting any field.
    if (body_size < kFooterSize) {
      return Status::Corruption("truncated checkpoint footer in " + path);
    }
    body_size -= kFooterSize;
    uint32_t stored = 0;
    std::memcpy(&stored, image.data() + kMagicSize + body_size,
                sizeof(stored));
    uint32_t actual = Crc32(image.data() + kMagicSize, body_size);
    if (stored != actual) {
      return Status::Corruption(
          StrFormat("checkpoint CRC mismatch in %s (stored %08x, computed "
                    "%08x)",
                    path.c_str(), stored, actual));
    }
  }
  ByteCursor cursor(image.data() + kMagicSize, body_size);
  std::vector<tensor::Matrix> staged;
  AHNTP_RETURN_IF_ERROR(ParseBody(&cursor, *params, &staged, path));
  if (!cursor.AtEnd()) {
    return Status::Corruption("trailing bytes after checkpoint payload in " +
                              path);
  }
  for (size_t i = 0; i < staged.size(); ++i) {
    (*params)[i].mutable_value() = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace ahntp::nn
