#include "nn/optimizer.h"

#include <cmath>

namespace ahntp::nn {

Sgd::Sgd(std::vector<autograd::Variable> params, float learning_rate,
         float weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (auto& p : params_) {
    tensor::Matrix& value = p.mutable_value();
    const tensor::Matrix& grad = p.grad();
    for (size_t i = 0; i < value.size(); ++i) {
      float g = grad.data()[i] + weight_decay_ * value.data()[i];
      value.data()[i] -= learning_rate_ * g;
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float learning_rate,
           float beta1, float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t k = 0; k < params_.size(); ++k) {
    tensor::Matrix& value = params_[k].mutable_value();
    const tensor::Matrix& grad = params_[k].grad();
    tensor::Matrix& m = m_[k];
    tensor::Matrix& v = v_[k];
    for (size_t i = 0; i < value.size(); ++i) {
      float g = grad.data()[i] + weight_decay_ * value.data()[i];
      m.data()[i] = beta1_ * m.data()[i] + (1.0f - beta1_) * g;
      v.data()[i] = beta2_ * v.data()[i] + (1.0f - beta2_) * g * g;
      float m_hat = m.data()[i] / bc1;
      float v_hat = v.data()[i] / bc2;
      value.data()[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void Adam::Reset() {
  step_count_ = 0;
  for (auto& m : m_) m.Fill(0.0f);
  for (auto& v : v_) v.Fill(0.0f);
}

float GlobalGradientNorm(const std::vector<autograd::Variable>& params) {
  double total = 0.0;
  for (const auto& p : params) {
    const tensor::Matrix& g = p.grad();
    for (size_t i = 0; i < g.size(); ++i) {
      total += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  return static_cast<float>(std::sqrt(total));
}

float ClipGradientNorm(const std::vector<autograd::Variable>& params,
                       float max_norm) {
  float norm = GlobalGradientNorm(params);
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const auto& p : params) {
      // Gradients live on the shared node; scale in place.
      autograd::Variable handle = p;
      handle.mutable_grad() *= scale;
    }
  }
  return norm;
}

}  // namespace ahntp::nn
