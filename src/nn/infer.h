#ifndef AHNTP_NN_INFER_H_
#define AHNTP_NN_INFER_H_

#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/workspace.h"

namespace ahntp::nn {

// ---------------------------------------------------------------------------
// Tape-free inference entry points.
//
// Each runs a layer's eval-mode forward pass directly on tensor buffers:
// no autograd::Node allocations, no tape, no dropout. All math goes
// through the same tensor kernels as the Variable path (tensor/kernels.h),
// so the results are bit-identical to Forward() on a module in eval mode.
//
// Returned references point into `ws`; they stay valid until the
// workspace's next Reset(). A steady-state loop that repeats the same
// call sequence per iteration is allocation-free once warmed.
// ---------------------------------------------------------------------------

/// y = x * W (+ bias). Returns a workspace buffer of shape
/// (x.rows() x out_features).
tensor::Matrix& InferLinear(const Linear& layer, const tensor::Matrix& x,
                            tensor::Workspace* ws);

/// Applies `act` to `m` in place (kNone is a no-op).
void InferActivationInPlace(tensor::Matrix* m, Activation act,
                            float leaky_slope = 0.2f);

/// Full MLP forward in eval semantics (dropout skipped — exactly what the
/// tape does when training is off, so no RNG is drawn either way).
tensor::Matrix& InferMlp(const Mlp& mlp, const tensor::Matrix& x,
                         tensor::Workspace* ws);

/// y = gain ⊙ standardize(x) + bias.
tensor::Matrix& InferLayerNorm(const LayerNorm& norm, const tensor::Matrix& x,
                               tensor::Workspace* ws);

}  // namespace ahntp::nn

#endif  // AHNTP_NN_INFER_H_
