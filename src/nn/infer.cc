#include "nn/infer.h"

#include "common/check.h"
#include "tensor/kernels.h"

namespace ahntp::nn {

using tensor::Matrix;

Matrix& InferLinear(const Linear& layer, const Matrix& x,
                    tensor::Workspace* ws) {
  AHNTP_CHECK(ws != nullptr);
  Matrix* out = ws->Acquire(x.rows(), layer.out_features());
  tensor::MatMulInto(out, x, layer.weight().value());
  if (layer.use_bias()) {
    tensor::AddRowBroadcastInto(out, *out, layer.bias().value());
  }
  return *out;
}

void InferActivationInPlace(Matrix* m, Activation act, float leaky_slope) {
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      tensor::ReluInto(m, *m);
      return;
    case Activation::kLeakyRelu:
      tensor::LeakyReluInto(m, *m, leaky_slope);
      return;
    case Activation::kSigmoid:
      tensor::SigmoidInto(m, *m);
      return;
    case Activation::kTanh:
      tensor::TanhInto(m, *m);
      return;
  }
}

Matrix& InferMlp(const Mlp& mlp, const Matrix& x, tensor::Workspace* ws) {
  AHNTP_CHECK(ws != nullptr);
  const Matrix* h = &x;
  Matrix* out = nullptr;
  for (size_t i = 0; i < mlp.num_layers(); ++i) {
    out = &InferLinear(mlp.layer(i), *h, ws);
    bool is_last = (i + 1 == mlp.num_layers());
    InferActivationInPlace(
        out, is_last ? mlp.output_activation() : mlp.hidden_activation());
    h = out;
  }
  return *out;
}

Matrix& InferLayerNorm(const LayerNorm& norm, const Matrix& x,
                       tensor::Workspace* ws) {
  AHNTP_CHECK(ws != nullptr);
  AHNTP_CHECK_EQ(x.cols(), norm.features());
  Matrix* out = ws->Acquire(x.rows(), x.cols());
  tensor::RowStandardizeInto(out, x, norm.epsilon());
  // Two separate broadcast passes, matching the tape's Mul-then-Add node
  // pair: one fused multiply-add would round differently under FP
  // contraction and break bit parity.
  tensor::MulRowBroadcastInto(out, *out, norm.gain().value());
  tensor::AddRowBroadcastInto(out, *out, norm.bias().value());
  return *out;
}

}  // namespace ahntp::nn
