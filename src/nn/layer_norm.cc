#include "nn/layer_norm.h"

#include "common/check.h"

namespace ahntp::nn {

LayerNorm::LayerNorm(size_t features, float epsilon)
    : features_(features),
      epsilon_(epsilon),
      gain_(autograd::Parameter(tensor::Matrix(1, features, 1.0f))),
      bias_(autograd::Parameter(tensor::Matrix(1, features))) {}

autograd::Variable LayerNorm::Forward(const autograd::Variable& x) const {
  AHNTP_CHECK_EQ(x.cols(), features_);
  autograd::Variable standardized = autograd::RowStandardize(x, epsilon_);
  // Broadcast gain across rows: rows * gain + bias.
  autograd::Variable gained = autograd::Mul(
      standardized,
      autograd::MatMul(
          autograd::Constant(tensor::Matrix(x.rows(), 1, 1.0f)), gain_));
  return autograd::AddRowBroadcast(gained, bias_);
}

}  // namespace ahntp::nn
