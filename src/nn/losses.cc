#include "nn/losses.h"

#include "common/check.h"

namespace ahntp::nn {

using autograd::Variable;
using tensor::Matrix;

Variable BinaryCrossEntropy(const Variable& probs,
                            const std::vector<float>& targets,
                            float epsilon) {
  AHNTP_CHECK_EQ(probs.cols(), 1u);
  AHNTP_CHECK_EQ(probs.rows(), targets.size());
  AHNTP_CHECK_GT(targets.size(), 0u);
  Variable p = autograd::Clamp(probs, epsilon, 1.0f - epsilon);
  Matrix y(targets.size(), 1);
  Matrix one_minus_y(targets.size(), 1);
  for (size_t i = 0; i < targets.size(); ++i) {
    AHNTP_CHECK(targets[i] == 0.0f || targets[i] == 1.0f)
        << "BCE target must be 0 or 1, got " << targets[i];
    y.At(i, 0) = targets[i];
    one_minus_y.At(i, 0) = 1.0f - targets[i];
  }
  // -(y*log(p) + (1-y)*log(1-p)), averaged.
  Variable log_p = autograd::Log(p);
  Variable log_1mp = autograd::Log(
      autograd::AddScalar(autograd::Scale(p, -1.0f), 1.0f));
  Variable terms = autograd::Add(autograd::MulConst(log_p, y),
                                 autograd::MulConst(log_1mp, one_minus_y));
  return autograd::Scale(autograd::ReduceMean(terms), -1.0f);
}

Variable SupervisedContrastiveLoss(const Variable& sims,
                                   const std::vector<int>& anchors,
                                   size_t num_anchors,
                                   const std::vector<bool>& is_positive,
                                   float temperature) {
  AHNTP_CHECK_EQ(sims.cols(), 1u);
  AHNTP_CHECK_EQ(sims.rows(), anchors.size());
  AHNTP_CHECK_EQ(anchors.size(), is_positive.size());
  AHNTP_CHECK_GT(temperature, 0.0f);

  const size_t num_pairs = anchors.size();
  Matrix pos_mask(num_pairs, 1);
  std::vector<bool> anchor_has_positive(num_anchors, false);
  for (size_t p = 0; p < num_pairs; ++p) {
    pos_mask.At(p, 0) = is_positive[p] ? 1.0f : 0.0f;
    if (is_positive[p]) {
      anchor_has_positive[static_cast<size_t>(anchors[p])] = true;
    }
  }
  size_t active_anchors = 0;
  Matrix anchor_mask(num_anchors, 1);
  for (size_t a = 0; a < num_anchors; ++a) {
    if (anchor_has_positive[a]) {
      anchor_mask.At(a, 0) = 1.0f;
      ++active_anchors;
    }
  }
  AHNTP_CHECK_GT(active_anchors, 0u)
      << "supervised contrastive loss needs at least one anchor with a "
         "positive pair";

  Variable exp_s = autograd::Exp(autograd::Scale(sims, 1.0f / temperature));
  Variable pos_sum = autograd::SegmentSum(autograd::MulConst(exp_s, pos_mask),
                                          anchors, num_anchors);
  Variable all_sum = autograd::SegmentSum(exp_s, anchors, num_anchors);
  // -log(pos/all) = log(all) - log(pos); anchors without positives masked out.
  Variable per_anchor =
      autograd::Sub(autograd::Log(all_sum), autograd::Log(pos_sum));
  Variable masked = autograd::MulConst(per_anchor, anchor_mask);
  return autograd::Scale(autograd::ReduceSum(masked),
                         1.0f / static_cast<float>(active_anchors));
}

Variable CombinedLoss(const Variable& contrastive, const Variable& bce,
                      float lambda1, float lambda2) {
  return autograd::Add(autograd::Scale(contrastive, lambda1),
                       autograd::Scale(bce, lambda2));
}

Variable HypergraphRegularizer(const Variable& f,
                               const tensor::CsrMatrix& laplacian) {
  AHNTP_CHECK_EQ(laplacian.rows(), laplacian.cols());
  AHNTP_CHECK_EQ(f.rows(), laplacian.rows());
  Variable lf = autograd::SpMMConst(laplacian, f);
  Variable quadratic = autograd::RowwiseDot(f, lf);
  return autograd::ReduceSum(quadratic);
}

}  // namespace ahntp::nn
