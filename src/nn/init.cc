#include "nn/init.h"

#include <cmath>

namespace ahntp::nn {

tensor::Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng* rng) {
  float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Matrix::RandUniform(fan_in, fan_out, rng, -a, a);
}

tensor::Matrix KaimingNormal(size_t fan_in, size_t fan_out, Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Matrix::Randn(fan_in, fan_out, rng, 0.0f, stddev);
}

}  // namespace ahntp::nn
