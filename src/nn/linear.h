#ifndef AHNTP_NN_LINEAR_H_
#define AHNTP_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace ahntp::nn {

/// Fully connected layer: Y = X * W + b (bias optional).
class Linear : public Module {
 public:
  /// Xavier-initialized weights; zero bias.
  Linear(size_t in_features, size_t out_features, Rng* rng,
         bool use_bias = true);

  /// Forward pass; x is (batch x in_features).
  autograd::Variable Forward(const autograd::Variable& x) const;

  std::vector<autograd::Variable> Parameters() const override;

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  bool use_bias() const { return use_bias_; }

  autograd::Variable& weight() { return weight_; }
  autograd::Variable& bias() { return bias_; }
  const autograd::Variable& weight() const { return weight_; }
  const autograd::Variable& bias() const { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  bool use_bias_;
  autograd::Variable weight_;  // in x out
  autograd::Variable bias_;    // 1 x out
};

}  // namespace ahntp::nn

#endif  // AHNTP_NN_LINEAR_H_
