#ifndef AHNTP_NN_MLP_H_
#define AHNTP_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace ahntp::nn {

/// Activation applied between MLP layers.
enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Applies an activation to a variable.
autograd::Variable Activate(const autograd::Variable& x, Activation act,
                            float leaky_slope = 0.2f);

/// Multi-layer perceptron: a chain of Linear layers with a shared hidden
/// activation; the output layer activation is configurable separately
/// (default none). Optional inverted dropout between hidden layers.
class Mlp : public Module {
 public:
  /// `dims` lists layer widths input-first, e.g. {64, 256, 128} builds
  /// 64->256->128. Requires at least two entries.
  Mlp(const std::vector<size_t>& dims, Rng* rng,
      Activation hidden_activation = Activation::kRelu,
      Activation output_activation = Activation::kNone,
      float dropout = 0.0f);

  autograd::Variable Forward(const autograd::Variable& x) const;

  std::vector<autograd::Variable> Parameters() const override;
  std::vector<Module*> Submodules() override;

  size_t in_features() const { return layers_.front()->in_features(); }
  size_t out_features() const { return layers_.back()->out_features(); }
  size_t num_layers() const { return layers_.size(); }
  const Linear& layer(size_t i) const { return *layers_[i]; }
  Activation hidden_activation() const { return hidden_activation_; }
  Activation output_activation() const { return output_activation_; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_activation_;
  Activation output_activation_;
  float dropout_;
  Rng* rng_;
};

}  // namespace ahntp::nn

#endif  // AHNTP_NN_MLP_H_
