#ifndef AHNTP_NN_OPTIMIZER_H_
#define AHNTP_NN_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace ahntp::nn {

/// Base class for first-order optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the
  /// parameters.
  virtual void Step() = 0;

  /// Updates the learning rate (for LrSchedule-driven training loops).
  virtual void set_learning_rate(float rate) = 0;
  virtual float learning_rate() const = 0;

  /// Discards accumulated optimizer state (Adam moments, step count).
  /// Used by the trainer's divergence guard: after rolling parameters back
  /// past a non-finite step, stale moments would re-inject the poison.
  virtual void Reset() {}

  /// Zeroes parameter gradients (call between steps).
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float learning_rate,
      float weight_decay = 0.0f);

  void Step() override;
  void set_learning_rate(float rate) override { learning_rate_ = rate; }
  float learning_rate() const override { return learning_rate_; }

 private:
  float learning_rate_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with decoupled-from-nothing classic L2 weight decay,
/// matching the paper's optimizer (§V-A.4: lr 1e-3, decay 1e-4).
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float learning_rate = 1e-3f,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;
  void set_learning_rate(float rate) override { learning_rate_ = rate; }
  float learning_rate() const override { return learning_rate_; }
  void Reset() override;

  int64_t step_count() const { return step_count_; }

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
};

/// Global L2 norm of all parameter gradients. NaN/Inf gradients propagate
/// into the result, which is what the trainer's divergence guard keys on.
float GlobalGradientNorm(const std::vector<autograd::Variable>& params);

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. No-op (still returns the norm) when already
/// within bounds.
float ClipGradientNorm(const std::vector<autograd::Variable>& params,
                       float max_norm);

}  // namespace ahntp::nn

#endif  // AHNTP_NN_OPTIMIZER_H_
