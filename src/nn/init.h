#ifndef AHNTP_NN_INIT_H_
#define AHNTP_NN_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace ahntp::nn {

/// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
tensor::Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng* rng);

/// Kaiming/He normal initialization: N(0, sqrt(2/fan_in)).
tensor::Matrix KaimingNormal(size_t fan_in, size_t fan_out, Rng* rng);

}  // namespace ahntp::nn

#endif  // AHNTP_NN_INIT_H_
