#include "nn/linear.h"

#include "nn/init.h"

namespace ahntp::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias),
      weight_(autograd::Parameter(XavierUniform(in_features, out_features,
                                                rng))),
      bias_(autograd::Parameter(tensor::Matrix(1, out_features))) {}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  autograd::Variable out = autograd::MatMul(x, weight_);
  if (use_bias_) out = autograd::AddRowBroadcast(out, bias_);
  return out;
}

std::vector<autograd::Variable> Linear::Parameters() const {
  if (use_bias_) return {weight_, bias_};
  return {weight_};
}

}  // namespace ahntp::nn
