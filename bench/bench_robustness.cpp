// Adversarial robustness + uncertainty benchmark (DESIGN.md §16).
//
// Part 1 — robustness table: every zoo model is trained and evaluated on a
// clean dataset and on each adversarial preset (sybil rings, trust-spam
// hubs, camouflaged sybils, train/serve distribution shift), reporting
// AUC, ECE, and Brier per cell — how much each attack costs each model,
// in both ranking quality and calibration.
//
// Part 2 — abstain tradeoff sweep: a 3-seed AHNTP ensemble (+ MC-dropout
// samples) is trained per attack preset under the *temporal* split, which
// concentrates the attack edges (appended last, latest times) in the test
// regime. Sweeping ServeOptions::min_confidence-style thresholds over the
// ensemble's confidence quantiles yields an abstain-rate vs served-AUC
// curve; the acceptance gate requires abstention to recover measurable
// AUC on the served pairs under at least `--gate_presets` (default 2)
// attack presets. The gate verdict is encoded in BENCH_robustness.json
// and mirrored in the exit code, so scripts/check_robustness.sh can fail
// the build when the uncertainty signal stops separating hostile pairs.
//
//   ./build/bench/bench_robustness [--scale=0.05] [--epochs=40]
//       [--models=SGC,UniGCN,AHNTP] [--sweep_quantiles=0.1,0.2,0.3,0.5]
//       [--ensemble_members=3] [--gate_presets=2]

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/fileio.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/split.h"
#include "models/uncertainty.h"

namespace {

using namespace ahntp;

constexpr const char* kZooModels[] = {"GAT",        "SGC",     "Guardian",
                                      "AtNE-Trust", "KGTrust", "UniGCN",
                                      "UniGAT",     "HGNN+",   "AHNTP"};

struct Preset {
  std::string name;
  data::AttackSpec spec;
  /// Attack presets evaluate under the temporal split so the injected
  /// edges (latest times) land in the test regime: train on the mostly
  /// clean past, serve the hostile present.
  bool temporal = false;
};

/// Attack strengths scale with the population so --scale sweeps keep the
/// attacker fraction roughly constant.
std::vector<Preset> MakePresets(const data::GeneratorConfig& config) {
  const size_t users = config.num_users;
  const size_t rings = std::max<size_t>(2, users / 120);
  const size_t ring_size = 5;
  const size_t hubs = std::max<size_t>(2, users / 150);
  const size_t spam_edges = std::min<size_t>(users - 1, 40);

  std::vector<Preset> presets;
  presets.push_back({"clean", data::AttackSpec{}, false});
  data::AttackSpec sybil = data::AttackSpec::SybilRing(rings, ring_size);
  sybil.sybil_targets_per_member = 4;
  presets.push_back({"sybil", sybil, true});
  presets.push_back(
      {"spam", data::AttackSpec::SpamHubs(hubs, spam_edges), true});
  data::AttackSpec camo =
      data::AttackSpec::Camouflaged(rings, ring_size, 0.9);
  camo.sybil_targets_per_member = 4;
  presets.push_back({"camouflage", camo, true});
  presets.push_back({"shift", data::AttackSpec::Shift(0.35), true});
  return presets;
}

struct TableRow {
  std::string preset;
  std::string model;
  double auc = 0.0;
  double ece = 0.0;
  double brier = 0.0;
  double accuracy = 0.0;
  double seconds = 0.0;
};

struct SweepRow {
  std::string preset;
  double quantile = 0.0;
  float threshold = 0.0f;
  double abstain_rate = 0.0;
  size_t served = 0;
  double served_auc = 0.0;
  double served_ece = 0.0;
  double full_auc = 0.0;
  double full_ece = 0.0;
};

std::vector<float> Labels(const std::vector<data::TrustPair>& pairs) {
  std::vector<float> labels;
  labels.reserve(pairs.size());
  for (const data::TrustPair& p : pairs) labels.push_back(p.label);
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  std::vector<std::string> models = flags.GetStringList(
      "models", std::vector<std::string>(kZooModels, kZooModels + 9));
  std::vector<double> quantiles =
      flags.GetDoubleList("sweep_quantiles", {0.1, 0.2, 0.3, 0.5});
  const int ensemble_members =
      static_cast<int>(flags.GetInt("ensemble_members", 3));
  const int gate_presets = static_cast<int>(flags.GetInt("gate_presets", 2));
  /// Minimum served-AUC gain over the full test set for a preset to count
  /// as "abstention recovered accuracy".
  const double min_auc_gain = flags.GetDouble("min_auc_gain", 0.001);
  bench::PrintBanner("robustness",
                     "adversarial presets: AUC/ECE table + abstain tradeoff",
                     options);

  data::GeneratorConfig gen_config =
      data::GeneratorConfig::CiaoLike(options.scale);
  std::vector<Preset> presets = MakePresets(gen_config);
  data::SocialNetworkGenerator generator(gen_config);

  // --- Part 1: preset x model AUC / ECE / Brier ---------------------------
  std::vector<TableRow> table;
  std::printf("\n### robustness table (Ciao-like, %zu users)\n",
              gen_config.num_users);
  std::printf("%-11s %-11s %8s %8s %8s %8s %8s\n", "preset", "model", "auc",
              "ece", "brier", "acc", "sec");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (const Preset& preset : presets) {
    data::AttackReport report;
    auto dataset = generator.GenerateWithAttacks(preset.spec, &report);
    AHNTP_CHECK(dataset.ok()) << preset.name << ": "
                              << dataset.status().ToString();
    if (preset.spec.any()) {
      std::printf(
          "# %s: %zu attackers, +%zu sybil +%zu spam edges, %zu shifted, "
          "%zu camouflaged\n",
          preset.name.c_str(), report.attackers.size(), report.sybil_edges,
          report.spam_edges, report.shifted_edges,
          report.camouflaged_users);
    }
    for (const std::string& model : models) {
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = model;
      config.temporal_split = preset.temporal;
      core::ExperimentResult result = bench::MustRun(*dataset, config);
      TableRow row;
      row.preset = preset.name;
      row.model = model;
      row.auc = result.test.auc;
      row.ece = result.test.ece;
      row.brier = result.test.brier;
      row.accuracy = result.test.accuracy;
      row.seconds = result.train_seconds;
      table.push_back(row);
      std::printf("%-11s %-11s %8.4f %8.4f %8.4f %8.4f %8.1f\n",
                  row.preset.c_str(), row.model.c_str(), row.auc, row.ece,
                  row.brier, row.accuracy, row.seconds);
      std::fflush(stdout);
    }
  }

  // --- Part 2: abstain-rate vs served-AUC tradeoff ------------------------
  // Ensembles are expensive (members x training), so the sweep runs on the
  // attack presets only; `clean` has no hostile pairs to abstain from.
  std::vector<SweepRow> sweep;
  int passing_presets = 0;
  std::printf("\n### abstain tradeoff (AHNTP x%d ensemble, temporal split)\n",
              ensemble_members);
  std::printf("%-11s %6s %10s %9s %7s %9s %9s %9s\n", "preset", "q",
              "threshold", "abstain%", "served", "servedAUC", "fullAUC",
              "gain");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const Preset& preset : presets) {
    if (!preset.spec.any()) continue;
    auto dataset = generator.GenerateWithAttacks(preset.spec);
    AHNTP_CHECK(dataset.ok());
    data::TrustSplit split = data::MakeTemporalSplit(*dataset);
    auto train_graph = dataset->GraphFromEdges(split.train_positive);
    AHNTP_CHECK(train_graph.ok()) << train_graph.status().ToString();
    tensor::Matrix features = data::BuildFeatureMatrix(*dataset);

    models::ModelInputs inputs;
    inputs.features = &features;
    inputs.graph = &train_graph.value();
    inputs.dataset = &dataset.value();
    inputs.hidden_dims = options.dims;

    std::vector<std::shared_ptr<models::TrustPredictor>> members;
    for (int m = 0; m < ensemble_members; ++m) {
      Rng rng(options.seed + static_cast<uint64_t>(m));
      inputs.rng = &rng;
      auto created =
          core::CreatePredictor("AHNTP", inputs, core::AhntpConfig{});
      AHNTP_CHECK(created.ok()) << created.status().ToString();
      core::TrainerConfig tc;
      tc.epochs = options.epochs;
      auto trained =
          core::Trainer(tc).Fit(created.value().get(), split.train_pairs);
      AHNTP_CHECK(trained.ok()) << trained.status().ToString();
      members.push_back(std::move(created).value());
    }
    models::EnsembleOptions ens_options;
    ens_options.mc_dropout_samples = 2;
    ens_options.mc_dropout_rate = 0.15f;
    models::SeedEnsemble ensemble(std::move(members), ens_options);

    models::SeedEnsemble::Scored scored = ensemble.Score(split.test_pairs);
    std::vector<float> labels = Labels(split.test_pairs);
    core::BinaryMetrics full = core::EvaluateBinary(scored.scores, labels);

    std::vector<float> sorted_conf = scored.confidence;
    std::sort(sorted_conf.begin(), sorted_conf.end());
    bool preset_passes = false;
    for (double q : quantiles) {
      const size_t cut = std::min(
          sorted_conf.size() - 1,
          static_cast<size_t>(q * static_cast<double>(sorted_conf.size())));
      const float threshold = sorted_conf[cut];
      std::vector<float> served_scores, served_labels;
      for (size_t i = 0; i < scored.confidence.size(); ++i) {
        if (scored.confidence[i] < threshold) continue;
        served_scores.push_back(scored.scores[i]);
        served_labels.push_back(labels[i]);
      }
      SweepRow row;
      row.preset = preset.name;
      row.quantile = q;
      row.threshold = threshold;
      row.served = served_scores.size();
      row.abstain_rate =
          1.0 - static_cast<double>(row.served) /
                    static_cast<double>(scored.confidence.size());
      row.full_auc = full.auc;
      row.full_ece = full.ece;
      const bool scorable =
          row.served >= 30 &&
          std::count(served_labels.begin(), served_labels.end(), 1.0f) > 0 &&
          std::count(served_labels.begin(), served_labels.end(), 0.0f) > 0;
      if (scorable) {
        core::BinaryMetrics served_metrics =
            core::EvaluateBinary(served_scores, served_labels);
        row.served_auc = served_metrics.auc;
        row.served_ece = served_metrics.ece;
        if (row.abstain_rate <= 0.55 &&
            row.served_auc > row.full_auc + min_auc_gain) {
          preset_passes = true;
        }
      }
      sweep.push_back(row);
      std::printf("%-11s %6.2f %10.4f %8.1f%% %7zu %9.4f %9.4f %+9.4f\n",
                  row.preset.c_str(), row.quantile,
                  static_cast<double>(row.threshold),
                  row.abstain_rate * 100.0, row.served, row.served_auc,
                  row.full_auc, row.served_auc - row.full_auc);
      std::fflush(stdout);
    }
    if (preset_passes) ++passing_presets;
  }

  const bool gate_pass = passing_presets >= gate_presets;
  std::printf(
      "\nabstain gate: served AUC beat full AUC (gain > %.4f, abstain <= "
      "55%%) under %d/%d attack presets (required: %d) -> %s\n",
      min_auc_gain, passing_presets,
      static_cast<int>(presets.size()) - 1, gate_presets,
      gate_pass ? "PASS" : "FAIL");

  // --- BENCH_robustness.json ----------------------------------------------
  std::string json = StrFormat(
      "{\n  \"bench\": \"robustness\",\n  \"schema_version\": 1,\n"
      "  \"scale\": %.4f,\n  \"epochs\": %d,\n  \"seed\": %lu,\n"
      "  \"ensemble_members\": %d,\n  \"table\": [\n",
      options.scale, options.epochs,
      static_cast<unsigned long>(options.seed), ensemble_members);
  for (size_t i = 0; i < table.size(); ++i) {
    const TableRow& row = table[i];
    json += StrFormat(
        "    {\"preset\": \"%s\", \"model\": \"%s\", \"auc\": %.6f, "
        "\"ece\": %.6f, \"brier\": %.6f, \"accuracy\": %.6f}%s\n",
        row.preset.c_str(), row.model.c_str(), row.auc, row.ece, row.brier,
        row.accuracy, i + 1 < table.size() ? "," : "");
  }
  json += "  ],\n  \"abstain_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    json += StrFormat(
        "    {\"preset\": \"%s\", \"quantile\": %.2f, \"threshold\": %.6f, "
        "\"abstain_rate\": %.4f, \"served\": %zu, \"served_auc\": %.6f, "
        "\"served_ece\": %.6f, \"full_auc\": %.6f, \"full_ece\": %.6f}%s\n",
        row.preset.c_str(), row.quantile,
        static_cast<double>(row.threshold), row.abstain_rate, row.served,
        row.served_auc, row.served_ece, row.full_auc, row.full_ece,
        i + 1 < sweep.size() ? "," : "");
  }
  json += StrFormat(
      "  ],\n  \"gates\": {\"required_presets\": %d, "
      "\"passing_presets\": %d, \"min_auc_gain\": %.4f, \"pass\": %s}\n}\n",
      gate_presets, passing_presets, min_auc_gain,
      gate_pass ? "true" : "false");
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_robustness.json", json));
  std::printf("wrote BENCH_robustness.json (%zu table rows, %zu sweep "
              "rows)\n",
              table.size(), sweep.size());

  return gate_pass ? 0 : 1;
}
