// Reproduces Table V / Fig. 7 / Fig. 8 (Q3): the ablation study. Compares
// full AHNTP against AHNTP_nompr (plain PageRank), AHNTP_noatt (standard
// hypergraph convolution), and AHNTP_nocon (cross-entropy only) at the 80%
// training split on both datasets.
//
//   ./build/bench/bench_fig7_8_ablation [--scale=0.06] [--epochs=60]

#include <cmath>
#include <limits>

#include "bench_util.h"

namespace {

struct PaperAblation {
  const char* variant;
  double acc[2];  // Ciao, Epinions
  double f1[2];
};

// Paper values: AHNTP reaches 86.11/90.11 (Ciao) and 89.78/92.94 (Epinions).
// Variant values derive from the deltas Section V-C reports; the Epinions
// paragraph only spells out the noatt delta (2.76 acc / 1.82 F1), so the
// other Epinions cells are unknown (printed as n/a, encoded as NaN).
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr PaperAblation kPaper[] = {
    {"AHNTP", {86.11, 89.78}, {90.11, 92.94}},
    {"AHNTP-nompr", {86.11 - 2.09, kNaN}, {90.11 - 1.33, kNaN}},
    {"AHNTP-noatt", {86.11 - 4.94, 89.78 - 2.76}, {90.11 - 2.87, 92.94 - 1.82}},
    {"AHNTP-nocon", {86.11 - 4.20, kNaN}, {90.11 - 2.64, kNaN}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  bench::PrintBanner("Table V / Fig. 7-8", "ablation study of model variants",
                     options);

  for (const auto& named : bench::BuildDatasets(options)) {
    int d = named.name == "Ciao" ? 0 : 1;
    std::printf("\n### %s\n", named.name.c_str());
    std::printf("%-13s | %9s %9s | %9s %9s\n", "variant", "acc", "acc*", "f1",
                "f1*");
    std::printf("%s\n", std::string(58, '-').c_str());
    double full_acc = 0.0;
    for (const PaperAblation& row : kPaper) {
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = row.variant;
      core::ExperimentResult result = bench::MustRunAveraged(named.dataset, config, options);
      char paper_acc[16], paper_f1[16];
      if (std::isnan(row.acc[d])) {
        std::snprintf(paper_acc, sizeof(paper_acc), "%9s", "n/a");
        std::snprintf(paper_f1, sizeof(paper_f1), "%9s", "n/a");
      } else {
        std::snprintf(paper_acc, sizeof(paper_acc), "%8.2f%%", row.acc[d]);
        std::snprintf(paper_f1, sizeof(paper_f1), "%8.2f%%", row.f1[d]);
      }
      std::printf("%-13s | %8.2f%% %s | %8.2f%% %s\n", row.variant,
                  result.test.accuracy * 100.0, paper_acc,
                  result.test.f1 * 100.0, paper_f1);
      std::fflush(stdout);
      if (std::string(row.variant) == "AHNTP") {
        full_acc = result.test.accuracy;
      } else {
        std::printf("%-13s   (full AHNTP is %+.2f acc points ahead)\n", "",
                    (full_acc - result.test.accuracy) * 100.0);
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): full AHNTP beats every ablation; removing\n"
      "the adaptive attention (noatt) hurts most, then the contrastive\n"
      "loss (nocon), then MPR (nompr). (acc*/f1* = paper values.)\n");
  return 0;
}
