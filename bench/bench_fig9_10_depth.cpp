// Reproduces Fig. 9 / Fig. 10 (Q4.2): accuracy and F1 of AHNTP as the number
// of stacked adaptive hypergraph convolution layers grows from 1 to 5. The
// paper reports a peak at 3 layers followed by an over-smoothing decline.
//
//   ./build/bench/bench_fig9_10_depth [--scale=0.06] [--epochs=60]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  bench::PrintBanner("Fig. 9-10", "performance vs number of conv layers",
                     options);

  // Layer widths mirror the paper's halving pattern starting at dims[0],
  // clamped at the final width (e.g. 64-32-16-16-16 for 5 layers).
  const size_t top = options.dims.front();
  const size_t floor_width = options.dims.back();
  for (const auto& named : bench::BuildDatasets(options)) {
    std::printf("\n### %s\n", named.name.c_str());
    std::printf("%-7s %-18s | %9s | %9s | paper shape\n", "layers", "dims",
                "acc", "f1");
    std::printf("%s\n", std::string(62, '-').c_str());
    double best_acc = 0.0;
    int best_layers = 0;
    for (int layers = 1; layers <= 5; ++layers) {
      std::vector<size_t> dims;
      size_t width = top;
      for (int l = 0; l < layers; ++l) {
        dims.push_back(std::max(width, floor_width));
        width /= 2;
      }
      std::string dims_label;
      for (size_t d : dims) {
        if (!dims_label.empty()) dims_label += "-";
        dims_label += std::to_string(d);
      }
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = "AHNTP";
      config.hidden_dims = dims;
      core::ExperimentResult result = bench::MustRunAveraged(named.dataset, config, options);
      std::printf("%-7d %-18s | %8.2f%% | %8.2f%% | %s\n", layers,
                  dims_label.c_str(), result.test.accuracy * 100.0,
                  result.test.f1 * 100.0,
                  layers == 3 ? "paper peak" : (layers > 3 ? "declining" : "rising"));
      std::fflush(stdout);
      if (result.test.accuracy > best_acc) {
        best_acc = result.test.accuracy;
        best_layers = layers;
      }
    }
    std::printf("measured best depth: %d layers (paper: 3)\n", best_layers);
  }
  return 0;
}
