#ifndef AHNTP_BENCH_BENCH_UTIL_H_
#define AHNTP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "core/experiment.h"
#include "data/generator.h"

namespace ahntp::bench {

/// Options shared by all table/figure reproduction binaries.
///
/// Defaults are sized so the *whole* bench suite completes on one CPU core
/// in tens of minutes: datasets are generated at `scale` of the Table III
/// sizes and the conv stack uses the scaled dims 64-32-16. Pass
/// --scale=0.125 --dims=256,128,64 --epochs=120 to approach the paper's
/// setting (hours of CPU time).
struct BenchOptions {
  double scale = 0.06;
  /// Epoch cap; early stopping (validation AUC, patience 6 x 5 epochs)
  /// usually stops well before it.
  int epochs = 300;
  std::vector<size_t> dims = {64, 32, 16};
  uint64_t seed = 1;
  /// Number of model seeds to average each cell over (--seeds=3 tightens
  /// the tables at proportional cost).
  int num_seeds = 1;
  bool include_epinions = true;
  bool include_ciao = true;
  /// Resolved execution-substrate worker count (set from --threads /
  /// AHNTP_THREADS by FromFlags; recorded in every bench's JSON meta line).
  int threads = 1;

  static BenchOptions FromFlags(const FlagParser& flags) {
    BenchOptions options;
    options.threads = ApplyRuntimeFlags(flags);
    // Bare --metrics turns the registry on without naming a path; PrintBanner
    // then defaults the snapshot to BENCH_<id>.metrics.json next to the
    // bench's other JSON output.
    if (flags.GetBool("metrics", false)) metrics::Enable();
    options.scale = flags.GetDouble("scale", options.scale);
    options.epochs = static_cast<int>(flags.GetInt("epochs", options.epochs));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    options.num_seeds = static_cast<int>(flags.GetInt("seeds", 1));
    std::vector<int64_t> dims =
        flags.GetIntList("dims", {64, 32, 16});
    options.dims.assign(dims.begin(), dims.end());
    std::vector<std::string> datasets =
        flags.GetStringList("datasets", {"ciao", "epinions"});
    options.include_ciao = false;
    options.include_epinions = false;
    for (const std::string& d : datasets) {
      if (d == "ciao") options.include_ciao = true;
      if (d == "epinions") options.include_epinions = true;
    }
    return options;
  }
};

struct NamedDataset {
  std::string name;
  data::SocialDataset dataset;
};

/// Generates the benchmark datasets (Ciao first, matching the paper's table
/// ordering).
inline std::vector<NamedDataset> BuildDatasets(const BenchOptions& options) {
  std::vector<NamedDataset> out;
  if (options.include_ciao) {
    out.push_back({"Ciao", data::SocialNetworkGenerator(
                               data::GeneratorConfig::CiaoLike(options.scale))
                               .Generate()});
  }
  if (options.include_epinions) {
    out.push_back(
        {"Epinions",
         data::SocialNetworkGenerator(
             data::GeneratorConfig::EpinionsLike(options.scale))
             .Generate()});
  }
  return out;
}

/// Baseline experiment config from bench options.
inline core::ExperimentConfig BaseExperimentConfig(
    const BenchOptions& options) {
  core::ExperimentConfig config;
  config.hidden_dims = options.dims;
  config.trainer.epochs = options.epochs;
  config.model_seed = options.seed;
  return config;
}

/// Runs one experiment, aborting on configuration errors (a bench binary
/// has no meaningful recovery path).
inline core::ExperimentResult MustRun(const data::SocialDataset& dataset,
                                      const core::ExperimentConfig& config) {
  auto result = core::RunExperiment(dataset, config);
  AHNTP_CHECK(result.ok()) << config.model << ": "
                           << result.status().ToString();
  return std::move(result).value();
}

/// Runs `num_seeds` experiments with model seeds base, base+1, ... and
/// returns the result with seed-averaged test metrics.
inline core::ExperimentResult MustRunAveraged(
    const data::SocialDataset& dataset, core::ExperimentConfig config,
    const BenchOptions& options) {
  core::ExperimentResult aggregate;
  double acc = 0.0, f1 = 0.0, auc = 0.0, precision = 0.0, recall = 0.0;
  double seconds = 0.0;
  int runs = std::max(options.num_seeds, 1);
  for (int s = 0; s < runs; ++s) {
    config.model_seed = options.seed + static_cast<uint64_t>(s);
    core::ExperimentResult result = MustRun(dataset, config);
    acc += result.test.accuracy;
    f1 += result.test.f1;
    auc += result.test.auc;
    precision += result.test.precision;
    recall += result.test.recall;
    seconds += result.train_seconds;
    aggregate = result;
  }
  aggregate.test.accuracy = acc / runs;
  aggregate.test.f1 = f1 / runs;
  aggregate.test.auc = auc / runs;
  aggregate.test.precision = precision / runs;
  aggregate.test.recall = recall / runs;
  aggregate.train_seconds = seconds;
  return aggregate;
}

/// Prints the standard bench banner plus a machine-readable meta line
/// (`BENCH_META {...}` JSON) recording the run configuration — including
/// the execution-substrate thread count — so downstream tooling can
/// attribute results to a configuration.
inline void PrintBanner(const char* experiment_id, const char* description,
                        const BenchOptions& options) {
  // When the metrics registry is on but no snapshot path was named
  // (--metrics without --metrics_out), default it to a sidecar named after
  // the bench, matching the BENCH_*.json convention; the snapshot is then
  // written by the registry's process-exit hook.
  if (metrics::Enabled() && metrics::OutputPath().empty()) {
    metrics::SetOutputPath(
        StrFormat("BENCH_%s.metrics.json", experiment_id));
  }
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  if (metrics::Enabled()) {
    std::printf("metrics snapshot -> %s\n", metrics::OutputPath().c_str());
  }
  std::printf(
      "BENCH_META {\"bench\": \"%s\", \"threads\": %d, \"scale\": %.4f, "
      "\"epochs\": %d, \"seed\": %lu, \"seeds\": %d}\n",
      experiment_id, options.threads, options.scale, options.epochs,
      static_cast<unsigned long>(options.seed), options.num_seeds);
  std::printf(
      "scale=%.3f of Table III sizes, threads=%d, dims=", options.scale,
      options.threads);
  for (size_t i = 0; i < options.dims.size(); ++i) {
    std::printf(i == 0 ? "%zu" : "-%zu", options.dims[i]);
  }
  std::printf(", epochs=%d, seed=%lu\n", options.epochs,
              static_cast<unsigned long>(options.seed));
  std::printf(
      "NOTE: datasets are synthetic stand-ins for Epinions/Ciao (see\n"
      "DESIGN.md); compare *relative* orderings with the paper, not\n"
      "absolute numbers. Paper reference values printed alongside.\n");
  std::printf("==============================================================\n");
}

}  // namespace ahntp::bench

#endif  // AHNTP_BENCH_BENCH_UTIL_H_
