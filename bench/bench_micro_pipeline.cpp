// Micro-benchmarks (google-benchmark) for the end-to-end model pipeline:
// encoder forward passes for every model, backward pass, and one full
// training epoch of AHNTP.

#include <benchmark/benchmark.h>

#include "core/model_zoo.h"
#include "core/trainer.h"
#include "data/features.h"
#include "data/generator.h"

namespace {

using namespace ahntp;

/// Shared fixture: a small Ciao-like dataset plus precomputed model inputs.
struct PipelineFixture {
  data::SocialDataset dataset;
  data::TrustSplit split;
  graph::Digraph graph{0};
  tensor::Matrix features;
  hypergraph::Hypergraph baseline_hg{0};
  Rng rng{31};
  models::ModelInputs inputs;

  PipelineFixture() {
    data::GeneratorConfig config = data::GeneratorConfig::CiaoLike(0.05);
    dataset = data::SocialNetworkGenerator(config).Generate();
    split = data::MakeSplit(dataset);
    graph = dataset.GraphFromEdges(split.train_positive).value();
    features = data::BuildFeatureMatrix(dataset);
    baseline_hg = hypergraph::Hypergraph::Concat(
        hypergraph::Hypergraph::Concat(
            hypergraph::BuildAttributeHypergroup(dataset.num_users,
                                                 dataset.attributes),
            hypergraph::BuildPairwiseHypergroup(graph)),
        hypergraph::BuildMultiHopHypergroup(graph, {}));
    inputs.features = &features;
    inputs.graph = &graph;
    inputs.dataset = &dataset;
    inputs.hypergraph = &baseline_hg;
    inputs.hidden_dims = {64, 32, 16};
    inputs.dropout = 0.0f;
    inputs.rng = &rng;
  }
};

PipelineFixture& Fixture() {
  static PipelineFixture* fixture = new PipelineFixture();
  return *fixture;
}

void BM_EncoderForward(benchmark::State& state, const std::string& model) {
  PipelineFixture& fixture = Fixture();
  auto spec = core::CreateEncoder(model, fixture.inputs, core::AhntpConfig{});
  AHNTP_CHECK(spec.ok());
  spec->encoder->SetTraining(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec->encoder->EncodeUsers());
  }
  state.SetLabel(std::to_string(spec->encoder->NumParameters()) + " params");
}

void BM_ForwardBackward(benchmark::State& state, const std::string& model) {
  PipelineFixture& fixture = Fixture();
  auto spec = core::CreateEncoder(model, fixture.inputs, core::AhntpConfig{});
  AHNTP_CHECK(spec.ok());
  for (auto _ : state) {
    spec->encoder->ZeroGrad();
    autograd::Variable emb = spec->encoder->EncodeUsers();
    autograd::Variable loss =
        autograd::ReduceMean(autograd::Mul(emb, emb));
    loss.Backward();
    benchmark::DoNotOptimize(loss.value().At(0, 0));
  }
}

void BM_AhntpTrainEpoch(benchmark::State& state) {
  PipelineFixture& fixture = Fixture();
  Rng rng(5);
  auto spec =
      core::CreateEncoder("AHNTP", fixture.inputs, core::AhntpConfig{});
  AHNTP_CHECK(spec.ok());
  models::TrustPredictor predictor(spec->encoder,
                                   models::TrustPredictorConfig{}, &rng);
  core::TrainerConfig config;
  config.epochs = 1;
  core::Trainer trainer(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trainer.Fit(&predictor, fixture.split.train_pairs).value());
  }
  state.SetLabel(std::to_string(fixture.split.train_pairs.size()) +
                 " train pairs");
}
BENCHMARK(BM_AhntpTrainEpoch);

void BM_AhntpBuildHypergroups(benchmark::State& state) {
  PipelineFixture& fixture = Fixture();
  for (auto _ : state) {
    core::AhntpConfig config;
    config.hidden_dims = {16, 8};
    benchmark::DoNotOptimize(
        std::make_unique<core::AhntpModel>(fixture.inputs, config));
  }
}
BENCHMARK(BM_AhntpBuildHypergroups);

}  // namespace

int main(int argc, char** argv) {
  const char* models[] = {"GAT",     "SGC",    "Guardian", "AtNE-Trust",
                          "KGTrust", "UniGCN", "UniGAT",   "HGNN+",
                          "AHNTP"};
  for (const char* model : models) {
    benchmark::RegisterBenchmark(
        (std::string("BM_EncoderForward/") + model).c_str(),
        [model](benchmark::State& state) {
          BM_EncoderForward(state, model);
        });
  }
  for (const char* model : {"SGC", "HGNN+", "AHNTP"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_ForwardBackward/") + model).c_str(),
        [model](benchmark::State& state) {
          BM_ForwardBackward(state, model);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
