// Reproduces Table VI (Q4.1): multi-hop experiments. Sweeps the multi-hop
// hypergroup depth (1-3) for HGNN+ and AHNTP at two conv-stack widths, on
// both datasets.
//
// The paper's widths are 256-128-64 and 64-32-16; at the default bench scale
// the analogous pair 64-32-16 and 32-16-8 keeps the capacity ratio while
// staying single-core friendly. Pass --big-dims=256,128,64
// --small-dims=64,32,16 for the paper's widths.
//
//   ./build/bench/bench_table6_multihop [--scale=0.06] [--epochs=60]

#include "bench_util.h"

namespace {

// Paper Table VI: [model][dims][hop] -> {acc, f1} per dataset.
// model: 0 = HGNN+, 1 = AHNTP; dims: 0 = small (64-32-16), 1 = big
// (256-128-64); hop 1..3.
struct PaperCell {
  double acc;
  double f1;
};
constexpr PaperCell kPaperCiao[2][2][3] = {
    {{{68.05, 80.98}, {74.68, 82.77}, {68.05, 80.98}},
     {{82.28, 88.00}, {81.36, 87.42}, {75.55, 83.09}}},
    {{{83.82, 88.68}, {84.02, 88.76}, {75.35, 82.50}},
     {{86.11, 90.11}, {81.21, 87.11}, {68.94, 81.25}}},
};
constexpr PaperCell kPaperEpinions[2][2][3] = {
    {{{84.36, 90.01}, {86.40, 90.90}, {84.34, 90.00}},
     {{86.37, 90.92}, {82.04, 90.08}, {84.45, 90.09}}},
    {{{86.25, 91.35}, {86.62, 91.50}, {84.17, 90.22}},
     {{89.78, 92.94}, {85.50, 90.37}, {85.68, 90.26}}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  std::vector<int64_t> small_dims = flags.GetIntList("small-dims", {32, 16, 8});
  std::vector<int64_t> big_dims = flags.GetIntList("big-dims", {64, 32, 16});
  bench::PrintBanner("Table VI", "multi-hop experiments on two datasets",
                     options);

  const char* models[] = {"HGNN+", "AHNTP"};
  std::vector<std::vector<size_t>> dim_configs = {
      std::vector<size_t>(small_dims.begin(), small_dims.end()),
      std::vector<size_t>(big_dims.begin(), big_dims.end())};

  for (const auto& named : bench::BuildDatasets(options)) {
    const auto& paper = named.name == "Ciao" ? kPaperCiao : kPaperEpinions;
    std::printf("\n### %s\n", named.name.c_str());
    std::printf("%-7s %-12s %4s | %9s %9s | %9s %9s\n", "model", "dims", "hop",
                "acc", "acc*", "f1", "f1*");
    std::printf("%s\n", std::string(66, '-').c_str());
    for (int m = 0; m < 2; ++m) {
      for (int dc = 0; dc < 2; ++dc) {
        std::string dims_label;
        for (size_t d : dim_configs[static_cast<size_t>(dc)]) {
          if (!dims_label.empty()) dims_label += "-";
          dims_label += std::to_string(d);
        }
        for (int hop = 1; hop <= 3; ++hop) {
          core::ExperimentConfig config = bench::BaseExperimentConfig(options);
          config.model = models[m];
          config.hidden_dims = dim_configs[static_cast<size_t>(dc)];
          config.baseline_multi_hop = hop;      // HGNN+'s hypergraph
          config.ahntp.multi_hop = hop;         // AHNTP's hypergroup
          core::ExperimentResult result =
              bench::MustRunAveraged(named.dataset, config, options);
          const PaperCell& cell = paper[m][dc][hop - 1];
          std::printf("%-7s %-12s %4d | %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
                      models[m], dims_label.c_str(), hop,
                      result.test.accuracy * 100.0, cell.acc,
                      result.test.f1 * 100.0, cell.f1);
          std::fflush(stdout);
        }
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): at the larger width, 1 hop wins and 3 hops\n"
      "dilute the signal; at the smaller width, 2 hops can edge out 1.\n"
      "(acc*/f1* = paper values at dims 64-32-16 / 256-128-64.)\n");
  return 0;
}
