// Reproduces Fig. 11 / Fig. 13 (Q4.3): the alpha sweep. Alpha balances the
// pairwise adjacency against the motif-induced adjacency in Motif-based
// PageRank (Eq. 4); the paper finds the best trust prediction at alpha=0.8.
//
//   ./build/bench/bench_fig11_13_alpha [--scale=0.06] [--epochs=60]
//       [--alphas=0.4,0.5,0.6,0.7,0.8,0.9]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  std::vector<double> alphas =
      flags.GetDoubleList("alphas", {0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  bench::PrintBanner("Fig. 11/13",
                     "performance with different alpha (MPR blend)", options);

  for (const auto& named : bench::BuildDatasets(options)) {
    std::printf("\n### %s\n", named.name.c_str());
    std::printf("%-7s | %9s | %9s\n", "alpha", "acc", "f1");
    std::printf("%s\n", std::string(32, '-').c_str());
    double best_acc = 0.0;
    double best_alpha = 0.0;
    for (double alpha : alphas) {
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = "AHNTP";
      config.ahntp.mpr_alpha = alpha;
      core::ExperimentResult result = bench::MustRunAveraged(named.dataset, config, options);
      std::printf("%-7.2f | %8.2f%% | %8.2f%%\n", alpha,
                  result.test.accuracy * 100.0, result.test.f1 * 100.0);
      std::fflush(stdout);
      if (result.test.accuracy > best_acc) {
        best_acc = result.test.accuracy;
        best_alpha = alpha;
      }
    }
    std::printf("measured best alpha: %.2f (paper: 0.80)\n", best_alpha);
  }
  std::printf(
      "\nExpected shape (paper): performance peaks near alpha=0.8 —\n"
      "blending pairwise and motif structure beats either extreme.\n");
  return 0;
}
