// Reproduces Fig. 12 / Fig. 14 (Q4.4): the temperature sweep of the
// supervised contrastive loss (Eq. 20). The paper finds t = 0.3 optimal:
// too small over-sharpens, too large over-smooths the pair distribution.
//
//   ./build/bench/bench_fig12_14_temperature [--scale=0.06] [--epochs=60]
//       [--temperatures=0.1,0.2,0.3,0.4,0.5]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  std::vector<double> temperatures =
      flags.GetDoubleList("temperatures", {0.1, 0.2, 0.3, 0.4, 0.5});
  bench::PrintBanner("Fig. 12/14",
                     "contrastive learning with different temperature t",
                     options);

  for (const auto& named : bench::BuildDatasets(options)) {
    std::printf("\n### %s\n", named.name.c_str());
    std::printf("%-7s | %9s | %9s\n", "t", "acc", "f1");
    std::printf("%s\n", std::string(32, '-').c_str());
    double best_acc = 0.0;
    double best_t = 0.0;
    for (double t : temperatures) {
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = "AHNTP";
      config.trainer.temperature = static_cast<float>(t);
      core::ExperimentResult result = bench::MustRunAveraged(named.dataset, config, options);
      std::printf("%-7.2f | %8.2f%% | %8.2f%%\n", t,
                  result.test.accuracy * 100.0, result.test.f1 * 100.0);
      std::fflush(stdout);
      if (result.test.accuracy > best_acc) {
        best_acc = result.test.accuracy;
        best_t = t;
      }
    }
    std::printf("measured best t: %.2f (paper: 0.30)\n", best_t);
  }
  return 0;
}
