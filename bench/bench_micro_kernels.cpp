// Micro-benchmarks (google-benchmark) for the kernels underlying the
// reproduction, including the DESIGN.md ablation comparisons:
//   * Table II motif algebra (SpGEMM+Hadamard) vs brute-force enumeration,
//   * PageRank vs Motif-based PageRank,
//   * hypergroup builders,
//   * sparse kernels (SpMM / SpGEMM) and the adaptive conv's segment ops.

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/adaptive_conv.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/pagerank.h"
#include "hypergraph/builders.h"

namespace {

using namespace ahntp;

/// Scoped thread-count override: benchmarks tagged ->Arg(t) compare the
/// execution substrate at 1/2/4/8 workers against the serial baseline.
class ThreadScope {
 public:
  explicit ThreadScope(int threads) { SetNumThreads(threads); }
  ~ThreadScope() { SetNumThreads(0); }
};

/// Fixed medium network shared by the graph-level benchmarks.
const data::SocialDataset& Dataset() {
  static const data::SocialDataset* dataset = [] {
    data::GeneratorConfig config = data::GeneratorConfig::EpinionsLike(0.05);
    return new data::SocialDataset(
        data::SocialNetworkGenerator(config).Generate());
  }();
  return *dataset;
}

const graph::Digraph& Graph() {
  static const graph::Digraph* g =
      new graph::Digraph(Dataset().TrustGraph().value());
  return *g;
}

tensor::CsrMatrix RandomSparse(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<tensor::Triplet> triplets;
  auto count = static_cast<size_t>(static_cast<double>(n) * n * density);
  for (size_t i = 0; i < count; ++i) {
    triplets.push_back({static_cast<int>(rng.NextBounded(n)),
                        static_cast<int>(rng.NextBounded(n)),
                        rng.Uniform(0.1f, 1.0f)});
  }
  return tensor::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

// ---------------------------------------------------------------------------
// Execution substrate: serial vs pooled kernels across thread counts.
// The Arg is the worker count handed to SetNumThreads; Arg(1) is the fully
// serial path, so the speedup at Arg(t) reads directly off the report.
// ---------------------------------------------------------------------------

void BM_MatMulThreads(benchmark::State& state) {
  ThreadScope scope(static_cast<int>(state.range(1)));
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  tensor::Matrix a = tensor::Matrix::Randn(n, n, &rng);
  tensor::Matrix b = tensor::Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * static_cast<int64_t>(n) *
                          static_cast<int64_t>(n) * 2);
}
BENCHMARK(BM_MatMulThreads)
    ->ArgsProduct({{256, 512, 1024}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_SpMMThreads(benchmark::State& state) {
  ThreadScope scope(static_cast<int>(state.range(1)));
  size_t n = static_cast<size_t>(state.range(0));
  tensor::CsrMatrix a = RandomSparse(n, 0.01, 1);
  Rng rng(2);
  tensor::Matrix x = tensor::Matrix::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpMM(a, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.nnz()) * 64);
}
BENCHMARK(BM_SpMMThreads)
    ->ArgsProduct({{2000, 4000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_SpGemmThreads(benchmark::State& state) {
  ThreadScope scope(static_cast<int>(state.range(1)));
  size_t n = static_cast<size_t>(state.range(0));
  tensor::CsrMatrix a = RandomSparse(n, 0.01, 3);
  tensor::CsrMatrix b = RandomSparse(n, 0.01, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpGemm(a, b));
  }
}
BENCHMARK(BM_SpGemmThreads)
    ->ArgsProduct({{2000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_PageRankThreads(benchmark::State& state) {
  ThreadScope scope(static_cast<int>(state.range(0)));
  const graph::Digraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::PageRank(g.Adjacency()));
  }
}
BENCHMARK(BM_PageRankThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// Sparse kernels
// ---------------------------------------------------------------------------

void BM_SpMM(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  tensor::CsrMatrix a = RandomSparse(n, 0.01, 1);
  Rng rng(2);
  tensor::Matrix x = tensor::Matrix::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpMM(a, x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.nnz()) * 64);
}
BENCHMARK(BM_SpMM)->Arg(500)->Arg(1000)->Arg(2000);

void BM_SpGemm(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  tensor::CsrMatrix a = RandomSparse(n, 0.01, 3);
  tensor::CsrMatrix b = RandomSparse(n, 0.01, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpGemm(a, b));
  }
}
BENCHMARK(BM_SpGemm)->Arg(500)->Arg(1000);

// ---------------------------------------------------------------------------
// Motif algebra vs enumeration (DESIGN.md ablation 1)
// ---------------------------------------------------------------------------

void BM_MotifAdjacencyAlgebra(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::MotifAdjacency(g.Adjacency(), graph::Motif::kM6));
  }
}
BENCHMARK(BM_MotifAdjacencyAlgebra);

void BM_MotifAdjacencyEnumeration(benchmark::State& state) {
  // O(n^3): run on a small subgraph only.
  data::GeneratorConfig config = data::GeneratorConfig::EpinionsLike(0.01);
  data::SocialDataset small = data::SocialNetworkGenerator(config).Generate();
  graph::Digraph g = small.TrustGraph().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::MotifAdjacencyByEnumeration(g, graph::Motif::kM6));
  }
  state.SetLabel("n=" + std::to_string(g.num_nodes()) +
                 " (algebra handles 5x more nodes per ms)");
}
BENCHMARK(BM_MotifAdjacencyEnumeration);

void BM_AllSevenMotifs(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::AllMotifAdjacencies(g.Adjacency()));
  }
}
BENCHMARK(BM_AllSevenMotifs);

// ---------------------------------------------------------------------------
// PageRank variants
// ---------------------------------------------------------------------------

void BM_PageRank(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::PageRank(g.Adjacency()));
  }
}
BENCHMARK(BM_PageRank);

void BM_MotifPageRank(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  graph::MotifPageRankOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::MotifPageRank(g.Adjacency(), options));
  }
}
BENCHMARK(BM_MotifPageRank);

// ---------------------------------------------------------------------------
// Hypergroup builders (Section IV-B)
// ---------------------------------------------------------------------------

void BM_BuildSocialInfluenceHypergroup(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  std::vector<double> influence = graph::PageRank(g.Adjacency());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hypergraph::BuildSocialInfluenceHypergroup(g, influence, 5));
  }
}
BENCHMARK(BM_BuildSocialInfluenceHypergroup);

void BM_BuildAttributeHypergroup(benchmark::State& state) {
  const data::SocialDataset& ds = Dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hypergraph::BuildAttributeHypergroup(ds.num_users, ds.attributes));
  }
}
BENCHMARK(BM_BuildAttributeHypergroup);

void BM_BuildPairwiseHypergroup(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::BuildPairwiseHypergroup(g));
  }
}
BENCHMARK(BM_BuildPairwiseHypergroup);

void BM_BuildMultiHopHypergroup(benchmark::State& state) {
  const graph::Digraph& g = Graph();
  hypergraph::MultiHopOptions options;
  options.num_hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::BuildMultiHopHypergroup(g, options));
  }
}
BENCHMARK(BM_BuildMultiHopHypergroup)->Arg(1)->Arg(2)->Arg(3);

void BM_NormalizedAdjacency(benchmark::State& state) {
  const data::SocialDataset& ds = Dataset();
  hypergraph::Hypergraph hg = hypergraph::Hypergraph::Concat(
      hypergraph::BuildAttributeHypergroup(ds.num_users, ds.attributes),
      hypergraph::BuildPairwiseHypergroup(Graph()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hg.NormalizedAdjacency());
  }
}
BENCHMARK(BM_NormalizedAdjacency);

// ---------------------------------------------------------------------------
// Adaptive convolution: attention (segment ops) vs plain mean aggregation
// (DESIGN.md ablation 2)
// ---------------------------------------------------------------------------

void AdaptiveConvBenchmark(benchmark::State& state, bool use_attention) {
  const data::SocialDataset& ds = Dataset();
  Rng rng(7);
  hypergraph::Hypergraph hg = hypergraph::Hypergraph::Concat(
      hypergraph::BuildAttributeHypergroup(ds.num_users, ds.attributes),
      hypergraph::BuildPairwiseHypergroup(Graph()));
  tensor::Matrix features = data::BuildFeatureMatrix(ds);
  core::AdaptiveHypergraphConv conv(hg, features.cols(), 64, &rng,
                                    use_attention);
  autograd::Variable x = autograd::Constant(features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}

void BM_AdaptiveConvAttention(benchmark::State& state) {
  AdaptiveConvBenchmark(state, /*use_attention=*/true);
}
BENCHMARK(BM_AdaptiveConvAttention);

void BM_AdaptiveConvPlain(benchmark::State& state) {
  AdaptiveConvBenchmark(state, /*use_attention=*/false);
}
BENCHMARK(BM_AdaptiveConvPlain);

}  // namespace

BENCHMARK_MAIN();
