// Reproduces Table IV (Q1 + Q2): accuracy and F1 of all nine models across
// training-set sizes {50,60,70,80}% on both datasets, printed next to the
// paper's reported values.
//
//   ./build/bench/bench_table4_comparison [--scale=0.06] [--epochs=60]
//       [--models=GAT,SGC,...] [--train-sizes=0.5,0.6,0.7,0.8]

#include <map>

#include "bench_util.h"

namespace {

constexpr const char* kModels[] = {"GAT",     "SGC",    "Guardian",
                                   "AtNE-Trust", "KGTrust", "UniGCN",
                                   "UniGAT",  "HGNN+",  "AHNTP"};

// Paper Table IV values, indexed [dataset][metric][model][train-size].
// Datasets: 0 = Ciao, 1 = Epinions. Metric: 0 = accuracy, 1 = F1.
// Train sizes: 50, 60, 70, 80 (%).
constexpr double kPaper[2][2][9][4] = {
    {  // Ciao
     {  // accuracy
      {59.76, 61.03, 62.17, 63.01},   // GAT
      {67.40, 68.29, 68.39, 68.81},   // SGC
      {71.27, 71.62, 71.90, 71.94},   // Guardian
      {62.24, 62.66, 63.52, 66.58},   // AtNE-Trust
      {71.72, 72.11, 72.34, 72.36},   // KGTrust
      {74.89, 82.37, 82.44, 83.10},   // UniGCN
      {82.56, 82.80, 83.15, 83.64},   // UniGAT
      {82.16, 82.04, 82.23, 82.28},   // HGNN+
      {85.12, 85.44, 85.56, 86.11}},  // AHNTP
     {  // F1
      {66.47, 68.08, 70.61, 70.85},
      {67.53, 68.58, 68.78, 69.76},
      {71.84, 72.28, 72.67, 73.32},
      {62.76, 63.03, 65.37, 69.92},
      {72.85, 73.11, 73.23, 74.06},
      {83.39, 87.69, 87.84, 88.33},
      {87.63, 87.64, 87.84, 88.31},
      {87.33, 87.34, 87.46, 88.00},
      {88.90, 89.36, 89.59, 90.11}}},
    {  // Epinions
     {  // accuracy
      {61.70, 61.92, 64.76, 70.79},
      {77.22, 77.57, 77.82, 78.17},
      {80.15, 80.22, 80.31, 80.55},
      {71.90, 73.01, 73.40, 73.59},
      {80.59, 80.65, 80.96, 81.14},
      {86.78, 87.52, 87.95, 87.96},
      {86.38, 86.59, 86.41, 86.24},
      {86.33, 86.39, 86.16, 86.37},
      {89.21, 89.48, 89.55, 89.78}},
     {  // F1
      {65.60, 66.64, 72.67, 72.84},
      {77.63, 77.63, 78.05, 78.56},
      {80.41, 80.51, 80.58, 80.86},
      {72.87, 73.74, 73.80, 74.29},
      {81.05, 81.11, 81.46, 81.70},
      {91.11, 91.53, 91.78, 91.79},
      {90.77, 90.96, 90.84, 90.83},
      {90.78, 90.79, 90.74, 90.92},
      {92.51, 92.75, 92.79, 92.94}}},
};

int ModelIndex(const std::string& name) {
  for (int i = 0; i < 9; ++i) {
    if (name == kModels[i]) return i;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  std::vector<std::string> models = flags.GetStringList(
      "models", std::vector<std::string>(kModels, kModels + 9));
  std::vector<double> train_sizes =
      flags.GetDoubleList("train-sizes", {0.5, 0.6, 0.7, 0.8});
  bench::PrintBanner(
      "Table IV",
      "performance comparisons with different training sets", options);

  for (const auto& named : bench::BuildDatasets(options)) {
    int dataset_idx = named.name == "Ciao" ? 0 : 1;
    std::printf("\n### %s (%zu users, %zu trust relations)\n",
                named.name.c_str(), named.dataset.num_users,
                named.dataset.trust_edges.size());
    std::printf("%-11s %6s | %9s %9s | %9s %9s | %8s\n", "model", "train%",
                "acc", "acc*", "f1", "f1*", "sec");
    std::printf("%s\n", std::string(72, '-').c_str());
    // Measured AHNTP minus best measured baseline, per train size (for the
    // paper's "Improvement" column).
    std::map<double, double> best_baseline_acc;
    std::map<double, double> ahntp_acc;

    for (const std::string& model : models) {
      int model_idx = ModelIndex(model);
      for (double train : train_sizes) {
        core::ExperimentConfig config = bench::BaseExperimentConfig(options);
        config.model = model;
        config.split.train_fraction = train;
        core::ExperimentResult result = bench::MustRunAveraged(named.dataset, config, options);
        int size_idx = static_cast<int>(train * 10.0 + 0.5) - 5;
        bool has_paper = model_idx >= 0 && size_idx >= 0 && size_idx < 4;
        double paper_acc =
            has_paper ? kPaper[dataset_idx][0][model_idx][size_idx] : 0.0;
        double paper_f1 =
            has_paper ? kPaper[dataset_idx][1][model_idx][size_idx] : 0.0;
        std::printf("%-11s %6.0f | %8.2f%% %8.2f%% | %8.2f%% %8.2f%% | %8.1f\n",
                    model.c_str(), train * 100.0, result.test.accuracy * 100.0,
                    paper_acc, result.test.f1 * 100.0, paper_f1,
                    result.train_seconds);
        std::fflush(stdout);
        if (model == "AHNTP") {
          ahntp_acc[train] = result.test.accuracy;
        } else {
          best_baseline_acc[train] =
              std::max(best_baseline_acc[train], result.test.accuracy);
        }
      }
    }
    for (const auto& [train, acc] : ahntp_acc) {
      if (best_baseline_acc.count(train)) {
        std::printf(
            "improvement of AHNTP over best baseline at %.0f%% train: "
            "%+.2f points (paper reports +1.6 to +2.6)\n",
            train * 100.0, (acc - best_baseline_acc[train]) * 100.0);
      }
    }
  }
  std::printf("\n(acc*/f1* = paper-reported values on the real datasets)\n");
  return 0;
}
