// Ablation of the evaluation-protocol design choices called out in
// DESIGN.md §4/§5 (not a paper table): sensitivity of AHNTP and a strong
// baseline to (a) the hard-negative fraction and (b) the negatives-per-
// positive training ratio, plus (c) the temporal vs random split gap.
//
//   ./build/bench/bench_ablation_protocol [--scale=0.06] [--epochs=300]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  options.include_epinions = false;  // one dataset keeps this bench brisk
  options.include_ciao = true;
  bench::PrintBanner("Protocol ablation",
                     "negative sampling & split design choices (DESIGN.md)",
                     options);
  auto datasets = bench::BuildDatasets(options);
  AHNTP_CHECK(!datasets.empty())
      << "this bench runs on the Ciao-like dataset";
  const data::SocialDataset& dataset = datasets.front().dataset;

  std::printf("\n(a) hard-negative fraction (test difficulty knob)\n");
  std::printf("%-9s %-9s | %9s | %9s\n", "model", "hard", "acc", "f1");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (const char* model : {"SGC", "AHNTP"}) {
    for (double hard : {0.0, 0.5, 1.0}) {
      core::ExperimentConfig config = bench::BaseExperimentConfig(options);
      config.model = model;
      config.split.hard_negative_fraction = hard;
      core::ExperimentResult result =
          bench::MustRunAveraged(dataset, config, options);
      std::printf("%-9s %-9.1f | %8.2f%% | %8.2f%%\n", model, hard,
                  result.test.accuracy * 100.0, result.test.f1 * 100.0);
      std::fflush(stdout);
    }
  }

  std::printf(
      "\n(b) training negatives per positive (paper uses 2, Section V-A.4)\n");
  std::printf("%-9s %-9s | %9s | %9s\n", "model", "neg/pos", "acc", "f1");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (int ratio : {1, 2, 4}) {
    core::ExperimentConfig config = bench::BaseExperimentConfig(options);
    config.model = "AHNTP";
    config.split.train_negatives_per_positive = ratio;
    core::ExperimentResult result =
        bench::MustRunAveraged(dataset, config, options);
    std::printf("%-9s %-9d | %8.2f%% | %8.2f%%\n", "AHNTP", ratio,
                result.test.accuracy * 100.0, result.test.f1 * 100.0);
    std::fflush(stdout);
  }

  std::printf("\n(c) random vs temporal split (future-work setting)\n");
  std::printf("%-9s %-9s | %9s | %9s\n", "model", "split", "acc", "f1");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (bool temporal : {false, true}) {
    core::ExperimentConfig config = bench::BaseExperimentConfig(options);
    config.model = "AHNTP";
    config.temporal_split = temporal;
    core::ExperimentResult result =
        bench::MustRunAveraged(dataset, config, options);
    std::printf("%-9s %-9s | %8.2f%% | %8.2f%%\n", "AHNTP",
                temporal ? "temporal" : "random",
                result.test.accuracy * 100.0, result.test.f1 * 100.0);
    std::fflush(stdout);
  }
  std::printf("\n(d) attention heads in the adaptive conv (paper uses 1)\n");
  std::printf("%-9s %-9s | %9s | %9s\n", "model", "heads", "acc", "f1");
  std::printf("%s\n", std::string(46, '-').c_str());
  for (size_t heads : {1u, 2u, 4u}) {
    core::ExperimentConfig config = bench::BaseExperimentConfig(options);
    config.model = "AHNTP";
    config.ahntp.attention_heads = heads;
    core::ExperimentResult result =
        bench::MustRunAveraged(dataset, config, options);
    std::printf("%-9s %-9zu | %8.2f%% | %8.2f%%\n", "AHNTP", heads,
                result.test.accuracy * 100.0, result.test.f1 * 100.0);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected: (a) higher hard fractions depress every model but\n"
      "high-order models degrade less; (b) the paper's 2:1 ratio is a\n"
      "reasonable operating point; (c) forecasting future trust is harder\n"
      "than random-split completion; (d) extra heads are roughly neutral at\n"
      "this scale.\n");
  return 0;
}
