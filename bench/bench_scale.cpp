// Out-of-core scale sweep (DESIGN.md §14): drives the EpinionsLike preset
// past 1M users through the sharded build + shard-aware inference path and
// emits `BENCH_scale.json` with build time, peak RSS, and score latency vs
// population N and shard count K.
//
// Each (N, K) point runs in a child process (this binary re-exec'd with
// --point) so its peak RSS — read from /proc/self/status VmHWM — reflects
// exactly that configuration. A point:
//   1. stream-generates the trust graph (data::StreamTrustEdges), routing
//      edges through bounded per-shard buffers into per-shard spill files —
//      the full edge list never exists in RAM;
//   2. rebuilds each shard's local graph from its spill file, one shard at
//      a time;
//   3. spills deterministic per-user embeddings into a ShardEmbeddingStore
//      one shard block at a time, then scores batches of sampled pairs
//      through the store's bounded-LRU fault path.
// The score digest (CRC32 of the result floats) is independent of K by
// construction; the parent enforces that as a built-in parity gate.
//
//   ./build/bench/bench_scale                      # full sweep to 1M users
//   ./build/bench/bench_scale --users=2000,8000 --shards=1,4  # small sweep
//
// Defaults reach 1,000,000 users; expect several minutes per 1M point on
// one core.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/fileio.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "data/generator.h"
#include "graph/digraph.h"
#include "graph/sharding.h"
#include "models/inference_plan.h"

namespace {

using namespace ahntp;

// The Table III Epinions population; --users values scale against it.
constexpr double kEpinionsUsers = 8935.0;

uint64_t HashMix(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic per-user embedding row: uniform in [-1, 1), independent of
/// shard count — the digest parity across K rests on this.
void FillEmbeddingRow(int user, size_t dim, float* out) {
  for (size_t j = 0; j < dim; ++j) {
    uint64_t h = HashMix(static_cast<uint64_t>(user) * 1315423911ull + j);
    out[j] = static_cast<float>(
        static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0);
  }
}

/// Peak resident set (VmHWM) of this process, in MiB.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1) {
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

struct PointResult {
  size_t users = 0;
  int shards = 0;
  size_t edges = 0;
  double generate_s = 0.0;     // stream-generate + spill edges
  double graph_build_s = 0.0;  // per-shard local graphs from spill files
  double store_spill_s = 0.0;  // embedding blocks to disk
  double score_p50_ms = 0.0;   // per batch, through the LRU fault path
  double resident_budget_mb = 0.0;
  double peak_rss_mb = 0.0;
  uint32_t digest = 0;
};

/// On-disk record of one routed edge (see ShardedEdgeBuffer).
struct EdgeRecord {
  int32_t src;
  int32_t dst;
  int64_t index;
};

/// One (N, K) measurement; runs inside the child process.
PointResult RunPoint(size_t users, int shards, size_t dim, int max_resident,
                     size_t num_pairs, size_t batch,
                     const std::string& spill_root) {
  PointResult result;
  result.users = users;
  result.shards = shards;

  const std::string dir =
      spill_root + "/n" + std::to_string(users) + "_k" + std::to_string(shards);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto sharding_result = graph::UserSharding::Create(
      users, {.num_shards = shards, .mode = graph::ShardingMode::kContiguous});
  AHNTP_CHECK_OK(sharding_result.status());
  const graph::UserSharding sharding = std::move(sharding_result).value();

  // ---- Phase 1: stream-generate, spilling edges per shard. ---------------
  data::GeneratorConfig config =
      data::GeneratorConfig::EpinionsLike(static_cast<double>(users) /
                                          kEpinionsUsers);
  config.num_users = users;  // exact, not rounded through the preset
  data::SocialNetworkGenerator generator(config);

  std::vector<std::ofstream> shard_files(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shard_files[static_cast<size_t>(s)].open(
        dir + "/edges_" + std::to_string(s) + ".bin",
        std::ios::binary | std::ios::trunc);
    AHNTP_CHECK(shard_files[static_cast<size_t>(s)].good());
  }
  data::ShardedEdgeBuffer buffer(
      shards, /*capacity=*/1 << 16,
      [&shard_files](int shard, const std::vector<data::StreamedEdge>& edges) {
        std::vector<EdgeRecord> records(edges.size());
        for (size_t i = 0; i < edges.size(); ++i) {
          records[i] = {edges[i].src, edges[i].dst, edges[i].index};
        }
        shard_files[static_cast<size_t>(shard)].write(
            reinterpret_cast<const char*>(records.data()),
            static_cast<std::streamsize>(records.size() * sizeof(EdgeRecord)));
      });

  Stopwatch generate_timer;
  result.edges = generator.StreamTrustEdges(
      [&](const data::StreamedEdge& e) {
        buffer.Route(e, sharding.ShardOf(e.src), sharding.ShardOf(e.dst));
      });
  buffer.FlushAll();
  for (auto& f : shard_files) {
    f.close();
    AHNTP_CHECK(f.good());
  }
  result.generate_s = generate_timer.ElapsedSeconds();

  // ---- Phase 2: per-shard local graphs, one shard resident at a time. ----
  Stopwatch build_timer;
  size_t local_edges_total = 0;
  for (int s = 0; s < shards; ++s) {
    std::ifstream in(dir + "/edges_" + std::to_string(s) + ".bin",
                     std::ios::binary);
    AHNTP_CHECK(in.good());
    std::vector<EdgeRecord> records;
    EdgeRecord record;
    while (in.read(reinterpret_cast<char*>(&record), sizeof(record))) {
      records.push_back(record);
    }
    // Compact local ids over the endpoints this shard sees (owned + the
    // opposite endpoints of its incident edges).
    std::vector<int> vertices;
    vertices.reserve(records.size() * 2);
    for (const EdgeRecord& r : records) {
      vertices.push_back(r.src);
      vertices.push_back(r.dst);
    }
    for (int u : sharding.UsersOf(s)) vertices.push_back(u);
    std::sort(vertices.begin(), vertices.end());
    vertices.erase(std::unique(vertices.begin(), vertices.end()),
                   vertices.end());
    std::vector<graph::Edge> edges;
    edges.reserve(records.size());
    for (const EdgeRecord& r : records) {
      int ls = static_cast<int>(
          std::lower_bound(vertices.begin(), vertices.end(), r.src) -
          vertices.begin());
      int ld = static_cast<int>(
          std::lower_bound(vertices.begin(), vertices.end(), r.dst) -
          vertices.begin());
      edges.push_back({ls, ld});
    }
    auto local = graph::Digraph::FromEdges(vertices.size(), edges);
    AHNTP_CHECK_OK(local.status());
    local_edges_total += local.value().num_edges();
  }
  AHNTP_CHECK_GE(local_edges_total, result.edges);
  result.graph_build_s = build_timer.ElapsedSeconds();

  // ---- Phase 3: embedding store, one block in RAM at a time. -------------
  models::ShardEmbeddingStore store(sharding, dim, dir + "/emb", max_resident);
  Stopwatch spill_timer;
  for (int s = 0; s < shards; ++s) {
    const std::vector<int>& owned = sharding.UsersOf(s);
    tensor::Matrix block(owned.size(), dim);
    for (size_t r = 0; r < owned.size(); ++r) {
      FillEmbeddingRow(owned[r], dim, block.RowPtr(r));
    }
    AHNTP_CHECK_OK(store.SpillShard(s, block));
  }
  result.store_spill_s = spill_timer.ElapsedSeconds();
  const size_t max_block_rows = (users + static_cast<size_t>(shards) - 1) /
                                static_cast<size_t>(shards);
  result.resident_budget_mb =
      static_cast<double>(max_resident) *
      static_cast<double>(max_block_rows * dim * sizeof(float)) /
      (1024.0 * 1024.0);

  // ---- Phase 4: score sampled pairs through the LRU fault path. ----------
  std::vector<float> src_row(dim), dst_row(dim);
  std::vector<double> batch_ms;
  uint32_t digest = 0;
  size_t scored = 0;
  Stopwatch batch_timer;
  while (scored < num_pairs) {
    batch_timer.Restart();
    const size_t batch_end = std::min(num_pairs, scored + batch);
    for (; scored < batch_end; ++scored) {
      int src = static_cast<int>(HashMix(scored * 2) % users);
      int dst = static_cast<int>(HashMix(scored * 2 + 1) % users);
      AHNTP_CHECK_OK(store.CopyUserRow(src, src_row.data()));
      AHNTP_CHECK_OK(store.CopyUserRow(dst, dst_row.data()));
      float dot = 0.0f;
      for (size_t j = 0; j < dim; ++j) dot += src_row[j] * dst_row[j];
      float prob = 0.5f + 0.5f * dot / static_cast<float>(dim);
      digest = Crc32(&prob, sizeof(prob), digest);
    }
    batch_ms.push_back(batch_timer.ElapsedMillis());
  }
  std::sort(batch_ms.begin(), batch_ms.end());
  result.score_p50_ms = batch_ms.empty() ? 0.0 : batch_ms[batch_ms.size() / 2];
  result.digest = digest;

  result.peak_rss_mb = PeakRssMb();
  std::filesystem::remove_all(dir);
  return result;
}

std::string Quoted(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  ApplyRuntimeFlags(flags);

  const size_t dim = static_cast<size_t>(flags.GetInt("dim", 16));
  const int max_resident = static_cast<int>(flags.GetInt("max_resident", 2));
  const size_t num_pairs = static_cast<size_t>(flags.GetInt("pairs", 4096));
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 256));
  const std::string spill_root =
      flags.GetString("spill_root", "bench_scale_spill");

  if (flags.GetBool("point", false)) {
    // Child mode: one (N, K) measurement, one machine-readable line.
    const size_t users = static_cast<size_t>(flags.GetInt("users", 8935));
    const int shards = static_cast<int>(flags.GetInt("shards", 1));
    PointResult r = RunPoint(users, shards, dim, max_resident, num_pairs,
                             batch, spill_root);
    std::printf(
        "POINT users=%zu shards=%d edges=%zu generate_s=%.3f "
        "graph_build_s=%.3f store_spill_s=%.3f score_p50_ms=%.4f "
        "resident_budget_mb=%.2f peak_rss_mb=%.2f digest=%08x\n",
        r.users, r.shards, r.edges, r.generate_s, r.graph_build_s,
        r.store_spill_s, r.score_p50_ms, r.resident_budget_mb, r.peak_rss_mb,
        r.digest);
    return 0;
  }

  std::vector<int64_t> users_sweep =
      flags.GetIntList("users", {125000, 500000, 1000000});
  std::vector<int64_t> shards_sweep = flags.GetIntList("shards", {1, 8, 32});
  std::printf("bench_scale: sharded out-of-core sweep (EpinionsLike)\n");
  std::printf("dim=%zu max_resident=%d pairs=%zu batch=%zu\n\n", dim,
              max_resident, num_pairs, batch);
  std::printf("%9s %7s %9s %11s %13s %13s %13s %12s %11s\n", "users", "shards",
              "edges", "generate_s", "graph_build_s", "store_spill_s",
              "score_p50_ms", "budget_mb", "peak_rss_mb");

  std::vector<PointResult> rows;
  for (int64_t users : users_sweep) {
    uint32_t reference_digest = 0;
    bool have_reference = false;
    for (int64_t shards : shards_sweep) {
      if (shards > users) continue;
      std::string cmd = std::string(argv[0]) + " --point --users=" +
                        std::to_string(users) + " --shards=" +
                        std::to_string(shards) + " --dim=" +
                        std::to_string(dim) + " --max_resident=" +
                        std::to_string(max_resident) + " --pairs=" +
                        std::to_string(num_pairs) + " --batch=" +
                        std::to_string(batch) + " --spill_root=" + spill_root;
      FILE* child = popen(cmd.c_str(), "r");
      AHNTP_CHECK(child != nullptr) << "cannot spawn " << cmd;
      PointResult r;
      char line[512];
      bool got_point = false;
      while (std::fgets(line, sizeof(line), child) != nullptr) {
        if (std::sscanf(line,
                        "POINT users=%zu shards=%d edges=%zu generate_s=%lf "
                        "graph_build_s=%lf store_spill_s=%lf "
                        "score_p50_ms=%lf resident_budget_mb=%lf "
                        "peak_rss_mb=%lf digest=%x",
                        &r.users, &r.shards, &r.edges, &r.generate_s,
                        &r.graph_build_s, &r.store_spill_s, &r.score_p50_ms,
                        &r.resident_budget_mb, &r.peak_rss_mb,
                        &r.digest) == 10) {
          got_point = true;
        }
      }
      int status = pclose(child);
      AHNTP_CHECK_EQ(status, 0) << "child failed: " << cmd;
      AHNTP_CHECK(got_point) << "child produced no POINT line: " << cmd;

      // Parity gate: the same pairs over the same embeddings must score to
      // the same bits at every shard count.
      if (!have_reference) {
        reference_digest = r.digest;
        have_reference = true;
      } else {
        AHNTP_CHECK_EQ(r.digest, reference_digest)
            << "score digest diverged at users=" << users
            << " shards=" << shards;
      }
      rows.push_back(r);
      std::printf("%9zu %7d %9zu %11.3f %13.3f %13.3f %13.4f %12.2f %11.2f\n",
                  r.users, r.shards, r.edges, r.generate_s, r.graph_build_s,
                  r.store_spill_s, r.score_p50_ms, r.resident_budget_mb,
                  r.peak_rss_mb);
      std::fflush(stdout);
    }
  }

  std::string json = "{\n  " + Quoted("bench") + ": " + Quoted("scale") +
                     ",\n  " + Quoted("dim") + ": " + std::to_string(dim) +
                     ",\n  " + Quoted("max_resident_shards") + ": " +
                     std::to_string(max_resident) + ",\n  " + Quoted("rows") +
                     ": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& r = rows[i];
    json += StrFormat(
        "    {\"users\": %zu, \"shards\": %d, \"edges\": %zu, "
        "\"generate_s\": %.3f, \"graph_build_s\": %.3f, "
        "\"store_spill_s\": %.3f, \"score_p50_ms\": %.4f, "
        "\"resident_budget_mb\": %.2f, \"peak_rss_mb\": %.2f, "
        "\"digest\": \"%08x\"}%s\n",
        r.users, r.shards, r.edges, r.generate_s, r.graph_build_s,
        r.store_spill_s, r.score_p50_ms, r.resident_budget_mb, r.peak_rss_mb,
        r.digest, i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_scale.json", json));
  std::printf("\nwrote BENCH_scale.json (%zu points)\n", rows.size());
  std::printf(
      "Expected shape: generate/build time grows ~linearly in N and is flat\n"
      "in K; peak RSS at fixed N *drops* as K grows (spill files replace the\n"
      "edge list, and at most max_resident embedding blocks stay in RAM);\n"
      "the score digest is identical across K — the sharded path changes\n"
      "where bytes live, never what they are.\n");
  std::filesystem::remove_all(spill_root);
  return 0;
}
