// Dynamic-update benchmark: incremental delta refresh (DESIGN.md §17)
// against full rebuilds, across delta sizes, plus the staleness-vs-latency
// tradeoff of coalescing single-edge mutations into wider apply windows.
// Emits `BENCH_dynamic.json` alongside the usual BENCH_META line.
//
// Two rebuild baselines are timed per delta size:
//   * plan rebuild — InvalidateCaches() + WarmInferencePlan(): what serving
//     pays per delta if graph changes simply invalidate the compiled plan
//     (full re-encode + table build). The delta path replaces this with a
//     row patch (RefreshPlanRows), and the in-binary gate CHECKs that the
//     1-edge patch is >= 20x faster.
//   * pipeline rebuild — RebuildFromScratch(): rebuilding every derived
//     structure (motifs, influence, hypergroups, encoder caches, plan).
//     The end-to-end ApplyDelta beats this by a smaller factor: the dirty
//     closure reaches most users within two conv layers (attribute
//     hyperedges are global mixers), so the encoder refresh still pays
//     most of a full encode. The per-stage breakdown in the JSON makes
//     that split visible.
//
//   ./build/bench/bench_dynamic [--scale=0.06] [--iters=5] [--rebuilds=2]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fileio.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/dynamic_pipeline.h"
#include "data/generator.h"
#include "graph/delta.h"

namespace {

using namespace ahntp;

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

/// Mean observation of a latency histogram, in milliseconds.
double HistogramMeanMs(const metrics::Snapshot& snapshot, const char* name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name && h.count > 0) {
      return h.sum / static_cast<double>(h.count) * 1e3;
    }
  }
  return 0.0;
}

struct SizeRow {
  size_t delta_edges = 0;
  double apply_ms = 0.0;       // end-to-end ApplyDelta (median)
  double plan_patch_ms = 0.0;  // RefreshPlanRows stage (mean)
  double refresh_ms = 0.0;     // encoder refresh stage (mean)
  double plan_rebuild_ms = 0.0;
  double pipeline_rebuild_ms = 0.0;
  double plan_speedup = 0.0;      // plan_rebuild / plan_patch
  double pipeline_speedup = 0.0;  // pipeline_rebuild / apply
  double refreshed_users = 0.0;
  double pagerank_iters_saved = 0.0;
};

struct StalenessRow {
  size_t window = 1;       // single-edge mutations coalesced per apply
  size_t refreshes = 0;    // ApplyDelta calls needed for the stream
  double total_ms = 0.0;   // summed refresh latency for the whole stream
  size_t worst_staleness = 0;  // edges waiting unapplied at the window edge
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  const int iters = static_cast<int>(flags.GetInt("iters", 5));
  const int rebuilds = static_cast<int>(flags.GetInt("rebuilds", 2));

  bench::PrintBanner(
      "dynamic",
      "incremental delta refresh vs full rebuild + staleness/latency",
      options);
  // Stage breakdowns come from the dynamic.apply.*_seconds histograms.
  metrics::Enable();

  data::SocialDataset dataset =
      data::SocialNetworkGenerator(
          data::GeneratorConfig::CiaoLike(options.scale))
          .Generate();
  core::DynamicPipelineOptions dyn_options;
  dyn_options.model.hidden_dims = options.dims;
  dyn_options.seed = options.seed;

  Stopwatch build_watch;
  auto pipeline = core::DynamicTrustPipeline::Create(dataset, dyn_options);
  AHNTP_CHECK(pipeline.ok()) << pipeline.status().ToString();
  pipeline.value().predictor().WarmInferencePlan();
  const double cold_build_ms = build_watch.ElapsedMillis();
  std::printf("pipeline: %zu users, %zu trust edges, cold build %.1f ms\n",
              dataset.num_users, dataset.trust_edges.size(), cold_build_ms);

  // --- Incremental vs full rebuild across delta sizes ----------------------
  std::vector<SizeRow> rows;
  std::printf("%12s %10s %10s %14s %14s %12s %12s\n", "delta_edges",
              "apply_ms", "patch_ms", "plan_rebuild", "pipe_rebuild",
              "plan_spdup", "pipe_spdup");
  for (size_t delta_edges : {size_t{1}, size_t{10}, size_t{1000}}) {
    data::DeltaStreamConfig stream;
    stream.num_deltas = static_cast<size_t>(iters);
    stream.adds_per_delta = delta_edges;
    stream.removes_per_delta = 0;
    stream.ratings_per_delta = 0;
    stream.seed = 20240717 + delta_edges;
    std::vector<graph::GraphDelta> deltas =
        data::GenerateTrustDeltas(dataset, stream);

    metrics::Reset();
    std::vector<double> apply;
    double refreshed = 0.0, saved = 0.0;
    for (const graph::GraphDelta& delta : deltas) {
      Stopwatch watch;
      auto outcome = pipeline.value().ApplyDelta(delta);
      apply.push_back(watch.ElapsedMillis());
      AHNTP_CHECK(outcome.ok()) << outcome.status().ToString();
      refreshed += static_cast<double>(outcome->refreshed_users.size());
      saved += static_cast<double>(outcome->pagerank_cold_iterations -
                                   outcome->pagerank_iterations);
    }
    metrics::Snapshot stages = metrics::Collect();

    // Plan rebuild: drop the compiled plan and rebuild it from the current
    // model (full re-encode + table build) — the per-delta serving cost
    // without delta invalidation. Re-warming leaves the plan identical to
    // the patched one (encoding is deterministic), so timings after this
    // are undisturbed.
    std::vector<double> plan_rebuild;
    for (int r = 0; r < rebuilds; ++r) {
      Stopwatch watch;
      pipeline.value().predictor().InvalidateCaches();
      pipeline.value().predictor().WarmInferencePlan();
      plan_rebuild.push_back(watch.ElapsedMillis());
    }

    // Pipeline rebuild: every derived structure from the current snapshot.
    std::vector<double> pipeline_rebuild;
    for (int r = 0; r < rebuilds; ++r) {
      Stopwatch watch;
      auto rebuilt = pipeline.value().RebuildFromScratch();
      AHNTP_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
      rebuilt.value().predictor().WarmInferencePlan();
      pipeline_rebuild.push_back(watch.ElapsedMillis());
    }

    SizeRow row;
    row.delta_edges = delta_edges;
    row.apply_ms = Median(apply);
    row.plan_patch_ms =
        HistogramMeanMs(stages, "dynamic.apply.plan_seconds");
    row.refresh_ms =
        HistogramMeanMs(stages, "dynamic.apply.refresh_seconds");
    row.plan_rebuild_ms = Median(plan_rebuild);
    row.pipeline_rebuild_ms = Median(pipeline_rebuild);
    row.plan_speedup = row.plan_patch_ms > 0.0
                           ? row.plan_rebuild_ms / row.plan_patch_ms
                           : 0.0;
    row.pipeline_speedup =
        row.apply_ms > 0.0 ? row.pipeline_rebuild_ms / row.apply_ms : 0.0;
    row.refreshed_users = refreshed / static_cast<double>(deltas.size());
    row.pagerank_iters_saved = saved / static_cast<double>(deltas.size());
    rows.push_back(row);
    std::printf("%12zu %10.3f %10.4f %14.2f %14.1f %11.1fx %11.1fx\n",
                row.delta_edges, row.apply_ms, row.plan_patch_ms,
                row.plan_rebuild_ms, row.pipeline_rebuild_ms,
                row.plan_speedup, row.pipeline_speedup);
    std::fflush(stdout);
  }

  // --- Staleness vs latency: coalescing single-edge mutations --------------
  // A stream of single-edge mutations can be applied one by one (freshest
  // scores, most refreshes) or coalesced into windows of w (fewer, larger
  // refreshes; up to w-1 edges serve stale at the window edge).
  std::vector<StalenessRow> staleness;
  const size_t stream_edges = 12;
  for (size_t window : {size_t{1}, size_t{4}, size_t{12}}) {
    data::DeltaStreamConfig stream;
    stream.num_deltas = stream_edges;
    stream.adds_per_delta = 1;
    stream.removes_per_delta = 0;
    stream.ratings_per_delta = 0;
    stream.seed = 20240800 + window;
    std::vector<graph::GraphDelta> singles =
        data::GenerateTrustDeltas(dataset, stream);

    StalenessRow row;
    row.window = window;
    row.worst_staleness = window - 1;
    for (size_t start = 0; start < singles.size(); start += window) {
      graph::GraphDelta coalesced;
      for (size_t i = start; i < std::min(start + window, singles.size());
           ++i) {
        coalesced.add_edges.insert(coalesced.add_edges.end(),
                                   singles[i].add_edges.begin(),
                                   singles[i].add_edges.end());
      }
      Stopwatch watch;
      auto outcome = pipeline.value().ApplyDelta(coalesced);
      row.total_ms += watch.ElapsedMillis();
      AHNTP_CHECK(outcome.ok()) << outcome.status().ToString();
      ++row.refreshes;
    }
    staleness.push_back(row);
    std::printf(
        "staleness: window %2zu -> %zu refreshes, %.3f ms total, worst "
        "staleness %zu edges\n",
        row.window, row.refreshes, row.total_ms, row.worst_staleness);
  }

  // --- The headline gate ---------------------------------------------------
  const SizeRow& one_edge = rows.front();
  AHNTP_CHECK(one_edge.plan_speedup >= 20.0)
      << "the 1-edge plan-row patch must be >= 20x faster than a full plan "
      << "rebuild, got " << one_edge.plan_speedup << "x (patch "
      << one_edge.plan_patch_ms << " ms vs rebuild "
      << one_edge.plan_rebuild_ms << " ms)";
  std::printf("gate: 1-edge plan patch speedup %.1fx >= 20x\n",
              one_edge.plan_speedup);

  std::string json =
      "{\n  \"bench\": \"dynamic\",\n  \"cold_build_ms\": " +
      StrFormat("%.2f", cold_build_ms) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SizeRow& row = rows[i];
    json += StrFormat(
        "    {\"delta_edges\": %zu, \"apply_ms\": %.4f, "
        "\"plan_patch_ms\": %.4f, \"refresh_ms\": %.4f, "
        "\"plan_rebuild_ms\": %.3f, \"pipeline_rebuild_ms\": %.2f, "
        "\"plan_speedup\": %.1f, \"pipeline_speedup\": %.1f, "
        "\"refreshed_users\": %.1f, \"pagerank_iters_saved\": %.1f}%s\n",
        row.delta_edges, row.apply_ms, row.plan_patch_ms, row.refresh_ms,
        row.plan_rebuild_ms, row.pipeline_rebuild_ms, row.plan_speedup,
        row.pipeline_speedup, row.refreshed_users, row.pagerank_iters_saved,
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ],\n  \"staleness_vs_latency\": [\n";
  for (size_t i = 0; i < staleness.size(); ++i) {
    const StalenessRow& row = staleness[i];
    json += StrFormat(
        "    {\"window\": %zu, \"refreshes\": %zu, \"total_ms\": %.4f, "
        "\"worst_staleness_edges\": %zu}%s\n",
        row.window, row.refreshes, row.total_ms, row.worst_staleness,
        i + 1 < staleness.size() ? "," : "");
  }
  json += "  ],\n  \"gate\": {\"min_plan_speedup_1edge\": 20.0, "
          "\"measured\": " +
          StrFormat("%.1f", one_edge.plan_speedup) + "}\n}\n";
  AHNTP_CHECK_OK(WriteFileAtomic("BENCH_dynamic.json", json));
  std::printf("\nwrote BENCH_dynamic.json (%zu rows)\n", rows.size());
  std::printf(
      "Expected shape: the plan patch is row-local, so its cost tracks the\n"
      "dirty-user count while a plan rebuild always re-encodes everyone.\n"
      "End-to-end apply beats a pipeline rebuild by a smaller factor: the\n"
      "dirty closure reaches most users within two conv layers (attribute\n"
      "hyperedges mix globally), so the encoder refresh dominates. Wider\n"
      "coalescing windows trade staleness for fewer refreshes.\n");
  return 0;
}
