// Reproduces Table III (dataset statistics): prints the generated synthetic
// datasets' statistics next to the paper's reported values.
//
//   ./build/bench/bench_table3_datasets [--scale=0.06]

#include "bench_util.h"

namespace {

struct PaperRow {
  const char* dataset;
  long users;
  long items;
  long purchases;
  long trust;
  double sparsity_percent;
};

constexpr PaperRow kPaper[] = {
    {"Epinions", 8935, 21335, 220673, 65948, 0.16523},
    {"Ciao", 4104, 75071, 171405, 41675, 0.49499},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ahntp;
  FlagParser flags;
  AHNTP_CHECK_OK(flags.Parse(argc, argv));
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  bench::PrintBanner("Table III", "statistics of datasets", options);

  std::printf("\n%-10s %-10s | %10s %10s %12s %10s %10s\n", "dataset",
              "source", "users", "items", "purchases", "trust", "sparsity%");
  for (const PaperRow& row : kPaper) {
    std::printf("%-10s %-10s | %10ld %10ld %12ld %10ld %10.5f\n", row.dataset,
                "paper", row.users, row.items, row.purchases, row.trust,
                row.sparsity_percent);
  }
  std::printf("%s\n", std::string(84, '-').c_str());
  for (const auto& named : bench::BuildDatasets(options)) {
    data::DatasetStatistics stats = data::ComputeStatistics(named.dataset);
    std::printf("%-10s %-10s | %10zu %10zu %12zu %10zu %10.5f\n",
                named.name.c_str(), "generated", stats.num_users,
                stats.num_items, stats.num_purchases,
                stats.num_trust_relations, stats.trust_density * 100.0);
    std::printf("%-10s %-10s | avg out-degree %.2f, reciprocity %.2f\n",
                "", "  extras", stats.avg_out_degree, stats.reciprocity);
  }
  std::printf(
      "\nThe generator preserves per-user rates (trust out-degree,\n"
      "purchases/user); absolute counts scale with --scale. Sparsity rises\n"
      "as 1/scale because density = degree / users.\n");
  return 0;
}
